//! One-bit bytecode mutation sweep: the measured identity of a VM PAL
//! is the serialized program, so *every* single-bit flip of the image is
//! a different piece of code to the attestation machinery.
//!
//! One honest engine session runs the genuine bytecode and emits a wire
//! quote. For each of the image's bits, the flipped image must
//!
//! * hash to a different expected measurement chain,
//! * fail platform-side verification of the honest quote with
//!   [`VerifyError::MeasurementMismatch`], and
//! * be rejected by a [`VerifierService`] that trusts (only) the flipped
//!   build, with the typed [`RejectReason::MeasurementMismatch`] — the
//!   honest platform provably did not run the mutant.
//!
//! The genuine image, of course, verifies on both paths.

use minimal_tcb::core::{
    BatchPolicy, ConcurrentJob, Executor, Program, SecurePlatform, SessionEngine, SessionResult,
    Slaunch, Verifier, VerifyError,
};
use minimal_tcb::crypto::{Sha1, Sha1Digest};
use minimal_tcb::fleet::{KeyVault, RejectReason, TcbInfo, TcbStatus, VerifierService};
use minimal_tcb::hw::Platform;
use minimal_tcb::pals::vm::{rootkit_image, vm_rootkit};
use minimal_tcb::tpm::Quote;

const SERVICE: &str = "rootkit-detector";

/// Runs the genuine VM rootkit detector once through the engine on
/// vault platform 0 and returns its wire quote (nonce `0u64`, the
/// engine's job-index convention).
fn honest_wire(kernel: &[u8]) -> Vec<u8> {
    let platform = SecurePlatform::with_tpm(Platform::recommended(2), KeyVault::global().tpm(0));
    let mut engine = SessionEngine::<Slaunch>::new(platform, 1).expect("pool fits platform");
    let batch = vec![ConcurrentJob::new(
        Box::new(vm_rootkit(&[kernel])),
        kernel.to_vec(),
    )];
    let out = engine
        .run(
            batch,
            &BatchPolicy::plain().with_executor(Executor::DiscreteEvent),
        )
        .expect("honest batch runs");
    match &out.sessions[0] {
        SessionResult::Quoted { result, quote, .. } => {
            assert_eq!(result.output, vec![1], "the genuine kernel is clean");
            quote.to_bytes()
        }
        other => panic!("honest session did not quote: {other:?}"),
    }
}

/// A fresh verifier trusting exactly one build of the detector.
fn service_for(image: &[u8], extends: &[Sha1Digest]) -> VerifierService {
    let vault = KeyVault::global();
    let mut v = VerifierService::new(vault.ca_public());
    v.trust(SERVICE, image, extends);
    v.ingest_tcb(TcbInfo::new(1).with_status(Sha1::digest(image), TcbStatus::UpToDate))
        .expect("fresh verifier accepts any table");
    v.enroll(vault.certificate(0));
    v
}

#[test]
fn every_single_bit_flip_changes_identity_and_is_rejected_typed() {
    let kernel = b"mutation sweep kernel".to_vec();
    let image = rootkit_image(&[&kernel]);
    let extends = [Sha1::digest(&kernel)];
    let nonce = 0u64.to_le_bytes();

    let wire = honest_wire(&kernel);
    let quote = Quote::from_bytes(&wire).expect("own wire parses");
    let verifier = Verifier::new(KeyVault::global().tpm(0).aik_public().clone());

    // The genuine build verifies on both the platform-side verifier and
    // the remote service.
    verifier
        .verify_sepcr_quote(&quote, &nonce, &image, &extends)
        .expect("honest quote matches the genuine bytecode");
    let mut genuine = service_for(&image, &extends);
    genuine.challenge(0, &nonce, 0);
    let att = genuine.verify(0, &wire, 0).result.expect("honest accepted");
    assert_eq!(att.service, SERVICE);

    // Every mutant is different code: different chain, typed rejection
    // on both verification paths.
    let genuine_chain = Verifier::expected_chain(&image, &extends);
    for byte in 0..image.len() {
        for bit in 0..8 {
            let mut flipped = image.clone();
            flipped[byte] ^= 1 << bit;

            assert_ne!(
                Verifier::expected_chain(&flipped, &extends),
                genuine_chain,
                "bit {bit} of byte {byte}: chain collision"
            );
            assert_eq!(
                verifier.verify_sepcr_quote(&quote, &nonce, &flipped, &extends),
                Err(VerifyError::MeasurementMismatch),
                "bit {bit} of byte {byte}: platform verifier accepted the mutant"
            );

            let mut v = service_for(&flipped, &extends);
            v.challenge(0, &nonce, 0);
            assert_eq!(
                v.verify(0, &wire, 0).result.unwrap_err(),
                RejectReason::MeasurementMismatch,
                "bit {bit} of byte {byte}: verifier service accepted the mutant"
            );
        }
    }
}

#[test]
fn mutants_never_alias_the_genuine_program() {
    // A flipped image either fails to parse or round-trips to exactly
    // its own (mutated) bytes — serialization is canonical, so no two
    // distinct images can decode to the same executed program.
    let image = rootkit_image(&[b"alias kernel"]);
    let mut parsed = 0u32;
    for byte in 0..image.len() {
        for bit in 0..8 {
            let mut flipped = image.clone();
            flipped[byte] ^= 1 << bit;
            if let Ok(program) = Program::parse(&flipped) {
                assert_eq!(
                    program.serialize(),
                    flipped,
                    "bit {bit} of byte {byte}: non-canonical decode"
                );
                parsed += 1;
            }
        }
    }
    assert!(parsed > 0, "some mutants should still parse");
}
