//! Crash-point property suite for executed-bytecode PALs.
//!
//! The durable engine's contract — yank the cord at any trace-event
//! boundary, recover to sessions byte-identical to the crash-free run —
//! was pinned by `tests/crash_recovery.rs` over cost-model `FnPal`s.
//! This suite re-proves it over *real* VM PALs, where a cut can land
//! mid-interpretation: between translated blocks, inside a yield chain,
//! or between a seal and its quote. A platform reset evaporates the
//! protected region (and with it the program counter, registers, block
//! cache, and in-region state), so recovery must re-execute the
//! bytecode from scratch — and still produce byte-identical outputs,
//! reports, and quotes, at 1 and 4 workers on both executors.

use minimal_tcb::core::{
    BatchPolicy, ConcurrentJob, Executor, RetryPolicy, SecurePlatform, SessionEngine,
    SessionResult, Slaunch,
};
use minimal_tcb::hw::{CpuId, FaultPlan, Platform, ResetPlan};
use minimal_tcb::pals::vm::vm_factoring;
use minimal_tcb::pals::PersistMode;
use minimal_tcb::tpm::KeyStrength;

const WORKERS: usize = 4;

/// Distinct semiprime jobs: every session interprets its own bytecode
/// image (n and the quantum live in the measured data segment), yields
/// several times mid-search, and exits with the factor pair.
const JOBS: [(u64, u64); 6] = [
    (101 * 103, 16),
    (97 * 89, 16),
    (107 * 109, 24),
    (127 * 131, 16),
    (137 * 139, 24),
    (149 * 151, 16),
];

fn engine(workers: usize) -> SessionEngine<Slaunch> {
    let platform = SecurePlatform::new(
        Platform::recommended(WORKERS as u16),
        KeyStrength::Demo512,
        b"vm-crash",
    );
    SessionEngine::new(platform, workers).expect("pool fits platform")
}

/// Transient-only faults (no kills): the sweep cuts through retries and
/// preemptions, never through sessions that legitimately die.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(11)
        .with_tpm_rate(6000)
        .with_mem_rate(6000)
        .with_timer_rate(6000)
        .with_fatal_ratio(0)
}

fn batch() -> Vec<ConcurrentJob> {
    JOBS.iter()
        .map(|&(n, quantum)| {
            ConcurrentJob::new(
                Box::new(vm_factoring(n, quantum, PersistMode::InRegion)),
                b"",
            )
        })
        .collect()
}

/// Clears the worker-assignment field for cross-worker-count
/// comparisons.
fn normalize(mut sessions: Vec<SessionResult>) -> Vec<SessionResult> {
    for s in &mut sessions {
        if let SessionResult::Quoted { result, .. } = s {
            result.cpu = CpuId(0);
        }
    }
    sessions
}

/// The crash-free reference: sessions plus the trace-event count that
/// bounds the cut sweep.
fn reference() -> (Vec<SessionResult>, u64) {
    let mut pool = engine(WORKERS);
    pool.set_fault_plan(Some(fault_plan()));
    let out = pool
        .run(
            batch(),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .expect("reference batch runs");
    assert_eq!(out.quoted(), JOBS.len(), "transient-only plan must quote");
    let sea = pool.into_inner();
    let total = sea.platform().machine().trace().recorded();
    assert!(total > 0, "the plan must inject something to cut against");
    (out.sessions, total)
}

/// Runs the durable batch on the given executor with the cord yanked
/// after `cut` trace events; sessions — outputs, reports, and quotes —
/// must be byte-identical to the crash-free run.
fn check_cut(
    workers: usize,
    executor: Executor,
    cut: u64,
    reference: &[SessionResult],
) -> (Vec<SessionResult>, u32) {
    let mut pool = engine(workers);
    pool.set_fault_plan(Some(fault_plan()));
    let d = pool
        .run(
            batch(),
            &BatchPolicy::plain()
                .with_executor(executor)
                .with_retry(RetryPolicy::default())
                .with_durability(ResetPlan::reset_free().with_cut_after_events(cut)),
        )
        .unwrap_or_else(|e| panic!("{executor:?}/{workers}w cut {cut}: batch aborted: {e}"));
    assert_eq!(
        normalize(d.sessions.clone()),
        normalize(reference.to_vec()),
        "{executor:?}/{workers}w cut {cut}: recovered sessions diverged"
    );
    if d.resets > 0 {
        assert_eq!(d.resets, 1, "{executor:?}/{workers}w cut {cut}");
        assert_eq!(
            d.committed.len() + d.relaunched.len(),
            JOBS.len(),
            "{executor:?}/{workers}w cut {cut}: recovery ledger imbalance"
        );
    }
    // Nothing leaks: every sePCR is Free and no page stays protected.
    let sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(
        tpm.sepcrs().free_count(),
        tpm.sepcrs().count(),
        "{executor:?}/{workers}w cut {cut}: leaked an Exclusive sePCR"
    );
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!(
        (cpus_pages, none_pages),
        (0, 0),
        "{executor:?}/{workers}w cut {cut}: leaked protected pages"
    );
    (d.sessions, d.resets)
}

/// The tentpole property: cut at **every** trace-event boundary of the
/// reference batch (plus one past the end) and recover byte-identical
/// VM sessions every time.
#[test]
fn vm_crash_sweep_every_event_boundary_recovers() {
    let (reference, total) = reference();
    for cut in 0..=(total + 1) {
        let (_, resets) = check_cut(WORKERS, Executor::ThreadPool, cut, &reference);
        if cut <= total {
            assert_eq!(resets, 1, "cut {cut} of {total}: no reset fired");
        } else {
            assert_eq!(resets, 0, "cut {cut} of {total}: phantom reset");
        }
    }
}

/// The same recovery is worker-count- and executor-invariant: a cut
/// mid-interpretation replays to the same bytes whether one thread, four
/// threads, or the event queue drives the batch.
#[test]
fn vm_crash_recovery_is_worker_and_executor_invariant() {
    let (reference, total) = reference();
    let cuts = [0, total / 3, total / 2, 2 * total / 3, total];
    for cut in cuts {
        let mut outcomes = Vec::new();
        for workers in [1, WORKERS] {
            for executor in [Executor::ThreadPool, Executor::DiscreteEvent] {
                let (sessions, resets) = check_cut(workers, executor, cut, &reference);
                assert_eq!(resets, 1, "{executor:?}/{workers}w cut {cut}");
                outcomes.push(normalize(sessions));
            }
        }
        for other in &outcomes[1..] {
            assert_eq!(
                outcomes[0], *other,
                "cut {cut}: recovery diverged across workers/executors"
            );
        }
    }
}
