//! Property-based tests of the hardware and protocol invariants: the
//! memory controller's access-table state machine, the page allocator,
//! PCR chain algebra, and the sePCR life cycle, all driven by random
//! operation sequences decoded from the in-repo harness's tapes.

mod common;

use common::{check, prop_assert, prop_assert_eq, prop_assert_ne, Tape};
use minimal_tcb::crypto::Sha1;
use minimal_tcb::hw::{
    AccessKind, CpuId, MemoryController, PageAccess, PageIndex, PageRange, Requester,
};
use minimal_tcb::os::PageAllocator;
use minimal_tcb::tpm::{PcrBank, PcrIndex, PcrValue, SePcrBank, SePcrState};

const ARENA_PAGES: u32 = 64;

/// Case count for the hardware state-machine properties (matches the
/// original `ProptestConfig::with_cases(128)`).
const CASES: usize = 128;

/// Case count for the TPM-level properties that instantiate RSA keypairs
/// per case (original: 12).
const TPM_CASES: usize = 12;

/// Random operations against the memory controller.
#[derive(Debug, Clone)]
enum McOp {
    Protect { start: u32, count: u32, cpu: u16 },
    Suspend { start: u32, count: u32, cpu: u16 },
    Resume { start: u32, count: u32, cpu: u16 },
    Release { start: u32, count: u32 },
}

fn mc_op(t: &mut Tape) -> McOp {
    let start = t.range(0, ARENA_PAGES as usize) as u32;
    let count = t.range(1, 8) as u32;
    let cpu = t.range(0, 4) as u16;
    match t.range(0, 4) {
        0 => McOp::Protect { start, count, cpu },
        1 => McOp::Suspend { start, count, cpu },
        2 => McOp::Resume { start, count, cpu },
        _ => McOp::Release { start, count },
    }
}

#[test]
fn access_table_transitions_are_all_or_nothing() {
    check("access_table_transitions_are_all_or_nothing", CASES, |t| {
        let ops = t.vec(0, 40, mc_op);
        let mut mc = MemoryController::new(ARENA_PAGES);
        // Shadow model: what each page's state should be.
        let mut shadow = vec![PageAccess::All; ARENA_PAGES as usize];

        for op in ops {
            let apply = |shadow: &mut Vec<PageAccess>, range: PageRange, to: PageAccess| {
                for p in range.iter() {
                    shadow[p.0 as usize] = to;
                }
            };
            match op {
                McOp::Protect { start, count, cpu } => {
                    let range = PageRange::new(PageIndex(start), count.min(ARENA_PAGES - start));
                    if range.count == 0 {
                        continue;
                    }
                    let ok = range
                        .iter()
                        .all(|p| shadow[p.0 as usize] == PageAccess::All);
                    let result = mc.protect_for_cpu(range, CpuId(cpu));
                    prop_assert_eq!(result.is_ok(), ok);
                    if ok {
                        apply(&mut shadow, range, PageAccess::cpu(CpuId(cpu)));
                    }
                }
                McOp::Suspend { start, count, cpu } => {
                    let range = PageRange::new(PageIndex(start), count.min(ARENA_PAGES - start));
                    if range.count == 0 {
                        continue;
                    }
                    let ok = range
                        .iter()
                        .all(|p| shadow[p.0 as usize] == PageAccess::cpu(CpuId(cpu)));
                    let result = mc.suspend_pages(range, CpuId(cpu));
                    prop_assert_eq!(result.is_ok(), ok);
                    if ok {
                        apply(&mut shadow, range, PageAccess::None);
                    }
                }
                McOp::Resume { start, count, cpu } => {
                    let range = PageRange::new(PageIndex(start), count.min(ARENA_PAGES - start));
                    if range.count == 0 {
                        continue;
                    }
                    let ok = range
                        .iter()
                        .all(|p| shadow[p.0 as usize] == PageAccess::None);
                    let result = mc.resume_pages(range, CpuId(cpu));
                    prop_assert_eq!(result.is_ok(), ok);
                    if ok {
                        apply(&mut shadow, range, PageAccess::cpu(CpuId(cpu)));
                    }
                }
                McOp::Release { start, count } => {
                    let range = PageRange::new(PageIndex(start), count.min(ARENA_PAGES - start));
                    if range.count == 0 {
                        continue;
                    }
                    prop_assert!(mc.release_pages(range).is_ok());
                    apply(&mut shadow, range, PageAccess::All);
                }
            }
            // The real table always equals the shadow model, and access
            // checks agree with it.
            for p in 0..ARENA_PAGES {
                let page = PageIndex(p);
                prop_assert_eq!(mc.access(page), shadow[p as usize]);
                let cpu0_ok = mc
                    .check(Requester::Cpu(CpuId(0)), AccessKind::Read, page)
                    .is_ok();
                let expected = match shadow[p as usize] {
                    PageAccess::All => true,
                    PageAccess::Cpus(owners) => owners.contains(CpuId(0)),
                    PageAccess::None => false,
                };
                prop_assert_eq!(cpu0_ok, expected);
            }
        }
        Ok(())
    });
}

#[test]
fn allocator_never_double_allocates() {
    check("allocator_never_double_allocates", CASES, |t| {
        let requests = t.vec(1, 20, |t| t.range(1, 10) as u32);
        let free_mask = t.vec(1, 20, Tape::bool);
        let mut alloc = PageAllocator::new(PageRange::new(PageIndex(100), ARENA_PAGES));
        let mut live: Vec<PageRange> = Vec::new();
        for (i, &req) in requests.iter().enumerate() {
            if let Ok(r) = alloc.alloc(req) {
                // Disjoint from all live allocations.
                for other in &live {
                    prop_assert!(!r.overlaps(other), "{} overlaps {}", r, other);
                }
                live.push(r);
            }
            // Randomly free one.
            if free_mask.get(i).copied().unwrap_or(false) && !live.is_empty() {
                let r = live.swap_remove(i % live.len());
                prop_assert!(alloc.free(r).is_ok());
            }
            // Conservation: live + free == arena.
            let live_pages: u32 = live.iter().map(|r| r.count).sum();
            prop_assert_eq!(live_pages + alloc.free_pages(), ARENA_PAGES);
        }
        // Freeing everything restores a fully coalesced arena.
        for r in live.drain(..) {
            alloc.free(r).unwrap();
        }
        prop_assert_eq!(alloc.largest_free_run(), ARENA_PAGES);
        Ok(())
    });
}

#[test]
fn pcr_chain_is_injective_on_event_sequences() {
    check("pcr_chain_is_injective_on_event_sequences", CASES, |t| {
        let seq_a = t.vec(0, 6, |t| t.bytes(0, 16));
        let seq_b = t.vec(0, 6, |t| t.bytes(0, 16));
        // Different event sequences yield different PCR values (no
        // collisions observed; order and multiplicity are encoded).
        let chain = |events: &[Vec<u8>]| {
            let mut bank = PcrBank::new();
            bank.dynamic_reset();
            for e in events {
                bank.extend(PcrIndex(17), &Sha1::digest(e)).unwrap();
            }
            bank.read(PcrIndex(17)).unwrap()
        };
        if seq_a == seq_b {
            prop_assert_eq!(chain(&seq_a), chain(&seq_b));
        } else {
            prop_assert_ne!(chain(&seq_a), chain(&seq_b));
        }
        Ok(())
    });
}

#[test]
fn sepcr_bank_conserves_slots() {
    check("sepcr_bank_conserves_slots", CASES, |t| {
        const SLOTS: u16 = 4;
        let ops = t.vec(0, 60, |t| t.range(0, 5) as u8);
        let mut bank = SePcrBank::new(SLOTS);
        let mut live: Vec<minimal_tcb::tpm::SePcrHandle> = Vec::new();
        let mut quoted: Vec<minimal_tcb::tpm::SePcrHandle> = Vec::new();

        for (i, op) in ops.into_iter().enumerate() {
            match op {
                // Allocate
                0 => {
                    let m = Sha1::digest(&i.to_le_bytes());
                    match bank.allocate(&m, CpuId(0)) {
                        Ok(h) => live.push(h),
                        Err(_) => prop_assert_eq!(bank.free_count(), 0),
                    }
                }
                // Release to quote
                1 => {
                    if let Some(h) = live.pop() {
                        bank.release_to_quote(h, CpuId(0)).unwrap();
                        quoted.push(h);
                    }
                }
                // Free from quote
                2 => {
                    if let Some(h) = quoted.pop() {
                        bank.free(h).unwrap();
                    }
                }
                // SKILL a live one
                3 => {
                    if let Some(h) = live.pop() {
                        bank.skill(h).unwrap();
                    }
                }
                // Extend a live one
                _ => {
                    if let Some(&h) = live.last() {
                        bank.extend(h, CpuId(0), &Sha1::digest(b"ev")).unwrap();
                    }
                }
            }
            // Conservation: free + live(Exclusive) + quoted(Quote) == SLOTS.
            prop_assert_eq!(
                bank.free_count() as usize + live.len() + quoted.len(),
                SLOTS as usize
            );
            for &h in &live {
                prop_assert_eq!(bank.state(h).unwrap(), SePcrState::Exclusive);
            }
            for &h in &quoted {
                prop_assert_eq!(bank.state(h).unwrap(), SePcrState::Quote);
            }
        }
        Ok(())
    });
}

#[test]
fn pcr_values_distinguish_boot_states() {
    check("pcr_values_distinguish_boot_states", CASES, |t| {
        let m = t.bytes(1, 64);
        // No single extend from the reboot state can reach the value a
        // genuine launch produces, for any measurement.
        let digest = Sha1::digest(&m);
        let from_boot = PcrValue::MINUS_ONE.extended(&digest);
        let from_launch = PcrValue::ZERO.extended(&digest);
        prop_assert_ne!(from_boot, from_launch);
        Ok(())
    });
}

#[test]
fn enhanced_sea_survives_random_scheduling() {
    check("enhanced_sea_survives_random_scheduling", TPM_CASES, |t| {
        use minimal_tcb::core::{EnhancedSea, FnPal, PalId, SecurePlatform};
        use minimal_tcb::hw::Platform;
        use minimal_tcb::tpm::KeyStrength;

        let ops = t.vec(0, 60, |t| (t.range(0, 6) as u8, t.range(0, 4) as u16));
        let yields: Vec<bool> = (0..8).map(|_| t.bool()).collect();

        let mut sea = EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(4),
            KeyStrength::Demo512,
            b"fuzz",
        ))
        .unwrap();

        // A pool of PALs whose behaviour (yield vs exit per step) is
        // tape-driven.
        let mut pals: Vec<_> = (0..4)
            .map(|i| {
                let pattern = yields.clone();
                let mut step = 0usize;
                FnPal::new(&format!("fuzz-{i}"), move |_| {
                    let y = pattern.get(step).copied().unwrap_or(false);
                    step += 1;
                    if y {
                        Ok(minimal_tcb::core::PalOutcome::Yield)
                    } else {
                        Ok(minimal_tcb::core::PalOutcome::Exit(vec![i as u8]))
                    }
                })
            })
            .collect();
        let mut ids: Vec<Option<PalId>> = vec![None; 4];

        for (op, arg) in ops {
            let slot = (arg % 4) as usize;
            let cpu = CpuId(arg % 4);
            // Drive a random operation; every outcome must be a typed
            // Ok/Err — never a panic, never a broken invariant.
            match op {
                0 => {
                    if ids[slot].is_none() {
                        if let Ok(id) = sea.slaunch(&mut pals[slot], b"", cpu, None) {
                            ids[slot] = Some(id);
                        }
                    }
                }
                1 => {
                    if let Some(id) = ids[slot] {
                        let _ = sea.step(&mut pals[slot], id);
                    }
                }
                2 => {
                    if let Some(id) = ids[slot] {
                        let _ = sea.resume(id, cpu);
                    }
                }
                3 => {
                    if let Some(id) = ids[slot] {
                        let _ = sea.skill(id);
                    }
                }
                4 => {
                    if let Some(id) = ids[slot] {
                        let _ = sea.join(id, cpu);
                    }
                }
                _ => {
                    if let Some(id) = ids[slot] {
                        let _ = sea.quote_and_free(id, b"fuzz-nonce");
                    }
                }
            }
            // Invariant: no page is ever left in NONE unless some live
            // PAL is suspended; protected page count is bounded by the
            // PALs' combined regions.
            let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
            let mut max_protected = 0usize;
            for id in ids.iter().flatten() {
                if let Ok(secb) = sea.secb(*id) {
                    max_protected += secb.pages().count as usize;
                }
            }
            prop_assert!(cpus_pages + none_pages <= max_protected);
        }
        Ok(())
    });
}

#[test]
fn seal_unseal_policy_is_exact() {
    check("seal_unseal_policy_is_exact", TPM_CASES, |t| {
        // TPM policy invariant: unseal succeeds iff every selected PCR
        // still holds its seal-time value.
        use minimal_tcb::hw::TpmKind;
        use minimal_tcb::tpm::{KeyStrength, Tpm};

        let data = t.bytes(0, 200);
        let selection_raw = t.vec(1, 4, |t| t.range(0, 24) as u8);
        let perturb = t.range(0, 24) as u8;
        let do_perturb = t.bool();

        let mut selection: Vec<PcrIndex> = selection_raw.iter().map(|&i| PcrIndex(i)).collect();
        selection.dedup();
        let mut tpm = Tpm::new(TpmKind::Infineon, KeyStrength::Demo512, b"prop-seal");
        let blob = tpm.seal(&data, &selection).unwrap().value;

        let selected = selection.iter().any(|p| p.0 == perturb);
        if do_perturb {
            tpm.extend(PcrIndex(perturb), &Sha1::digest(b"perturbation"))
                .unwrap();
        }
        let result = tpm.unseal(&blob);
        if do_perturb && selected {
            prop_assert!(result.is_err(), "policy must bind selected PCR {}", perturb);
        } else {
            prop_assert_eq!(result.unwrap().value, data);
        }
        Ok(())
    });
}

#[test]
fn blob_and_quote_wire_formats_roundtrip() {
    check("blob_and_quote_wire_formats_roundtrip", TPM_CASES, |t| {
        use minimal_tcb::hw::TpmKind;
        use minimal_tcb::tpm::{KeyStrength, Quote, SealedBlob, Tpm};
        let data = t.bytes(0, 100);
        let nonce = t.bytes(0, 40);
        let mut tpm = Tpm::new(TpmKind::Broadcom, KeyStrength::Demo512, b"prop-wire");
        let blob = tpm.seal(&data, &[PcrIndex(17)]).unwrap().value;
        let restored = SealedBlob::from_bytes(&blob.to_bytes()).unwrap();
        prop_assert_eq!(&restored, &blob);
        prop_assert_eq!(tpm.unseal(&restored).unwrap().value, data);

        let wire = tpm
            .quote(&nonce, &[PcrIndex(17), PcrIndex(0)])
            .unwrap()
            .value;
        let received = Quote::from_bytes(wire.as_bytes()).unwrap();
        prop_assert_eq!(&received.to_wire(), &wire);
        prop_assert!(received.verify_signature(tpm.aik_public()));
        Ok(())
    });
}

// ---------------------------------------------------------------------
// Discrete-event executor invariants
// ---------------------------------------------------------------------

/// The event queue's published contract: events fire in virtual-time
/// order, equal times resolve by ascending event id, and exact
/// `(time, id)` ties resolve in scheduling (FIFO) order. The shadow
/// model is a stable sort on `(time, id)`, which is that contract by
/// construction.
#[test]
fn event_queue_equal_timestamp_events_resolve_in_tie_break_order() {
    use minimal_tcb::hw::{EventQueue, SimTime};
    check(
        "event_queue_equal_timestamp_events_resolve_in_tie_break_order",
        CASES,
        |t| {
            // Tiny time/id domains force heavy collisions, so the
            // second and third tie-break rules carry real weight.
            let entries = t.vec(0, 64, |t| {
                let at = SimTime::from_ns(t.range(0, 8) as u64);
                let id = t.range(0, 6) as u64;
                (at, id)
            });
            let mut queue: EventQueue<usize> = EventQueue::new();
            let mut shadow: Vec<(SimTime, u64, usize)> = Vec::new();
            for (seq, &(at, id)) in entries.iter().enumerate() {
                queue.schedule(at, id, seq);
                shadow.push((at, id, seq));
            }
            shadow.sort_by_key(|&(at, id, _)| (at, id)); // stable: FIFO at full ties
            prop_assert_eq!(queue.len(), shadow.len());
            for &(at, id, seq) in &shadow {
                let event = queue.pop().ok_or("queue ran dry early")?;
                prop_assert_eq!(event.at, at);
                prop_assert_eq!(event.id, id);
                prop_assert_eq!(event.payload, seq);
                // Popping advances virtual now monotonically.
                prop_assert_eq!(queue.now(), at);
            }
            prop_assert!(queue.pop().is_none());
            Ok(())
        },
    );
}

/// A durable faulted batch on 256 virtual CPUs is invariant to
/// seed-preserving permutations of job submission order: the engine
/// sorts pending work by job index before each epoch, so the whole
/// outcome — sessions, quotes, ledger, busy times — is a pure function
/// of the job *set*, never of the order `run_indexed` receives it in.
#[test]
fn engine_outcome_invariant_to_submission_order_on_256_virtual_cpus() {
    use minimal_tcb::core::{
        BatchOutcome, BatchPolicy, ConcurrentJob, Executor, FnPal, PalOutcome, RetryPolicy,
        SecurePlatform, SessionEngine, Slaunch,
    };
    use minimal_tcb::hw::{FaultPlan, Platform, ResetPlan, SimDuration, RATE_DENOM};
    use minimal_tcb::tpm::KeyStrength;

    const PERM_JOBS: usize = 24;
    const PERM_CPUS: usize = 256;

    fn jobs() -> Vec<(usize, ConcurrentJob)> {
        (0..PERM_JOBS)
            .map(|i| {
                let job = ConcurrentJob::new(
                    Box::new(FnPal::new(&format!("perm-{i}"), move |ctx| {
                        ctx.work(SimDuration::from_us(25 * (1 + (i as u64 % 5))));
                        let done = ctx.state().first().copied().unwrap_or(0) + 1;
                        ctx.set_state(vec![done]);
                        if done == 2 {
                            Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                        } else {
                            Ok(PalOutcome::Yield)
                        }
                    })),
                    b"",
                );
                (i, job)
            })
            .collect()
    }

    fn run(order: &[usize]) -> BatchOutcome {
        let platform = SecurePlatform::new(
            Platform::recommended(PERM_CPUS as u16),
            KeyStrength::Demo512,
            b"perm",
        );
        let mut pool =
            SessionEngine::<Slaunch>::new(platform, PERM_CPUS).expect("pool fits platform");
        pool.set_executor(Executor::DiscreteEvent);
        pool.set_fault_plan(Some(
            FaultPlan::new(0x9E12)
                .with_tpm_rate(8000)
                .with_mem_rate(3000)
                .with_timer_rate(3000)
                .with_fatal_ratio(0),
        ));
        let mut by_index = jobs();
        let mut permuted = Vec::with_capacity(PERM_JOBS);
        for &i in order.iter().rev() {
            permuted.push(
                by_index.swap_remove(by_index.iter().position(|(k, _)| *k == i).expect("index")),
            );
        }
        pool.run_indexed(
            permuted,
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(
                    ResetPlan::new(0x9E12)
                        .with_reset_rate(RATE_DENOM / 8)
                        .with_max_resets(1),
                ),
        )
        .expect("permuted batch runs")
    }

    let identity: Vec<usize> = (0..PERM_JOBS).collect();
    let reference = run(&identity);
    assert_eq!(reference.sessions.len(), PERM_JOBS);
    check(
        "engine_outcome_invariant_to_submission_order_on_256_virtual_cpus",
        8,
        |t| {
            let mut order: Vec<usize> = (0..PERM_JOBS).collect();
            for i in (1..PERM_JOBS).rev() {
                let j = t.range(0, i + 1);
                order.swap(i, j);
            }
            let out = run(&order);
            prop_assert_eq!(&out, &reference);
            Ok(())
        },
    );
}
