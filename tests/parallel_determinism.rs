//! Determinism regression tests for the concurrent session engine.
//!
//! The contract under test: running the paper's experiments — and raw
//! PAL batches — across a worker pool produces **byte-identical**
//! results to running them serially, at any worker count. Costs are
//! intrinsic to each job (the engine pins the TPM to nominal timing),
//! assignment is static, and results are collected in job-index order,
//! so thread interleaving must never leak into an output.

use sea_bench::driver::{run_suite_parallel, run_suite_serial, SuiteConfig};
use sea_core::{
    BatchPolicy, ConcurrentJob, FnPal, PalOutcome, RetryPolicy, SecurePlatform, SessionEngine,
    SessionResult, Slaunch,
};
use sea_hw::{CpuId, FaultPlan, Platform, SimDuration};
use sea_tpm::{KeyStrength, PcrValue, SePcrState, SharedSePcrBank};

// ---------------------------------------------------------------------
// Experiment suite: serial vs 4-worker parallel, byte for byte
// ---------------------------------------------------------------------

#[test]
fn suite_serial_and_parallel_are_byte_identical() {
    let cfg = SuiteConfig::smoke();
    let serial = run_suite_serial(&cfg);
    let parallel = run_suite_parallel(&cfg, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name);
        assert_eq!(
            s.rendered.as_bytes(),
            p.rendered.as_bytes(),
            "{} diverged between serial and parallel runs",
            s.name
        );
    }
    // The two ISSUE-mandated artifacts are in the suite and non-trivial.
    let table1 = serial.iter().find(|a| a.name == "Table 1").unwrap();
    let figure2 = serial.iter().find(|a| a.name == "Figure 2").unwrap();
    assert!(table1.rendered.contains("177.52"));
    assert!(figure2.rendered.contains("PAL Use"));
}

// ---------------------------------------------------------------------
// sePCR bank: 16 threads of Free→Exclusive→Quote→Free churn
// ---------------------------------------------------------------------

#[test]
fn sepcr_bank_survives_sixteen_thread_contention() {
    const THREADS: u16 = 16;
    const SLOTS: u16 = 8;
    const ROUNDS: usize = 200;

    let bank = SharedSePcrBank::new(SLOTS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let bank = &bank;
            s.spawn(move || {
                let me = CpuId(t);
                let m1 = sea_crypto::Sha1::digest(&t.to_le_bytes());
                let m2 = sea_crypto::Sha1::digest(b"second extend");
                for round in 0..ROUNDS {
                    let Ok(h) = bank.allocate(&m1, me) else {
                        // Bank full — legitimate under contention.
                        continue;
                    };
                    // While we hold the slot Exclusive, no interleaving
                    // may tear its owner or its measurement chain.
                    assert_eq!(bank.state(h).unwrap(), SePcrState::Exclusive);
                    assert_eq!(bank.owner(h).unwrap(), Some(me));
                    let expect1 = PcrValue::ZERO.extended(&m1);
                    assert_eq!(bank.read_exclusive(h, me).unwrap(), expect1);
                    let got = bank.extend(h, me, &m2).unwrap();
                    assert_eq!(got, expect1.extended(&m2));
                    if round % 3 == 0 {
                        // SKILL path: slot goes straight back to Free.
                        bank.skill(h).unwrap();
                    } else {
                        // SFREE path: Exclusive → Quote → Free.
                        bank.release_to_quote(h, me).unwrap();
                        assert_eq!(bank.read_for_quote(h).unwrap(), got);
                        bank.free(h).unwrap();
                    }
                }
            });
        }
    });
    // Conservation: every slot came back, none torn mid-transition.
    assert_eq!(bank.free_count(), SLOTS);
}

// ---------------------------------------------------------------------
// Concurrent engine: 16 workers vs 1 worker, identical batch results
// ---------------------------------------------------------------------

fn batch(n: usize) -> Vec<ConcurrentJob> {
    (0..n)
        .map(|i| {
            let work = SimDuration::from_us(10 * (1 + (i as u64 % 5)));
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("det-{i}"), move |ctx| {
                    ctx.work(work);
                    Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                })),
                b"",
            )
        })
        .collect()
}

fn run(workers: usize, jobs: usize) -> Vec<(Vec<u8>, SimDuration)> {
    let platform = SecurePlatform::new(
        Platform::recommended(16),
        KeyStrength::Demo512,
        b"determinism",
    );
    let mut sea = SessionEngine::<Slaunch>::new(platform, workers).expect("pool fits");
    let out = sea
        .run(batch(jobs), &BatchPolicy::plain())
        .expect("batch runs");
    out.sessions
        .into_iter()
        .map(|s| match s {
            SessionResult::Quoted { result, .. } => {
                (result.output, result.report.total() + result.quote_cost)
            }
            other => panic!("plain batch must quote every session, got {other:?}"),
        })
        .collect()
}

#[test]
fn sixteen_worker_batch_matches_serial_batch() {
    let serial = run(1, 32);
    let parallel = run(16, 32);
    assert_eq!(serial, parallel);
}

// ---------------------------------------------------------------------
// Recovery layer: serial vs parallel under the same fault tape
// ---------------------------------------------------------------------

fn run_recovered(workers: usize, jobs: usize, plan: FaultPlan) -> Vec<SessionResult> {
    let platform = SecurePlatform::new(
        Platform::recommended(16),
        KeyStrength::Demo512,
        b"determinism",
    );
    let mut sea = SessionEngine::<Slaunch>::new(platform, workers).expect("pool fits");
    sea.set_fault_plan(Some(plan));
    let out = sea
        .run(
            batch(jobs),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .expect("batch runs");
    // Which CPU a job landed on is a function of the worker count, not
    // of the recovery outcome — normalize it before comparing.
    out.sessions
        .into_iter()
        .map(|mut s| {
            if let SessionResult::Quoted { result, .. } = &mut s {
                result.cpu = CpuId(0);
            }
            s
        })
        .collect()
}

/// Satellite: the differential test. Fault decisions are keyed by the
/// job's batch index and a per-session roll counter — never by thread
/// interleaving — so a serial run and a 4-worker run of the same batch
/// under the same fault tape must retry, degrade, and kill *the same
/// sessions with the same outcomes*.
#[test]
fn recovery_outcomes_identical_serial_vs_parallel_under_same_fault_tape() {
    for (seed, tpm_rate, fatal_ratio) in [
        (3, 5000, 0),
        (9, 9000, sea_hw::RATE_DENOM / 4),
        (21, 15_000, sea_hw::RATE_DENOM),
    ] {
        let plan = || {
            FaultPlan::new(seed)
                .with_tpm_rate(tpm_rate)
                .with_mem_rate(3000)
                .with_timer_rate(3000)
                .with_fatal_ratio(fatal_ratio)
        };
        let serial = run_recovered(1, 16, plan());
        let parallel = run_recovered(4, 16, plan());
        assert_eq!(
            serial, parallel,
            "recovery outcomes diverged for seed {seed}"
        );
    }
}
