//! The paper's three security properties (§3.1), tested against the
//! threat model's ring-0 + DMA adversary (§3.2): Isolation, Secure
//! Initialization, External Verification.

use minimal_tcb::core::{
    EnhancedSea, FnPal, LegacySea, PalLogic, PalOutcome, SeaError, SecurePlatform, Verifier,
    VerifyError,
};
use minimal_tcb::crypto::Sha1;
use minimal_tcb::hw::{
    CpuId, CpuVendor, DeviceId, HwError, Machine, PageRange, Platform, Requester,
};
use minimal_tcb::os::{Adversary, AttackOutcome};
use minimal_tcb::tpm::{KeyStrength, Locality, PcrIndex, Quote, TpmError};

fn enhanced_with_nic(seed: &[u8]) -> EnhancedSea {
    let platform = Platform::recommended(2);
    let mut sp = SecurePlatform::new(platform.clone(), KeyStrength::Demo512, seed);
    *sp.machine_mut() = Machine::builder(platform).device("rogue NIC").build();
    EnhancedSea::new(sp).unwrap()
}

// ----------------------------------------------------------------
// Property 1: Isolation
// ----------------------------------------------------------------

#[test]
fn isolation_holds_through_entire_lifecycle() {
    let mut sea = enhanced_with_nic(b"iso");
    let adv = Adversary::new();
    let mut pal = FnPal::new("victim", |ctx| {
        if ctx.state().is_empty() {
            ctx.set_state(b"live secret".to_vec());
            Ok(PalOutcome::Yield)
        } else {
            Ok(PalOutcome::Exit(vec![]))
        }
    });
    let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();

    // Execute state.
    assert!(adv.read_pal_memory(&mut sea, id, CpuId(1)).was_blocked());
    assert!(adv
        .write_pal_memory(&mut sea, id, CpuId(1), b"x")
        .was_blocked());
    assert!(adv
        .dma_read_pal_memory(&mut sea, id, DeviceId(0))
        .was_blocked());
    assert!(adv.hijack_sepcr(&mut sea, id, CpuId(1)).was_blocked());

    // Suspend state: nothing — not even the former CPU — may touch it.
    sea.step(&mut pal, id).unwrap();
    for cpu in [CpuId(0), CpuId(1)] {
        assert!(adv.read_pal_memory(&mut sea, id, cpu).was_blocked());
    }
    assert!(adv
        .dma_read_pal_memory(&mut sea, id, DeviceId(0))
        .was_blocked());

    // Resumed on the other CPU: old CPU remains locked out.
    sea.resume(id, CpuId(1)).unwrap();
    assert!(adv.read_pal_memory(&mut sea, id, CpuId(0)).was_blocked());
    assert!(adv.double_resume(&mut sea, id, CpuId(0)).was_blocked());

    // Exit: pages public again but scrubbed of the secret.
    sea.step(&mut pal, id).unwrap();
    match adv.read_pal_memory(&mut sea, id, CpuId(0)) {
        AttackOutcome::Succeeded(bytes) => {
            let needle = b"live secret";
            assert!(!bytes.windows(needle.len()).any(|w| w == needle));
        }
        AttackOutcome::Blocked => panic!("released pages should be open"),
    }
}

#[test]
fn baseline_dev_blocks_dma_into_slb() {
    // Baseline isolation is DMA-only (the paper's point): program the
    // DEV over a region and check the device is excluded while CPUs are
    // not — the gap SLAUNCH's access-control table closes.
    let platform = Platform::hp_dc5750();
    let mut machine = Machine::builder(platform).device("rogue NIC").build();
    let slb = PageRange::new(minimal_tcb::hw::PageIndex(16), 16);
    machine.controller_mut().set_dev(slb, true).unwrap();
    assert!(matches!(
        machine.dma_read(DeviceId(0), slb.base_addr(), 64),
        Err(HwError::AccessDenied { .. })
    ));
    // Any CPU can still read: baseline hardware cannot stop a malicious
    // OS on another core, only DMA devices.
    assert!(machine
        .read(Requester::Cpu(CpuId(1)), slb.base_addr(), 64)
        .is_ok());
}

#[test]
fn concurrent_pals_cannot_read_each_other() {
    let mut sea = enhanced_with_nic(b"iso-pair");
    let mut a = FnPal::new("pal-a", |ctx| {
        ctx.set_state(b"alpha secret".to_vec());
        Ok(PalOutcome::Yield)
    });
    let mut b = FnPal::new("pal-b", |ctx| {
        ctx.set_state(b"bravo secret".to_vec());
        Ok(PalOutcome::Yield)
    });
    let ia = sea.slaunch(&mut a, b"", CpuId(0), None).unwrap();
    let ib = sea.slaunch(&mut b, b"", CpuId(1), None).unwrap();
    let ra = sea.secb(ia).unwrap().pages();
    let rb = sea.secb(ib).unwrap().pages();
    // Mutually untrusting PALs (Figure 4): each is fenced from the other.
    assert!(sea
        .platform()
        .machine()
        .read(Requester::Cpu(CpuId(1)), ra.base_addr(), 8)
        .is_err());
    assert!(sea
        .platform()
        .machine()
        .read(Requester::Cpu(CpuId(0)), rb.base_addr(), 8)
        .is_err());
    // And their sePCR chains are independent.
    assert_ne!(sea.secb(ia).unwrap().sepcr(), sea.secb(ib).unwrap().sepcr());
}

// ----------------------------------------------------------------
// Property 2: Secure Initialization
// ----------------------------------------------------------------

#[test]
fn software_cannot_reset_dynamic_pcrs() {
    let mut sp = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"init");
    let tpm = sp.tpm_mut().unwrap();
    // Ring-0 software addressing the TPM directly cannot open the hash
    // interface that resets PCR 17.
    assert_eq!(
        tpm.hash_start(Locality::Software).unwrap_err(),
        TpmError::LocalityDenied
    );
}

#[test]
fn forged_launch_chain_never_matches() {
    // The adversary extends the victim image's hash into PCR 17 from
    // software (legal) — but the chain starts from −1, not 0, so no
    // verifier accepts it. This is the crux of secure initialization.
    let mut sea = enhanced_with_nic(b"forge");
    let adv = Adversary::new();
    let (legit, forged) = adv.forge_measurement(&mut sea, b"victim image").unwrap();
    assert_ne!(legit, forged);
}

#[test]
fn resume_without_prior_measurement_impossible() {
    // The Measured Flag is honored only when pages are NONE, and pages
    // reach NONE only through a measured SLAUNCH followed by a suspend.
    // An OS-forged "resume" of an unlaunched PAL has no SECB in the
    // runtime and no protected pages, so there is nothing to resume.
    let mut sea = enhanced_with_nic(b"mf");
    let err = sea
        .resume(minimal_tcb::core::PalId(7), CpuId(0))
        .unwrap_err();
    assert!(matches!(err, SeaError::NoSuchPal(7)));
}

#[test]
fn skinit_measures_what_is_actually_in_memory() {
    // Secure initialization measures the *memory contents*, not the
    // OS's claims: corrupt the staged image and the measurement changes.
    let mut sea = LegacySea::new(SecurePlatform::new(
        Platform::hp_dc5750(),
        KeyStrength::Demo512,
        b"measure",
    ))
    .unwrap();
    let mut pal = FnPal::new("honest", |_| Ok(PalOutcome::Exit(vec![])));
    let image = pal.image();
    let r = sea.run_session(&mut pal, b"").unwrap();
    assert_eq!(
        r.launch.pal_pcr_value.unwrap(),
        SecurePlatform::expected_pal_chain(&image)
    );
}

// ----------------------------------------------------------------
// Property 3: External Verification
// ----------------------------------------------------------------

#[test]
fn verifier_rejects_all_forgery_classes() {
    let mut sea = LegacySea::new(SecurePlatform::new(
        Platform::hp_dc5750(),
        KeyStrength::Demo512,
        b"verify",
    ))
    .unwrap();
    let mut pal = FnPal::new("trusted", |_| Ok(PalOutcome::Exit(vec![])));
    let image = pal.image();
    sea.run_session(&mut pal, b"").unwrap();
    let quote = sea.quote(b"fresh-nonce").unwrap().value;
    let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());

    // Genuine quote accepted.
    assert_eq!(
        verifier.verify_legacy_quote(&quote, b"fresh-nonce", &image, CpuVendor::Amd, &[]),
        Ok(())
    );
    // Replay with stale nonce.
    assert_eq!(
        verifier.verify_legacy_quote(&quote, b"old-nonce", &image, CpuVendor::Amd, &[]),
        Err(VerifyError::NonceMismatch)
    );
    // Claiming a different PAL ran.
    assert_eq!(
        verifier.verify_legacy_quote(&quote, b"fresh-nonce", b"imposter", CpuVendor::Amd, &[]),
        Err(VerifyError::MeasurementMismatch)
    );
}

#[test]
fn skilled_pal_cannot_attest_as_healthy() {
    // Kill a PAL, then relaunch it and check its fresh quote is clean
    // while the in-flight identity of the killed instance is gone — a
    // killed PAL's sePCR was branded and freed, never quoted.
    let mut sea = enhanced_with_nic(b"skill");
    let mut pal = FnPal::new("flaky", |_| Ok(PalOutcome::Yield));
    let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
    sea.step(&mut pal, id).unwrap();
    sea.skill(id).unwrap();
    // No attestation path exists for the killed instance.
    assert!(sea.quote_and_free(id, b"n").is_err());
}

#[test]
fn quote_from_virtual_environment_fails_verification() {
    // The paper's external-verification requirement: a PAL executed "in
    // a malicious, e.g., virtual, environment" (§3.1) must be
    // distinguishable. Model: the attacker runs the PAL logic outside
    // any launch and quotes whatever PCR 17 happens to hold.
    let mut sp = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"vm");
    let image = FnPal::new("real-pal", |_| Ok(PalOutcome::Exit(vec![]))).image();
    // Attacker-extends PCR 17 from the post-boot value.
    let digest = Sha1::digest(&image);
    sp.tpm_mut().unwrap().extend(PcrIndex(17), &digest).unwrap();
    let quote = Quote::from_wire(
        &sp.tpm_mut()
            .unwrap()
            .quote(b"nonce", &[PcrIndex(17)])
            .unwrap()
            .value,
    )
    .unwrap();
    let verifier = Verifier::new(sp.tpm().unwrap().aik_public().clone());
    assert_eq!(
        verifier.verify_legacy_quote(&quote, b"nonce", &image, CpuVendor::Amd, &[]),
        Err(VerifyError::MeasurementMismatch)
    );
}

#[test]
fn sealed_blobs_opaque_to_the_os() {
    // The OS custodian holds sealed blobs; it learns nothing and cannot
    // tamper undetected.
    let mut sea = LegacySea::new(SecurePlatform::new(
        Platform::hp_dc5750(),
        KeyStrength::Demo512,
        b"blob",
    ))
    .unwrap();
    let secret = b"super secret value".to_vec();
    let mut holder = None;
    {
        let h = &mut holder;
        let s = secret.clone();
        let mut pal = FnPal::new("sealer", move |ctx| {
            *h = Some(ctx.seal(&s)?);
            Ok(PalOutcome::Exit(vec![]))
        });
        sea.run_session(&mut pal, b"").unwrap();
    }
    let blob = holder.unwrap();

    // Confidentiality: the plaintext is not in the blob.
    let serialized = format!("{blob:?}").into_bytes();
    assert!(!serialized
        .windows(secret.len())
        .any(|w| w == secret.as_slice()));

    // Binding: a different PAL replaying the blob is refused.
    let blob2 = blob.clone();
    let mut wrong_pal = FnPal::new("other", move |ctx| match ctx.unseal(&blob2) {
        Err(SeaError::Tpm(TpmError::WrongPcrState)) => Ok(PalOutcome::Exit(vec![1])),
        other => panic!("expected policy failure, got {other:?}"),
    });
    let r = sea.run_session(&mut wrong_pal, b"").unwrap();
    assert_eq!(r.output, Some(vec![1]));
}

#[test]
fn toctou_footnote3_load_time_attestation_limit() {
    // Footnote 3 of the paper: "If the code accepts input parameters and
    // contains a vulnerability, it may be possible to overwrite some of
    // the code after measurement and before execution completes. This is
    // a well-known time-of-check, time-of-use problem with load-time
    // attestation." Demonstrate it: a PAL with an input-handling bug
    // behaves attacker-controlled, yet its quote verifies — the
    // attestation speaks only to what was *loaded*.
    let mut sea = LegacySea::new(SecurePlatform::new(
        Platform::hp_dc5750(),
        KeyStrength::Demo512,
        b"toctou",
    ))
    .unwrap();
    // The "vulnerability": input longer than 8 bytes overwrites the
    // PAL's dispatch logic (simulated as a behavioural hijack).
    let mut vulnerable = FnPal::new("audited-but-buggy", |ctx| {
        if ctx.input().len() > 8 {
            // Attacker-controlled behaviour after the overflow.
            return Ok(PalOutcome::Exit(b"EXFILTRATED".to_vec()));
        }
        Ok(PalOutcome::Exit(b"normal".to_vec()))
    });
    let image = vulnerable.image();
    let r = sea
        .run_session(&mut vulnerable, b"AAAAAAAAAAAAAAAA")
        .unwrap();
    // Hijacked output...
    assert_eq!(r.output, Some(b"EXFILTRATED".to_vec()));
    // ...but the attestation still verifies: load-time measurement
    // cannot see it. The defense the paper points to is PAL smallness
    // ("the relatively small size of the PAL may facilitate ... formal
    // analysis", §3.2) — not the measurement mechanism.
    let quote = sea.quote(b"toctou-nonce").unwrap().value;
    let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
    assert_eq!(
        verifier.verify_legacy_quote(&quote, b"toctou-nonce", &image, CpuVendor::Amd, &[]),
        Ok(())
    );
    // A PAL that *measures its inputs* closes the gap: the verifier sees
    // exactly which input drove the run.
    let evil_input = b"AAAAAAAAAAAAAAAA".to_vec();
    let input_copy = evil_input.clone();
    let mut measuring = FnPal::new("input-measuring", move |ctx| {
        let digest = Sha1::digest(ctx.input());
        ctx.measure_input(&digest)?;
        if ctx.input().len() > 8 {
            return Ok(PalOutcome::Exit(b"EXFILTRATED".to_vec()));
        }
        Ok(PalOutcome::Exit(b"normal".to_vec()))
    });
    let m_image = measuring.image();
    sea.run_session(&mut measuring, &evil_input).unwrap();
    let quote = sea.quote(b"n2").unwrap().value;
    // Verifying against "ran with empty input" now FAILS...
    assert!(verifier
        .verify_legacy_quote(
            &quote,
            b"n2",
            &m_image,
            CpuVendor::Amd,
            &[Sha1::digest(b"")]
        )
        .is_err());
    // ...and succeeds only with the true (oversized) input visible.
    assert_eq!(
        verifier.verify_legacy_quote(
            &quote,
            b"n2",
            &m_image,
            CpuVendor::Amd,
            &[Sha1::digest(&input_copy)]
        ),
        Ok(())
    );
}

#[test]
fn tpm_lock_serializes_multi_cpu_access() {
    let mut sp = SecurePlatform::new(Platform::recommended(2), KeyStrength::Demo512, b"lock");
    let lock = sp.tpm_mut().unwrap().lock_mut();
    lock.acquire(CpuId(0)).unwrap();
    assert_eq!(
        lock.acquire(CpuId(1)).unwrap_err(),
        TpmError::LockHeld { holder: CpuId(0) }
    );
    lock.release(CpuId(0)).unwrap();
    lock.acquire(CpuId(1)).unwrap();
}
