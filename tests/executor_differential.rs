//! Differential oracle between the two execution backends.
//!
//! `SessionEngine` runs every batch path on either real OS threads
//! ([`Executor::ThreadPool`]) or virtual CPUs stepped by a
//! deterministic event queue ([`Executor::DiscreteEvent`]). The
//! engine's determinism contract says the backends are
//! interchangeable: per-job costs are intrinsic, fault rolls are a pure
//! function of `(plan, session key, operation order)`, quotes bind
//! sePCR values rather than slots, and per-CPU busy time folds through
//! the same atomic-max timeline. This suite replays each existing
//! integration scenario — fault chaos, crash-point cuts, observability
//! snapshots — on both backends and asserts the outputs are
//! **byte-identical**:
//!
//! * at equal worker counts (1, 4, and 64), the entire
//!   [`BatchOutcome`] for plain and fault-recovered batches, and the
//!   per-session results for durable batches (the committed/relaunched
//!   split of a mid-batch crash is the one thing host interleaving may
//!   legitimately move on the thread pool);
//! * serially, the **machine trace** too — with one CPU the event
//!   timeline degenerates to the serial schedule, so the discrete-event
//!   backend must reproduce the thread pool's trace byte for byte;
//! * recording-sink snapshots (spans, counters, histograms) across
//!   backends *and* worker counts;
//! * the acceptance scenario: a durable batch on 1024 virtual CPUs in
//!   one process, quotes byte-identical to the 4-worker thread-pool
//!   run, with the discrete-event schedule reproducible run to run
//!   down to the trace.

use sea_core::{
    BatchOutcome, BatchPolicy, ConcurrentJob, Executor, FnPal, PalOutcome, RetryPolicy,
    SecurePlatform, SessionEngine, SessionResult, Slaunch,
};
use sea_hw::{CpuId, FaultPlan, Obs, ObsSnapshot, Platform, ResetPlan, SimDuration, RATE_DENOM};
use sea_tpm::KeyStrength;

const JOBS: usize = 16;
const DIFF_SEED: u64 = 0xD1FF;

/// Worker counts the differential sweeps cover. 64 exceeds most hosts'
/// core counts — the thread pool still runs it (threads just share
/// cores), which is exactly the regime the event queue replaces.
const WORKER_COUNTS: [usize; 3] = [1, 4, 64];

fn engine(n_cpus: u16, workers: usize, executor: Executor) -> SessionEngine<Slaunch> {
    let platform = SecurePlatform::new(
        Platform::recommended(n_cpus),
        KeyStrength::Demo512,
        b"exec-diff",
    );
    let mut pool = SessionEngine::new(platform, workers).expect("pool fits platform");
    pool.set_executor(executor);
    pool
}

/// The chaos-style plan: hot transient faults plus a fatal fraction,
/// so retries, backoff, and kills are all on the differential surface.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(DIFF_SEED)
        .with_tpm_rate(9000)
        .with_mem_rate(3000)
        .with_timer_rate(3000)
        .with_fatal_ratio(RATE_DENOM / 8)
}

/// The crash-style plan: transient-only, so every session survives to
/// a commit and the cut decides its fate.
fn transient_plan() -> FaultPlan {
    FaultPlan::new(DIFF_SEED)
        .with_tpm_rate(6000)
        .with_mem_rate(6000)
        .with_timer_rate(6000)
        .with_fatal_ratio(0)
}

/// Restartable yield-twice jobs (step state in the PAL's region, so
/// relaunched sessions replay from step one).
fn batch() -> Vec<ConcurrentJob> {
    (0..JOBS)
        .map(|i| {
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("diff-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_us(40 * (1 + (i as u64 % 4))));
                    let done = ctx.state().first().copied().unwrap_or(0) + 1;
                    ctx.set_state(vec![done]);
                    if done == 3 {
                        Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            )
        })
        .collect()
}

/// Runs one configuration and returns the outcome plus the machine
/// trace dump.
fn run(
    n_cpus: u16,
    workers: usize,
    executor: Executor,
    faults: Option<FaultPlan>,
    policy: &BatchPolicy,
) -> (BatchOutcome, String) {
    let mut pool = engine(n_cpus, workers, executor);
    pool.set_fault_plan(faults);
    let out = pool.run(batch(), policy).expect("differential batch runs");
    let sea = pool.into_inner();
    let mut trace = String::new();
    for (t, e) in sea.platform().machine().trace().iter() {
        trace.push_str(&format!("{} {e:?}\n", t.as_ns()));
    }
    (out, trace)
}

/// Clears the worker-assignment field for cross-worker-count
/// comparisons.
fn normalize(mut sessions: Vec<SessionResult>) -> Vec<SessionResult> {
    for s in &mut sessions {
        if let SessionResult::Quoted { result, .. } = s {
            result.cpu = CpuId(0);
        }
    }
    sessions
}

/// Fault chaos on both backends: at every worker count the entire
/// outcome — sessions (same static CPU assignment), per-CPU busy time,
/// wall clock, tallies — is byte-identical.
#[test]
fn chaos_batch_agrees_across_executors_at_every_worker_count() {
    let policy = BatchPolicy::plain().with_retry(RetryPolicy::default());
    for workers in WORKER_COUNTS {
        let (threads, _) = run(
            64,
            workers,
            Executor::ThreadPool,
            Some(chaos_plan()),
            &policy,
        );
        let (des, _) = run(
            64,
            workers,
            Executor::DiscreteEvent,
            Some(chaos_plan()),
            &policy,
        );
        assert!(
            threads
                .sessions
                .iter()
                .any(|s| matches!(s, SessionResult::Quoted { retries, .. } if *retries > 0)),
            "chaos plan never bit at {workers} workers"
        );
        assert_eq!(
            threads, des,
            "chaos outcome diverged across executors at {workers} workers"
        );
    }
}

/// Plain fault-free batches agree the same way.
#[test]
fn plain_batch_agrees_across_executors_at_every_worker_count() {
    for workers in WORKER_COUNTS {
        let (threads, _) = run(
            64,
            workers,
            Executor::ThreadPool,
            None,
            &BatchPolicy::plain(),
        );
        let (des, _) = run(
            64,
            workers,
            Executor::DiscreteEvent,
            None,
            &BatchPolicy::plain(),
        );
        assert_eq!(
            threads, des,
            "plain outcome diverged across executors at {workers} workers"
        );
    }
}

/// Serially the timelines coincide exactly: the one-worker machine
/// trace — every TPM command, range protection, secure enter/leave,
/// with timestamps — is byte-identical across backends.
#[test]
fn serial_machine_trace_is_byte_identical_across_executors() {
    let policy = BatchPolicy::plain().with_retry(RetryPolicy::default());
    let (_, thread_trace) = run(4, 1, Executor::ThreadPool, Some(chaos_plan()), &policy);
    let (_, des_trace) = run(4, 1, Executor::DiscreteEvent, Some(chaos_plan()), &policy);
    assert!(!thread_trace.is_empty(), "serial batch must leave a trace");
    assert_eq!(
        thread_trace, des_trace,
        "serial machine trace diverged across executors"
    );
}

/// Crash-point cuts: yank the cord after a fixed number of trace
/// events under both backends. Serially the whole outcome and trace
/// must coincide; at higher worker counts the per-session results must
/// (which sessions had committed when the plug was pulled is the one
/// interleaving-dependent quantity on the thread pool).
#[test]
fn crash_point_cuts_agree_across_executors() {
    // Total event count of the crash-free run bounds the cut range.
    let recovering = BatchPolicy::plain().with_retry(RetryPolicy::default());
    let (_, reference_trace) = run(
        4,
        1,
        Executor::ThreadPool,
        Some(transient_plan()),
        &recovering,
    );
    let total = reference_trace.lines().count() as u64;
    assert!(total > 8, "reference run too quiet to cut against");

    for cut in [1, total / 3, total / 2, total - 1] {
        let durable = BatchPolicy::plain()
            .with_retry(RetryPolicy::default())
            .with_durability(ResetPlan::reset_free().with_cut_after_events(cut));
        let (t1, t1_trace) = run(4, 1, Executor::ThreadPool, Some(transient_plan()), &durable);
        let (d1, d1_trace) = run(
            4,
            1,
            Executor::DiscreteEvent,
            Some(transient_plan()),
            &durable,
        );
        assert_eq!(t1, d1, "serial cut {cut}: outcome diverged");
        assert_eq!(t1_trace, d1_trace, "serial cut {cut}: trace diverged");

        for workers in [4, 64] {
            let (tw, _) = run(
                64,
                workers,
                Executor::ThreadPool,
                Some(transient_plan()),
                &durable,
            );
            let (dw, _) = run(
                64,
                workers,
                Executor::DiscreteEvent,
                Some(transient_plan()),
                &durable,
            );
            assert_eq!(
                tw.sessions, dw.sessions,
                "cut {cut} at {workers} workers: sessions diverged"
            );
            assert_eq!(
                normalize(t1.sessions.clone()),
                normalize(tw.sessions),
                "cut {cut}: worker count leaked into session results"
            );
        }
    }
}

/// Observability snapshots — spans, counters, layer histograms — are
/// byte-identical across backends and worker counts for the recovered
/// chaos batch.
#[test]
fn observability_snapshots_agree_across_executors() {
    fn snapshot(workers: usize, executor: Executor) -> ObsSnapshot {
        let mut platform =
            SecurePlatform::new(Platform::recommended(8), KeyStrength::Demo512, b"exec-diff");
        let (obs, sink) = Obs::recording();
        platform.install_obs(obs);
        let mut pool = SessionEngine::<Slaunch>::new(platform, workers).expect("pool fits");
        pool.set_executor(executor);
        pool.set_fault_plan(Some(chaos_plan()));
        pool.run(
            batch(),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .expect("batch runs");
        sink.snapshot()
    }

    let reference = snapshot(1, Executor::ThreadPool);
    assert!(
        reference.counter("core.retries") > 0,
        "chaos plan never bit"
    );
    for workers in [1, 4, 8] {
        for executor in [Executor::ThreadPool, Executor::DiscreteEvent] {
            assert_eq!(
                reference,
                snapshot(workers, executor),
                "snapshot diverged at {workers} workers on {executor:?}"
            );
        }
    }
}

/// The discrete-event schedule is reproducible run to run even where
/// the thread pool's is not: at 64 virtual CPUs the full outcome *and*
/// the machine trace of a faulted durable batch come back byte-identical.
#[test]
fn des_schedule_is_deterministic_at_64_virtual_cpus() {
    let durable = BatchPolicy::plain()
        .with_retry(RetryPolicy::default())
        .with_durability(
            ResetPlan::new(DIFF_SEED)
                .with_reset_rate(RATE_DENOM / 4)
                .with_max_resets(2),
        );
    let (a, a_trace) = run(
        64,
        64,
        Executor::DiscreteEvent,
        Some(transient_plan()),
        &durable,
    );
    let (b, b_trace) = run(
        64,
        64,
        Executor::DiscreteEvent,
        Some(transient_plan()),
        &durable,
    );
    assert!(a.resets >= 1, "reset plan must pull the plug");
    assert_eq!(a, b, "discrete-event outcome not reproducible");
    assert_eq!(a_trace, b_trace, "discrete-event trace not reproducible");
}

/// Acceptance: one process models a 1024-virtual-CPU platform running
/// a durable faulted batch — far past any host's core count — and
/// every worker-count-invariant output (quotes byte for byte, outputs,
/// reports, retry counts) matches the 4-worker thread-pool run on the
/// same platform. The discrete-event replay itself is byte-identical
/// run to run, ledger and trace included.
#[test]
fn acceptance_durable_batch_on_1024_virtual_cpus() {
    let durable = BatchPolicy::plain()
        .with_retry(RetryPolicy::default())
        .with_durability(
            ResetPlan::new(DIFF_SEED)
                .with_reset_rate(RATE_DENOM / 4)
                .with_max_resets(2),
        );
    let (threads, _) = run(
        1024,
        4,
        Executor::ThreadPool,
        Some(transient_plan()),
        &durable,
    );
    let (des, des_trace) = run(
        1024,
        1024,
        Executor::DiscreteEvent,
        Some(transient_plan()),
        &durable,
    );
    assert_eq!(des.sessions.len(), JOBS);
    assert_eq!(des.quoted(), threads.quoted());
    assert_eq!(
        normalize(threads.sessions.clone()),
        normalize(des.sessions.clone()),
        "1024-vCPU results diverged from the thread pool's"
    );
    for (i, (t, d)) in threads.sessions.iter().zip(&des.sessions).enumerate() {
        if let (SessionResult::Quoted { quote: tq, .. }, SessionResult::Quoted { quote: dq, .. }) =
            (t, d)
        {
            assert_eq!(tq, dq, "session {i}: quote bytes diverged");
        }
    }
    // With 16 jobs on 1024 CPUs every session runs on its own virtual
    // CPU; the assignment stays `i % workers`.
    for (i, s) in des.sessions.iter().enumerate() {
        if let SessionResult::Quoted { result, .. } = s {
            assert_eq!(result.cpu, CpuId(i as u16), "session {i} on wrong vCPU");
        }
    }
    let (again, again_trace) = run(
        1024,
        1024,
        Executor::DiscreteEvent,
        Some(transient_plan()),
        &durable,
    );
    assert_eq!(des, again, "1024-vCPU ledger not reproducible");
    assert_eq!(des_trace, again_trace, "1024-vCPU trace not reproducible");
}
