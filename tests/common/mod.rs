//! A small, fully deterministic property-test harness: an xorshift64*
//! entropy source, a finite "tape" the properties draw structured inputs
//! from, and greedy tape shrinking on failure. It replaces `proptest`
//! so the test suite builds with zero crates.io dependencies.
//!
//! A property is a `Fn(&mut Tape) -> Result<(), String>`: it decodes its
//! inputs from the tape (an exhausted tape yields zeros, so every prefix
//! of a tape is itself a valid input) and returns `Err` with a message
//! when the property is violated. [`check`] runs the property over many
//! independently seeded tapes; on failure it greedily shrinks the tape —
//! truncating it, deleting blocks, and zeroing bytes, keeping any
//! mutation that still fails — and panics with the minimized counter-
//! example so the failure is small and reproducible.

// Compiled once per integration-test binary; not every binary uses
// every helper or macro, so "unused" lints are noise here.
#![allow(dead_code, unused_macros, unused_imports)]

/// xorshift64* — the deterministic entropy source behind every case.
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (a zero seed is remapped; xorshift has a
    /// fixed point at zero).
    pub fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A finite strip of entropy bytes a property decodes its inputs from.
///
/// Reads past the end return zero — shrinking may shorten the tape
/// arbitrarily and the property still sees well-formed (just simpler)
/// inputs.
pub struct Tape<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Tape<'a> {
    /// Wraps a byte strip.
    pub fn new(data: &'a [u8]) -> Self {
        Tape { data, pos: 0 }
    }

    /// Next raw byte (zero once the tape is exhausted).
    pub fn byte(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Next 32-bit word.
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes([self.byte(), self.byte(), self.byte(), self.byte()])
    }

    /// Next 64-bit word.
    pub fn u64(&mut self) -> u64 {
        (self.u32() as u64) << 32 | self.u32() as u64
    }

    /// A value in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + self.u32() as usize % (hi - lo)
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.byte() & 1 == 1
    }

    /// A byte vector whose length is drawn from `[lo, hi)`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let len = self.range(lo, hi);
        (0..len).map(|_| self.byte()).collect()
    }

    /// A vector of values decoded by `f`, with length in `[lo, hi)`.
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let len = self.range(lo, hi);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Bytes of fresh tape per case — enough for the largest properties
/// (512-byte payloads plus control words) to decode without running dry.
const TAPE_LEN: usize = 4096;

/// FNV-1a, used to fold the property name into the per-case seed so two
/// properties with the same case index still see unrelated tapes.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fill_tape(name: &str, case: usize) -> Vec<u8> {
    let mut rng = XorShift::new(fnv1a(name) ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    let mut tape = vec![0u8; TAPE_LEN];
    for chunk in tape.chunks_mut(8) {
        let w = rng.next_u64().to_le_bytes();
        chunk.copy_from_slice(&w[..chunk.len()]);
    }
    tape
}

/// Greedy shrinking: repeatedly truncate the tail, delete blocks, and
/// zero bytes, keeping every mutation under which the property still
/// fails, until a whole pass makes no progress.
fn shrink(tape: &mut Vec<u8>, prop: &dyn Fn(&mut Tape) -> Result<(), String>) -> String {
    let fails = |t: &[u8]| prop(&mut Tape::new(t)).err();
    let mut message = fails(tape).expect("shrink called on a failing tape");
    loop {
        let mut progressed = false;
        // Pass 1: truncate the tail by halves.
        while !tape.is_empty() {
            let shorter = &tape[..tape.len() / 2];
            match fails(shorter) {
                Some(m) => {
                    message = m;
                    let keep = shorter.len();
                    tape.truncate(keep);
                    progressed = true;
                }
                None => break,
            }
        }
        // Pass 2: delete interior blocks, large to small.
        let mut block = tape.len().max(1);
        while block >= 1 {
            let mut start = 0;
            while start < tape.len() {
                let end = (start + block).min(tape.len());
                let mut candidate = Vec::with_capacity(tape.len() - (end - start));
                candidate.extend_from_slice(&tape[..start]);
                candidate.extend_from_slice(&tape[end..]);
                if let Some(m) = fails(&candidate) {
                    message = m;
                    *tape = candidate;
                    progressed = true;
                    // Retry the same offset: the next block slid into it.
                } else {
                    start = end;
                }
            }
            block /= 2;
        }
        // Pass 3: zero individual non-zero bytes.
        for i in 0..tape.len() {
            if tape[i] == 0 {
                continue;
            }
            let saved = tape[i];
            tape[i] = 0;
            match fails(tape) {
                Some(m) => {
                    message = m;
                    progressed = true;
                }
                None => tape[i] = saved,
            }
        }
        if !progressed {
            return message;
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Runs `prop` over `cases` independently seeded tapes; shrinks and
/// panics on the first failure.
///
/// # Panics
///
/// Panics with the property name, failing case index, minimized tape
/// (hex), and the property's error message when any case fails.
pub fn check(name: &str, cases: usize, prop: impl Fn(&mut Tape) -> Result<(), String>) {
    for case in 0..cases {
        let mut tape = fill_tape(name, case);
        if prop(&mut Tape::new(&tape)).is_err() {
            let message = shrink(&mut tape, &prop);
            panic!(
                "property '{name}' failed (case {case}/{cases})\n  \
                 minimized tape ({} bytes): {}\n  {message}",
                tape.len(),
                hex(&tape),
            );
        }
    }
}

/// `assert!` for properties: returns `Err` instead of panicking so the
/// shrinker can re-run the property on mutated tapes.
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for properties.
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

/// `assert_ne!` for properties.
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "{} == {}: both {:?}",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

pub(crate) use {prop_assert, prop_assert_eq, prop_assert_ne};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn exhausted_tape_yields_zeros() {
        let mut t = Tape::new(&[7]);
        assert_eq!(t.byte(), 7);
        assert_eq!(t.byte(), 0);
        assert_eq!(t.u64(), 0);
        assert!(!t.bool());
    }

    #[test]
    fn range_respects_bounds() {
        let tape = fill_tape("range", 0);
        let mut t = Tape::new(&tape);
        for _ in 0..200 {
            let v = t.range(3, 17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0usize;
        let counter = std::cell::Cell::new(0usize);
        check("always-true", 25, |t| {
            let _ = t.bytes(0, 8);
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 25);
    }

    #[test]
    #[should_panic(expected = "property 'always-false' failed")]
    fn failing_property_panics_with_name() {
        check("always-false", 4, |_| Err("nope".into()));
    }

    #[test]
    fn shrinker_minimizes_to_the_trigger() {
        // Fails whenever any byte is >= 0x80: the shrunk tape should be
        // a single high byte (deleting/zeroing everything else passes).
        let prop = |t: &mut Tape| -> Result<(), String> {
            for _ in 0..64 {
                if t.byte() >= 0x80 {
                    return Err("high byte".into());
                }
            }
            Ok(())
        };
        let mut tape = fill_tape("shrinker", 0);
        assert!(prop(&mut Tape::new(&tape)).is_err(), "seed tape must fail");
        let msg = shrink(&mut tape, &prop);
        assert_eq!(msg, "high byte");
        // Minimal: a handful of bytes, exactly one of them the trigger.
        assert!(tape.len() <= 8, "tape still {} bytes", tape.len());
        assert_eq!(tape.iter().filter(|&&b| b >= 0x80).count(), 1);
    }
}
