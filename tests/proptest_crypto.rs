//! Property-based tests over the cryptographic substrate: algebraic laws
//! of the bignum engine, hash/HMAC consistency, and RSA/sealing
//! roundtrips under arbitrary inputs.

use minimal_tcb::crypto::{BigUint, Drbg, Hmac, OaepLabel, RsaPrivateKey, Sha1, Sha256};
use proptest::prelude::*;

fn big(bytes: Vec<u8>) -> BigUint {
    BigUint::from_bytes_be(&bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_is_commutative_and_associative(
        a in proptest::collection::vec(any::<u8>(), 0..48),
        b in proptest::collection::vec(any::<u8>(), 0..48),
        c in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let (a, b, c) = (big(a), big(b), big(c));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(
        a in proptest::collection::vec(any::<u8>(), 0..48),
        b in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let (a, b) = (big(a), big(b));
        let sum = &a + &b;
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn mul_distributes_over_add(
        a in proptest::collection::vec(any::<u8>(), 0..32),
        b in proptest::collection::vec(any::<u8>(), 0..32),
        c in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let (a, b, c) = (big(a), big(b), big(c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn division_identity(
        n in proptest::collection::vec(any::<u8>(), 0..64),
        d in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let n = big(n);
        let d = big(d);
        prop_assume!(!d.is_zero());
        let (q, r) = n.divrem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, n);
    }

    #[test]
    fn shifts_are_mul_div_by_powers_of_two(
        v in proptest::collection::vec(any::<u8>(), 0..32),
        bits in 0usize..100,
    ) {
        let v = big(v);
        let shifted = v.shl_bits(bits);
        let pow = BigUint::one().shl_bits(bits);
        prop_assert_eq!(&shifted, &(&v * &pow));
        prop_assert_eq!(&shifted >> bits, v);
    }

    #[test]
    fn bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = big(v);
        prop_assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
    }

    #[test]
    fn modexp_product_law(
        base in proptest::collection::vec(any::<u8>(), 1..16),
        e1 in 0u32..50,
        e2 in 0u32..50,
        modulus in proptest::collection::vec(any::<u8>(), 2..16),
    ) {
        // b^(e1+e2) == b^e1 * b^e2 (mod m)
        let b = big(base);
        let mut m = big(modulus);
        if m.is_zero() || m.is_one() {
            m = BigUint::from_u64(7);
        }
        let lhs = b.modexp(&BigUint::from_u64((e1 + e2) as u64), &m);
        let rhs_a = b.modexp(&BigUint::from_u64(e1 as u64), &m);
        let rhs_b = b.modexp(&BigUint::from_u64(e2 as u64), &m);
        prop_assert_eq!(lhs, (&rhs_a * &rhs_b).rem_ref(&m));
    }

    #[test]
    fn mod_inverse_is_inverse(
        a_raw in proptest::collection::vec(any::<u8>(), 1..16),
        m_raw in proptest::collection::vec(any::<u8>(), 2..16),
    ) {
        let a = big(a_raw);
        let m = big(m_raw);
        prop_assume!(!m.is_zero() && !m.is_one());
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!((&a * &inv).rem_ref(&m), BigUint::one());
            prop_assert!(inv < m);
        }
    }

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha1::new();
        h.update_bytes(&data[..split]);
        h.update_bytes(&data[split..]);
        prop_assert_eq!(h.finalize_fixed(), Sha1::digest(&data));
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(0usize..512, 0..4),
    ) {
        let mut points: Vec<usize> = splits.into_iter().map(|s| s.min(data.len())).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update_bytes(&data[prev..p]);
            prev = p;
        }
        h.update_bytes(&data[prev..]);
        prop_assert_eq!(h.finalize_fixed(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_verifies_own_tags_and_rejects_bitflips(
        key in proptest::collection::vec(any::<u8>(), 0..80),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        flip_byte in 0usize..20,
        flip_bit in 0u8..8,
    ) {
        let tag = Hmac::<Sha1>::mac(&key, &msg);
        prop_assert!(Hmac::<Sha1>::verify(&key, &msg, &tag));
        let mut bad = tag.clone();
        let idx = flip_byte % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(!Hmac::<Sha1>::verify(&key, &msg, &bad));
    }

    #[test]
    fn drbg_is_deterministic_and_seed_sensitive(
        seed in proptest::collection::vec(any::<u8>(), 1..32),
        n in 1usize..128,
    ) {
        let a = Drbg::new(&seed).fill(n);
        let b = Drbg::new(&seed).fill(n);
        prop_assert_eq!(&a, &b);
        let mut other_seed = seed.clone();
        other_seed[0] ^= 1;
        let c = Drbg::new(&other_seed).fill(n);
        prop_assert_ne!(a, c);
    }
    #[test]
    fn biguint_agrees_with_native_u128(a in any::<u64>(), b in any::<u64>()) {
        // Differential check of every arithmetic op against native
        // 128-bit integers on word-sized operands.
        let (ba, bb) = (BigUint::from_u64(a), BigUint::from_u64(b));
        let (wa, wb) = (a as u128, b as u128);

        prop_assert_eq!((&ba + &bb).to_bytes_be(), be(wa + wb));
        prop_assert_eq!((&ba * &bb).to_bytes_be(), be(wa * wb));
        if a >= b {
            prop_assert_eq!(ba.checked_sub(&bb).unwrap().to_bytes_be(), be(wa - wb));
        } else {
            prop_assert!(ba.checked_sub(&bb).is_none());
        }
        if b != 0 {
            let (q, r) = ba.divrem(&bb);
            prop_assert_eq!(q.to_bytes_be(), be(wa / wb));
            prop_assert_eq!(r.to_bytes_be(), be(wa % wb));
        }
        prop_assert_eq!(ba.gcd(&bb).to_bytes_be(), be(gcd_u128(wa, wb)));
        prop_assert_eq!(ba.bit_len() as u32, 64 - a.leading_zeros());
    }

}

// RSA properties use a fixed key (keygen per-case would dominate) with
// proptest-driven payloads.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rsa_oaep_roundtrips_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..22),
        label in proptest::collection::vec(any::<u8>(), 0..16),
        rng_seed in any::<u64>(),
    ) {
        let key = test_key();
        let mut rng = Drbg::new(&rng_seed.to_le_bytes());
        let label = OaepLabel(label);
        let ct = key.public_key().encrypt_oaep(&payload, &label, &mut rng).unwrap();
        prop_assert_eq!(key.decrypt_oaep(&ct, &label).unwrap(), payload);
    }

    #[test]
    fn rsa_signature_binds_digest(
        msg_a in proptest::collection::vec(any::<u8>(), 0..64),
        msg_b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let key = test_key();
        let da = Sha1::digest(&msg_a);
        let db = Sha1::digest(&msg_b);
        let sig = key.sign_pkcs1v15(&da).unwrap();
        prop_assert!(key.public_key().verify_pkcs1v15(&da, &sig));
        if da != db {
            prop_assert!(!key.public_key().verify_pkcs1v15(&db, &sig));
        }
    }
}

fn test_key() -> RsaPrivateKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(512, &mut Drbg::new(b"proptest key")).unwrap())
        .clone()
}

fn be(v: u128) -> Vec<u8> {
    let raw = v.to_be_bytes();
    let first = raw.iter().position(|&b| b != 0).unwrap_or(raw.len());
    raw[first..].to_vec()
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}
