//! Property-based tests over the cryptographic substrate: algebraic laws
//! of the bignum engine, hash/HMAC consistency, and RSA/sealing
//! roundtrips under arbitrary inputs. Driven by the in-repo harness in
//! `common` (xorshift tapes + greedy shrinking) — no external crates.

mod common;

use common::{check, prop_assert, prop_assert_eq, prop_assert_ne};
use minimal_tcb::crypto::{
    BigUint, CryptoError, Drbg, Hmac, OaepLabel, RsaPrivateKey, Sha1, Sha256, Signature,
};

/// Case count for the plain bignum/hash properties (matches the original
/// `ProptestConfig::with_cases(64)`).
const CASES: usize = 64;

/// Case count for the RSA properties (original: 16; a fixed key is used
/// so keygen does not dominate).
const RSA_CASES: usize = 16;

fn big(bytes: Vec<u8>) -> BigUint {
    BigUint::from_bytes_be(&bytes)
}

#[test]
fn add_is_commutative_and_associative() {
    check("add_is_commutative_and_associative", CASES, |t| {
        let a = big(t.bytes(0, 48));
        let b = big(t.bytes(0, 48));
        let c = big(t.bytes(0, 48));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        Ok(())
    });
}

#[test]
fn add_sub_roundtrip() {
    check("add_sub_roundtrip", CASES, |t| {
        let a = big(t.bytes(0, 48));
        let b = big(t.bytes(0, 48));
        let sum = &a + &b;
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
        Ok(())
    });
}

#[test]
fn mul_distributes_over_add() {
    check("mul_distributes_over_add", CASES, |t| {
        let a = big(t.bytes(0, 32));
        let b = big(t.bytes(0, 32));
        let c = big(t.bytes(0, 32));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        Ok(())
    });
}

#[test]
fn division_identity() {
    check("division_identity", CASES, |t| {
        let n = big(t.bytes(0, 64));
        let d = big(t.bytes(1, 40));
        if d.is_zero() {
            return Ok(()); // prop_assume!(!d.is_zero())
        }
        let (q, r) = n.divrem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, n);
        Ok(())
    });
}

#[test]
fn shifts_are_mul_div_by_powers_of_two() {
    check("shifts_are_mul_div_by_powers_of_two", CASES, |t| {
        let v = big(t.bytes(0, 32));
        let bits = t.range(0, 100);
        let shifted = v.shl_bits(bits);
        let pow = BigUint::one().shl_bits(bits);
        prop_assert_eq!(&shifted, &(&v * &pow));
        prop_assert_eq!(&shifted >> bits, v);
        Ok(())
    });
}

#[test]
fn bytes_roundtrip() {
    check("bytes_roundtrip", CASES, |t| {
        let n = big(t.bytes(0, 64));
        prop_assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
        Ok(())
    });
}

#[test]
fn modexp_product_law() {
    check("modexp_product_law", CASES, |t| {
        // b^(e1+e2) == b^e1 * b^e2 (mod m)
        let b = big(t.bytes(1, 16));
        let e1 = t.range(0, 50) as u32;
        let e2 = t.range(0, 50) as u32;
        let mut m = big(t.bytes(2, 16));
        if m.is_zero() || m.is_one() {
            m = BigUint::from_u64(7);
        }
        let lhs = b.modexp(&BigUint::from_u64((e1 + e2) as u64), &m);
        let rhs_a = b.modexp(&BigUint::from_u64(e1 as u64), &m);
        let rhs_b = b.modexp(&BigUint::from_u64(e2 as u64), &m);
        prop_assert_eq!(lhs, (&rhs_a * &rhs_b).rem_ref(&m));
        Ok(())
    });
}

#[test]
fn mod_inverse_is_inverse() {
    check("mod_inverse_is_inverse", CASES, |t| {
        let a = big(t.bytes(1, 16));
        let m = big(t.bytes(2, 16));
        if m.is_zero() || m.is_one() {
            return Ok(()); // prop_assume!
        }
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!((&a * &inv).rem_ref(&m), BigUint::one());
            prop_assert!(inv < m);
        }
        Ok(())
    });
}

#[test]
fn sha1_incremental_equals_oneshot() {
    check("sha1_incremental_equals_oneshot", CASES, |t| {
        let data = t.bytes(0, 512);
        let split = t.range(0, 512).min(data.len());
        let mut h = Sha1::new();
        h.update_bytes(&data[..split]);
        h.update_bytes(&data[split..]);
        prop_assert_eq!(h.finalize_fixed(), Sha1::digest(&data));
        Ok(())
    });
}

#[test]
fn sha256_incremental_equals_oneshot() {
    check("sha256_incremental_equals_oneshot", CASES, |t| {
        let data = t.bytes(0, 512);
        let mut points: Vec<usize> = t
            .vec(0, 4, |t| t.range(0, 512))
            .into_iter()
            .map(|s| s.min(data.len()))
            .collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update_bytes(&data[prev..p]);
            prev = p;
        }
        h.update_bytes(&data[prev..]);
        prop_assert_eq!(h.finalize_fixed(), Sha256::digest(&data));
        Ok(())
    });
}

#[test]
fn hmac_verifies_own_tags_and_rejects_bitflips() {
    check("hmac_verifies_own_tags_and_rejects_bitflips", CASES, |t| {
        let key = t.bytes(0, 80);
        let msg = t.bytes(0, 128);
        let flip_byte = t.range(0, 20);
        let flip_bit = t.range(0, 8) as u8;
        let tag = Hmac::<Sha1>::mac(&key, &msg);
        prop_assert!(Hmac::<Sha1>::verify(&key, &msg, &tag));
        let mut bad = tag.clone();
        let idx = flip_byte % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(!Hmac::<Sha1>::verify(&key, &msg, &bad));
        Ok(())
    });
}

#[test]
fn drbg_is_deterministic_and_seed_sensitive() {
    check("drbg_is_deterministic_and_seed_sensitive", CASES, |t| {
        let seed = t.bytes(1, 32);
        let n = t.range(1, 128);
        let a = Drbg::new(&seed).fill(n);
        let b = Drbg::new(&seed).fill(n);
        prop_assert_eq!(&a, &b);
        let mut other_seed = seed.clone();
        other_seed[0] ^= 1;
        let c = Drbg::new(&other_seed).fill(n);
        prop_assert_ne!(a, c);
        Ok(())
    });
}

#[test]
fn biguint_agrees_with_native_u128() {
    check("biguint_agrees_with_native_u128", CASES, |t| {
        // Differential check of every arithmetic op against native
        // 128-bit integers on word-sized operands.
        let a = t.u64();
        let b = t.u64();
        let (ba, bb) = (BigUint::from_u64(a), BigUint::from_u64(b));
        let (wa, wb) = (a as u128, b as u128);

        prop_assert_eq!((&ba + &bb).to_bytes_be(), be(wa + wb));
        prop_assert_eq!((&ba * &bb).to_bytes_be(), be(wa * wb));
        if a >= b {
            prop_assert_eq!(ba.checked_sub(&bb).unwrap().to_bytes_be(), be(wa - wb));
        } else {
            prop_assert!(ba.checked_sub(&bb).is_none());
        }
        if b != 0 {
            let (q, r) = ba.divrem(&bb);
            prop_assert_eq!(q.to_bytes_be(), be(wa / wb));
            prop_assert_eq!(r.to_bytes_be(), be(wa % wb));
        }
        prop_assert_eq!(ba.gcd(&bb).to_bytes_be(), be(gcd_u128(wa, wb)));
        prop_assert_eq!(ba.bit_len() as u32, 64 - a.leading_zeros());
        Ok(())
    });
}

// RSA properties use a fixed key (keygen per-case would dominate) with
// tape-driven payloads.

#[test]
fn rsa_oaep_roundtrips_arbitrary_payloads() {
    check("rsa_oaep_roundtrips_arbitrary_payloads", RSA_CASES, |t| {
        let payload = t.bytes(0, 22);
        let label = OaepLabel(t.bytes(0, 16));
        let rng_seed = t.u64();
        let key = test_key();
        let mut rng = Drbg::new(&rng_seed.to_le_bytes());
        let ct = key
            .public_key()
            .encrypt_oaep(&payload, &label, &mut rng)
            .unwrap();
        prop_assert_eq!(key.decrypt_oaep(&ct, &label).unwrap(), payload);
        Ok(())
    });
}

#[test]
fn rsa_signature_binds_digest() {
    check("rsa_signature_binds_digest", RSA_CASES, |t| {
        let msg_a = t.bytes(0, 64);
        let msg_b = t.bytes(0, 64);
        let key = test_key();
        let da = Sha1::digest(&msg_a);
        let db = Sha1::digest(&msg_b);
        let sig = key.sign_pkcs1v15(&da).unwrap();
        prop_assert!(key.public_key().verify_pkcs1v15(&da, &sig));
        if da != db {
            prop_assert!(!key.public_key().verify_pkcs1v15(&db, &sig));
        }
        Ok(())
    });
}

#[test]
fn rsa_signature_rejects_tampered_message() {
    check("rsa_signature_rejects_tampered_message", RSA_CASES, |t| {
        let msg = t.bytes(1, 64);
        let key = test_key();
        let sig = key.sign_pkcs1v15(&Sha1::digest(&msg)).unwrap();
        // Flip one bit of the message: its digest must stop verifying.
        let mut tampered = msg.clone();
        let byte = t.range(0, tampered.len());
        let bit = t.range(0, 8) as u8;
        tampered[byte] ^= 1 << bit;
        prop_assert!(!key
            .public_key()
            .verify_pkcs1v15(&Sha1::digest(&tampered), &sig));
        Ok(())
    });
}

#[test]
fn rsa_signature_rejects_tampered_signature() {
    check("rsa_signature_rejects_tampered_signature", RSA_CASES, |t| {
        let msg = t.bytes(0, 64);
        let key = test_key();
        let digest = Sha1::digest(&msg);
        let sig = key.sign_pkcs1v15(&digest).unwrap();
        // Flip one bit of the signature itself.
        let mut bytes = sig.0.clone();
        let byte = t.range(0, bytes.len());
        let bit = t.range(0, 8) as u8;
        bytes[byte] ^= 1 << bit;
        prop_assert!(!key.public_key().verify_pkcs1v15(&digest, &Signature(bytes)));
        Ok(())
    });
}

#[test]
fn rsa_signature_rejects_wrong_key() {
    check("rsa_signature_rejects_wrong_key", RSA_CASES, |t| {
        let msg = t.bytes(0, 64);
        let digest = Sha1::digest(&msg);
        let sig = test_key().sign_pkcs1v15(&digest).unwrap();
        prop_assert!(!other_key().public_key().verify_pkcs1v15(&digest, &sig));
        Ok(())
    });
}

#[test]
fn rsa_signature_rejects_truncated_signature() {
    check(
        "rsa_signature_rejects_truncated_signature",
        RSA_CASES,
        |t| {
            let msg = t.bytes(0, 64);
            let key = test_key();
            let digest = Sha1::digest(&msg);
            let sig = key.sign_pkcs1v15(&digest).unwrap();
            // Any strict prefix — including the empty one — must fail.
            let keep = t.range(0, sig.0.len());
            let truncated = Signature(sig.0[..keep].to_vec());
            prop_assert!(!key.public_key().verify_pkcs1v15(&digest, &truncated));
            Ok(())
        },
    );
}

// CRT differential properties: the accelerated signing path must be
// byte-for-byte indistinguishable from the plain d-exponent path, and
// every tampered-parameter route must refuse rather than emit a
// Bellcore-leakable signature.

#[test]
fn crt_signing_matches_plain_exponent_path() {
    check("crt_signing_matches_plain_exponent_path", RSA_CASES, |t| {
        let msg = t.bytes(0, 64);
        let digest = Sha1::digest(&msg);
        let crt_key = test_key();
        prop_assert!(crt_key.has_crt());
        // Serialization drops the factorization, so the round-tripped
        // key signs through the plain full-size exponent — a built-in
        // differential oracle for the CRT path.
        let plain_key = RsaPrivateKey::from_bytes(&crt_key.to_bytes()).unwrap();
        prop_assert!(!plain_key.has_crt());
        let via_crt = crt_key.sign_pkcs1v15(&digest).unwrap();
        let via_d = plain_key.sign_pkcs1v15(&digest).unwrap();
        prop_assert_eq!(via_crt.0, via_d.0);
        Ok(())
    });
}

#[test]
fn batch_signing_matches_per_digest_signatures() {
    check(
        "batch_signing_matches_per_digest_signatures",
        RSA_CASES,
        |t| {
            let key = test_key();
            let digests: Vec<[u8; 20]> = t.vec(1, 6, |t| Sha1::digest(&t.bytes(0, 48)));
            let batch = key.sign_pkcs1v15_batch(&digests).unwrap();
            prop_assert_eq!(batch.len(), digests.len());
            for (digest, sig) in digests.iter().zip(&batch) {
                prop_assert_eq!(&key.sign_pkcs1v15(digest).unwrap().0, &sig.0);
            }
            Ok(())
        },
    );
}

#[test]
fn tampered_crt_factors_are_rejected_on_attach() {
    check(
        "tampered_crt_factors_are_rejected_on_attach",
        RSA_CASES,
        |t| {
            let key = RsaPrivateKey::from_bytes(&test_key().to_bytes()).unwrap();
            // Arbitrary 16-byte "factors" multiply to at most 256 bits,
            // never the 512-bit modulus, so re-arming must always refuse.
            let p = big(t.bytes(1, 16));
            let q = big(t.bytes(2, 16));
            let err = key.with_crt(p, q).unwrap_err();
            prop_assert!(matches!(err, CryptoError::CrtParamsInvalid));
            Ok(())
        },
    );
}

#[test]
fn faulted_crt_exponent_withholds_signatures() {
    check(
        "faulted_crt_exponent_withholds_signatures",
        RSA_CASES,
        |t| {
            let msg = t.bytes(0, 64);
            let digest = Sha1::digest(&msg);
            // A corrupted half-exponentiation would leak a factor of n if
            // released (the Bellcore attack); both signing paths must
            // withhold the signature instead.
            let key = test_key().with_faulted_crt();
            let single = key.sign_pkcs1v15(&digest).unwrap_err();
            prop_assert!(matches!(single, CryptoError::CrtFault));
            let batch = key.sign_pkcs1v15_batch(&[digest]).unwrap_err();
            prop_assert!(matches!(batch, CryptoError::CrtFault));
            Ok(())
        },
    );
}

fn test_key() -> RsaPrivateKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(512, &mut Drbg::new(b"proptest key")).unwrap())
        .clone()
}

fn other_key() -> RsaPrivateKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(512, &mut Drbg::new(b"proptest other key")).unwrap())
        .clone()
}

fn be(v: u128) -> Vec<u8> {
    let raw = v.to_be_bytes();
    let first = raw.iter().position(|&b| b != 0).unwrap_or(raw.len());
    raw[first..].to_vec()
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}
