//! Cross-crate integration tests: complete workflows spanning the
//! hardware substrate, TPM, SEA runtimes, OS, applications, and external
//! verification.

use minimal_tcb::core::{
    EnhancedSea, FnPal, LegacySea, PalLogic, PalOutcome, SecurePlatform, Verifier,
};
use minimal_tcb::hw::{CpuId, CpuVendor, Platform, SimDuration};
use minimal_tcb::os::Scheduler;
use minimal_tcb::pals::{
    decode_factors, decode_public_key, verify_ca_signature, CaRequest, CertAuthority, FactoringPal,
    PersistMode, RootkitDetector, RootkitVerdict, SshPassword, SshRequest,
};
use minimal_tcb::tpm::KeyStrength;

fn legacy(p: Platform, seed: &[u8]) -> LegacySea {
    LegacySea::new(SecurePlatform::new(p, KeyStrength::Demo512, seed)).unwrap()
}

fn enhanced(n: u16, seed: &[u8]) -> EnhancedSea {
    EnhancedSea::new(SecurePlatform::new(
        Platform::recommended(n),
        KeyStrength::Demo512,
        seed,
    ))
    .unwrap()
}

#[test]
fn full_ca_lifecycle_with_external_verification() {
    // The paper's CA scenario, end to end: key generation, certificate
    // signing, and an attestation that convinces a remote verifier the
    // genuine CA PAL (and nothing else) handled the key.
    let mut sea = legacy(Platform::hp_dc5750(), b"e2e-ca");
    let mut ca = CertAuthority::new();
    let ca_image = ca.image();

    let gen = sea
        .run_session(&mut ca, &CaRequest::Generate.to_bytes())
        .unwrap();
    let public = decode_public_key(&gen.output.unwrap()).unwrap();

    let csr = b"CN=relying.party".to_vec();
    let sign = sea
        .run_session(&mut ca, &CaRequest::Sign(csr.clone()).to_bytes())
        .unwrap();
    let signature = sign.output.unwrap();
    assert!(verify_ca_signature(&public, &csr, &signature));

    // Remote verification of the platform state.
    let quote = sea.quote(b"ca-challenge").unwrap().value;
    let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
    verifier
        .verify_legacy_quote(&quote, b"ca-challenge", &ca_image, CpuVendor::Amd, &[])
        .unwrap();

    // Figure 2 economics held throughout.
    assert!(gen.report.seal.as_ms_f64() > 10.0);
    assert!(sign.report.unseal.as_ms_f64() > 300.0);
}

#[test]
fn same_pal_identity_across_both_architectures() {
    // A blob sealed under the baseline cannot leak to a *different* PAL
    // on the proposed hardware, but the measurement chains of the same
    // image agree between architectures, so verifiers share trust roots.
    let image = FnPal::new("shared", |_| Ok(PalOutcome::Yield)).image();
    let legacy_chain = SecurePlatform::expected_pal_chain(&image);
    let enhanced_chain = Verifier::expected_chain(&image, &[]);
    assert_eq!(legacy_chain, enhanced_chain);
}

#[test]
fn factoring_agrees_across_architectures() {
    const N: u64 = 293 * 307;
    // Baseline.
    let mut sea_l = legacy(Platform::hp_dc5750(), b"e2e-fact");
    let mut w1 = FactoringPal::new(N, 50, PersistMode::TpmSeal);
    let f1 = loop {
        let r = sea_l.run_session(&mut w1, b"").unwrap();
        if let Some(f) = decode_factors(&r.output.unwrap_or_default()) {
            break f;
        }
    };
    // Proposed.
    let mut sea_e = enhanced(2, b"e2e-fact");
    let mut w2 = FactoringPal::new(N, 50, PersistMode::InRegion);
    let id = sea_e.slaunch(&mut w2, b"", CpuId(0), None).unwrap();
    let done = sea_e.run_to_exit(&mut w2, id, CpuId(0)).unwrap();
    let f2 = decode_factors(&done.output).unwrap();

    assert_eq!(f1, (293, 307));
    assert_eq!(f1, f2);
}

#[test]
fn scheduler_runs_heterogeneous_pal_mix() {
    let mut sched = Scheduler::new(enhanced(4, b"e2e-mix"));
    sched.set_preemption_timer(Some(SimDuration::from_ms(50)));

    let kernel = b"production kernel".to_vec();
    sched.add_job(Box::new(RootkitDetector::new(&[&kernel])), &kernel);
    sched.add_job(
        Box::new(FactoringPal::new(97 * 89, 40, PersistMode::InRegion)),
        b"",
    );
    sched.add_job(
        Box::new(SshPassword::new()),
        &SshRequest::Enroll(b"pw".to_vec()).to_bytes(),
    );
    for i in 0..3 {
        sched.add_job(
            Box::new(FnPal::new(&format!("filler-{i}"), move |ctx| {
                ctx.work(SimDuration::from_ms(5));
                Ok(PalOutcome::Exit(vec![i]))
            })),
            b"",
        );
    }

    let out = sched.run_all(SimDuration::from_secs(5)).unwrap();
    assert_eq!(out.outputs.len(), 6);
    assert_eq!(
        RootkitVerdict::from_byte(out.outputs[0][0]),
        Some(RootkitVerdict::Clean)
    );
    assert_eq!(decode_factors(&out.outputs[1]), Some((89, 97)));
    assert_eq!(out.outputs[2], vec![1]); // enrollment succeeded
    assert_eq!(out.stalled, SimDuration::ZERO);
}

#[test]
fn sealed_data_survives_reboot_only_with_relaunch() {
    // Seal under a launched PAL, reboot the platform, relaunch the same
    // PAL: unseal succeeds because the measurement chain is recreated.
    let mut sea = legacy(Platform::hp_dc5750(), b"e2e-reboot");
    let mut holder = None;
    {
        let h = &mut holder;
        let mut pal = FnPal::new("durable", move |ctx| {
            *h = Some(ctx.seal(b"survives reboots")?);
            Ok(PalOutcome::Exit(vec![]))
        });
        sea.run_session(&mut pal, b"").unwrap();
    }
    let blob = holder.unwrap();

    sea.platform_mut().reboot();

    // Without a launch, the OS cannot unseal (PCR 17 reads −1).
    let direct = sea.platform_mut().tpm_mut().unwrap().unseal(&blob);
    assert!(direct.is_err());

    // A genuine relaunch of the same PAL can.
    let mut pal = FnPal::new("durable", move |ctx| {
        Ok(PalOutcome::Exit(ctx.unseal(&blob)?))
    });
    let r = sea.run_session(&mut pal, b"").unwrap();
    assert_eq!(r.output, Some(b"survives reboots".to_vec()));
}

#[test]
fn intel_and_amd_flows_both_complete() {
    for p in [Platform::hp_dc5750(), Platform::intel_tep()] {
        let vendor = p.vendor;
        let mut sea = legacy(p, b"e2e-vendor");
        let mut pal = FnPal::new("portable", |ctx| {
            let blob = ctx.seal(b"vendor-neutral")?;
            assert_eq!(ctx.unseal(&blob)?, b"vendor-neutral");
            Ok(PalOutcome::Exit(vec![]))
        });
        let image = pal.image();
        sea.run_session(&mut pal, b"").unwrap();
        let q = sea.quote(b"n").unwrap().value;
        let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        verifier
            .verify_legacy_quote(&q, b"n", &image, vendor, &[])
            .unwrap();
    }
}

#[test]
fn artifacts_survive_wire_and_disk_serialization() {
    // The untrusted OS stores sealed blobs on disk and ships quotes over
    // the network as raw bytes; everything must survive the round trip.
    let mut sea = enhanced(2, b"e2e-wire");
    let mut holder = None;
    {
        let h = &mut holder;
        let mut pal = FnPal::new("persister", move |ctx| {
            *h = Some(ctx.seal(b"disk-bound state")?);
            Ok(PalOutcome::Exit(vec![]))
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        let quote = sea.quote_and_free(id, b"wire-nonce").unwrap().value;

        // Quote across the "network".
        let wire = quote.to_bytes();
        let received = minimal_tcb::tpm::Quote::from_bytes(&wire).unwrap();
        let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        verifier
            .verify_sepcr_quote(&received, b"wire-nonce", &pal.image(), &[])
            .unwrap();
    }
    // Blob across the "disk".
    let blob = holder.unwrap();
    let stored = blob.to_bytes();
    let restored = minimal_tcb::tpm::SealedBlob::from_bytes(&stored).unwrap();
    let mut again = FnPal::new("persister", move |ctx| {
        Ok(PalOutcome::Exit(ctx.unseal(&restored)?))
    });
    let id = sea.slaunch(&mut again, b"", CpuId(1), None).unwrap();
    let done = sea.run_to_exit(&mut again, id, CpuId(1)).unwrap();
    assert_eq!(done.output, b"disk-bound state");
}

#[test]
fn pioneer_comparator_fails_where_sea_succeeds() {
    // §7: software-based attestation (Pioneer) cannot tolerate moderate
    // network latency — while SEA's TPM-rooted quote is latency-immune.
    use minimal_tcb::core::{
        forged_duration, honest_duration, pioneer_checksum, PioneerResponse, PioneerVerdict,
        PioneerVerifier,
    };
    let memory: Vec<u8> = (0..2048u32).map(|i| i as u8).collect();
    let wan = PioneerVerifier::new(memory.clone(), SimDuration::from_ms(50));
    let ch = wan.challenge(b"e2e", 10_000);
    let forged = PioneerResponse {
        checksum: pioneer_checksum(&memory, &ch),
        observed: forged_duration(&ch) + SimDuration::from_ms(2),
    };
    // Timing-based attestation accepts the forger at WAN latency...
    assert_eq!(wan.verify(&ch, &forged), PioneerVerdict::Accepted);
    let _ = honest_duration(&ch);

    // ...while the SEA quote from the same "distance" still verifies
    // correctly and rejects impostors, because its trust is a signature,
    // not a stopwatch.
    let mut sea = enhanced(2, b"e2e-pioneer");
    let mut pal = FnPal::new("latency-immune", |_| Ok(PalOutcome::Exit(vec![])));
    let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
    sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
    let quote = sea.quote_and_free(id, b"n").unwrap().value;
    let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
    assert!(verifier
        .verify_sepcr_quote(&quote, b"n", &pal.image(), &[])
        .is_ok());
    assert!(verifier
        .verify_sepcr_quote(&quote, b"n", b"impostor image", &[])
        .is_err());
}

#[test]
fn enhanced_overhead_orders_of_magnitude_below_baseline() {
    // The repository's headline claim, asserted at integration level:
    // same PAL, same work, both architectures.
    let work = SimDuration::from_ms(2);
    let make = || {
        let mut yields = 3u8;
        FnPal::new("compare", move |ctx| {
            ctx.work(SimDuration::from_ms(2));
            let blob = ctx.seal(b"step state")?;
            let _ = ctx.unseal(&blob)?;
            if yields == 0 {
                Ok(PalOutcome::Exit(vec![]))
            } else {
                yields -= 1;
                Ok(PalOutcome::Yield)
            }
        })
        .with_image_size(64 * 1024)
    };
    let _ = work;

    // Baseline: each "yield" is a whole fresh session.
    let mut sea_l = legacy(Platform::hp_dc5750(), b"cmp");
    let mut total_overhead = SimDuration::ZERO;
    let mut pal = make();
    for _ in 0..4 {
        let r = sea_l.run_session(&mut pal, b"").unwrap();
        total_overhead += r.report.overhead();
        if r.output.is_some() {
            break;
        }
    }

    // Proposed.
    let mut sea_e = enhanced(2, b"cmp");
    let mut pal = make();
    let id = sea_e.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
    let done = sea_e.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
    // The proposed run still seals (the PAL chose to), so compare only
    // the architectural part: late launch + context switches.
    let arch_overhead = done.report.late_launch + done.report.context_switch;

    assert!(
        total_overhead.as_ns() > arch_overhead.as_ns() * 100,
        "baseline {} vs proposed architectural {}",
        total_overhead,
        arch_overhead
    );
}
