//! Edge-of-envelope tests for the hardware substrate: the event queue
//! at the full [`MAX_CPUS`] fan-out a fleet-sized platform can
//! schedule, and [`CpuMask`] behavior at the 64-bit word boundaries of
//! its backing array.

use minimal_tcb::hw::{CpuId, CpuMask, EventQueue, SimTime, MAX_CPUS};

// ---------------------------------------------------------------------
// EventQueue at MAX_CPUS fan-out
// ---------------------------------------------------------------------

#[test]
fn event_queue_holds_an_event_per_cpu_at_max_width() {
    let width = MAX_CPUS as u64;
    let mut q: EventQueue<u64> = EventQueue::new();

    // One event per virtual CPU, scheduled in reverse id order so the
    // queue (not insertion order) must produce the ordering.
    for id in (0..width).rev() {
        q.schedule(SimTime::from_ns(1_000), id, id * 2);
    }
    assert_eq!(q.len(), MAX_CPUS as usize);

    // Equal timestamps drain in id order, every payload intact.
    for expect in 0..width {
        let e = q.pop().expect("queue holds an event per CPU");
        assert_eq!(e.at, SimTime::from_ns(1_000));
        assert_eq!(e.id, expect);
        assert_eq!(e.payload, expect * 2);
    }
    assert!(q.pop().is_none());
}

#[test]
fn event_queue_interleaves_max_width_timestamp_spread() {
    let width = MAX_CPUS as u64;
    let mut q: EventQueue<()> = EventQueue::new();

    // Two waves: ids ascending with descending times, so time must win
    // over both id and insertion order across the whole width.
    for id in 0..width {
        q.schedule(SimTime::from_ns(2 * width - id), id, ());
        q.schedule(SimTime::from_ns(4 * width - id), id, ());
    }
    assert_eq!(q.len(), 2 * MAX_CPUS as usize);

    let mut prev = (SimTime::ZERO, 0u64);
    let mut drained = 0usize;
    while let Some(e) = q.pop() {
        assert!(
            (e.at, e.id) >= prev,
            "event ({:?}, {}) popped after {prev:?}",
            e.at,
            e.id
        );
        prev = (e.at, e.id);
        drained += 1;
    }
    assert_eq!(drained, 2 * MAX_CPUS as usize);
}

// ---------------------------------------------------------------------
// CpuMask at the word boundaries
// ---------------------------------------------------------------------

#[test]
fn cpu_mask_crosses_word_boundaries() {
    // 63/64/65 straddle the first u64 word; 1023 is the last legal id.
    let edges = [63u16, 64, 65, 1023];
    let mut mask = CpuMask::EMPTY;
    for &c in &edges {
        assert!(!mask.contains(CpuId(c)));
        mask.insert(CpuId(c));
        assert!(mask.contains(CpuId(c)), "cpu {c} lost across word edge");
    }
    assert_eq!(mask.len(), edges.len() as u32);

    // Neighbors were not disturbed.
    for &c in &[62u16, 66, 127, 128, 1022] {
        assert!(!mask.contains(CpuId(c)), "cpu {c} set spuriously");
    }

    // Iteration yields exactly the inserted ids, ascending.
    let got: Vec<u16> = mask.iter().map(|c| c.0).collect();
    assert_eq!(got, edges);

    // Removing one side of a boundary leaves the other side alone.
    mask.remove(CpuId(64));
    assert!(!mask.contains(CpuId(64)));
    assert!(mask.contains(CpuId(63)));
    assert!(mask.contains(CpuId(65)));
    assert_eq!(mask.len(), 3);

    // Removal is idempotent, and out-of-range removal is a no-op.
    mask.remove(CpuId(64));
    mask.remove(CpuId(MAX_CPUS));
    assert_eq!(mask.len(), 3);

    // Out-of-range membership is simply false, not a panic.
    assert!(!mask.contains(CpuId(MAX_CPUS)));
    assert!(!mask.contains(CpuId(u16::MAX)));
}

#[test]
fn cpu_mask_last_word_behaves_like_the_first() {
    // Fill the whole last word (960..1024) and verify it round-trips.
    let mut mask = CpuMask::EMPTY;
    for c in 960..MAX_CPUS {
        mask.insert(CpuId(c));
    }
    assert_eq!(mask.len(), 64);
    assert_eq!(mask.iter().count(), 64);
    assert!(mask.contains(CpuId(1023)));
    assert!(!mask.contains(CpuId(959)));
    for c in 960..MAX_CPUS {
        mask.remove(CpuId(c));
    }
    assert!(mask.is_empty());
}

#[test]
#[should_panic(expected = "CpuMask supports CPU ids below 1024")]
fn cpu_mask_rejects_ids_at_max_cpus() {
    let mut mask = CpuMask::EMPTY;
    mask.insert(CpuId(MAX_CPUS));
}
