//! Differential suite: the executed-bytecode PALs pinned against their
//! cost-model twins.
//!
//! The four VM programs in `sea_pals::vm` claim to speak the *exact*
//! protocol of the native-Rust twins they replaced: same request
//! encodings, same outputs, same TPM-operation sequences, same error
//! surface. This suite runs twin and program side by side on
//! identically-seeded platforms and demands byte-level agreement:
//!
//! * **SSH**: enroll/verify-good/verify-bad outputs are byte-equal.
//! * **CA**: the generated public key *and* the CSR signature are
//!   byte-equal — both implementations draw the same 32 TPM bytes and
//!   feed the same DRBG, so key material itself must agree.
//! * **Factoring**: factors agree, and so does the session shape — the
//!   same number of in-region yields (proposed hardware) and the same
//!   number of seal-resume sessions (baseline hardware).
//! * **Rootkit**: verdict bytes agree, and the attestation layer tells
//!   the two implementations apart — each quote verifies only against
//!   its own image, because the VM's measured identity is the serialized
//!   bytecode, not the twin's name-derived string.
//! * **Errors**: every malformed or premature request that fails on the
//!   twin fails on the program, and vice versa.

use minimal_tcb::core::{
    EnhancedSea, LegacySea, PalLogic, PalStep, SecurePlatform, TrustPolicy, Verifier, VerifyError,
};
use minimal_tcb::crypto::Sha1;
use minimal_tcb::hw::{CpuId, Platform};
use minimal_tcb::pals::vm::{vm_ca, vm_factoring, vm_rootkit, vm_ssh};
use minimal_tcb::pals::{
    decode_factors, decode_public_key, verify_ca_signature, CaRequest, CertAuthority, FactoringPal,
    PersistMode, RootkitDetector, SshPassword, SshRequest,
};
use minimal_tcb::tpm::KeyStrength;

fn legacy(seed: &[u8]) -> LegacySea {
    LegacySea::new(SecurePlatform::new(
        Platform::hp_dc5750(),
        KeyStrength::Demo512,
        seed,
    ))
    .unwrap()
}

fn enhanced(seed: &[u8]) -> EnhancedSea {
    EnhancedSea::new(SecurePlatform::new(
        Platform::recommended(2),
        KeyStrength::Demo512,
        seed,
    ))
    .unwrap()
}

/// Runs one legacy session and returns the output (None on yield).
fn run(sea: &mut LegacySea, pal: &mut dyn PalLogic, input: &[u8]) -> Option<Vec<u8>> {
    sea.run_session(pal, input).unwrap().output
}

#[test]
fn ssh_outputs_are_byte_equal() {
    // Identical platform seeds: both implementations draw the same salt
    // from the TPM DRBG, so even the sealed record agrees.
    let mut sea_t = legacy(b"vmdiff-ssh");
    let mut sea_v = legacy(b"vmdiff-ssh");
    let mut twin = SshPassword::new();
    let mut prog = vm_ssh();

    let requests = [
        SshRequest::Enroll(b"correct horse".to_vec()),
        SshRequest::Verify(b"correct horse".to_vec()),
        SshRequest::Verify(b"battery staple".to_vec()),
        SshRequest::Verify(Vec::new()),
    ];
    for req in &requests {
        let t = run(&mut sea_t, &mut twin, &req.to_bytes());
        let v = run(&mut sea_v, &mut prog, &req.to_bytes());
        assert_eq!(t, v, "twin and program disagree on {req:?}");
    }
}

#[test]
fn ca_key_material_and_signatures_are_byte_equal() {
    // The twin seeds a DRBG with ctx.random(32); the program's RSAGEN
    // does the same from its RANDOM draw. Same platform seed → same TPM
    // stream → the *same RSA key*, so public keys and signatures must
    // be byte-identical, not merely cross-verifiable.
    let mut sea_t = legacy(b"vmdiff-ca");
    let mut sea_v = legacy(b"vmdiff-ca");
    let mut twin = CertAuthority::new();
    let mut prog = vm_ca();

    let pub_t = run(&mut sea_t, &mut twin, &CaRequest::Generate.to_bytes()).unwrap();
    let pub_v = run(&mut sea_v, &mut prog, &CaRequest::Generate.to_bytes()).unwrap();
    assert_eq!(pub_t, pub_v, "generated public keys diverge");
    let public = decode_public_key(&pub_t).expect("valid public key");

    let csr = b"CN=differential.example".to_vec();
    let sig_t = run(
        &mut sea_t,
        &mut twin,
        &CaRequest::Sign(csr.clone()).to_bytes(),
    )
    .unwrap();
    let sig_v = run(
        &mut sea_v,
        &mut prog,
        &CaRequest::Sign(csr.clone()).to_bytes(),
    )
    .unwrap();
    assert_eq!(sig_t, sig_v, "signatures diverge");
    assert!(verify_ca_signature(&public, &csr, &sig_t));
}

#[test]
fn factoring_agrees_on_factors_and_session_shape() {
    const N: u64 = 101 * 103;
    const QUANTUM: u64 = 10;

    // Proposed hardware, in-region persistence: same factors after the
    // same number of SYIELDs.
    let drive = |pal: &mut dyn PalLogic| -> (Vec<u8>, u32) {
        let mut sea = enhanced(b"vmdiff-fact");
        let id = sea.slaunch(pal, b"", CpuId(0), None).unwrap();
        let mut yields = 0u32;
        loop {
            match sea.step(pal, id).unwrap() {
                PalStep::Exited { output } => return (output, yields),
                PalStep::Yielded => {
                    yields += 1;
                    sea.resume(id, CpuId(0)).unwrap();
                }
            }
        }
    };
    let (out_t, yields_t) = drive(&mut FactoringPal::new(N, QUANTUM, PersistMode::InRegion));
    let (out_v, yields_v) = drive(&mut vm_factoring(N, QUANTUM, PersistMode::InRegion));
    assert_eq!(out_t, out_v, "in-region outputs diverge");
    assert_eq!(decode_factors(&out_t), Some((101, 103)));
    assert_eq!(yields_t, yields_v, "yield counts diverge");
    assert!(yields_t > 0, "the quantum must actually split the search");

    // Baseline hardware, TPM-sealed persistence: same factors after the
    // same number of full late-launch sessions.
    let drive_legacy = |pal: &mut dyn PalLogic| -> (Vec<u8>, u32) {
        let mut sea = legacy(b"vmdiff-fact-seal");
        let mut sessions = 0u32;
        loop {
            sessions += 1;
            assert!(sessions < 100, "runaway factoring loop");
            let out = run(&mut sea, pal, b"").expect("baseline PALs always exit");
            if decode_factors(&out).is_some() {
                return (out, sessions);
            }
        }
    };
    let (out_t, n_t) = drive_legacy(&mut FactoringPal::new(N, 40, PersistMode::TpmSeal));
    let (out_v, n_v) = drive_legacy(&mut vm_factoring(N, 40, PersistMode::TpmSeal));
    assert_eq!(out_t, out_v, "sealed outputs diverge");
    assert_eq!(n_t, n_v, "session counts diverge");
    assert!(n_t >= 3, "work must span sessions");

    // Prime n: both report the trivial pair.
    let (out_t, _) = drive(&mut FactoringPal::new(10007, 20_000, PersistMode::InRegion));
    let (out_v, _) = drive(&mut vm_factoring(10007, 20_000, PersistMode::InRegion));
    assert_eq!(out_t, out_v);
    assert_eq!(decode_factors(&out_t), Some((1, 10007)));
}

#[test]
fn rootkit_verdicts_agree_and_identities_differ() {
    let kernel = b"production kernel text".to_vec();
    let mut rooted = kernel.clone();
    rooted.extend_from_slice(b" + hook");

    // Verdict parity on clean and tampered snapshots, and quote parity:
    // each implementation's quote verifies against its own image (with
    // the snapshot digest as the extra extend) and is rejected as a
    // measurement mismatch against the other's — the VM program *is
    // different code* to the attestation machinery.
    let drive = |pal: &mut dyn PalLogic, snapshot: &[u8]| {
        let mut sea = enhanced(b"vmdiff-rk");
        let id = sea.slaunch(pal, snapshot, CpuId(0), None).unwrap();
        let done = sea.run_to_exit(pal, id, CpuId(0)).unwrap();
        let quote = sea.quote_and_free(id, b"rk-nonce").unwrap().value;
        let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        (done.output, quote, verifier)
    };

    let mut twin = RootkitDetector::new(&[&kernel]);
    let mut prog = vm_rootkit(&[&kernel]);
    for (snapshot, expected) in [(&kernel, 1u8), (&rooted, 0u8)] {
        let (out_t, quote_t, verifier) = drive(&mut twin, snapshot);
        let (out_v, quote_v, _) = drive(&mut prog, snapshot);
        assert_eq!(out_t, out_v, "verdicts diverge");
        assert_eq!(out_t, vec![expected]);

        let extends = [Sha1::digest(snapshot)];
        verifier
            .verify_sepcr_quote(&quote_t, b"rk-nonce", &twin.image(), &extends)
            .expect("twin quote verifies against the twin image");
        verifier
            .verify_sepcr_quote(&quote_v, b"rk-nonce", &prog.image(), &extends)
            .expect("program quote verifies against the bytecode image");
        assert_eq!(
            verifier.verify_sepcr_quote(&quote_t, b"rk-nonce", &prog.image(), &extends),
            Err(VerifyError::MeasurementMismatch),
            "twin quote must not pass as the bytecode build"
        );
        assert_eq!(
            verifier.verify_sepcr_quote(&quote_v, b"rk-nonce", &twin.image(), &extends),
            Err(VerifyError::MeasurementMismatch),
            "bytecode quote must not pass as the twin build"
        );

        // A whitelist trusting both builds names each correctly.
        let mut policy = TrustPolicy::new(verifier);
        policy.trust("rootkit-twin", &twin.image());
        policy.trust("rootkit-vm", &prog.image());
        assert_eq!(
            policy.identify_sepcr_quote(&quote_t, b"rk-nonce", &extends),
            Ok("rootkit-twin")
        );
        assert_eq!(
            policy.identify_sepcr_quote(&quote_v, b"rk-nonce", &extends),
            Ok("rootkit-vm")
        );
    }
}

#[test]
fn error_surfaces_agree() {
    // Every request that the twin rejects, the program rejects — checked
    // on fresh platforms so no earlier session masks a failure.
    type Mk = fn() -> (Box<dyn PalLogic>, Box<dyn PalLogic>);
    let ssh: Mk = || (Box::new(SshPassword::new()), Box::new(vm_ssh()));
    let ca: Mk = || (Box::new(CertAuthority::new()), Box::new(vm_ca()));

    let cases: [(Mk, Vec<u8>, &str); 7] = [
        (ssh, Vec::new(), "ssh: empty request"),
        (ssh, vec![0x07, 1, 2], "ssh: unknown tag"),
        (
            ssh,
            SshRequest::Verify(b"x".to_vec()).to_bytes(),
            "ssh: verify before enroll",
        ),
        (ca, Vec::new(), "ca: empty request"),
        (ca, vec![0x02], "ca: unknown tag"),
        (ca, vec![0x00, 0xFF], "ca: generate with payload"),
        (
            ca,
            CaRequest::Sign(b"csr".to_vec()).to_bytes(),
            "ca: sign before generate",
        ),
    ];
    for (mk, input, what) in cases {
        let (mut twin, mut prog) = mk();
        let t = legacy(b"vmdiff-err").run_session(twin.as_mut(), &input);
        let v = legacy(b"vmdiff-err").run_session(prog.as_mut(), &input);
        assert!(t.is_err(), "{what}: twin accepted");
        assert!(v.is_err(), "{what}: program accepted");
    }
}

#[test]
fn vm_identity_is_the_serialized_bytecode() {
    // The measured chain of a VM PAL is a pure function of the bytes the
    // interpreter executes: re-assembling the program reproduces it, and
    // it never collides with the twin's name-derived identity.
    let prog = vm_ssh();
    assert_eq!(prog.image(), vm_ssh().image(), "assembly is deterministic");
    assert_eq!(&prog.image()[..4], b"SVM1");
    assert_ne!(
        Verifier::expected_chain(&prog.image(), &[]),
        Verifier::expected_chain(&SshPassword::new().image(), &[]),
        "attestation must distinguish the builds"
    );
}
