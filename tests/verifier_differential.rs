//! Verifier differential suite: the remote verifier pinned against the
//! platform stack it is forbidden to import.
//!
//! `sea_fleet::verifier` re-implements the attestation protocol — wire
//! framing, measurement-chain replay, the quote digest — from the spec,
//! using only `sea_crypto` (`scripts/ci.sh` greps the module to keep
//! platform types out). That independence is only worth anything if the
//! two implementations actually agree, so this suite replays
//! platform-emitted bytes through the remote verifier:
//!
//! * **Agreement**: the fleet verifier's expected chain equals
//!   `sea_core::Verifier`'s, and its wire parser accepts exactly the
//!   bytes `sea_tpm`'s quote serializer emits (and rejects the same
//!   malformed framings).
//! * **Typed verdicts**: honest sessions verify `Ok`; adversarial,
//!   degraded, and killed ones are rejected with the precise
//!   [`RejectReason`] each deserves.
//! * **Tamper evidence**: flipping any single bit of a wire quote
//!   flips the verdict to a rejection.
//! * **Fleet determinism**: a 1000-platform fleet produces a
//!   byte-identical [`sea_fleet::FleetOutcome`] at every shard count
//!   and under both dispatch policies' own re-runs — and a *churned*
//!   fleet (network faults, reboots, rotation, adversarial wires) stays
//!   byte-identical across shards, executors, and submission orders.
//! * **Boundary agreement**: the freshness-window edge (`== window`
//!   accepted, `window + 1` stale) behaves identically on the fleet
//!   verifier and on `sea_core::AttestationService`; the session-ticket
//!   TTL edge likewise on the fleet verifier.
//! * **Churn artifact**: the churn experiment is the suite's tenth
//!   artifact, validating under `suite --validate`.

use sea_bench::driver::{run_suite_serial, suite_json, validate_suite_json, SuiteConfig};
use sea_core::{
    AttestationService, BatchPolicy, ConcurrentJob, Executor, FnPal, PalOutcome, ProtocolError,
    RetryPolicy, SecurePlatform, SessionEngine, SessionResult, Slaunch, TrustPolicy, Verifier,
};
use sea_crypto::Sha1;
use sea_fleet::{
    expected_chain, parse_wire, run_fleet, run_fleet_with_submission, service_image, AdversaryKind,
    ChurnPlan, FleetConfig, FleetPolicy, KeyVault, MissingKind, ParsedSource, RejectReason,
    RequestFate, TcbInfo, TcbPolicy, TcbStatus, VerifierService, FLEET_SERVICE,
};
use sea_hw::{CpuId, FaultPlan, NetPlan, Obs, Platform, SimDuration, SimTime, RATE_DENOM};
use sea_os::DispatchPolicy;
use sea_tpm::{PcrIndex, Quote, QuoteSource, SKILL_CONSTANT};

/// Runs `jobs` sessions of PAL `name` on vault platform `index` and
/// returns the terminal session results. Mirrors the fleet's
/// per-platform execution: vault TPM, static job→CPU assignment, the
/// discrete-event backend, job-index nonces.
fn run_sessions(
    index: usize,
    name: &str,
    jobs: usize,
    platform: Platform,
    faults: Option<FaultPlan>,
    retry: Option<RetryPolicy>,
) -> Vec<SessionResult> {
    let workers = platform.n_cpus as usize;
    let secure = SecurePlatform::with_tpm(platform, KeyVault::global().tpm(index));
    let mut engine = SessionEngine::<Slaunch>::new(secure, workers).expect("pool fits platform");
    engine.set_fault_plan(Some(faults.unwrap_or_else(FaultPlan::fault_free)));
    let mut policy = BatchPolicy::plain().with_executor(Executor::DiscreteEvent);
    if let Some(retry) = retry {
        // Keyed sessions: saturation degrades and faults kill in-band
        // instead of surfacing as batch errors.
        policy = policy.with_retry(retry);
    }
    let batch: Vec<ConcurrentJob> = (0..jobs)
        .map(|i| {
            ConcurrentJob::new(
                Box::new(FnPal::new(name, move |ctx| {
                    ctx.work(SimDuration::from_us(50));
                    Ok(PalOutcome::Exit((i as u64).to_le_bytes().to_vec()))
                })),
                b"",
            )
        })
        .collect();
    engine.run(batch, &policy).expect("batch runs").sessions
}

/// Honest fleet-service sessions on vault platform `index`, as wire
/// bytes. Job `i` quotes nonce `i as u64` (little-endian) — the engine
/// convention the fleet's challenge bookkeeping relies on.
fn honest_wires(index: usize, jobs: usize) -> Vec<Vec<u8>> {
    run_sessions(
        index,
        FLEET_SERVICE,
        jobs,
        Platform::recommended(2),
        None,
        None,
    )
    .into_iter()
    .enumerate()
    .map(|(i, s)| match s {
        SessionResult::Quoted { quote, .. } => quote.to_bytes(),
        other => panic!("honest job {i} did not quote: {other:?}"),
    })
    .collect()
}

/// A verifier provisioned the way the fleet provisions one: CA root,
/// certificates for vault platforms `0..platforms`, the fleet-service
/// build trusted and listed `UpToDate` in a v1 TCB table.
fn provisioned(platforms: usize) -> VerifierService {
    let vault = KeyVault::global();
    let image = service_image();
    let mut v = VerifierService::new(vault.ca_public());
    v.trust(FLEET_SERVICE, &image, &[]);
    v.ingest_tcb(TcbInfo::new(1).with_status(Sha1::digest(&image), TcbStatus::UpToDate))
        .expect("fresh verifier accepts any table");
    for p in 0..platforms {
        v.enroll(vault.certificate(p));
    }
    v
}

fn nonce(i: u64) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

// ---------------------------------------------------------------------
// Agreement: two independent implementations, one protocol
// ---------------------------------------------------------------------

#[test]
fn verifier_reimplements_platform_chain_and_wire_format() {
    let image = service_image();

    // The measurement-chain replay agrees with the platform-side
    // verifier, with and without extra extends.
    let extra = Sha1::digest(b"vdiff/extra");
    assert_eq!(
        expected_chain(&image, &[])[..],
        Verifier::expected_chain(&image, &[]).as_bytes()[..]
    );
    assert_eq!(
        expected_chain(&image, &[extra])[..],
        Verifier::expected_chain(&image, &[extra]).as_bytes()[..]
    );

    // Platform-emitted wire bytes parse identically on both sides.
    let wires = honest_wires(0, 3);
    for (i, bytes) in wires.iter().enumerate() {
        let remote = parse_wire(bytes).expect("fleet parser accepts platform wire");
        let local = Quote::from_bytes(bytes).expect("platform parser accepts its own wire");
        assert_eq!(remote.nonce, nonce(i as u64), "engine nonce convention");
        assert_eq!(local.nonce(), &remote.nonce[..]);
        assert_eq!(local.signature().0, remote.signature);
        match (&remote.source, local.source()) {
            (ParsedSource::SePcr(d), QuoteSource::SePcr { value }) => {
                assert_eq!(&value.as_bytes()[..], &d[..]);
                assert_eq!(*d, expected_chain(&image, &[]));
            }
            other => panic!("parsers disagree on the source: {other:?}"),
        }
    }

    // Malformed framings reject on both sides — and the remote side
    // says precisely why.
    let wire = &wires[0];
    let mut bad_magic = wire.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(parse_wire(&bad_magic), Err(RejectReason::BadMagic));
    assert!(Quote::from_bytes(&bad_magic).is_err());

    let mut bad_version = wire.clone();
    bad_version[4] = 0;
    bad_version[5] = 1;
    assert_eq!(
        parse_wire(&bad_version),
        Err(RejectReason::UnsupportedVersion(1))
    );
    assert!(Quote::from_bytes(&bad_version).is_err());

    let truncated = &wire[..wire.len() - 1];
    assert_eq!(parse_wire(truncated), Err(RejectReason::Truncated));
    assert!(Quote::from_bytes(truncated).is_err());

    let mut trailing = wire.clone();
    trailing.push(0);
    assert_eq!(parse_wire(&trailing), Err(RejectReason::TrailingBytes));
    assert!(Quote::from_bytes(&trailing).is_err());
}

// ---------------------------------------------------------------------
// Typed verdicts: honest Ok, everything else named
// ---------------------------------------------------------------------

#[test]
fn honest_sessions_verify_and_protocol_violations_reject_typed() {
    let mut v = provisioned(4);

    // Honest quotes are accepted with the full attestation.
    let wires = honest_wires(0, 2);
    for (i, w) in wires.iter().enumerate() {
        v.challenge(0, &nonce(i as u64), 0);
        let verdict = v.verify(0, w, 1_000_000);
        let att = verdict.result.expect("honest quote accepted");
        assert_eq!(att.platform, 0);
        assert_eq!(att.service, FLEET_SERVICE);
        assert_eq!(att.tcb, TcbStatus::UpToDate);
    }

    // Replaying an already-verified quote: its nonce is spent.
    let replay = v.verify(0, &wires[0], 2_000_000);
    assert_eq!(replay.result.unwrap_err(), RejectReason::ReplayedNonce);

    // A platform the verifier never enrolled.
    let unknown = v.verify(99, &wires[0], 0);
    assert_eq!(unknown.result.unwrap_err(), RejectReason::UnknownPlatform);

    // A valid quote nobody challenged for.
    let unchallenged = honest_wires(1, 1);
    let r = v.verify(1, &unchallenged[0], 0);
    assert_eq!(r.result.unwrap_err(), RejectReason::UnknownNonce);

    // A quote that arrives after the freshness window closes.
    let mut stale = provisioned(1);
    stale.set_freshness_window_ns(1_000);
    stale.challenge(0, &nonce(0), 0);
    let r = stale.verify(0, &wires[0], 1_000_000);
    assert_eq!(r.result.unwrap_err(), RejectReason::StaleQuote);
}

#[test]
fn adversarial_degraded_and_killed_sessions_reject_typed() {
    let image = service_image();
    let mut v = provisioned(4);

    // An unknown PAL image measures to a chain the verifier never
    // trusted.
    let rogue = run_sessions(2, "rogue-service", 1, Platform::recommended(2), None, None);
    let rogue_wire = match &rogue[0] {
        SessionResult::Quoted { quote, .. } => quote.to_bytes(),
        other => panic!("rogue session did not quote: {other:?}"),
    };
    v.challenge(2, &nonce(0), 0);
    let r = v.verify(2, &rogue_wire, 0);
    assert_eq!(r.result.unwrap_err(), RejectReason::MeasurementMismatch);

    // An adversary replaying the SKILL branding by hand: allocate the
    // trusted image's chain, extend the kill constant, quote it. The
    // signature is genuine — the chain itself convicts.
    let mut tpm = KeyVault::global().tpm(3).with_sepcrs(4);
    let handle = tpm
        .slaunch_measure(&image, CpuId(0))
        .expect("sePCR free")
        .value;
    tpm.sepcr_extend(handle, CpuId(0), &SKILL_CONSTANT)
        .expect("owner extends");
    tpm.sepcr_release_to_quote(handle, CpuId(0))
        .expect("release");
    let branded = tpm
        .sepcr_quote(handle, &nonce(0))
        .expect("quote")
        .value
        .into_bytes();
    v.challenge(3, &nonce(0), 0);
    let r = v.verify(3, &branded, 0);
    assert_eq!(r.result.unwrap_err(), RejectReason::PalKilled);

    // An ordinary-PCR quote is signed platform state, but not secure
    // execution.
    let legacy = tpm
        .quote(&nonce(1), &[PcrIndex(17)])
        .expect("pcr quote")
        .value
        .into_bytes();
    v.challenge(3, &nonce(1), 0);
    let r = v.verify(3, &legacy, 0);
    assert_eq!(r.result.unwrap_err(), RejectReason::WrongSource);

    // Degraded sessions (sePCR bank saturated, legacy slow path) carry
    // no sePCR quote; the fleet reports them as missing, typed.
    let degraded = run_sessions(
        0,
        FLEET_SERVICE,
        3,
        Platform::recommended(2).with_sepcr_count(1),
        None,
        Some(RetryPolicy::new(0, SimDuration::ZERO)),
    );
    assert!(
        degraded
            .iter()
            .any(|s| matches!(s, SessionResult::Degraded { .. })),
        "no session degraded: {degraded:?}"
    );
    let r = v.reject_missing(0, MissingKind::Degraded);
    assert_eq!(
        r.result.unwrap_err(),
        RejectReason::MissingQuote(MissingKind::Degraded)
    );

    // Killed sessions (fatal fault, SKILL teardown) likewise.
    let lethal = FaultPlan::new(0xDEAD)
        .with_tpm_rate(RATE_DENOM / 2)
        .with_fatal_ratio(RATE_DENOM);
    let killed = run_sessions(
        1,
        FLEET_SERVICE,
        8,
        Platform::recommended(2),
        Some(lethal),
        Some(RetryPolicy::new(0, SimDuration::ZERO)),
    );
    assert!(
        killed
            .iter()
            .any(|s| matches!(s, SessionResult::Killed { .. })),
        "no session killed: {killed:?}"
    );
    let r = v.reject_missing(1, MissingKind::Killed);
    assert_eq!(
        r.result.unwrap_err(),
        RejectReason::MissingQuote(MissingKind::Killed)
    );
}

#[test]
fn tcb_status_policy_gates_otherwise_valid_quotes() {
    let image = service_image();
    let wires = honest_wires(0, 3);

    // The build ages out: OutOfDate rejects under the strict policy...
    let mut v = provisioned(1);
    v.ingest_tcb(TcbInfo::new(2).with_status(Sha1::digest(&image), TcbStatus::OutOfDate))
        .expect("newer table");
    v.challenge(0, &nonce(0), 0);
    let r = v.verify(0, &wires[0], 0);
    assert_eq!(r.result.unwrap_err(), RejectReason::TcbOutOfDate);

    // ...but a tolerant policy accepts it and says what it accepted.
    v.set_policy(TcbPolicy::strict().accept_out_of_date(true));
    v.challenge(0, &nonce(1), 0);
    let att = v.verify(0, &wires[1], 0).result.expect("tolerated");
    assert_eq!(att.tcb, TcbStatus::OutOfDate);

    // Revocation is terminal under every policy composition.
    v.ingest_tcb(TcbInfo::new(3).with_status(Sha1::digest(&image), TcbStatus::Revoked))
        .expect("newer table");
    v.challenge(0, &nonce(2), 0);
    let r = v.verify(0, &wires[2], 0);
    assert_eq!(r.result.unwrap_err(), RejectReason::TcbRevoked);

    // A table rollback is refused outright.
    assert_eq!(v.ingest_tcb(TcbInfo::new(1)), Err(1));
}

// ---------------------------------------------------------------------
// Tamper evidence: one bit is enough
// ---------------------------------------------------------------------

#[test]
fn every_single_bit_flip_is_rejected() {
    let wire = honest_wires(0, 1).remove(0);
    let mut v = provisioned(1);
    v.challenge(0, &nonce(0), 0);

    for byte in 0..wire.len() {
        for bit in 0..8 {
            let mut tampered = wire.clone();
            tampered[byte] ^= 1 << bit;
            let verdict = v.verify(0, &tampered, 0);
            assert!(
                verdict.result.is_err(),
                "flipping bit {bit} of byte {byte} still verified"
            );
        }
    }

    // The pristine wire still verifies: the challenge survived every
    // tampered attempt (none of them could legitimately spend it).
    let verdict = v.verify(0, &wire, 0);
    assert!(verdict.result.is_ok(), "{:?}", verdict.result);
}

// ---------------------------------------------------------------------
// Fleet determinism at scale, and the ninth artifact
// ---------------------------------------------------------------------

#[test]
fn thousand_platform_fleet_is_byte_identical_across_shards_and_dispatch() {
    // 250 requests keep debug crypto affordable; the fleet itself is
    // 1000 enrolled platforms (1000 AIKs, 1000 cert chains at the
    // verifier). Round-robin lands each request on its own platform, so
    // every verification walks the certificate chain.
    let base = run_fleet(&FleetConfig::new(1000, 250));
    assert_eq!(base.requests.len(), 250);
    assert_eq!(base.accepted, 250);
    assert_eq!(base.rejected, 0);
    assert_eq!(base.cert_walks, 250);
    assert_eq!(base.ticket_hits, 0);

    // Shard layout is pure bookkeeping: the outcome — every request's
    // wire bytes, verdict, and virtual timestamp — is byte-identical.
    let sharded = run_fleet(&FleetConfig::new(1000, 250).with_shards(64));
    assert_eq!(sharded, base);

    // The hashed dispatcher orders requests differently; its outcome
    // must be equally shard-invariant.
    let hashed = FleetConfig::new(1000, 250).with_policy(DispatchPolicy::Hashed { seed: 0xD15 });
    let h1 = run_fleet(&hashed.clone().with_shards(1));
    let h32 = run_fleet(&hashed.with_shards(32));
    assert_eq!(h1, h32);
    assert_eq!(h1.accepted, 250);
    // Hashing collides some platforms, so tickets actually serve.
    assert!(h1.ticket_hits > 0);
    assert_eq!(h1.cert_walks + h1.ticket_hits, 250);
}

#[test]
fn fleet_outcome_is_executor_invariant() {
    let des = run_fleet(&FleetConfig::new(6, 18));
    let tp = run_fleet(&FleetConfig::new(6, 18).with_executor(Executor::ThreadPool));
    assert_eq!(des, tp);
}

#[test]
fn churn_is_the_tenth_suite_artifact_and_validates() {
    let arts = run_suite_serial(&SuiteConfig::smoke());
    assert_eq!(arts.len(), 11);
    assert_eq!(arts[8].name, "Fleet");
    assert!(arts[8].rendered.contains("goodput/s"));
    assert_eq!(arts[9].name, "Churn");
    assert!(arts[9].rendered.contains("goodput/s"));
    assert!(arts[9].metrics.total_virtual_ns > 0);
    assert_eq!(arts[10].name, "VM");
    assert!(arts[10].rendered.contains("speedup"));

    let text = suite_json(&arts, true);
    validate_suite_json(&text).expect("suite JSON with the churn artifact validates");
    assert!(text.contains("\"fleet\""), "fleet seed missing: {text}");
    assert!(text.contains("\"churn\""), "churn seed missing: {text}");
}

// ---------------------------------------------------------------------
// Boundary agreement: acceptance-window edges on both implementations
// ---------------------------------------------------------------------

#[test]
fn freshness_window_edge_agrees_on_both_verifiers() {
    const WINDOW_NS: u64 = 1_000_000;
    let vault = KeyVault::global();
    let wire = honest_wires(0, 1).remove(0);
    let quote = Quote::from_bytes(&wire).expect("own wire parses");

    // Fleet verifier: a wire arriving exactly at issued + window is
    // accepted; one nanosecond later it is stale.
    let mut v = provisioned(1);
    v.set_freshness_window_ns(WINDOW_NS);
    v.challenge(0, &nonce(0), 0);
    let at_edge = v.verify(0, &wire, WINDOW_NS);
    assert!(at_edge.result.is_ok(), "{:?}", at_edge.result);
    let late = quote
        .reissue(&nonce(1), &vault.aik(0))
        .expect("vault key signs")
        .to_bytes();
    v.challenge(0, &nonce(1), 0);
    let past_edge = v.verify(0, &late, WINDOW_NS + 1);
    assert_eq!(past_edge.result.unwrap_err(), RejectReason::StaleQuote);

    // Platform-side protocol service: same `>` semantics at the same
    // edge, per its own clock type.
    let policy = TrustPolicy::new(Verifier::new(vault.tpm(0).aik_public().clone()));
    let mut service = AttestationService::new(policy, SimDuration::from_ns(WINDOW_NS), b"boundary");
    service.policy_mut().trust(FLEET_SERVICE, &service_image());
    let t0 = SimTime::from_ns(0);
    let c = service.issue(t0);
    let answer = quote.reissue(c.nonce(), &vault.aik(0)).expect("signs");
    assert_eq!(
        service.consume(&answer, t0 + SimDuration::from_ns(WINDOW_NS)),
        Ok(FLEET_SERVICE.to_owned()),
        "exactly at the window is fresh on the platform side too"
    );
    let c2 = service.issue(t0);
    let answer2 = quote.reissue(c2.nonce(), &vault.aik(0)).expect("signs");
    assert_eq!(
        service.consume(&answer2, t0 + SimDuration::from_ns(WINDOW_NS + 1)),
        Err(ProtocolError::ChallengeExpired)
    );
}

#[test]
fn ticket_ttl_edge_hits_then_walks() {
    const TTL_NS: u64 = 500_000;
    let vault = KeyVault::global();
    let wire = honest_wires(0, 1).remove(0);
    let quote = Quote::from_bytes(&wire).expect("own wire parses");
    let mut v = provisioned(1);
    v.set_ticket_ttl_ns(TTL_NS);

    // First verification walks the chain and mints a ticket at t=0.
    v.challenge(0, &nonce(0), 0);
    let first = v.verify(0, &wire, 0);
    assert!(first.result.is_ok());
    assert!(!first.ticket_hit);

    // A ticket used exactly at its TTL still serves...
    let w1 = quote.reissue(&nonce(1), &vault.aik(0)).expect("signs");
    v.challenge(0, &nonce(1), 0);
    let at_edge = v.verify(0, &w1.to_bytes(), TTL_NS);
    assert!(at_edge.result.is_ok());
    assert!(at_edge.ticket_hit, "exactly at the TTL is a hit");

    // ...one nanosecond past it, the chain is walked again (and a
    // fresh ticket minted).
    let w2 = quote.reissue(&nonce(2), &vault.aik(0)).expect("signs");
    v.challenge(0, &nonce(2), 0);
    let past_edge = v.verify(0, &w2.to_bytes(), TTL_NS + 1);
    assert!(past_edge.result.is_ok());
    assert!(!past_edge.ticket_hit, "past the TTL walks the chain");
    assert_eq!(v.stats().cert_walks, 2);
    assert_eq!(v.stats().ticket_hits, 1);
}

// ---------------------------------------------------------------------
// Churn: lossy delivery properties and fleet-level byte-identity
// ---------------------------------------------------------------------

/// A churn plan heavy on duplication and reordering, with replayed,
/// bit-flipped, and forged adversarial wires riding along.
fn lossy_churn(seed: u64) -> ChurnPlan {
    ChurnPlan::new(seed)
        .with_net(
            NetPlan::new(seed)
                .with_drop_rate(6_000)
                .with_delay_rate(10_000)
                .with_duplicate_rate(16_000)
                .with_reorder_rate(16_000),
        )
        .with_adversary(16_000, 0, 16_000, 16_000)
}

#[test]
fn duplicated_and_reordered_delivery_never_double_counts() {
    // The property, at 1 and 4 workers on both executors: every request
    // resolves to exactly one typed fate, duplicate wire copies are
    // rejected at the verifier (never re-resolved), and no replayed
    // single-use nonce is ever accepted.
    for workers in [1u16, 4] {
        let cfg = FleetConfig::new(3, 10)
            .with_cpus(workers)
            .with_churn(lossy_churn(0x10_55))
            .with_lifecycle(FleetPolicy::resilient().with_max_attempts(8));
        let des = run_fleet(&cfg);
        let tp = run_fleet(&cfg.clone().with_executor(Executor::ThreadPool));
        assert_eq!(des, tp, "executor-invariant at {workers} workers");

        // Exactly one outcome per request id — no double resolution.
        let mut seen: Vec<u64> = des.requests.iter().map(|r| r.request).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
        assert_eq!(des.accepted + des.rejected + des.timed_out, 10);

        // Duplicated copies reached the verifier and were rejected
        // there (wire-level), without disturbing the fate-level counts.
        assert!(
            des.stats.requests > des.requests.iter().map(|r| r.attempts as u64).sum::<u64>()
                || des.stats.rejected > 0,
            "the lossy plan should have produced extra wire traffic"
        );

        // Replayed nonces never verify.
        for adv in des
            .adversarial
            .iter()
            .filter(|a| a.kind == AdversaryKind::Replay)
        {
            assert_eq!(
                adv.verdict.clone().unwrap_err(),
                RejectReason::ReplayedNonce
            );
        }
    }
}

#[test]
fn churned_fleet_is_byte_identical_across_shards_executors_and_orders() {
    let churn = lossy_churn(0xC1_44)
        .with_reboots(RATE_DENOM / 4, 400_000)
        .with_rotation(RATE_DENOM / 3, 2_000_000, 600_000);
    let cfg = FleetConfig::new(16, 32)
        .with_churn(churn)
        .with_lifecycle(FleetPolicy::resilient().with_max_attempts(6));

    let base = run_fleet(&cfg);
    assert_eq!(base.requests.len(), 32);
    for shards in [4usize, 16] {
        assert_eq!(
            run_fleet(&cfg.clone().with_shards(shards)),
            base,
            "shards = {shards}"
        );
    }
    assert_eq!(
        run_fleet(&cfg.clone().with_executor(Executor::ThreadPool)),
        base,
        "executor backend"
    );
    let mut permuted: Vec<u64> = (0..32).rev().collect();
    permuted.swap(3, 17);
    permuted.swap(0, 31);
    assert_eq!(
        run_fleet_with_submission(&cfg, &permuted, Obs::null()),
        base,
        "submission permutation"
    );
}

#[test]
fn every_adversarial_wire_is_rejected_with_a_typed_reason() {
    // A finite freshness window lets the stale-nonce adversary exist;
    // it is generous enough that honest (even retried) wires stay
    // fresh.
    let churn = ChurnPlan::new(0xAD_17)
        .with_net(NetPlan::new(0xAD_17).with_delay_rate(10_000))
        .with_adversary(
            RATE_DENOM / 2,
            RATE_DENOM / 2,
            RATE_DENOM / 2,
            RATE_DENOM / 2,
        );
    let cfg = FleetConfig::new(4, 16)
        .with_churn(churn)
        .with_lifecycle(FleetPolicy::resilient())
        .with_freshness_window_ns(50_000_000);
    let out = run_fleet(&cfg);

    assert_eq!(out.accepted, 16, "honest traffic unharmed");
    assert!(!out.adversarial.is_empty());
    assert_eq!(out.adversarial_rejected, out.adversarial.len());
    let mut kinds_seen = std::collections::BTreeSet::new();
    for adv in &out.adversarial {
        kinds_seen.insert(adv.kind);
        let reason = adv.verdict.clone().expect_err("adversarial wire rejected");
        match adv.kind {
            AdversaryKind::Replay => assert_eq!(reason, RejectReason::ReplayedNonce),
            AdversaryKind::StaleNonce => assert_eq!(reason, RejectReason::StaleQuote),
            AdversaryKind::ForgedCert => assert_eq!(reason, RejectReason::BadSignature),
            AdversaryKind::BitFlip => {} // typed, but flip-position-dependent
            _ => {}
        }
    }
    assert_eq!(kinds_seen.len(), 4, "all four attack kinds fired");
    // Fates stay typed under attack.
    assert!(out
        .requests
        .iter()
        .all(|r| r.fate == RequestFate::Verified || r.fate == RequestFate::Retried));
}
