//! Crash-point property suite for the crash-consistent durable engine.
//!
//! The contract under test: take a 16-session reference batch under a
//! fault-injecting (but fatal-free) plan, record how many trace events
//! the crash-free run emits, then re-run the batch through
//! [`SessionEngine::run`] under a durable policy with the power cord
//! yanked at **every**
//! trace-event boundary. At every cut point the batch must finish with
//! sessions byte-identical to the crash-free run, no Exclusive sePCR or
//! protected page left behind, `committed + relaunched = jobs` for the
//! recovery epoch, and a sealed NVRAM checkpoint that unseals and
//! replays every terminal — deterministically at any worker count.
//!
//! `SEA_CRASH_SEED` selects the fault tape the reference batch replays
//! (scripts/ci.sh pins one).

use sea_core::{
    BatchOutcome, BatchPolicy, ConcurrentJob, FnPal, PalOutcome, RetryPolicy, SecurePlatform,
    SessionEngine, SessionJournal, SessionResult, Slaunch, JOURNAL_NV_INDEX,
};
use sea_hw::{CpuId, FaultPlan, Platform, ResetPlan, SimDuration, TraceEvent};
use sea_tpm::{KeyStrength, SealedBlob};

const JOBS: usize = 16;
const WORKERS: usize = 4;

fn engine(workers: usize) -> SessionEngine<Slaunch> {
    let platform = SecurePlatform::new(
        Platform::recommended(WORKERS as u16),
        KeyStrength::Demo512,
        b"crash",
    );
    SessionEngine::new(platform, workers).expect("pool fits platform")
}

/// The reference fault plan: transient-only (no kills), hot enough that
/// every fault class — TPM transport, memory denial, timer expiry —
/// lands somewhere in a 16-session batch, so the crash sweep cuts
/// through retries and preemptions, not just clean completions.
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_tpm_rate(6000)
        .with_mem_rate(6000)
        .with_timer_rate(6000)
        .with_fatal_ratio(0)
}

fn crash_seed() -> u64 {
    std::env::var("SEA_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Jobs that yield twice, so suspended sessions are live when the plug
/// is pulled, not just launching or quoting ones. The step counter
/// lives in the PAL's in-region state, not in captured host state: a
/// platform reset evaporates the region, so a relaunched session
/// restarts from step one exactly as real restartable PAL logic must.
fn batch() -> Vec<ConcurrentJob> {
    (0..JOBS)
        .map(|i| {
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("crash-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_us(40 * (1 + (i as u64 % 4))));
                    let done = ctx.state().first().copied().unwrap_or(0) + 1;
                    ctx.set_state(vec![done]);
                    if done == 3 {
                        Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            )
        })
        .collect()
}

/// Clears the worker-assignment field for cross-worker-count
/// comparisons (the CPU a job lands on is a function of the worker
/// count, not of crash recovery).
fn normalize(mut sessions: Vec<SessionResult>) -> Vec<SessionResult> {
    for s in &mut sessions {
        if let SessionResult::Quoted { result, .. } = s {
            result.cpu = CpuId(0);
        }
    }
    sessions
}

/// The crash-free reference: sessions plus the total number of trace
/// events the batch emits (the cut points the sweep enumerates).
fn reference(seed: u64) -> (Vec<SessionResult>, u64) {
    let mut pool = engine(WORKERS);
    pool.set_fault_plan(Some(fault_plan(seed)));
    let out = pool
        .run(
            batch(),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .expect("reference batch runs");
    assert_eq!(
        out.quoted(),
        JOBS,
        "seed {seed}: the reference plan must be transient-only"
    );
    let sea = pool.into_inner();
    let total = sea.platform().machine().trace().recorded();
    assert!(
        total > 0,
        "seed {seed}: the reference plan must inject something to cut against"
    );
    (out.sessions, total)
}

/// Runs the durable batch with the cord yanked after `cut` trace events
/// and checks the full crash-point contract. Returns the outcome for
/// caller-side comparisons.
fn check_cut(seed: u64, workers: usize, cut: u64, reference: &[SessionResult]) -> BatchOutcome {
    let mut pool = engine(workers);
    pool.set_fault_plan(Some(fault_plan(seed)));
    let d = pool
        .run(
            batch(),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(ResetPlan::reset_free().with_cut_after_events(cut)),
        )
        .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: batch aborted: {e}"));

    // Every session is accounted for and byte-identical to the
    // crash-free run — same outputs, same reports, same quotes.
    assert_eq!(
        d.quoted() + d.degraded() + d.killed(),
        JOBS,
        "seed {seed} cut {cut}: session lost"
    );
    assert_eq!(
        normalize(d.sessions.clone()),
        normalize(reference.to_vec()),
        "seed {seed} cut {cut}: sessions diverged from the crash-free run"
    );

    // The reset ledger balances: a cut inside the batch fires exactly
    // one reset, and every session is then either restored from the
    // journal or relaunched; a cut past the last event never fires.
    if d.resets > 0 {
        assert_eq!(d.resets, 1, "seed {seed} cut {cut}: reset-free plan");
        assert_eq!(
            d.committed.len() + d.relaunched.len(),
            JOBS,
            "seed {seed} cut {cut}: committed {:?} + relaunched {:?}",
            d.committed,
            d.relaunched
        );
        assert!(d.recovery_latency >= sea_hw::RESET_REBOOT_COST);
    } else {
        assert!(d.committed.is_empty() && d.relaunched.is_empty());
        assert_eq!(d.recovery_latency, SimDuration::ZERO);
    }

    // Nothing leaked across the crash: every sePCR is Free again and no
    // page is still protected.
    let mut sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(
        tpm.sepcrs().free_count(),
        tpm.sepcrs().count(),
        "seed {seed} cut {cut}: leaked an Exclusive sePCR"
    );
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!(
        (cpus_pages, none_pages),
        (0, 0),
        "seed {seed} cut {cut}: leaked protected pages"
    );
    if d.resets > 0 {
        let trace = sea.platform().machine().trace();
        assert!(trace
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::PlatformReset)));
    }

    // The final sealed checkpoint is intact: it unseals, parses, has no
    // torn entry, and replays every terminal session.
    let blob = sea
        .platform()
        .tpm()
        .expect("tpm")
        .nvram()
        .read_blob(JOURNAL_NV_INDEX)
        .unwrap_or_else(|| panic!("seed {seed} cut {cut}: checkpoint missing"))
        .to_vec();
    let blob = SealedBlob::from_bytes(&blob)
        .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: checkpoint corrupt: {e}"));
    let bytes = sea
        .platform_mut()
        .tpm_mut()
        .expect("tpm")
        .unseal(&blob)
        .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: checkpoint sealed shut: {e}"))
        .value;
    let journal = SessionJournal::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: journal corrupt: {e}"));
    assert!(journal.torn().is_empty(), "seed {seed} cut {cut}");
    assert_eq!(
        journal.restore().expect("journal restores").len(),
        JOBS,
        "seed {seed} cut {cut}: checkpoint is missing terminals"
    );
    d
}

/// The tentpole property: cut at **every** trace-event boundary of the
/// reference batch (and one past the end, where the cut never lands)
/// and recover cleanly every time.
#[test]
fn crash_point_sweep_every_event_boundary_recovers() {
    let seed = crash_seed();
    let (reference, total) = reference(seed);
    let mut fired = 0u32;
    for cut in 0..=(total + 1) {
        let d = check_cut(seed, WORKERS, cut, &reference);
        // Cuts inside the crash-free trace always land; the one past
        // the end must not.
        if cut <= total {
            assert_eq!(d.resets, 1, "seed {seed} cut {cut} of {total}: no reset");
            fired += 1;
        } else {
            assert_eq!(
                d.resets, 0,
                "seed {seed} cut {cut} of {total}: phantom reset"
            );
        }
    }
    assert_eq!(fired, total as u32 + 1);
}

/// Group size used by the group-commit sweeps: deliberately coprime to
/// the batch size so the final group is partial (its commits stay
/// buffered as `Volatile` until the epoch ends).
const GROUP: usize = 3;

/// Runs the durable batch under group commit with the cord yanked after
/// `cut` trace events. The group-commit contract is the crash-point
/// contract minus the full-checkpoint clause: buffered commits are
/// volatile by design, so the final NVRAM seal may trail the batch —
/// but sessions must still be byte-identical to the crash-free run,
/// the recovery ledger must balance, and nothing may leak.
fn check_group_cut(
    seed: u64,
    workers: usize,
    group: usize,
    cut: u64,
    reference: &[SessionResult],
) -> BatchOutcome {
    let mut pool = engine(workers);
    pool.set_fault_plan(Some(fault_plan(seed)));
    let d = pool
        .run(
            batch(),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(ResetPlan::reset_free().with_cut_after_events(cut))
                .with_group_commit(group),
        )
        .unwrap_or_else(|e| panic!("seed {seed} group {group} cut {cut}: batch aborted: {e}"));

    assert_eq!(
        d.quoted() + d.degraded() + d.killed(),
        JOBS,
        "seed {seed} group {group} cut {cut}: session lost"
    );
    assert_eq!(
        normalize(d.sessions.clone()),
        normalize(reference.to_vec()),
        "seed {seed} group {group} cut {cut}: sessions diverged from the crash-free run"
    );

    if d.resets > 0 {
        assert_eq!(d.resets, 1, "seed {seed} group {group} cut {cut}");
        assert_eq!(
            d.committed.len() + d.relaunched.len(),
            JOBS,
            "seed {seed} group {group} cut {cut}: committed {:?} + relaunched {:?}",
            d.committed,
            d.relaunched
        );
        // The journal seals on exactly every `group`-th commit, so the
        // checkpoint the recovery restored from can only ever hold a
        // whole number of groups.
        assert_eq!(
            d.committed.len() % group,
            0,
            "seed {seed} group {group} cut {cut}: recovered a partial group {:?}",
            d.committed
        );
    } else {
        assert!(d.committed.is_empty() && d.relaunched.is_empty());
    }

    // No Exclusive sePCR or protected page survives the crash.
    let mut sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(
        tpm.sepcrs().free_count(),
        tpm.sepcrs().count(),
        "seed {seed} group {group} cut {cut}: leaked an Exclusive sePCR"
    );
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!(
        (cpus_pages, none_pages),
        (0, 0),
        "seed {seed} group {group} cut {cut}: leaked protected pages"
    );

    // Whatever checkpoint the batch last sealed must still be intact:
    // unsealable, parseable, and torn-free.
    if let Some(bytes) = sea
        .platform()
        .tpm()
        .expect("tpm")
        .nvram()
        .read_blob(JOURNAL_NV_INDEX)
        .map(<[u8]>::to_vec)
    {
        let blob = SealedBlob::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed} group {group} cut {cut}: corrupt: {e}"));
        let opened = sea
            .platform_mut()
            .tpm_mut()
            .expect("tpm")
            .unseal(&blob)
            .unwrap_or_else(|e| panic!("seed {seed} group {group} cut {cut}: sealed shut: {e}"));
        let journal = SessionJournal::from_bytes(&opened.value)
            .unwrap_or_else(|e| panic!("seed {seed} group {group} cut {cut}: corrupt: {e}"));
        // Unlike seal-every-commit, the final checkpoint may carry torn
        // intents — sessions whose commits were still buffered past the
        // last seal — but the terminals it does hold must replay, and
        // only in whole groups (each seal lands on a `group`-th commit).
        let restored = journal
            .restore()
            .unwrap_or_else(|e| panic!("seed {seed} group {group} cut {cut}: no replay: {e}"));
        assert!(
            restored.len() <= JOBS && restored.len().is_multiple_of(group),
            "seed {seed} group {group} cut {cut}: checkpoint holds {} terminals",
            restored.len()
        );
    }
    d
}

/// Group-commit crash-point sweep: cut at **every** trace-event
/// boundary of the reference batch — including every boundary interior
/// to a batched NVRAM seal — and recover to the crash-free sessions
/// each time, with the commit ledger balancing in whole groups.
#[test]
fn group_commit_crash_sweep_every_event_boundary_recovers() {
    let seed = crash_seed();
    let (reference, total) = reference(seed);
    for cut in 0..=(total + 1) {
        let d = check_group_cut(seed, WORKERS, GROUP, cut, &reference);
        if cut <= total {
            assert_eq!(d.resets, 1, "seed {seed} cut {cut} of {total}: no reset");
        } else {
            assert_eq!(
                d.resets, 0,
                "seed {seed} cut {cut} of {total}: phantom reset"
            );
        }
    }
}

/// Without a crash, group commit is invisible: any group size yields
/// sessions byte-identical to seal-every-commit, at any worker count,
/// with every job quoted and no reset fired.
#[test]
fn group_commit_clean_run_matches_ungrouped() {
    let seed = crash_seed();
    let run = |workers: usize, group: usize| {
        let mut pool = engine(workers);
        pool.set_fault_plan(Some(fault_plan(seed)));
        let d = pool
            .run(
                batch(),
                &BatchPolicy::plain()
                    .with_retry(RetryPolicy::default())
                    .with_durability(ResetPlan::reset_free())
                    .with_group_commit(group),
            )
            .expect("clean durable batch runs");
        assert_eq!(d.quoted(), JOBS, "group {group}: session not quoted");
        assert_eq!(d.resets, 0, "group {group}: phantom reset");
        normalize(d.sessions)
    };
    let ungrouped = run(WORKERS, 1);
    for group in [2, GROUP, 4, JOBS, JOBS + 1] {
        assert_eq!(
            run(WORKERS, group),
            ungrouped,
            "group {group}: clean run diverged from seal-every-commit"
        );
    }
    assert_eq!(
        run(1, GROUP),
        ungrouped,
        "group {GROUP}: serial clean run diverged"
    );
}

/// Crash recovery is deterministic at any worker count: the same cut
/// yields the same sessions whether one worker or four drive the batch.
#[test]
fn crash_recovery_is_worker_count_invariant() {
    let seed = crash_seed();
    let (reference, total) = reference(seed);
    // A spread of cut points across the trace, including both edges.
    let cuts = [0, total / 4, total / 2, 3 * total / 4, total];
    for cut in cuts {
        let serial = check_cut(seed, 1, cut, &reference);
        let wide = check_cut(seed, WORKERS, cut, &reference);
        assert_eq!(
            normalize(serial.sessions),
            normalize(wide.sessions),
            "seed {seed} cut {cut}: serial and parallel recovery diverged"
        );
        assert_eq!(serial.resets, wide.resets);
    }
}
