//! Chaos suite for the fault-injection substrate and recovery layer.
//!
//! The contract under test: for **any** seeded [`FaultPlan`], a
//! [`SessionEngine`] batch driven under a retrying [`BatchPolicy`]
//! terminates
//! (never hangs), and every session either completes with a quote
//! **byte-identical** to the fault-free run's or is reported as a typed
//! [`SessionResult::Killed`] — and afterwards no sePCR is left
//! `Exclusive` and no page is left protected, whatever the tape did.
//!
//! `SEA_CHAOS_SEED` selects an extra directed seed for CI
//! reproducibility (scripts/ci.sh pins one).

mod common;

use common::{check, Tape};
use sea_core::{
    BatchPolicy, ConcurrentJob, FnPal, PalOutcome, RetryPolicy, SecurePlatform, SessionEngine,
    SessionResult, Slaunch,
};
use sea_hw::{CpuId, FaultKind, FaultPlan, Platform, SimDuration, TraceEvent, RATE_DENOM};
use sea_tpm::{KeyStrength, Quote};

/// Clears the worker-assignment field: which CPU a job landed on is a
/// function of the worker count, not of the recovery outcome, so
/// serial-vs-parallel comparisons must ignore it.
fn normalize(mut sessions: Vec<SessionResult>) -> Vec<SessionResult> {
    for s in &mut sessions {
        if let SessionResult::Quoted { result, .. } = s {
            result.cpu = CpuId(0);
        }
    }
    sessions
}

const JOBS: usize = 16;
const WORKERS: usize = 4;

fn engine() -> SessionEngine<Slaunch> {
    let platform = SecurePlatform::new(
        Platform::recommended(WORKERS as u16),
        KeyStrength::Demo512,
        b"chaos",
    );
    SessionEngine::new(platform, WORKERS).expect("pool fits platform")
}

fn recovering() -> BatchPolicy {
    BatchPolicy::plain().with_retry(RetryPolicy::default())
}

/// Jobs that yield twice, so the step, resume, and timer paths are all
/// on the fault surface, not just launch and quote.
fn batch() -> Vec<ConcurrentJob> {
    (0..JOBS)
        .map(|i| {
            let mut remaining = 3u8;
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("chaos-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_us(40 * (1 + (i as u64 % 4))));
                    remaining -= 1;
                    if remaining == 0 {
                        Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            )
        })
        .collect()
}

/// The fault-free reference quotes, one per job index.
fn reference_quotes() -> Vec<Quote> {
    let mut pool = engine();
    pool.set_fault_plan(Some(FaultPlan::fault_free()));
    let out = pool
        .run(batch(), &recovering())
        .expect("fault-free batch runs");
    out.sessions
        .into_iter()
        .map(|s| match s {
            SessionResult::Quoted { quote, .. } => quote,
            other => panic!("fault-free run must quote everything, got {other:?}"),
        })
        .collect()
}

/// Runs one seeded plan and checks the full chaos contract against the
/// fault-free reference. Returns `Err` (rather than panicking) so the
/// property harness can shrink a violating tape.
fn check_plan(plan: FaultPlan, reference: &[Quote]) -> Result<(), String> {
    let seed = plan.seed();
    let mut pool = engine();
    pool.set_fault_plan(Some(plan));
    let out = pool
        .run(batch(), &recovering())
        .map_err(|e| format!("seed {seed}: batch aborted: {e}"))?;
    if out.sessions.len() != JOBS {
        return Err(format!(
            "seed {seed}: session lost ({} of {JOBS} reported)",
            out.sessions.len()
        ));
    }

    for (i, session) in out.sessions.iter().enumerate() {
        match session {
            SessionResult::Quoted { quote, .. } => {
                // Injected faults may cost retries and virtual time, but
                // they must never perturb what the session attests to.
                if quote != &reference[i] {
                    return Err(format!(
                        "seed {seed}: job {i} quote diverged from fault-free run"
                    ));
                }
            }
            SessionResult::Killed {
                job,
                attempts,
                error,
                ..
            } => {
                // A kill is typed: it names the job, counts the
                // attempts, and carries the error that ended it.
                if *job != i {
                    return Err(format!("seed {seed}: kill misattributed ({job} != {i})"));
                }
                if *attempts < 1 {
                    return Err(format!("seed {seed}: job {i} killed for free"));
                }
                if error.to_string().is_empty() {
                    return Err(format!("seed {seed}: job {i} untyped kill"));
                }
            }
            other => {
                return Err(format!("seed {seed}: job {i} unexpected outcome {other:?}"));
            }
        }
    }

    // Nothing leaked, quoted or killed: every sePCR is back to Free and
    // no page is still assigned to a CPU or erased-but-unreleased.
    let sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    if tpm.sepcrs().free_count() != tpm.sepcrs().count() {
        return Err(format!(
            "seed {seed}: leaked an Exclusive sePCR ({} of {} free)",
            tpm.sepcrs().free_count(),
            tpm.sepcrs().count()
        ));
    }
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    if (cpus_pages, none_pages) != (0, 0) {
        return Err(format!(
            "seed {seed}: leaked protected pages (cpus={cpus_pages}, none={none_pages})"
        ));
    }
    Ok(())
}

#[test]
fn chaos_any_seeded_plan_completes_or_kills_cleanly() {
    let reference = reference_quotes();
    // A spread of seeds and rates: retryable-only, mixed, and
    // fatal-heavy tapes, with timer expiries and memory denials mixed in.
    let plans = [
        FaultPlan::new(1)
            .with_tpm_rate(4000)
            .with_mem_rate(4000)
            .with_timer_rate(4000)
            .with_fatal_ratio(0),
        FaultPlan::new(2)
            .with_tpm_rate(9000)
            .with_mem_rate(2000)
            .with_timer_rate(6000)
            .with_fatal_ratio(RATE_DENOM / 8),
        FaultPlan::new(3)
            .with_tpm_rate(15_000)
            .with_fatal_ratio(RATE_DENOM / 2),
        FaultPlan::new(17)
            .with_tpm_rate(25_000)
            .with_mem_rate(10_000)
            .with_timer_rate(10_000)
            .with_fatal_ratio(RATE_DENOM),
        FaultPlan::new(0xDEAD)
            .with_mem_rate(20_000)
            .with_timer_rate(20_000),
        FaultPlan::new(0xC0FFEE)
            .with_tpm_rate(2000)
            .with_fatal_ratio(RATE_DENOM / 16),
    ];
    for plan in plans {
        check_plan(plan, &reference).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The satellite property, driven by the in-repo harness: for **any**
/// tape-derived [`FaultPlan`] — arbitrary seed, arbitrary rates up to
/// well past saturation, arbitrary fatal ratio — the batch terminates
/// with every session quoted byte-identically to the fault-free run or
/// typed-killed, and nothing leaks. Each case runs a full 16-session
/// batch, so the case count is modest; the directed tests above cover
/// the known-interesting corners.
#[test]
fn chaos_property_any_tape_derived_plan_upholds_the_contract() {
    let reference = reference_quotes();
    check("fault_recovery_chaos", 12, |t: &mut Tape| {
        let plan = FaultPlan::new(t.u64())
            .with_tpm_rate(t.range(0, 30_000) as u32)
            .with_mem_rate(t.range(0, 15_000) as u32)
            .with_timer_rate(t.range(0, 15_000) as u32)
            .with_fatal_ratio(t.range(0, RATE_DENOM as usize + 1) as u32);
        check_plan(plan, &reference)
    });
}

/// CI pins a seed via `SEA_CHAOS_SEED` so the smoke run exercises a
/// known-interesting tape; any decimal seed is accepted.
#[test]
fn chaos_env_pinned_seed() {
    let seed: u64 = std::env::var("SEA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let reference = reference_quotes();
    let plan = FaultPlan::new(seed)
        .with_tpm_rate(8000)
        .with_mem_rate(4000)
        .with_timer_rate(4000)
        .with_fatal_ratio(RATE_DENOM / 8);
    check_plan(plan, &reference).unwrap_or_else(|e| panic!("{e}"));
}

/// Every injected fault is answered: for each `FaultInjected` event in
/// the machine trace there is a later recovery event for the **same
/// session** — a retry, a kill, or a blocked attack for transport and
/// memory faults; a preemption or a kill for timer expiries. Checked
/// only when the bounded trace dropped nothing, so no pairing can have
/// been evicted.
#[test]
fn every_injected_fault_is_paired_with_a_recovery_event() {
    let plans = [
        FaultPlan::new(7)
            .with_tpm_rate(6000)
            .with_mem_rate(6000)
            .with_timer_rate(6000)
            .with_fatal_ratio(0),
        FaultPlan::new(5)
            .with_tpm_rate(15_000)
            .with_fatal_ratio(RATE_DENOM),
        FaultPlan::new(2)
            .with_tpm_rate(9000)
            .with_mem_rate(2000)
            .with_timer_rate(6000)
            .with_fatal_ratio(RATE_DENOM / 8),
    ];
    for plan in plans {
        let seed = plan.seed();
        let mut pool = engine();
        pool.set_fault_plan(Some(plan));
        pool.run(batch(), &recovering()).expect("batch runs");
        let sea = pool.into_inner();
        let trace = sea.platform().machine().trace();
        assert_eq!(
            trace.dropped(),
            0,
            "seed {seed}: trace evicted events; pairing check would be unsound"
        );
        let events: Vec<&TraceEvent> = trace.iter().map(|(_, e)| e).collect();
        let injections: Vec<(usize, &FaultKind, u64)> = events
            .iter()
            .enumerate()
            .filter_map(|(p, e)| match e {
                TraceEvent::FaultInjected { kind, session } => Some((p, kind, *session)),
                _ => None,
            })
            .collect();
        assert!(
            !injections.is_empty(),
            "seed {seed}: plan injected nothing; the pairing check is vacuous"
        );
        for (p, kind, session) in injections {
            let answered = events[p + 1..].iter().any(|e| match kind {
                FaultKind::TimerExpiry => matches!(
                    e,
                    TraceEvent::SessionPreempted { session: s }
                    | TraceEvent::SessionKilled { session: s } if *s == session
                ),
                FaultKind::TpmTransport { .. } | FaultKind::MemDenial => {
                    matches!(
                        e,
                        TraceEvent::SessionRetried { session: s, .. }
                        | TraceEvent::SessionKilled { session: s } if *s == session
                    ) || matches!(e, TraceEvent::AttackBlocked { .. })
                }
                // `FaultKind` is non-exhaustive; a new kind must come
                // with a pairing rule before this suite accepts it.
                other => panic!("seed {seed}: unpaired fault kind {other:?}"),
            });
            assert!(
                answered,
                "seed {seed}: {kind:?} injected into session {session} at trace \
                 position {p} with no later retry/kill/preemption for it"
            );
        }
    }
}

/// The acceptance criterion spelled out: a 16-session batch under a
/// nonzero-fault plan completes with every session quoted or cleanly
/// killed, and the outcome is byte-identical between serial and
/// parallel execution of the same seed.
#[test]
fn acceptance_sixteen_sessions_nonzero_faults_serial_equals_parallel() {
    let plan = || {
        FaultPlan::new(77)
            .with_tpm_rate(10_000)
            .with_mem_rate(5000)
            .with_timer_rate(5000)
            .with_fatal_ratio(RATE_DENOM / 4)
    };
    let run = |workers: usize| {
        let platform = SecurePlatform::new(
            Platform::recommended(WORKERS as u16),
            KeyStrength::Demo512,
            b"chaos",
        );
        let mut pool = SessionEngine::<Slaunch>::new(platform, workers).expect("pool fits");
        pool.set_fault_plan(Some(plan()));
        let out = pool.run(batch(), &recovering()).expect("batch runs");
        let sessions = out.sessions.clone();
        let sea = pool.into_inner();
        let tpm = sea.platform().tpm().expect("tpm");
        assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
        sessions
    };
    let serial = normalize(run(1));
    let parallel = normalize(run(WORKERS));
    assert!(serial.iter().any(|s| s.is_killed() || !s.is_quoted()) || !serial.is_empty());
    assert_eq!(serial, parallel);
    for s in &serial {
        assert!(
            s.is_quoted() || s.is_killed(),
            "session neither quoted nor killed: {s:?}"
        );
    }
}
