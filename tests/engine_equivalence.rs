//! Equivalence suite for the retired batch entry points.
//!
//! `ConcurrentSea::run_batch`, `run_batch_recovered`, and
//! `run_batch_durable` are deprecated shims over
//! [`SessionEngine::run`] with the corresponding [`BatchPolicy`]
//! composition. This suite is the only place (outside the shim itself)
//! allowed to call them — scripts/ci.sh greps for strays — and it pins
//! the shims to the unified engine field by field, so the deprecation
//! window cannot silently drift from the real implementation.
#![allow(deprecated)]

use sea_core::{
    BatchPolicy, ConcurrentJob, ConcurrentSea, FnPal, PalOutcome, RetryPolicy, SecurePlatform,
    SessionEngine, SessionResult, Slaunch,
};
use sea_hw::{FaultPlan, Platform, ResetPlan, SimDuration, RATE_DENOM};
use sea_tpm::KeyStrength;

const JOBS: usize = 12;
const WORKERS: usize = 4;

fn platform() -> SecurePlatform {
    SecurePlatform::new(
        Platform::recommended(WORKERS as u16),
        KeyStrength::Demo512,
        b"equivalence",
    )
}

/// Yield-twice restartable jobs so every lifecycle edge (launch, step,
/// resume, quote) sits on both code paths.
fn batch() -> Vec<ConcurrentJob> {
    (0..JOBS)
        .map(|i| {
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("eq-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_us(20 * (1 + (i as u64 % 3))));
                    let done = ctx.state().first().copied().unwrap_or(0) + 1;
                    ctx.set_state(vec![done]);
                    if done == 3 {
                        Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            )
        })
        .collect()
}

fn fault_plan() -> FaultPlan {
    FaultPlan::new(0xEC)
        .with_tpm_rate(8000)
        .with_mem_rate(4000)
        .with_timer_rate(4000)
        .with_fatal_ratio(RATE_DENOM / 8)
}

fn reset_plan() -> ResetPlan {
    ResetPlan::new(0xEC)
        .with_reset_rate(RATE_DENOM / 4)
        .with_max_resets(2)
}

#[test]
fn run_batch_shim_equals_plain_policy() {
    let mut engine = SessionEngine::<Slaunch>::new(platform(), WORKERS).unwrap();
    let unified = engine.run(batch(), &BatchPolicy::plain()).unwrap();

    let mut shim = ConcurrentSea::new(platform(), WORKERS).unwrap();
    let legacy = shim.run_batch(batch()).unwrap();

    assert_eq!(legacy.results.len(), unified.sessions.len());
    for (r, s) in legacy.results.iter().zip(&unified.sessions) {
        match s {
            SessionResult::Quoted { result, .. } => assert_eq!(r, result),
            other => panic!("plain batch must quote everything, got {other:?}"),
        }
    }
    assert_eq!(legacy.cpu_busy, unified.cpu_busy);
    assert_eq!(legacy.wall, unified.wall);
    assert_eq!(legacy.aggregate(), unified.aggregate());
    assert_eq!(legacy.throughput_per_sec(), unified.throughput_per_sec());
    assert_eq!(legacy.speedup(), unified.speedup());
}

#[test]
fn run_batch_recovered_shim_equals_retry_policy() {
    let mut engine = SessionEngine::<Slaunch>::new(platform(), WORKERS).unwrap();
    engine.set_fault_plan(Some(fault_plan()));
    let unified = engine
        .run(
            batch(),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .unwrap();

    let mut shim = ConcurrentSea::new(platform(), WORKERS).unwrap();
    shim.set_fault_plan(Some(fault_plan()));
    let legacy = shim
        .run_batch_recovered(batch(), RetryPolicy::default())
        .unwrap();

    assert_eq!(legacy.sessions, unified.sessions);
    assert_eq!(legacy.cpu_busy, unified.cpu_busy);
    assert_eq!(legacy.wall, unified.wall);
    assert_eq!(legacy.quoted(), unified.quoted());
    assert_eq!(legacy.killed(), unified.killed());
    assert_eq!(legacy.goodput_per_sec(), unified.goodput_per_sec());
}

#[test]
fn run_batch_durable_shim_equals_durable_policy() {
    // Serial on both sides: the committed/relaunched split at a
    // rate-based reset depends on which commit gate is reached first,
    // which only a single worker pins down (the crash-sweep contract).
    // Session results themselves are interleaving-invariant and are
    // covered at four workers by the golden differential suite.
    let mut engine = SessionEngine::<Slaunch>::new(platform(), 1).unwrap();
    engine.set_fault_plan(Some(fault_plan()));
    let unified = engine
        .run(
            batch(),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(reset_plan()),
        )
        .unwrap();

    let mut shim = ConcurrentSea::new(platform(), 1).unwrap();
    shim.set_fault_plan(Some(fault_plan()));
    let legacy = shim
        .run_batch_durable(batch(), RetryPolicy::default(), reset_plan())
        .unwrap();

    assert!(legacy.resets >= 1, "the pinned plan must pull the plug");
    assert_eq!(legacy.sessions, unified.sessions);
    assert_eq!(legacy.cpu_busy, unified.cpu_busy);
    assert_eq!(legacy.wall, unified.wall);
    assert_eq!(legacy.resets, unified.resets);
    assert_eq!(legacy.committed, unified.committed);
    assert_eq!(legacy.relaunched, unified.relaunched);
    assert_eq!(legacy.recovery_latency, unified.recovery_latency);
    assert_eq!(legacy.journal_overhead, unified.journal_overhead);
    assert_eq!(legacy.goodput_per_sec(), unified.goodput_per_sec());
}
