//! Property tests for the observability layer (`sea_hw::obs`).
//!
//! The contract under test, end to end across the stack:
//!
//! 1. the span stream of a faulted, recovered batch is **well-nested**
//!    per track and **byte-identical** between a 1-worker and a
//!    4-worker run — spans carry track-relative offsets, so host
//!    interleaving cannot leak in;
//! 2. in a faulted **and reset** durable batch, every layer's histogram
//!    total equals the sum of that layer's charged leaf durations, and
//!    journal/reset activity lands on the platform-wide track;
//! 3. attribution is *exact*, anchored two ways: a legacy session's
//!    observed total equals the machine clock's advance, and a bare
//!    TPM's observed total equals the sum of its commands' elapsed
//!    times.

use minimal_tcb::core::{
    BatchPolicy, ConcurrentJob, FnPal, LegacySea, PalOutcome, RetryPolicy, SecurePlatform,
    SessionEngine, Slaunch,
};
use minimal_tcb::hw::{
    check_well_nested, FaultPlan, Layer, Obs, ObsSnapshot, Platform, ResetPlan, SimDuration,
    SpanKind, TpmKind, PLATFORM_TRACK, RATE_DENOM,
};
use minimal_tcb::tpm::{KeyStrength, PcrIndex, Tpm};

fn batch(n: usize) -> Vec<ConcurrentJob> {
    (0..n)
        .map(|i| {
            let work = SimDuration::from_us(10 * (1 + (i as u64 % 5)));
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("obs-{i}"), move |ctx| {
                    ctx.work(work);
                    Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                })),
                b"",
            )
        })
        .collect()
}

/// Runs a faulted batch under the recovery layer with a recording sink
/// installed and returns the snapshot.
fn recovered_snapshot(workers: usize, jobs: usize) -> ObsSnapshot {
    let mut platform =
        SecurePlatform::new(Platform::recommended(8), KeyStrength::Demo512, b"obs-prop");
    let (obs, sink) = Obs::recording();
    platform.install_obs(obs);
    let mut sea = SessionEngine::<Slaunch>::new(platform, workers).expect("pool fits");
    sea.set_fault_plan(Some(
        FaultPlan::new(7)
            .with_tpm_rate(12_000)
            .with_mem_rate(3000)
            .with_timer_rate(3000)
            .with_fatal_ratio(RATE_DENOM / 8),
    ));
    sea.run(
        batch(jobs),
        &BatchPolicy::plain().with_retry(RetryPolicy::default()),
    )
    .expect("batch runs");
    sink.snapshot()
}

/// Satellite property: span trees are well-nested and the whole
/// snapshot — spans, counters, histograms — is byte-identical between
/// a serial and a 4-worker run of the same faulted batch.
#[test]
fn recovered_span_stream_is_well_nested_and_worker_count_invariant() {
    let serial = recovered_snapshot(1, 12);
    let parallel = recovered_snapshot(4, 12);

    check_well_nested(&serial.spans).expect("serial spans well-nested");
    check_well_nested(&parallel.spans).expect("parallel spans well-nested");

    // The stream is non-trivial: lifecycle frames bracket charged
    // leaves, and the fault plan actually bit.
    assert!(serial
        .spans
        .iter()
        .any(|s| s.kind == SpanKind::Interior && s.op == "session.slaunch"));
    assert!(serial.leaves().count() > 0);
    assert!(serial.counter("core.retries") > 0, "fault plan never bit");

    assert_eq!(serial, parallel, "snapshot diverged across worker counts");
}

/// Satellite property: in a faulted + reset durable batch, each layer's
/// histogram total and count equal the per-layer sum/count of charged
/// leaf spans, and journal traffic serializes on the platform track.
#[test]
fn histogram_totals_equal_leaf_sums_in_faulted_reset_batch() {
    let mut platform = SecurePlatform::new(
        Platform::recommended(8),
        KeyStrength::Demo512,
        b"obs-durable",
    );
    let (obs, sink) = Obs::recording();
    platform.install_obs(obs);
    let mut sea = SessionEngine::<Slaunch>::new(platform, 1).expect("pool fits");
    sea.set_fault_plan(Some(FaultPlan::new(11).with_tpm_rate(5000)));
    // A moderate per-commit loss rate: low enough that some sessions
    // commit to NVRAM before the first crash (so recovery has a journal
    // to unseal), high enough that the plug is pulled at least once.
    let plan = ResetPlan::new(5)
        .with_reset_rate(RATE_DENOM / 4)
        .with_max_resets(3);
    let out = sea
        .run(
            batch(10),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(plan),
        )
        .expect("batch runs");
    assert!(out.resets >= 1, "reset plan never pulled the plug");

    let snap = sink.snapshot();
    check_well_nested(&snap.spans).expect("spans well-nested");

    for (hist, layer) in snap.layers.iter().zip(Layer::ALL) {
        let leaf_sum: SimDuration = snap
            .leaves()
            .filter(|s| s.layer == layer)
            .map(|s| s.duration())
            .sum();
        let leaf_count = snap.leaves().filter(|s| s.layer == layer).count() as u64;
        assert_eq!(
            hist.total,
            leaf_sum,
            "{}: histogram total != leaf sum",
            layer.as_str()
        );
        assert_eq!(
            hist.count,
            leaf_count,
            "{}: histogram count != leaf count",
            layer.as_str()
        );
        assert_eq!(hist.buckets.iter().sum::<u64>(), leaf_count);
        assert_eq!(snap.layer_total(layer), leaf_sum);
    }

    // Reboots and journal checkpoints charge the platform, not any one
    // session.
    assert!(snap.counter("journal.resets") >= 1);
    assert!(snap.counter("journal.commits") >= 1);
    for op in ["hw.reset", "journal.seal", "journal.unseal"] {
        assert!(
            snap.leaves()
                .any(|s| s.track == PLATFORM_TRACK && s.op == op),
            "no {op} leaf on the platform track"
        );
    }
}

/// Anchor: a legacy session + quote attribute exactly the virtual time
/// the machine clock advanced — no charge is lost or double-counted.
#[test]
fn legacy_session_attribution_matches_machine_clock() {
    let mut platform =
        SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"obs-anchor");
    let (obs, sink) = Obs::recording();
    platform.install_obs(obs);
    let mut sea = LegacySea::new(platform).expect("platform fits");
    let t0 = sea.platform().machine().now();

    let mut pal = FnPal::new("anchor", |ctx| {
        let blob = ctx.seal(b"anchored state")?;
        let _ = ctx.unseal(&blob)?;
        ctx.work(SimDuration::from_ms(3));
        Ok(PalOutcome::Exit(vec![]))
    })
    .with_image_size(32 * 1024);
    sea.run_session(&mut pal, b"").expect("session runs");
    sea.quote(b"anchor nonce").expect("quote");

    let t1 = sea.platform().machine().now();
    let snap = sink.snapshot();
    assert_eq!(snap.total(), t1.duration_since(t0));
    assert!(snap
        .spans
        .iter()
        .any(|s| s.kind == SpanKind::Interior && s.op == "session.legacy"));
    check_well_nested(&snap.spans).expect("spans well-nested");
}

/// Anchor: a bare TPM (no platform — the chip's own `cost()` choke
/// point attributes) observes exactly the sum of its commands' elapsed
/// times, all on the TPM layer.
#[test]
fn bare_tpm_attribution_matches_command_elapsed() {
    let mut tpm = Tpm::new(TpmKind::Infineon, KeyStrength::Demo512, b"obs-tpm");
    let (obs, sink) = Obs::recording();
    tpm.install_obs(obs);

    let digest = minimal_tcb::crypto::Sha1::digest(b"anchor");
    let mut total = SimDuration::ZERO;
    total += tpm.extend(PcrIndex(17), &digest).expect("extend").elapsed;
    let sealed = tpm.seal(b"state", &[PcrIndex(17)]).expect("seal");
    total += sealed.elapsed;
    total += tpm.unseal(&sealed.value).expect("unseal").elapsed;
    total += tpm.quote(b"nonce", &[PcrIndex(17)]).expect("quote").elapsed;
    total += tpm.get_random(128).elapsed;

    let snap = sink.snapshot();
    assert_eq!(snap.total(), total);
    assert_eq!(snap.layer_total(Layer::Tpm), total);
    assert!(snap.leaves().all(|s| s.layer == Layer::Tpm));
    assert_eq!(snap.leaves().count(), snap.spans.len());
}
