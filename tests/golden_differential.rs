//! Golden differential suite for the batch engine.
//!
//! The files under `tests/golden/` were recorded from the engine as it
//! stood *before* the unified `SessionEngine` refactor: one pinned-seed
//! faulted + reset batch, dumped session by session (outputs, reports,
//! quotes, retry counts, terminal variants) at one worker and at four,
//! plus the full platform ledger (reset history, recovery latency,
//! journal overhead, wall time, machine trace) for the serial run,
//! where host interleaving cannot perturb it.
//!
//! The tests assert the engine of today reproduces those recordings
//! **byte-identically**. Any drift in fault rolls, retry accounting,
//! journal commit gates, quote bytes, or clock folding shows up as a
//! diff against the recording, not as a silent behavior change.
//!
//! Set `SEA_GOLDEN_REGEN=1` to re-record (only after deliberately
//! changing engine semantics — the diff is the review artifact).

use sea_core::{
    BatchOutcome, BatchPolicy, ConcurrentJob, FnPal, PalOutcome, RetryPolicy, SecurePlatform,
    SessionEngine, SessionResult, Slaunch,
};
use sea_hw::{FaultPlan, Platform, ResetPlan, SimDuration, RATE_DENOM};
use sea_tpm::KeyStrength;

const JOBS: usize = 12;
const GOLDEN_SEED: u64 = 0x601D;

fn fault_plan() -> FaultPlan {
    FaultPlan::new(GOLDEN_SEED)
        .with_tpm_rate(9000)
        .with_mem_rate(3000)
        .with_timer_rate(3000)
        .with_fatal_ratio(RATE_DENOM / 8)
}

fn reset_plan() -> ResetPlan {
    ResetPlan::new(GOLDEN_SEED)
        .with_reset_rate(RATE_DENOM / 4)
        .with_max_resets(2)
}

/// Restartable yield-twice jobs: step state lives in the PAL's region
/// (evaporates on reset), so relaunched sessions replay from step one.
fn batch() -> Vec<ConcurrentJob> {
    (0..JOBS)
        .map(|i| {
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("gold-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_us(25 * (1 + (i as u64 % 5))));
                    let done = ctx.state().first().copied().unwrap_or(0) + 1;
                    ctx.set_state(vec![done]);
                    if done == 3 {
                        Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            )
        })
        .collect()
}

/// Runs the pinned scenario and returns the outcome plus a dump of the
/// machine trace (only meaningful serially, where it is deterministic).
fn run(workers: usize) -> (BatchOutcome, String) {
    let platform = SecurePlatform::new(Platform::recommended(4), KeyStrength::Demo512, b"golden");
    let mut pool = SessionEngine::<Slaunch>::new(platform, workers).expect("pool fits platform");
    pool.set_fault_plan(Some(fault_plan()));
    let out = pool
        .run(
            batch(),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(reset_plan()),
        )
        .expect("golden batch runs");
    let sea = pool.into_inner();
    let mut trace = String::new();
    for (t, e) in sea.platform().machine().trace().iter() {
        trace.push_str(&format!("{} {e:?}\n", t.as_ns()));
    }
    (out, trace)
}

/// Per-session dump: everything worker-count-invariant (the CPU a job
/// lands on is `i % workers`, so it is fixed *per worker count* and the
/// two recordings legitimately differ in that one field).
fn dump_sessions(sessions: &[SessionResult]) -> String {
    let mut s = String::new();
    for (i, r) in sessions.iter().enumerate() {
        s.push_str(&format!("== session {i} ==\n{r:#?}\n"));
    }
    s
}

/// Serial-only platform ledger: reset history and clock folding.
fn dump_ledger(out: &BatchOutcome, trace: &str) -> String {
    let busy: Vec<u64> = out.cpu_busy.iter().map(|d| d.as_ns()).collect();
    format!(
        "resets={}\ncommitted={:?}\nrelaunched={:?}\nrecovery_latency_ns={}\n\
         journal_overhead_ns={}\nwall_ns={}\ncpu_busy_ns={busy:?}\n== trace ==\n{trace}",
        out.resets,
        out.committed,
        out.relaunched,
        out.recovery_latency.as_ns(),
        out.journal_overhead.as_ns(),
        out.wall.as_ns(),
    )
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("SEA_GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir tests/golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (SEA_GOLDEN_REGEN=1 to record)",
            name
        )
    });
    assert_eq!(
        actual, expected,
        "{name}: engine output diverged from the pre-refactor recording"
    );
}

#[test]
fn golden_faulted_reset_batch_one_worker() {
    let (out, trace) = run(1);
    assert!(out.resets >= 1, "golden plan must pull the plug");
    check("durable_w1_sessions.txt", &dump_sessions(&out.sessions));
    check("durable_w1_ledger.txt", &dump_ledger(&out, &trace));
}

#[test]
fn golden_faulted_reset_batch_four_workers() {
    let (out, _) = run(4);
    check("durable_w4_sessions.txt", &dump_sessions(&out.sessions));
}

/// The two recordings must agree wherever worker count cannot matter:
/// same terminal variant, output, report, quote, and retry count per
/// session — only the CPU field may differ.
#[test]
fn golden_recordings_agree_across_worker_counts() {
    let read = |name: &str| {
        std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"))
    };
    if std::env::var("SEA_GOLDEN_REGEN").is_ok() {
        return; // files may be mid-rewrite
    }
    // `cpu: CpuId(n)` pretty-prints across three lines; drop them all.
    let strip_cpu = |s: String| {
        let mut kept = Vec::new();
        let mut skip = 0usize;
        for l in s.lines() {
            if skip > 0 {
                skip -= 1;
                continue;
            }
            if l.trim_start().starts_with("cpu:") {
                skip = 2;
                continue;
            }
            kept.push(l);
        }
        kept.join("\n")
    };
    assert_eq!(
        strip_cpu(read("durable_w1_sessions.txt")),
        strip_cpu(read("durable_w4_sessions.txt")),
        "worker count leaked into worker-count-invariant session data"
    );
}
