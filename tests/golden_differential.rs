//! Golden differential suite for the batch engine.
//!
//! The `durable_*` files under `tests/golden/` were recorded from the
//! engine as it stood *before* the unified `SessionEngine` refactor:
//! one pinned-seed faulted + reset batch, dumped session by session
//! (outputs, reports, quotes, retry counts, terminal variants) at one
//! worker and at four, plus the full platform ledger (reset history,
//! recovery latency, journal overhead, wall time, machine trace) for
//! the serial run, where host interleaving cannot perturb it. The
//! `plain_*` and `recovered_*` files extend the oracle to the other two
//! batch paths — fault-free and faulted-with-retries — with ledgers at
//! both worker counts (those paths never reset, so their ledgers are
//! deterministic even at four workers; only the serial ledgers carry
//! the machine trace).
//!
//! Every test replays its scenario on **both** executors — the
//! thread-pool backend and the discrete-event backend — and asserts
//! each reproduces the same recording **byte-identically**. Any drift
//! in fault rolls, retry accounting, journal commit gates, quote bytes,
//! clock folding, or event-queue scheduling shows up as a diff against
//! the recording, not as a silent behavior change.
//!
//! Set `SEA_GOLDEN_REGEN=1` to re-record (only after deliberately
//! changing engine semantics — the diff is the review artifact).

use sea_core::{
    BatchOutcome, BatchPolicy, ConcurrentJob, Executor, FnPal, PalOutcome, RetryPolicy,
    SecurePlatform, SessionEngine, SessionResult, Slaunch,
};
use sea_hw::{FaultPlan, Platform, ResetPlan, SimDuration, RATE_DENOM};
use sea_tpm::KeyStrength;

const JOBS: usize = 12;
const GOLDEN_SEED: u64 = 0x601D;

/// Both backends, thread pool first (the historical recording source).
const EXECUTORS: [Executor; 2] = [Executor::ThreadPool, Executor::DiscreteEvent];

fn fault_plan() -> FaultPlan {
    FaultPlan::new(GOLDEN_SEED)
        .with_tpm_rate(9000)
        .with_mem_rate(3000)
        .with_timer_rate(3000)
        .with_fatal_ratio(RATE_DENOM / 8)
}

fn reset_plan() -> ResetPlan {
    ResetPlan::new(GOLDEN_SEED)
        .with_reset_rate(RATE_DENOM / 4)
        .with_max_resets(2)
}

/// Restartable yield-twice jobs: step state lives in the PAL's region
/// (evaporates on reset), so relaunched sessions replay from step one.
fn batch() -> Vec<ConcurrentJob> {
    (0..JOBS)
        .map(|i| {
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("gold-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_us(25 * (1 + (i as u64 % 5))));
                    let done = ctx.state().first().copied().unwrap_or(0) + 1;
                    ctx.set_state(vec![done]);
                    if done == 3 {
                        Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            )
        })
        .collect()
}

/// The three recorded batch paths.
#[derive(Clone, Copy)]
enum Scenario {
    /// Fault-free, no retries, no journal.
    Plain,
    /// The golden fault tape absorbed by the default retry policy.
    Recovered,
    /// Faults plus the golden power-loss tape through the journal.
    Durable,
}

impl Scenario {
    fn policy(self) -> BatchPolicy {
        match self {
            Scenario::Plain => BatchPolicy::plain(),
            Scenario::Recovered => BatchPolicy::plain().with_retry(RetryPolicy::default()),
            Scenario::Durable => BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(reset_plan()),
        }
    }

    fn faults(self) -> Option<FaultPlan> {
        match self {
            Scenario::Plain => None,
            Scenario::Recovered | Scenario::Durable => Some(fault_plan()),
        }
    }
}

/// Runs the pinned scenario on the given backend and returns the
/// outcome plus a dump of the machine trace (only recorded serially,
/// where it is deterministic under both executors).
fn run(workers: usize, executor: Executor, scenario: Scenario) -> (BatchOutcome, String) {
    let platform = SecurePlatform::new(Platform::recommended(4), KeyStrength::Demo512, b"golden");
    let mut pool = SessionEngine::<Slaunch>::new(platform, workers).expect("pool fits platform");
    pool.set_executor(executor);
    pool.set_fault_plan(scenario.faults());
    let out = pool
        .run(batch(), &scenario.policy())
        .expect("golden batch runs");
    let sea = pool.into_inner();
    let mut trace = String::new();
    for (t, e) in sea.platform().machine().trace().iter() {
        trace.push_str(&format!("{} {e:?}\n", t.as_ns()));
    }
    (out, trace)
}

/// Per-session dump: everything worker-count-invariant (the CPU a job
/// lands on is `i % workers`, so it is fixed *per worker count* and the
/// recordings at different counts legitimately differ in that field).
fn dump_sessions(sessions: &[SessionResult]) -> String {
    let mut s = String::new();
    for (i, r) in sessions.iter().enumerate() {
        s.push_str(&format!("== session {i} ==\n{r:#?}\n"));
    }
    s
}

/// Platform ledger: reset history and clock folding. The machine trace
/// rides along only in the serial recordings; at four workers the
/// thread pool's trace order depends on host interleaving (the
/// discrete-event backend's does not, but the recordings must hold for
/// both).
fn dump_ledger(out: &BatchOutcome, trace: Option<&str>) -> String {
    let busy: Vec<u64> = out.cpu_busy.iter().map(|d| d.as_ns()).collect();
    let mut s = format!(
        "resets={}\ncommitted={:?}\nrelaunched={:?}\nrecovery_latency_ns={}\n\
         journal_overhead_ns={}\nwall_ns={}\ncpu_busy_ns={busy:?}\n",
        out.resets,
        out.committed,
        out.relaunched,
        out.recovery_latency.as_ns(),
        out.journal_overhead.as_ns(),
        out.wall.as_ns(),
    );
    if let Some(trace) = trace {
        s.push_str(&format!("== trace ==\n{trace}"));
    }
    s
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Checks (or, under `SEA_GOLDEN_REGEN=1`, records) one golden file.
/// Recording happens only from the thread-pool replay — the historical
/// source of every recording; the discrete-event replay must then match
/// the freshly-recorded bytes too.
fn check(name: &str, executor: Executor, actual: &str) {
    let path = golden_path(name);
    if std::env::var("SEA_GOLDEN_REGEN").is_ok() && executor == Executor::ThreadPool {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir tests/golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (SEA_GOLDEN_REGEN=1 to record)",
            name
        )
    });
    assert_eq!(
        actual, expected,
        "{name}: {executor:?} output diverged from the recording"
    );
}

/// One scenario at one worker count, replayed on both backends against
/// the same recordings. `ledger_trace` records the machine trace into
/// the ledger (serial runs only); `ledger` can be off entirely (the
/// durable split at four workers is interleaving-dependent on the
/// thread pool).
fn golden_case(prefix: &str, workers: usize, scenario: Scenario, ledger: bool, trace: bool) {
    for executor in EXECUTORS {
        let (out, trace_dump) = run(workers, executor, scenario);
        check(
            &format!("{prefix}_sessions.txt"),
            executor,
            &dump_sessions(&out.sessions),
        );
        if ledger {
            let trace = trace.then_some(trace_dump.as_str());
            check(
                &format!("{prefix}_ledger.txt"),
                executor,
                &dump_ledger(&out, trace),
            );
        }
    }
}

#[test]
fn golden_faulted_reset_batch_one_worker() {
    let (out, _) = run(1, Executor::ThreadPool, Scenario::Durable);
    assert!(out.resets >= 1, "golden plan must pull the plug");
    golden_case("durable_w1", 1, Scenario::Durable, true, true);
}

#[test]
fn golden_faulted_reset_batch_four_workers() {
    golden_case("durable_w4", 4, Scenario::Durable, false, false);
}

#[test]
fn golden_plain_batch_one_worker() {
    golden_case("plain_w1", 1, Scenario::Plain, true, true);
}

#[test]
fn golden_plain_batch_four_workers() {
    golden_case("plain_w4", 4, Scenario::Plain, true, false);
}

#[test]
fn golden_recovered_batch_one_worker() {
    let (out, _) = run(1, Executor::ThreadPool, Scenario::Recovered);
    assert!(
        out.sessions
            .iter()
            .any(|s| matches!(s, SessionResult::Quoted { retries, .. } if *retries > 0)),
        "golden fault tape must force at least one retry"
    );
    golden_case("recovered_w1", 1, Scenario::Recovered, true, true);
}

#[test]
fn golden_recovered_batch_four_workers() {
    golden_case("recovered_w4", 4, Scenario::Recovered, true, false);
}

/// The recordings must agree wherever worker count cannot matter: same
/// terminal variant, output, report, quote, and retry count per session
/// — only the CPU field may differ.
#[test]
fn golden_recordings_agree_across_worker_counts() {
    let read = |name: &str| {
        std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"))
    };
    if std::env::var("SEA_GOLDEN_REGEN").is_ok() {
        return; // files may be mid-rewrite
    }
    // `cpu: CpuId(n)` pretty-prints across three lines; drop them all.
    let strip_cpu = |s: String| {
        let mut kept = Vec::new();
        let mut skip = 0usize;
        for l in s.lines() {
            if skip > 0 {
                skip -= 1;
                continue;
            }
            if l.trim_start().starts_with("cpu:") {
                skip = 2;
                continue;
            }
            kept.push(l);
        }
        kept.join("\n")
    };
    for prefix in ["durable", "plain", "recovered"] {
        assert_eq!(
            strip_cpu(read(&format!("{prefix}_w1_sessions.txt"))),
            strip_cpu(read(&format!("{prefix}_w4_sessions.txt"))),
            "{prefix}: worker count leaked into worker-count-invariant session data"
        );
    }
}
