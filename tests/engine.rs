//! Unit-level suite for the unified `sea_core::engine` module.
//!
//! Everything here drives the engine through its public surface —
//! `SessionEngine::run` under each `BatchPolicy` composition, the
//! typestate `Session` by hand, and both `Architecture` impls — so it
//! lives with the other batch-level suites rather than inside the
//! crate. The golden differential (`golden_differential.rs`) and shim
//! equivalence (`engine_equivalence.rs`) suites build on the contracts
//! pinned here.

use sea_core::engine::{rate_per_sec, speedup};
use sea_core::{
    BatchPolicy, ConcurrentJob, FnPal, JobResult, PalOutcome, RetryPolicy, SeaError,
    SecurePlatform, SessionEngine, SessionJournal, SessionReport, SessionResult, SessionTally,
    Skinit, Slaunch, Stepped, JOURNAL_NV_INDEX,
};
use sea_hw::{
    CpuId, FaultPlan, Platform, ResetPlan, SimDuration, TraceEvent, RATE_DENOM, RESET_REBOOT_COST,
};
use sea_tpm::{KeyStrength, SealedBlob, TpmError};

fn platform(n_cpus: u16) -> SecurePlatform {
    SecurePlatform::new(
        Platform::recommended(n_cpus),
        KeyStrength::Demo512,
        b"concurrent test",
    )
}

fn engine(n_cpus: u16, workers: usize) -> SessionEngine<Slaunch> {
    SessionEngine::new(platform(n_cpus), workers).unwrap()
}

fn jobs(n: usize, work_us: u64) -> Vec<ConcurrentJob> {
    (0..n)
        .map(|i| {
            ConcurrentJob::new(
                Box::new(FnPal::new(&format!("job-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_us(work_us));
                    Ok(PalOutcome::Exit(vec![i as u8]))
                })),
                (i as u32).to_le_bytes(),
            )
        })
        .collect()
}

fn quoted(s: &SessionResult) -> &JobResult {
    match s {
        SessionResult::Quoted { result, .. } => result,
        other => panic!("expected Quoted, got {other:?}"),
    }
}

#[test]
fn shared_rate_math_handles_zero_wall() {
    assert_eq!(rate_per_sec(5, SimDuration::ZERO), 0.0);
    assert_eq!(speedup(SimDuration::ZERO, SimDuration::ZERO), 1.0);
    assert!((rate_per_sec(2, SimDuration::from_ms(500)) - 4.0).abs() < 1e-9);
    assert!((speedup(SimDuration::from_ms(400), SimDuration::from_ms(100)) - 4.0).abs() < 1e-9);
}

#[test]
fn tally_counts_every_terminal_variant() {
    let sessions = [
        SessionResult::Killed {
            job: 0,
            attempts: 1,
            error: SeaError::NoTpm,
            wasted: SimDuration::ZERO,
        },
        SessionResult::Degraded {
            job: 1,
            output: vec![],
            report: SessionReport::default(),
        },
    ];
    let tally = SessionTally::of(&sessions);
    assert_eq!((tally.quoted, tally.degraded, tally.killed), (0, 1, 1));
    assert_eq!(tally.completed(), 1);
}

#[test]
fn rejects_more_workers_than_cpus() {
    assert!(matches!(
        SessionEngine::<Slaunch>::new(platform(2), 3),
        Err(SeaError::NotEnoughCpus {
            requested: 3,
            available: 2
        })
    ));
    assert!(SessionEngine::<Slaunch>::new(platform(2), 0).is_err());
}

#[test]
fn outputs_arrive_in_job_index_order() {
    let mut engine = engine(4, 4);
    let out = engine.run(jobs(13, 5), &BatchPolicy::plain()).unwrap();
    assert_eq!(out.sessions.len(), 13);
    for (i, s) in out.sessions.iter().enumerate() {
        let r = quoted(s);
        assert_eq!(r.output, vec![i as u8]);
        assert_eq!(r.cpu, CpuId((i % 4) as u16));
    }
}

#[test]
fn batch_results_match_single_worker_byte_for_byte() {
    // The determinism contract: 1-worker and 4-worker runs of the
    // same batch produce identical outputs, per-job virtual costs,
    // and quotes — only the CPU a job lands on differs.
    let run = |workers: usize| {
        let mut engine = engine(4, workers);
        engine.run(jobs(12, 40), &BatchPolicy::plain()).unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.sessions.len(), parallel.sessions.len());
    for (s, p) in serial.sessions.iter().zip(&parallel.sessions) {
        match (s, p) {
            (
                SessionResult::Quoted {
                    result: sr,
                    quote: sq,
                    ..
                },
                SessionResult::Quoted {
                    result: pr,
                    quote: pq,
                    ..
                },
            ) => {
                assert_eq!(sr.output, pr.output);
                assert_eq!(sr.report, pr.report);
                assert_eq!(sr.quote_cost, pr.quote_cost);
                assert_eq!(sq, pq);
            }
            other => panic!("expected Quoted pair, got {other:?}"),
        }
    }
    assert_eq!(serial.aggregate(), parallel.aggregate());
}

#[test]
fn parallel_wall_time_beats_serial() {
    let mut serial = engine(4, 1);
    let mut parallel = engine(4, 4);
    let s = serial.run(jobs(8, 100), &BatchPolicy::plain()).unwrap();
    let p = parallel.run(jobs(8, 100), &BatchPolicy::plain()).unwrap();
    // Same total virtual work...
    assert_eq!(s.aggregate(), p.aggregate());
    // ...but 4 CPUs overlap it: 8 equal jobs → 2 per CPU → 4×.
    assert_eq!(s.wall, s.aggregate());
    assert_eq!(p.wall, p.aggregate() / 4);
    assert!((p.speedup() - 4.0).abs() < 1e-9);
    assert!(p.throughput_per_sec() > s.throughput_per_sec());
}

#[test]
fn engine_state_is_clean_after_batch() {
    let mut engine = engine(4, 4);
    engine.run(jobs(9, 10), &BatchPolicy::plain()).unwrap();
    let sea = engine.into_inner();
    // Every sePCR came back to Free and every page back to ALL.
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!((cpus_pages, none_pages), (0, 0));
}

#[test]
fn fault_free_recovered_batch_matches_plain_batch() {
    let mut plain = engine(4, 4);
    let p = plain.run(jobs(8, 20), &BatchPolicy::plain()).unwrap();

    let mut recovered = engine(4, 4);
    recovered.set_fault_plan(Some(FaultPlan::fault_free()));
    let r = recovered
        .run(
            jobs(8, 20),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .unwrap();

    assert_eq!(r.quoted(), 8);
    assert_eq!(r.killed(), 0);
    for s in &r.sessions {
        match s {
            SessionResult::Quoted {
                retries,
                recovery_cost,
                ..
            } => {
                assert_eq!(*retries, 0);
                assert_eq!(*recovery_cost, SimDuration::ZERO);
            }
            other => panic!("expected Quoted, got {other:?}"),
        }
    }
    // Keyed (fault-exposed) and unkeyed driving are byte-identical
    // when no fault fires — including the quotes.
    assert_eq!(p.sessions, r.sessions);
    assert_eq!(p.wall, r.wall);
    assert_eq!(p.cpu_busy, r.cpu_busy);
}

#[test]
fn transient_faults_are_retried_and_nothing_leaks() {
    let mut pool = engine(4, 4);
    pool.set_fault_plan(Some(
        FaultPlan::new(7)
            .with_tpm_rate(6000)
            .with_mem_rate(6000)
            .with_timer_rate(6000)
            .with_fatal_ratio(0),
    ));
    let out = pool
        .run(
            jobs(16, 10),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .unwrap();
    assert_eq!(out.sessions.len(), 16);
    // Every retryable fault was absorbed: with fatal_ratio 0 and a
    // 4-retry budget, this seed completes the whole batch.
    assert_eq!(out.killed(), 0);
    assert_eq!(out.quoted(), 16);
    let total_retries: u32 = out
        .sessions
        .iter()
        .map(|s| match s {
            SessionResult::Quoted { retries, .. } => *retries,
            _ => 0,
        })
        .sum();
    assert!(total_retries > 0, "seed 7 at ~9% rates must inject");

    // Recovery reclaimed everything: sePCRs all Free, pages all ALL.
    let sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!((cpus_pages, none_pages), (0, 0));
}

#[test]
fn fatal_faults_kill_cleanly_without_leaking() {
    let mut pool = engine(4, 4);
    pool.set_fault_plan(Some(
        FaultPlan::new(42)
            .with_tpm_rate(20_000)
            .with_fatal_ratio(RATE_DENOM),
    ));
    let out = pool
        .run(
            jobs(16, 10),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .unwrap();
    assert!(out.killed() > 0, "seed 42 at ~30% fatal rate must kill");
    assert_eq!(out.killed() + out.quoted(), 16);
    for s in &out.sessions {
        match s {
            SessionResult::Killed {
                error, attempts, ..
            } => {
                // Fatal transport faults are not retried.
                assert_eq!(*attempts, 1);
                assert!(matches!(
                    error,
                    SeaError::Tpm(TpmError::TransportFault { retryable: false })
                ));
            }
            SessionResult::Quoted { retries, .. } => assert_eq!(*retries, 0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    let sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!((cpus_pages, none_pages), (0, 0));
    // Kills left their mark in the hardware trace.
    assert!(sea
        .platform()
        .machine()
        .trace()
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::SessionKilled { .. })));
}

#[test]
fn durable_batch_without_resets_matches_recovered_and_checkpoints() {
    let mut plain = engine(4, 4);
    plain.set_fault_plan(Some(FaultPlan::fault_free()));
    let r = plain
        .run(
            jobs(8, 20),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .unwrap();

    let mut pool = engine(4, 4);
    pool.set_fault_plan(Some(FaultPlan::fault_free()));
    let d = pool
        .run(
            jobs(8, 20),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(ResetPlan::reset_free()),
        )
        .unwrap();

    assert_eq!(d.resets, 0);
    assert!(d.committed.is_empty() && d.relaunched.is_empty());
    assert_eq!(d.recovery_latency, SimDuration::ZERO);
    assert_eq!(d.sessions, r.sessions);
    assert_eq!(d.cpu_busy, r.cpu_busy);
    // Checkpointing is the only wall-time delta.
    assert!(d.journal_overhead > SimDuration::ZERO);
    assert_eq!(d.wall, r.wall + d.journal_overhead);

    // The final checkpoint sits in NVRAM and replays every session.
    let sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    let blob = tpm.nvram().read_blob(JOURNAL_NV_INDEX).expect("checkpoint");
    let blob = SealedBlob::from_bytes(blob).unwrap();
    let mut sea = sea;
    let bytes = sea
        .platform_mut()
        .tpm_mut()
        .unwrap()
        .unseal(&blob)
        .unwrap()
        .value;
    let journal = SessionJournal::from_bytes(&bytes).unwrap();
    assert_eq!(journal.restore().unwrap().len(), 8);
    assert!(journal.torn().is_empty());
}

#[test]
fn durable_batch_survives_an_event_cut() {
    let reference = {
        let mut pool = engine(4, 4);
        pool.set_fault_plan(Some(FaultPlan::fault_free()));
        pool.run(
            jobs(8, 20),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .unwrap()
        .sessions
    };

    let mut pool = engine(4, 4);
    pool.set_fault_plan(Some(FaultPlan::fault_free()));
    // A fault-free batch records no trace events, so cut at 0: the
    // cord is yanked at the very first commit gate, before anything
    // reaches NVRAM — the whole batch must relaunch.
    let d = pool
        .run(
            jobs(8, 20),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(ResetPlan::reset_free().with_cut_after_events(0)),
        )
        .unwrap();

    assert_eq!(d.resets, 1);
    assert!(d.committed.is_empty());
    assert_eq!(d.relaunched.len(), 8);
    assert!(d.recovery_latency >= RESET_REBOOT_COST);
    // The recovered batch is byte-identical to the crash-free run.
    assert_eq!(d.sessions, reference);

    // Nothing leaked across the reset, and the trace tells the story.
    let sea = pool.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!((cpus_pages, none_pages), (0, 0));
    let trace = sea.platform().machine().trace();
    assert!(trace
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::PlatformReset)));
    assert!(trace
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::SessionRelaunched { .. })));
}

#[test]
fn durable_batch_with_rate_resets_terminates_within_budget() {
    let mut pool = engine(4, 4);
    pool.set_fault_plan(Some(FaultPlan::fault_free()));
    let d = pool
        .run(
            jobs(12, 10),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(
                    ResetPlan::new(9)
                        .with_reset_rate(RATE_DENOM / 3)
                        .with_max_resets(3),
                ),
        )
        .unwrap();
    assert!(d.resets >= 1, "one-in-three rate over 12 gates must fire");
    assert!(d.resets <= 3, "budget caps the reset count");
    assert_eq!(d.quoted() + d.degraded() + d.killed(), 12);
    assert_eq!(d.quoted(), 12);
    for (i, s) in d.sessions.iter().enumerate() {
        let r = quoted(s);
        assert_eq!(r.output, vec![i as u8]);
        assert_eq!(r.cpu, CpuId((i % 4) as u16));
    }
}

#[test]
fn durability_defaults_the_retry_policy() {
    // `with_durability` alone implies keyed driving under
    // `RetryPolicy::default()` — identical to spelling it out.
    let run = |policy: BatchPolicy| {
        let mut pool = engine(4, 2);
        pool.set_fault_plan(Some(FaultPlan::fault_free()));
        pool.run(jobs(6, 15), &policy).unwrap()
    };
    let implicit = run(BatchPolicy::plain().with_durability(ResetPlan::reset_free()));
    let explicit = run(BatchPolicy::plain()
        .with_retry(RetryPolicy::default())
        .with_durability(ResetPlan::reset_free()));
    assert_eq!(implicit, explicit);
}

#[test]
fn shared_clock_reflects_batch_wall_time() {
    let mut pool = engine(2, 2);
    let outcome = pool.run(jobs(4, 50), &BatchPolicy::plain()).unwrap();
    // Every domain published busy-so-far at each job boundary; the
    // final shared reading is the busiest CPU's timeline.
    assert_eq!(pool.clock().now().as_ns(), outcome.wall.as_ns());
}

#[test]
fn typestate_session_drives_by_hand() {
    let engine = engine(2, 1);
    let mut yields = 0u8;
    let mut pal = FnPal::new("manual", move |ctx| {
        ctx.work(SimDuration::from_us(10));
        yields += 1;
        if yields < 3 {
            Ok(PalOutcome::Yield)
        } else {
            Ok(PalOutcome::Exit(b"stepped".to_vec()))
        }
    });
    let mut session = engine.launch(&mut pal, b"", CpuId(0), 0).unwrap();
    assert_eq!(session.index(), 0);
    assert_eq!(session.cpu(), CpuId(0));
    let sealed = loop {
        match session.step().unwrap() {
            Stepped::Exited(s) => break s,
            Stepped::Yielded(s) => session = s.resume().unwrap(),
        }
    };
    let (result, quote) = sealed.quote_and_free(b"manual nonce").unwrap();
    assert_eq!(result.output, b"stepped");
    assert!(result.quote_cost > SimDuration::ZERO);
    assert_eq!(quote.nonce(), b"manual nonce");

    // The retired session left the runtime clean.
    let sea = engine.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
}

#[test]
fn typestate_kill_reclaims_the_session() {
    let engine = engine(2, 1);
    let mut pal = FnPal::new("doomed", |_| Ok(PalOutcome::Yield));
    let session = engine.launch(&mut pal, b"", CpuId(0), 0).unwrap();
    let suspended = match session.step().unwrap() {
        Stepped::Yielded(s) => s,
        Stepped::Exited(_) => panic!("PAL must yield"),
    };
    suspended.kill().unwrap();
    let sea = engine.into_inner();
    let tpm = sea.platform().tpm().expect("tpm");
    assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
    let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
    assert_eq!((cpus_pages, none_pages), (0, 0));
}

#[test]
fn skinit_runs_the_legacy_lifecycle() {
    let mut engine = SessionEngine::<Skinit>::new(platform(2), 1).unwrap();
    let out = engine.run(jobs(3, 25), &BatchPolicy::plain()).unwrap();
    assert_eq!(out.quoted(), 3);
    for (i, s) in out.sessions.iter().enumerate() {
        let r = quoted(s);
        assert_eq!(r.output, vec![i as u8]);
        assert!(r.quote_cost > SimDuration::ZERO);
    }
    assert_eq!(out.resets, 0);
    assert_eq!(out.journal_overhead, SimDuration::ZERO);
}

#[test]
fn skinit_caps_workers_at_one() {
    // SKINIT monopolizes the platform: no concurrent sessions, so
    // the worker cap is 1 regardless of CPU count.
    assert!(matches!(
        SessionEngine::<Skinit>::new(platform(4), 2),
        Err(SeaError::NotEnoughCpus {
            requested: 2,
            available: 1
        })
    ));
}

#[test]
fn skinit_rejects_durable_policies() {
    let mut engine = SessionEngine::<Skinit>::new(platform(2), 1).unwrap();
    let err = engine
        .run(
            jobs(2, 10),
            &BatchPolicy::plain().with_durability(ResetPlan::reset_free()),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        SeaError::PolicyUnsupported {
            architecture: "skinit",
            capability: "durable batches",
        }
    ));
}

#[test]
fn session_tally_completed_sums_quoted_and_degraded() {
    let tally = SessionTally {
        quoted: 3,
        degraded: 2,
        killed: 4,
    };
    assert_eq!(tally.completed(), 5);
    assert_eq!(SessionTally::default().completed(), 0);
    // From a live batch: everything quotes, nothing degrades or dies.
    let out = engine(2, 2)
        .run(jobs(4, 10), &BatchPolicy::plain())
        .unwrap();
    let tally = out.tally();
    assert_eq!((tally.quoted, tally.degraded, tally.killed), (4, 0, 0));
    assert_eq!(tally.completed(), 4);
}

/// The retired `ConcurrentSea` facade must stay a faithful shim: each
/// deprecated entry point reproduces `SessionEngine::run` under the
/// equivalent `BatchPolicy` on a same-seeded platform, field by field.
#[test]
#[allow(deprecated)]
fn concurrent_sea_shims_delegate_to_the_engine() {
    use sea_core::ConcurrentSea;

    let faults = || {
        Some(
            FaultPlan::new(0x5EA)
                .with_tpm_rate(8000)
                .with_mem_rate(2000)
                .with_timer_rate(2000)
                .with_fatal_ratio(0),
        )
    };

    // Plain path: ConcurrentOutcome's results are the quoted JobResults.
    let mut shim = ConcurrentSea::new(platform(2), 2).unwrap();
    let plain = shim.run_batch(jobs(4, 10)).unwrap();
    let reference = engine(2, 2)
        .run(jobs(4, 10), &BatchPolicy::plain())
        .unwrap();
    assert_eq!(plain.results.len(), 4);
    for (r, s) in plain.results.iter().zip(&reference.sessions) {
        assert_eq!(r, quoted(s));
    }
    assert_eq!(plain.cpu_busy, reference.cpu_busy);
    assert_eq!(plain.wall, reference.wall);

    // Recovered path: full session parity under the same fault tape.
    let mut shim = ConcurrentSea::new(platform(2), 2).unwrap();
    shim.set_fault_plan(faults());
    let rec = shim
        .run_batch_recovered(jobs(4, 10), RetryPolicy::default())
        .unwrap();
    let mut pool = engine(2, 2);
    pool.set_fault_plan(faults());
    let reference = pool
        .run(
            jobs(4, 10),
            &BatchPolicy::plain().with_retry(RetryPolicy::default()),
        )
        .unwrap();
    assert_eq!(rec.sessions, reference.sessions);
    assert_eq!(rec.cpu_busy, reference.cpu_busy);
    assert_eq!(rec.wall, reference.wall);

    // Durable path: ledger fields carry through unchanged.
    let mut shim = ConcurrentSea::new(platform(2), 2).unwrap();
    shim.set_fault_plan(faults());
    let dur = shim
        .run_batch_durable(jobs(4, 10), RetryPolicy::default(), ResetPlan::reset_free())
        .unwrap();
    let mut pool = engine(2, 2);
    pool.set_fault_plan(faults());
    let reference = pool
        .run(
            jobs(4, 10),
            &BatchPolicy::plain()
                .with_retry(RetryPolicy::default())
                .with_durability(ResetPlan::reset_free()),
        )
        .unwrap();
    assert_eq!(dur.sessions, reference.sessions);
    assert_eq!(dur.cpu_busy, reference.cpu_busy);
    assert_eq!(dur.wall, reference.wall);
    assert_eq!(dur.resets, reference.resets);
    assert_eq!(dur.committed, reference.committed);
    assert_eq!(dur.relaunched, reference.relaunched);
    assert_eq!(dur.recovery_latency, reference.recovery_latency);
    assert_eq!(dur.journal_overhead, reference.journal_overhead);
}
