#!/usr/bin/env bash
# Tier-1 verification for the whole workspace, entirely offline.
#
#   scripts/ci.sh          full run
#
# The repo has no external dependencies (see README "Offline,
# zero-dependency build"), so --offline must always succeed; if it does
# not, a dependency crept back in and the build should fail loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release (offline) =="
cargo build --release --workspace --offline

echo "== cargo test (offline) =="
cargo test -q --workspace --offline

echo "== benches (smoke mode, offline) =="
SEA_BENCH_SMOKE=1 cargo bench -q -p sea-bench --offline

echo "== ci.sh: all green =="
