#!/usr/bin/env bash
# Tier-1 verification for the whole workspace, entirely offline.
#
#   scripts/ci.sh          full run
#
# The repo has no external dependencies (see README "Offline,
# zero-dependency build"), so --offline must always succeed; if it does
# not, a dependency crept back in and the build should fail loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (offline, warnings are errors) =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== cargo build --release (offline) =="
cargo build --release --workspace --offline

echo "== cargo doc (offline, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "== cargo test (offline) =="
cargo test -q --workspace --offline

echo "== cargo test under the discrete-event executor (offline) =="
SEA_EXECUTOR=des cargo test -q --workspace --offline

echo "== quickstart example (offline) =="
cargo run -q --release --offline -p minimal-tcb --example quickstart

echo "== unified-engine guardrails =="
# sea-core's public API must stay fully documented (the crate-level
# lint is load-bearing: rustdoc warnings above only catch broken links).
grep -q '^#!\[deny(missing_docs)\]' crates/core/src/lib.rs \
  || { echo "ci.sh: crates/core/src/lib.rs must keep #![deny(missing_docs)]" >&2; exit 1; }
# The retired batch entry points may be *called* only by their shim and
# the equivalence suite that pins the shim to SessionEngine::run.
strays=$(grep -rn '\.run_batch_recovered(\|\.run_batch_durable(' crates tests examples \
  --include='*.rs' \
  | grep -v 'crates/core/src/concurrent.rs' \
  | grep -v 'tests/engine_equivalence.rs' \
  | grep -v 'tests/engine.rs' || true)
if [ -n "$strays" ]; then
  echo "ci.sh: deprecated batch entry points called outside the shim/equivalence suite:" >&2
  echo "$strays" >&2
  exit 1
fi
# The thread-pool executor module is the only place in sea-core allowed
# to spawn OS threads; everything else must go through an Executor.
threads=$(grep -rn 'thread::spawn\|thread::scope' crates/core/src \
  --include='*.rs' \
  | grep -v 'crates/core/src/threadpool.rs' || true)
if [ -n "$threads" ]; then
  echo "ci.sh: OS threads spawned in sea-core outside src/threadpool.rs:" >&2
  echo "$threads" >&2
  exit 1
fi
# The engine lock decomposition is rank-checked: every shared-state
# lock in sea-core must be an OrderedLock from the lock-hierarchy
# module, so a raw std Mutex anywhere else would dodge the debug-build
# ordering assertions. (The pattern is `Mutex<` so `MutexGuard` in
# signatures stays legal.)
mutexes=$(grep -rn 'Mutex<' crates/core/src \
  --include='*.rs' \
  | grep -v 'MutexGuard' \
  | grep -v 'crates/core/src/locks.rs' || true)
if [ -n "$mutexes" ]; then
  echo "ci.sh: raw Mutex in sea-core outside src/locks.rs (use OrderedLock):" >&2
  echo "$mutexes" >&2
  exit 1
fi
# The remote verifier is the relying party: it re-implements the
# attestation chain from wire bytes and sea-crypto alone, and must
# never reach into the platform stack it is auditing (that independence
# is what tests/verifier_differential.rs is pinning).
leaks=$(grep -n 'sea_hw::Machine\|sea_tpm::Tpm\|use sea_hw\|use sea_tpm\|use sea_os' \
  crates/fleet/src/verifier.rs || true)
if [ -n "$leaks" ]; then
  echo "ci.sh: crates/fleet/src/verifier.rs must not import the platform stack:" >&2
  echo "$leaks" >&2
  exit 1
fi
# Everything the fleet decides — churn, retries, adversarial schedules —
# must derive from explicit seeds: any ambient entropy or wall-clock
# read would break the byte-identity contract across shards, executors,
# and submission orders.
entropy=$(grep -rn 'thread_rng\|rand::\|SystemTime\|Instant::now\|RandomState' \
  crates/fleet/src --include='*.rs' || true)
if [ -n "$entropy" ]; then
  echo "ci.sh: unseeded randomness or wall-clock reads in crates/fleet/src:" >&2
  echo "$entropy" >&2
  exit 1
fi
# PAL logic is executed bytecode now: its runtime is charged by the VM's
# gas accounting, not hand-modelled. New `ctx.work(` charges in
# sea-pals belong only to the feature-gated cost-model twins.
costs=$(grep -rn 'ctx\.work(' crates/pals/src --include='*.rs' \
  | grep -v 'crates/pals/src/cost_model/' || true)
if [ -n "$costs" ]; then
  echo "ci.sh: ctx.work( in crates/pals/src outside the cost-model twins:" >&2
  echo "$costs" >&2
  exit 1
fi

echo "== engine examples (offline) =="
cargo run -q --release --offline -p minimal-tcb --example multi_pal_server > /dev/null
cargo run -q --release --offline -p minimal-tcb --example full_system > /dev/null

echo "== chaos suite (fixed fault seed, offline) =="
SEA_CHAOS_SEED=20080317 cargo test -q -p minimal-tcb --offline --test fault_recovery

echo "== crash suite (fixed crash seed, offline) =="
SEA_CRASH_SEED=20080317 cargo test -q -p minimal-tcb --offline --test crash_recovery

echo "== benches (smoke mode, offline) =="
SEA_BENCH_SMOKE=1 cargo bench -q -p sea-bench --offline

echo "== fault-sweep bench (smoke mode, offline) =="
SEA_BENCH_SMOKE=1 cargo run -q --release -p sea-bench --offline --bin fault_sweep

echo "== scale bench: 1024 virtual CPUs on the event queue (smoke mode, offline) =="
SEA_BENCH_SMOKE=1 cargo run -q --release -p sea-bench --offline --bin scale

echo "== fleet bench: sharded attestation fleet + remote verifier (smoke mode, offline) =="
SEA_BENCH_SMOKE=1 cargo run -q --release -p sea-bench --offline --bin fleet
# The same fleet must produce byte-identical outcomes under both
# executors (the debug test binary is already built by the test phases).
cargo test -q -p minimal-tcb --offline --test verifier_differential \
  fleet_outcome_is_executor_invariant

echo "== churn bench: fleet under faults, rotation, and adversaries (smoke mode, offline) =="
SEA_BENCH_SMOKE=1 cargo run -q --release -p sea-bench --offline --bin churn
# Churned outcomes must stay byte-identical across shard counts,
# executors, and submission permutations, and every adversarial wire
# must be rejected with a typed reason.
cargo test -q -p minimal-tcb --offline --test verifier_differential \
  churned_fleet_is_byte_identical_across_shards_executors_and_orders
cargo test -q -p minimal-tcb --offline --test verifier_differential \
  every_adversarial_wire_is_rejected_with_a_typed_reason

echo "== vm bench: measured bytecode PALs, chained vs lookup dispatch (offline) =="
# The artifact itself asserts chained and lookup runs produce identical
# outputs and retire identical instruction counts, and that the quote
# set is byte-identical across 1/4-worker thread pools and the
# discrete-event executor.
cargo run -q --release -p sea-bench --offline --bin vm > /dev/null
# The executed-bytecode PALs must stay behaviourally pinned to their
# cost-model twins (the debug test binary is built by the test phases).
cargo test -q -p minimal-tcb --offline --test vm_differential
# And sea-pals must stand alone without the twins: the VM programs are
# the product, the cost-model feature is optional.
cargo build -q -p sea-pals --offline --no-default-features

echo "== suite + BENCH_suite.json (smoke mode, offline) =="
SUITE_JSON=target/BENCH_suite.json
rm -f "$SUITE_JSON"
SEA_BENCH_SMOKE=1 cargo run -q --release -p sea-bench --offline --bin suite -- 2 --json "$SUITE_JSON" > /dev/null
[ -s "$SUITE_JSON" ] || { echo "ci.sh: $SUITE_JSON missing or empty" >&2; exit 1; }
cargo run -q --release -p sea-bench --offline --bin suite -- --validate "$SUITE_JSON"

echo "== suite worker-count invariance: 1 vs 8 vs 16 workers (smoke mode, offline) =="
# The decomposed engine lock must not cost determinism: the whole suite
# — rendered report and BENCH_suite.json alike — is byte-identical at
# every worker count.
for w in 1 8 16; do
  SEA_BENCH_SMOKE=1 cargo run -q --release -p sea-bench --offline --bin suite \
    -- "$w" --json "target/BENCH_suite.w$w.json" > "target/BENCH_suite.w$w.txt"
done
for w in 8 16; do
  cmp -s "target/BENCH_suite.w1.json" "target/BENCH_suite.w$w.json" \
    || { echo "ci.sh: BENCH_suite.json differs between 1 and $w workers" >&2; exit 1; }
  # The report's first line names the worker count; everything after it
  # must match byte for byte.
  cmp -s <(tail -n +2 "target/BENCH_suite.w1.txt") <(tail -n +2 "target/BENCH_suite.w$w.txt") \
    || { echo "ci.sh: suite report differs between 1 and $w workers" >&2; exit 1; }
done

echo "== ci.sh: all green =="
