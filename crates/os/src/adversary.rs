//! The threat model's attacker (§3.2): ring-0 software plus compromised
//! DMA peripherals.
//!
//! "The adversary can subvert all of the legacy software on the
//! platform, including the OS or VMM. ... Since the adversary can run
//! code at ring 0, he can invoke the SKINIT or SENTER instruction with
//! arguments of its choosing. ... The attacker can also compromise
//! add-on hardware such as a DMA-capable Ethernet card."
//!
//! Every attack here goes through the same hardware paths the legitimate
//! code uses; [`AttackOutcome`] records whether the hardware allowed it.
//! The security test-suites assert `Blocked` on every path the paper's
//! design is supposed to close.

use sea_core::{EnhancedSea, PalId, SeaError};
use sea_crypto::{Sha1, Sha1Digest};
use sea_hw::{CpuId, DeviceId, HwError, Requester, TraceEvent};
use sea_tpm::{PcrIndex, TpmError};

/// Records a blocked attack in the hardware trace, naming the mechanism
/// that stopped it, and returns [`AttackOutcome::Blocked`].
fn blocked(sea: &mut EnhancedSea, mechanism: &str) -> AttackOutcome {
    let now = sea.platform().machine().now();
    sea.platform_mut().machine_mut().trace_mut().record(
        now,
        TraceEvent::AttackBlocked {
            mechanism: mechanism.to_string(),
        },
    );
    AttackOutcome::Blocked
}

/// Result of one attack attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The hardware denied the attack (the desired outcome).
    Blocked,
    /// The attack succeeded — carrying any bytes exfiltrated.
    Succeeded(Vec<u8>),
}

impl AttackOutcome {
    /// `true` iff the hardware stopped the attack.
    pub fn was_blocked(&self) -> bool {
        matches!(self, AttackOutcome::Blocked)
    }
}

/// A ring-0 adversary operating against an [`EnhancedSea`] deployment.
#[derive(Debug, Default, Clone, Copy)]
pub struct Adversary;

impl Adversary {
    /// Creates the adversary.
    pub fn new() -> Self {
        Adversary
    }

    /// Reads a PAL's protected memory from another CPU (malicious OS
    /// thread running concurrently, §3.1's multi-core concern).
    pub fn read_pal_memory(
        &self,
        sea: &mut EnhancedSea,
        victim: PalId,
        via_cpu: CpuId,
    ) -> AttackOutcome {
        let range = sea.secb(victim).map(|secb| secb.pages());
        let Ok(range) = range else {
            return blocked(sea, "SECB registry");
        };
        match sea.platform().machine().read(
            Requester::Cpu(via_cpu),
            range.base_addr(),
            range.byte_len(),
        ) {
            Ok(bytes) => AttackOutcome::Succeeded(bytes),
            Err(HwError::AccessDenied { .. }) => blocked(sea, "memory controller"),
            Err(_) => blocked(sea, "memory controller"),
        }
    }

    /// Overwrites a PAL's code/state from another CPU (attempted
    /// time-of-check-time-of-use modification).
    pub fn write_pal_memory(
        &self,
        sea: &mut EnhancedSea,
        victim: PalId,
        via_cpu: CpuId,
        payload: &[u8],
    ) -> AttackOutcome {
        let base = sea.secb(victim).map(|secb| secb.pages().base_addr());
        let Ok(base) = base else {
            return blocked(sea, "SECB registry");
        };
        match sea
            .platform_mut()
            .machine_mut()
            .write(Requester::Cpu(via_cpu), base, payload)
        {
            Ok(()) => AttackOutcome::Succeeded(Vec::new()),
            Err(_) => blocked(sea, "memory controller"),
        }
    }

    /// DMA exfiltration through a compromised peripheral (§3.2's
    /// "DMA-capable Ethernet card with access to the PCI bus").
    pub fn dma_read_pal_memory(
        &self,
        sea: &mut EnhancedSea,
        victim: PalId,
        via_device: DeviceId,
    ) -> AttackOutcome {
        let range = sea.secb(victim).map(|secb| secb.pages());
        let Ok(range) = range else {
            return blocked(sea, "SECB registry");
        };
        match sea
            .platform()
            .machine()
            .dma_read(via_device, range.base_addr(), range.byte_len())
        {
            Ok(bytes) => AttackOutcome::Succeeded(bytes),
            Err(_) => blocked(sea, "memory controller (DMA)"),
        }
    }

    /// Forges a PAL measurement by extending PCR 17 from software with
    /// the victim image's hash, without any late launch. The extend
    /// itself is legal — but the resulting chain can never equal a
    /// launch chain (PCR 17 starts from −1 after boot, 0 only via
    /// hardware reset), so the forgery is detectable. Returns the digest
    /// the attacker would need PCR 17 to hold versus what it actually
    /// holds.
    ///
    /// # Errors
    ///
    /// Propagates TPM failures (none expected).
    pub fn forge_measurement(
        &self,
        sea: &mut EnhancedSea,
        victim_image: &[u8],
    ) -> Result<(Sha1Digest, Sha1Digest), SeaError> {
        let digest = Sha1::digest(victim_image);
        let tpm = sea.platform_mut().tpm_mut().ok_or(SeaError::NoTpm)?;
        let forged = tpm.extend(PcrIndex(17), &digest)?.value;
        let legitimate = sea_tpm::PcrValue::ZERO.extended(&digest);
        Ok((*legitimate.as_bytes(), *forged.as_bytes()))
    }

    /// Addresses a victim PAL's sePCR with TPM commands from a CPU the
    /// attacker controls ("other code attempting any TPM commands with
    /// the PAL's sePCR handle will fail", §5.4.2).
    pub fn hijack_sepcr(
        &self,
        sea: &mut EnhancedSea,
        victim: PalId,
        via_cpu: CpuId,
    ) -> AttackOutcome {
        let handle = sea.secb(victim).map(|secb| secb.sepcr());
        let handle = match handle {
            Ok(Some(handle)) => handle,
            Ok(None) => return blocked(sea, "sePCR binding"),
            Err(_) => return blocked(sea, "SECB registry"),
        };
        let junk = Sha1::digest(b"attacker extend");
        let tpm = match sea.platform_mut().tpm_mut() {
            Some(tpm) => tpm,
            None => return blocked(sea, "sePCR binding"),
        };
        match tpm.sepcr_extend(handle, via_cpu, &junk) {
            Ok(_) => AttackOutcome::Succeeded(Vec::new()),
            Err(TpmError::SePcrAccessDenied { .. }) | Err(TpmError::SePcrWrongState(_)) => {
                blocked(sea, "sePCR access control")
            }
            Err(_) => blocked(sea, "sePCR access control"),
        }
    }

    /// Tries to resume a PAL that is currently executing on another CPU
    /// (double-resume, §5.3.1: "any other CPU that tries to resume the
    /// same PAL will fail").
    pub fn double_resume(
        &self,
        sea: &mut EnhancedSea,
        victim: PalId,
        via_cpu: CpuId,
    ) -> AttackOutcome {
        match sea.resume(victim, via_cpu) {
            Ok(()) => AttackOutcome::Succeeded(Vec::new()),
            Err(_) => blocked(sea, "SECB lifecycle"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{FnPal, PalOutcome, SecurePlatform};
    use sea_hw::Platform;
    use sea_tpm::KeyStrength;

    fn deployment() -> EnhancedSea {
        let platform = Platform::recommended(2);
        let mut sp = SecurePlatform::new(platform.clone(), KeyStrength::Demo512, b"adv");
        *sp.machine_mut() = sea_hw::Machine::builder(platform)
            .device("rogue NIC")
            .build();
        EnhancedSea::new(sp).unwrap()
    }

    #[test]
    fn memory_attacks_blocked_while_running_and_suspended() {
        let mut sea = deployment();
        let adv = Adversary::new();
        let mut pal = FnPal::new("victim", |ctx| {
            ctx.set_state(b"crown jewels".to_vec());
            Ok(PalOutcome::Yield)
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();

        // Running on CPU 0: attacks via CPU 1 and DMA blocked.
        assert!(adv.read_pal_memory(&mut sea, id, CpuId(1)).was_blocked());
        assert!(adv
            .write_pal_memory(&mut sea, id, CpuId(1), b"overwrite")
            .was_blocked());
        assert!(adv
            .dma_read_pal_memory(&mut sea, id, DeviceId(0))
            .was_blocked());

        // Suspended: even the former executing CPU is locked out.
        sea.step(&mut pal, id).unwrap();
        assert!(adv.read_pal_memory(&mut sea, id, CpuId(0)).was_blocked());
        assert!(adv
            .dma_read_pal_memory(&mut sea, id, DeviceId(0))
            .was_blocked());
    }

    #[test]
    fn every_blocked_attack_is_recorded_in_the_trace() {
        let mut sea = deployment();
        let adv = Adversary::new();
        let mut pal = FnPal::new("victim", |_| Ok(PalOutcome::Yield));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();

        let blocked_mechanisms = |sea: &EnhancedSea| -> Vec<String> {
            sea.platform()
                .machine()
                .trace()
                .iter()
                .filter_map(|(_, e)| match e {
                    sea_hw::TraceEvent::AttackBlocked { mechanism } => Some(mechanism.clone()),
                    _ => None,
                })
                .collect()
        };
        assert!(blocked_mechanisms(&sea).is_empty());

        assert!(adv.read_pal_memory(&mut sea, id, CpuId(1)).was_blocked());
        assert!(adv
            .write_pal_memory(&mut sea, id, CpuId(1), b"evil")
            .was_blocked());
        assert!(adv
            .dma_read_pal_memory(&mut sea, id, DeviceId(0))
            .was_blocked());
        assert!(adv.hijack_sepcr(&mut sea, id, CpuId(1)).was_blocked());
        assert!(adv.double_resume(&mut sea, id, CpuId(1)).was_blocked());
        // Attacks on a nonexistent PAL are blocked by the SECB registry
        // and are recorded too.
        assert!(adv
            .read_pal_memory(&mut sea, PalId(404), CpuId(1))
            .was_blocked());

        assert_eq!(
            blocked_mechanisms(&sea),
            vec![
                "memory controller",
                "memory controller",
                "memory controller (DMA)",
                "sePCR access control",
                "SECB lifecycle",
                "SECB registry",
            ]
        );
    }

    #[test]
    fn sepcr_hijack_blocked() {
        let mut sea = deployment();
        let adv = Adversary::new();
        let mut pal = FnPal::new("victim", |_| Ok(PalOutcome::Yield));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        assert!(adv.hijack_sepcr(&mut sea, id, CpuId(1)).was_blocked());
    }

    #[test]
    fn double_resume_blocked_while_executing() {
        let mut sea = deployment();
        let adv = Adversary::new();
        let mut pal = FnPal::new("victim", |_| Ok(PalOutcome::Yield));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        // Execute state: resume is invalid.
        assert!(adv.double_resume(&mut sea, id, CpuId(1)).was_blocked());
        // Legitimate suspend, then legitimate resume…
        sea.step(&mut pal, id).unwrap();
        sea.resume(id, CpuId(1)).unwrap();
        // …and the attacker's concurrent resume is still blocked.
        assert!(adv.double_resume(&mut sea, id, CpuId(0)).was_blocked());
    }

    #[test]
    fn forged_measurement_is_distinguishable() {
        let mut sea = deployment();
        let adv = Adversary::new();
        let (legit, forged) = adv.forge_measurement(&mut sea, b"victim image").unwrap();
        // The attacker extended from −1 (post-boot), the real launch
        // extends from 0: the chains differ, so attestation exposes it.
        assert_ne!(legit, forged);
    }

    #[test]
    fn attacks_on_nonexistent_pal_are_harmless() {
        let mut sea = deployment();
        let adv = Adversary::new();
        let ghost = PalId(404);
        assert!(adv.read_pal_memory(&mut sea, ghost, CpuId(0)).was_blocked());
        assert!(adv
            .dma_read_pal_memory(&mut sea, ghost, DeviceId(0))
            .was_blocked());
        assert!(adv.hijack_sepcr(&mut sea, ghost, CpuId(0)).was_blocked());
        assert!(adv.double_resume(&mut sea, ghost, CpuId(0)).was_blocked());
    }

    #[test]
    fn unprotected_memory_is_fair_game() {
        // Sanity: the adversary primitives do work when nothing defends
        // the target — after SFREE the pages are public again.
        let mut sea = deployment();
        let adv = Adversary::new();
        let mut pal = FnPal::new("victim", |_| Ok(PalOutcome::Exit(b"out".to_vec())));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.step(&mut pal, id).unwrap();
        // PAL exited: its (erased) pages are readable.
        match adv.read_pal_memory(&mut sea, id, CpuId(1)) {
            AttackOutcome::Succeeded(bytes) => {
                assert!(!bytes.is_empty());
            }
            AttackOutcome::Blocked => panic!("released pages should be readable"),
        }
    }
}
