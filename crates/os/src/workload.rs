//! Workload generation and response-time simulation.
//!
//! §4.2's qualitative claim — "most of the computer's processing power
//! and *responsiveness* vanish for over a second during PAL execution"
//! — becomes quantitative here: PAL service requests arrive randomly
//! over a horizon, and a small queueing simulation computes response
//! times under the two architectures' service disciplines:
//!
//! * **baseline**: one session at a time, each stalling the whole
//!   platform (a single server whose service time is the full >1 s
//!   session);
//! * **proposed**: any idle core serves a request (c servers, each
//!   paying only the ~µs-scale switch overheads).

use sea_crypto::Drbg;
use sea_hw::{SimDuration, SimTime};

/// A generated trace of PAL service-request arrival times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    arrivals: Vec<SimTime>,
}

impl ArrivalTrace {
    /// Generates Poisson-ish arrivals over `[0, horizon)` with the given
    /// mean inter-arrival time, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival` is zero.
    pub fn poisson(horizon: SimDuration, mean_interarrival: SimDuration, seed: &[u8]) -> Self {
        assert!(
            mean_interarrival > SimDuration::ZERO,
            "mean inter-arrival must be positive"
        );
        let mut rng = Drbg::new(seed);
        let mut arrivals = Vec::new();
        let mut t = 0f64;
        let horizon_ns = horizon.as_ns() as f64;
        let mean_ns = mean_interarrival.as_ns() as f64;
        loop {
            // Exponential inter-arrival via inverse CDF.
            let u = (rng.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 2.0);
            t += -mean_ns * u.ln();
            if t >= horizon_ns {
                break;
            }
            arrivals.push(SimTime::from_ns(t as u64));
        }
        ArrivalTrace { arrivals }
    }

    /// The arrival instants, ascending.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Response-time statistics from a service simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Mean response time (arrival → completion).
    pub mean: SimDuration,
    /// 95th-percentile response time.
    pub p95: SimDuration,
    /// Worst response time.
    pub max: SimDuration,
    /// Requests served.
    pub served: usize,
}

/// Simulates serving `trace` on `servers` parallel servers with fixed
/// per-request `service_time` (earliest-free-server discipline) and
/// returns the response-time statistics.
///
/// `servers = 1` with a session-scale service time models the baseline's
/// whole-platform serialization; `servers = n_cpus` with a work-scale
/// service time models the proposed hardware.
///
/// # Panics
///
/// Panics if `servers == 0` or the trace is empty.
pub fn simulate_service(
    trace: &ArrivalTrace,
    servers: usize,
    service_time: SimDuration,
) -> ResponseStats {
    assert!(servers > 0, "need at least one server");
    assert!(!trace.is_empty(), "empty arrival trace");
    let mut free_at = vec![SimTime::ZERO; servers];
    let mut responses: Vec<SimDuration> = Vec::with_capacity(trace.len());
    for &arrival in trace.arrivals() {
        // Earliest-free server.
        let (idx, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("at least one server");
        let start = if earliest > arrival {
            earliest
        } else {
            arrival
        };
        let completion = start + service_time;
        free_at[idx] = completion;
        responses.push(completion.duration_since(arrival));
    }
    responses.sort_unstable();
    let total: SimDuration = responses.iter().copied().sum();
    let p95_idx = ((responses.len() as f64) * 0.95).ceil() as usize - 1;
    ResponseStats {
        mean: total / responses.len() as u64,
        p95: responses[p95_idx.min(responses.len() - 1)],
        max: *responses.last().expect("nonempty"),
        served: responses.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_deterministic_and_in_horizon() {
        let h = SimDuration::from_secs(10);
        let a = ArrivalTrace::poisson(h, SimDuration::from_ms(100), b"seed");
        let b = ArrivalTrace::poisson(h, SimDuration::from_ms(100), b"seed");
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Roughly horizon/mean arrivals (±50% for the short horizon).
        assert!(a.len() > 50 && a.len() < 200, "{} arrivals", a.len());
        for w in a.arrivals().windows(2) {
            assert!(w[1] >= w[0], "sorted");
        }
        assert!(a.arrivals().last().unwrap().as_ns() < h.as_ns());
    }

    #[test]
    fn different_seeds_differ() {
        let h = SimDuration::from_secs(5);
        let a = ArrivalTrace::poisson(h, SimDuration::from_ms(100), b"seed-a");
        let b = ArrivalTrace::poisson(h, SimDuration::from_ms(100), b"seed-b");
        assert_ne!(a, b);
    }

    #[test]
    fn unloaded_service_response_equals_service_time() {
        // Arrivals far apart: every request is served immediately.
        let trace = ArrivalTrace::poisson(
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            b"sparse",
        );
        let svc = SimDuration::from_ms(5);
        let stats = simulate_service(&trace, 1, svc);
        assert_eq!(stats.mean, svc);
        assert_eq!(stats.max, svc);
    }

    #[test]
    fn single_slow_server_queues_badly() {
        // 1.1 s sessions arriving every ~500 ms on one server: the queue
        // grows without bound; mean response far exceeds service time.
        let trace = ArrivalTrace::poisson(
            SimDuration::from_secs(30),
            SimDuration::from_ms(500),
            b"storm",
        );
        let baseline = simulate_service(&trace, 1, SimDuration::from_ms(1100));
        assert!(
            baseline.mean > SimDuration::from_secs(5),
            "mean {}",
            baseline.mean
        );

        // The same storm on 4 fast servers barely queues.
        let proposed = simulate_service(&trace, 4, SimDuration::from_ms(12));
        assert!(
            proposed.mean < SimDuration::from_ms(20),
            "mean {}",
            proposed.mean
        );
        assert_eq!(baseline.served, proposed.served);
    }

    #[test]
    fn percentiles_are_ordered() {
        let trace =
            ArrivalTrace::poisson(SimDuration::from_secs(20), SimDuration::from_ms(200), b"p");
        let s = simulate_service(&trace, 2, SimDuration::from_ms(300));
        assert!(s.mean <= s.p95 || s.p95 == s.max);
        assert!(s.p95 <= s.max);
        assert_eq!(s.served, trace.len());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let trace =
            ArrivalTrace::poisson(SimDuration::from_secs(1), SimDuration::from_ms(100), b"x");
        let _ = simulate_service(&trace, 0, SimDuration::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interarrival_panics() {
        let _ = ArrivalTrace::poisson(SimDuration::from_secs(1), SimDuration::ZERO, b"x");
    }
}
