//! Multiprogramming PALs with legacy work — the concurrency experiment.
//!
//! §4.2: on baseline hardware "the late launch operation requires all
//! but one of the processors to be in a special idle state. As a result,
//! most of the computer's processing power and responsiveness vanish for
//! over a second during PAL execution."
//!
//! §5 (Figure 4): the proposed hardware runs "an arbitrary number of
//! mutually-untrusting PALs alongside an untrusted legacy OS", each on
//! one core, context-switched at VM-entry cost.
//!
//! [`Scheduler`] implements the proposed-hardware schedule (least-loaded
//! CPU assignment over an [`EnhancedSea`]); [`LegacyBatch`] implements
//! the baseline whole-platform-stall schedule. Both report the same
//! [`ScheduleOutcome`] so the `concurrency` bench can compare legacy
//! CPU time available under each.

use sea_core::{
    BatchPolicy, ConcurrentJob, EnhancedSea, Executor, LegacySea, PalId, PalLogic, PalStep,
    RetryPolicy, SecurePlatform, SessionEngine, SessionReport, SessionResult,
};
use sea_hw::{CpuId, FaultPlan, ResetPlan, SimDuration, SimTime};

use crate::error::OsError;

/// What a scheduling run produced and consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Wall-clock (virtual) length of the schedule.
    pub wall: SimDuration,
    /// CPU time consumed executing PALs (including their overheads).
    pub pal_busy: SimDuration,
    /// CPU time burned in the baseline's forced-idle state (zero on the
    /// proposed hardware).
    pub stalled: SimDuration,
    /// CPU time left over for legacy OS + applications within `horizon`.
    pub legacy_available: SimDuration,
    /// Outputs of the completed PALs, in job order. A killed job
    /// contributes an empty output.
    pub outputs: Vec<Vec<u8>>,
    /// Per-job cost reports, in job order.
    pub reports: Vec<SessionReport>,
    /// Session keys (job indices) torn down by the recovery layer after
    /// exhausting their retry budget. Empty without a fault plan.
    pub killed: Vec<u64>,
    /// Session keys that fell back to the legacy slow path because the
    /// sePCR bank was saturated. Empty without a fault plan.
    pub degraded: Vec<u64>,
    /// Session keys relaunched from the journal after a platform reset
    /// (last recovery epoch). Empty without a reset plan.
    pub relaunched: Vec<u64>,
    /// Platform resets survived during the schedule. Zero without a
    /// reset plan.
    pub resets: u32,
}

impl ScheduleOutcome {
    /// Fraction of total CPU time (cores × horizon) left for legacy
    /// work, in `[0, 1]`.
    pub fn legacy_utilization(&self, n_cpus: u16, horizon: SimDuration) -> f64 {
        let total = horizon.as_ns().saturating_mul(n_cpus as u64);
        if total == 0 {
            return 0.0;
        }
        self.legacy_available.as_ns() as f64 / total as f64
    }
}

struct Job {
    logic: Box<dyn PalLogic>,
    input: Vec<u8>,
    id: Option<PalId>,
    needs_resume: bool,
    output: Option<Vec<u8>>,
    /// Retries consumed from the policy's budget so far.
    retries: u32,
    /// Report for jobs that never held a [`PalId`] to query (degraded
    /// to the legacy path, or killed before launch completed).
    report_override: Option<SessionReport>,
}

/// Least-loaded-CPU scheduler over the proposed hardware.
///
/// Jobs are stepped round-robin; every SEA operation's virtual-time cost
/// is attributed to the CPU it ran on, and independent PALs on different
/// CPUs overlap — so the schedule's wall time is the *longest per-CPU
/// timeline*, not the sum.
pub struct Scheduler {
    sea: EnhancedSea,
    jobs: Vec<Job>,
    preemption_timer: Option<SimDuration>,
    retry_policy: Option<RetryPolicy>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Wraps an [`EnhancedSea`] runtime.
    pub fn new(sea: EnhancedSea) -> Self {
        Scheduler {
            sea,
            jobs: Vec::new(),
            preemption_timer: None,
            retry_policy: None,
        }
    }

    /// Sets the preemption timer the OS installs for every PAL.
    pub fn set_preemption_timer(&mut self, timer: Option<SimDuration>) {
        self.preemption_timer = timer;
    }

    /// Enables (or disables) fault recovery: with a policy installed,
    /// SEA operations go through the `*_keyed` fault-injection points,
    /// transient failures are retried within the policy's budget,
    /// sePCR-bank saturation degrades the job to the legacy slow path,
    /// and exhausted sessions are `SKILL`ed — their slot is reclaimed
    /// and the rest of the batch completes.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry_policy = policy;
    }

    /// Queues a PAL job.
    pub fn add_job(&mut self, logic: Box<dyn PalLogic>, input: &[u8]) {
        self.jobs.push(Job {
            logic,
            input: input.to_vec(),
            id: None,
            needs_resume: false,
            output: None,
            retries: 0,
            report_override: None,
        });
    }

    /// The wrapped runtime (e.g. for post-run attestation).
    pub fn sea(&self) -> &EnhancedSea {
        &self.sea
    }

    /// Mutable access to the wrapped runtime.
    pub fn sea_mut(&mut self) -> &mut EnhancedSea {
        &mut self.sea
    }

    /// Runs every queued job to completion, then accounts legacy CPU
    /// time within `horizon` (which must be at least the schedule's
    /// wall time).
    ///
    /// # Errors
    ///
    /// [`OsError::NothingToRun`] with an empty queue; SEA failures
    /// propagate as [`OsError::Sea`].
    pub fn run_all(&mut self, horizon: SimDuration) -> Result<ScheduleOutcome, OsError> {
        if self.jobs.is_empty() {
            return Err(OsError::NothingToRun);
        }
        let n_cpus = self.sea.platform().machine().platform().n_cpus;
        let mut busy = vec![SimDuration::ZERO; n_cpus as usize];
        let policy = self.retry_policy;
        let mut killed: Vec<u64> = Vec::new();
        let mut degraded: Vec<u64> = Vec::new();

        let mut remaining = self.jobs.len();
        while remaining > 0 {
            for (index, job) in self.jobs.iter_mut().enumerate() {
                if job.output.is_some() {
                    continue;
                }
                let key = index as u64;
                // Pick the least-loaded CPU.
                let cpu = CpuId(
                    busy.iter()
                        .enumerate()
                        .min_by_key(|(_, b)| **b)
                        .map(|(i, _)| i as u16)
                        .ok_or(OsError::SchedulerInternal("scheduler has no CPUs"))?,
                );
                let before = self.sea.platform().machine().now();
                let id = match job.id {
                    None => match policy {
                        None => {
                            let id = self.sea.slaunch(
                                job.logic.as_mut(),
                                &job.input,
                                cpu,
                                self.preemption_timer,
                            )?;
                            job.id = Some(id);
                            id
                        }
                        Some(pol) => {
                            let launched = loop {
                                let error = match self.sea.slaunch_keyed(
                                    job.logic.as_mut(),
                                    &job.input,
                                    cpu,
                                    self.preemption_timer,
                                    key,
                                ) {
                                    Ok(id) => break Some(id),
                                    Err(e) => e,
                                };
                                if RetryPolicy::is_saturation(&error) {
                                    // Graceful degradation: run the job on
                                    // the legacy slow path instead of
                                    // waiting for a free sePCR.
                                    let done = self.sea.run_legacy_fallback(
                                        job.logic.as_mut(),
                                        &job.input,
                                        cpu,
                                    )?;
                                    job.output = Some(done.output);
                                    job.report_override = Some(done.report);
                                    degraded.push(key);
                                    break None;
                                }
                                if pol.is_retryable(&error) && job.retries < pol.max_retries() {
                                    job.retries += 1;
                                    continue;
                                }
                                // Nothing launched (a faulted SLAUNCH
                                // already rolled its pages back), so
                                // there is nothing to SKILL.
                                job.output = Some(Vec::new());
                                job.report_override = Some(SessionReport::default());
                                killed.push(key);
                                break None;
                            };
                            match launched {
                                Some(id) => {
                                    job.id = Some(id);
                                    id
                                }
                                None => {
                                    let elapsed =
                                        self.sea.platform().machine().now().duration_since(before);
                                    busy[cpu.0 as usize] += elapsed;
                                    remaining -= 1;
                                    continue;
                                }
                            }
                        }
                    },
                    Some(id) => {
                        if job.needs_resume {
                            let resumed = match policy {
                                None => {
                                    self.sea.resume(id, cpu)?;
                                    true
                                }
                                Some(pol) => loop {
                                    match self.sea.resume_keyed(id, cpu, key) {
                                        Ok(()) => break true,
                                        Err(e)
                                            if pol.is_retryable(&e)
                                                && job.retries < pol.max_retries() =>
                                        {
                                            job.retries += 1;
                                        }
                                        Err(_) => break false,
                                    }
                                },
                            };
                            if !resumed {
                                self.sea.kill_session(id, key)?;
                                job.output = Some(Vec::new());
                                killed.push(key);
                                let elapsed =
                                    self.sea.platform().machine().now().duration_since(before);
                                busy[cpu.0 as usize] += elapsed;
                                remaining -= 1;
                                continue;
                            }
                            job.needs_resume = false;
                        }
                        id
                    }
                };
                let step = match policy {
                    None => self.sea.step(job.logic.as_mut(), id)?,
                    Some(_) => match self.sea.step_keyed(job.logic.as_mut(), id, key) {
                        Ok(step) => step,
                        Err(_) => {
                            // A failing PAL is misbehaving: SKILL it and
                            // let the rest of the schedule proceed.
                            self.sea.kill_session(id, key)?;
                            job.output = Some(Vec::new());
                            killed.push(key);
                            let elapsed =
                                self.sea.platform().machine().now().duration_since(before);
                            busy[cpu.0 as usize] += elapsed;
                            remaining -= 1;
                            continue;
                        }
                    },
                };
                let elapsed = self.sea.platform().machine().now().duration_since(before);
                busy[cpu.0 as usize] += elapsed;
                match step {
                    PalStep::Exited { output } => {
                        job.output = Some(output);
                        remaining -= 1;
                        // The OS recycles the sePCR immediately; callers
                        // wanting an attestation should quote through
                        // `sea_mut()` before the job is re-run.
                        self.sea.release_sepcr(id)?;
                    }
                    PalStep::Yielded => {
                        job.needs_resume = true;
                    }
                }
            }
        }

        let wall = busy.iter().copied().max().unwrap_or(SimDuration::ZERO);
        let pal_busy: SimDuration = busy.iter().copied().sum();
        let horizon = horizon.max(wall);
        let legacy_available =
            SimDuration::from_ns(horizon.as_ns() * n_cpus as u64 - pal_busy.as_ns());

        let mut outputs = Vec::with_capacity(self.jobs.len());
        let mut reports = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            outputs.push(
                job.output
                    .clone()
                    .ok_or(OsError::SchedulerInternal("job finished without an output"))?,
            );
            let report = match (job.report_override, job.id) {
                (Some(report), _) => report,
                (None, Some(id)) => self.sea.report(id)?,
                (None, None) => SessionReport::default(),
            };
            reports.push(report);
        }
        Ok(ScheduleOutcome {
            wall,
            pal_busy,
            stalled: SimDuration::ZERO,
            legacy_available,
            outputs,
            reports,
            killed,
            degraded,
            relaunched: Vec::new(),
            resets: 0,
        })
    }
}

/// Collects per-session outputs, reports, and kill/degrade key lists
/// from a batch result, in job order.
fn unpack_sessions(
    sessions: &[SessionResult],
) -> (Vec<Vec<u8>>, Vec<SessionReport>, Vec<u64>, Vec<u64>) {
    let mut outputs = Vec::with_capacity(sessions.len());
    let mut reports = Vec::with_capacity(sessions.len());
    let mut killed = Vec::new();
    let mut degraded = Vec::new();
    for (i, session) in sessions.iter().enumerate() {
        match session {
            SessionResult::Quoted { result, .. } => {
                outputs.push(result.output.clone());
                reports.push(result.report);
            }
            SessionResult::Degraded { output, report, .. } => {
                outputs.push(output.clone());
                reports.push(*report);
                degraded.push(i as u64);
            }
            SessionResult::Killed { .. } => {
                outputs.push(Vec::new());
                reports.push(SessionReport::default());
                killed.push(i as u64);
            }
            // `SessionResult` is non-exhaustive; treat unknown future
            // outcomes as kills so they are visible.
            _ => {
                outputs.push(Vec::new());
                reports.push(SessionReport::default());
                killed.push(i as u64);
            }
        }
    }
    (outputs, reports, killed, degraded)
}

/// The OS feeding the multi-core concurrent session engine: queued jobs
/// are dispatched to a [`SessionEngine`]'s worker pool (real threads,
/// one per simulated CPU) instead of being stepped round-robin on the
/// caller's thread.
///
/// Reports the same [`ScheduleOutcome`] as [`Scheduler`], so the
/// concurrency experiments can swap drivers without changing their
/// accounting — and the two must agree: job outputs and per-job reports
/// are byte-identical between [`Scheduler`] (cooperative, serial host
/// execution) and [`ParallelScheduler`] at any worker count.
pub struct ParallelScheduler {
    pool: SessionEngine,
    n_cpus: u16,
    jobs: Vec<ConcurrentJob>,
    retry_policy: Option<RetryPolicy>,
    reset_plan: Option<ResetPlan>,
}

impl std::fmt::Debug for ParallelScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelScheduler")
            .field("workers", &self.pool.workers())
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl ParallelScheduler {
    /// Builds a pool of `workers` threads over `platform`.
    ///
    /// # Errors
    ///
    /// As for [`SessionEngine::new`].
    pub fn new(platform: SecurePlatform, workers: usize) -> Result<Self, OsError> {
        let n_cpus = platform.machine().platform().n_cpus;
        Ok(ParallelScheduler {
            pool: SessionEngine::new(platform, workers)?,
            n_cpus,
            jobs: Vec::new(),
            retry_policy: None,
            reset_plan: None,
        })
    }

    /// Installs (or clears) a deterministic fault plan on the pool.
    /// Takes effect only together with [`Self::set_retry_policy`].
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.pool.set_fault_plan(plan);
    }

    /// Enables (or disables) fault recovery, as
    /// [`Scheduler::set_retry_policy`] does for the cooperative driver.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry_policy = policy;
    }

    /// Selects the execution backend for the pool: real OS threads
    /// (the default) or the deterministic discrete-event executor,
    /// which steps the same sessions as virtual CPUs on one thread —
    /// letting the scheduler model platforms far wider than the host.
    pub fn set_executor(&mut self, executor: Executor) {
        self.pool.set_executor(executor);
    }

    /// The pool's currently selected execution backend.
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.pool.executor()
    }

    /// Installs (or clears) a platform reset plan. With a plan set,
    /// [`Self::run_all`] drives the batch through the crash-consistent
    /// engine: every terminal session commits to the journaled NVRAM
    /// checkpoint, power losses reboot the platform mid-batch, and the
    /// scheduler rebuilds its run queue from the journal — committed
    /// sessions keep their results, torn ones are relaunched.
    pub fn set_reset_plan(&mut self, plan: Option<ResetPlan>) {
        self.reset_plan = plan;
    }

    /// Queues a PAL job. Unlike [`Scheduler::add_job`] the logic must be
    /// [`Send`]: it will execute on a worker thread.
    pub fn add_job(&mut self, logic: Box<dyn PalLogic + Send>, input: &[u8]) {
        self.pool.obs().add("os.enqueued", 1);
        self.jobs.push(ConcurrentJob::new(logic, input.to_vec()));
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Installs the observability handle into the pool's shared engine.
    /// The scheduler then emits `os.*` counters (queue depth, dispatch,
    /// relaunch, reset) alongside the engine's session spans.
    pub fn install_obs(&self, obs: sea_hw::Obs) {
        self.pool.install_obs(obs);
    }

    /// Runs every queued job across the pool, then accounts legacy CPU
    /// time within `horizon` exactly as [`Scheduler::run_all`] does.
    ///
    /// # Errors
    ///
    /// [`OsError::NothingToRun`] with an empty queue; SEA failures
    /// propagate as [`OsError::Sea`].
    pub fn run_all(&mut self, horizon: SimDuration) -> Result<ScheduleOutcome, OsError> {
        if self.jobs.is_empty() {
            return Err(OsError::NothingToRun);
        }
        let obs = self.pool.obs();
        obs.add("os.dispatched", self.jobs.len() as u64);
        // The scheduler's knobs compose directly into a batch policy:
        // a reset plan turns on the crash-consistent journal (retry
        // defaults on, since relaunches ride the recovery driver), a
        // retry policy alone turns on fault recovery, neither runs the
        // plain fault-free path.
        let policy = match (self.retry_policy, self.reset_plan.clone()) {
            (retry, Some(plan)) => BatchPolicy::plain()
                .with_retry(retry.unwrap_or_default())
                .with_durability(plan),
            (Some(retry), None) => BatchPolicy::plain().with_retry(retry),
            (None, None) => BatchPolicy::plain(),
        };
        let outcome = self.pool.run(std::mem::take(&mut self.jobs), &policy)?;
        let pal_busy: SimDuration = outcome.cpu_busy.iter().copied().sum();
        let horizon = horizon.max(outcome.wall);
        let legacy_available =
            SimDuration::from_ns(horizon.as_ns() * self.n_cpus as u64 - pal_busy.as_ns());
        let (outputs, reports, killed, degraded) = unpack_sessions(&outcome.sessions);
        if self.reset_plan.is_some() {
            obs.add("os.relaunched", outcome.relaunched.len() as u64);
            obs.add("os.resets", outcome.resets as u64);
        }
        Ok(ScheduleOutcome {
            wall: outcome.wall,
            pal_busy,
            stalled: SimDuration::ZERO,
            legacy_available,
            outputs,
            reports,
            killed,
            degraded,
            relaunched: outcome.relaunched,
            resets: outcome.resets,
        })
    }
}

/// The baseline schedule: PAL sessions run one at a time, and each one
/// stalls every other core for its whole duration (§4.2).
pub struct LegacyBatch {
    sea: LegacySea,
    jobs: Vec<(Box<dyn PalLogic>, Vec<u8>)>,
}

impl std::fmt::Debug for LegacyBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LegacyBatch")
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl LegacyBatch {
    /// Wraps a [`LegacySea`] runtime.
    pub fn new(sea: LegacySea) -> Self {
        LegacyBatch {
            sea,
            jobs: Vec::new(),
        }
    }

    /// Queues a PAL job.
    pub fn add_job(&mut self, logic: Box<dyn PalLogic>, input: &[u8]) {
        self.jobs.push((logic, input.to_vec()));
    }

    /// The wrapped runtime.
    pub fn sea(&self) -> &LegacySea {
        &self.sea
    }

    /// Runs every queued session back-to-back and accounts the cost to
    /// the whole platform within `horizon`.
    ///
    /// # Errors
    ///
    /// [`OsError::NothingToRun`] with an empty queue; SEA failures
    /// propagate.
    pub fn run_all(&mut self, horizon: SimDuration) -> Result<ScheduleOutcome, OsError> {
        if self.jobs.is_empty() {
            return Err(OsError::NothingToRun);
        }
        let n_cpus = self.sea.platform().machine().platform().n_cpus as u64;
        let start: SimTime = self.sea.platform().machine().now();
        let mut outputs = Vec::new();
        let mut reports = Vec::new();
        for (logic, input) in &mut self.jobs {
            let result = self.sea.run_session(logic.as_mut(), input)?;
            outputs.push(result.output.unwrap_or_default());
            reports.push(result.report);
        }
        let wall = self.sea.platform().machine().now().duration_since(start);
        let horizon = horizon.max(wall);
        // During sessions, one core runs the PAL and the others idle.
        let pal_busy = wall;
        let stalled = SimDuration::from_ns(wall.as_ns() * (n_cpus - 1));
        let legacy_available =
            SimDuration::from_ns(horizon.as_ns() * n_cpus - pal_busy.as_ns() - stalled.as_ns());
        Ok(ScheduleOutcome {
            wall,
            pal_busy,
            stalled,
            legacy_available,
            outputs,
            reports,
            killed: Vec::new(),
            degraded: Vec::new(),
            relaunched: Vec::new(),
            resets: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{FnPal, PalOutcome, SecurePlatform};
    use sea_hw::Platform;
    use sea_tpm::KeyStrength;

    fn make_pal(n: usize, work_ms: u64) -> Box<dyn PalLogic> {
        Box::new(
            FnPal::new(&format!("job-{n}"), move |ctx| {
                ctx.work(SimDuration::from_ms(work_ms));
                Ok(PalOutcome::Exit(vec![n as u8]))
            })
            .with_image_size(4096),
        )
    }

    fn enhanced(n_cpus: u16) -> EnhancedSea {
        EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(n_cpus),
            KeyStrength::Demo512,
            b"sched",
        ))
        .unwrap()
    }

    #[test]
    fn empty_queue_is_an_error() {
        let mut s = Scheduler::new(enhanced(2));
        assert_eq!(
            s.run_all(SimDuration::from_secs(1)),
            Err(OsError::NothingToRun)
        );
    }

    #[test]
    fn jobs_spread_across_cpus() {
        let mut s = Scheduler::new(enhanced(4));
        for i in 0..4 {
            s.add_job(make_pal(i, 100), b"");
        }
        let out = s.run_all(SimDuration::from_secs(1)).unwrap();
        assert_eq!(out.outputs, vec![vec![0], vec![1], vec![2], vec![3]]);
        // Four ~100 ms jobs on four CPUs: wall ≈ one job, not four.
        assert!(out.wall < SimDuration::from_ms(150), "wall {}", out.wall);
        assert!(out.pal_busy > SimDuration::from_ms(380));
        assert_eq!(out.stalled, SimDuration::ZERO);
    }

    #[test]
    fn legacy_available_accounts_horizon() {
        let mut s = Scheduler::new(enhanced(2));
        s.add_job(make_pal(0, 100), b"");
        let horizon = SimDuration::from_secs(1);
        let out = s.run_all(horizon).unwrap();
        // 2 CPUs × 1 s − ~100 ms of PAL time.
        let legacy_ms = out.legacy_available.as_ms_f64();
        assert!((legacy_ms - 1895.0).abs() < 20.0, "got {legacy_ms}");
        let util = out.legacy_utilization(2, horizon);
        assert!(util > 0.93 && util < 0.96, "util {util}");
    }

    #[test]
    fn yielding_jobs_complete_over_multiple_rounds() {
        let mut s = Scheduler::new(enhanced(2));
        for i in 0..3 {
            let mut steps_left = 3u8;
            s.add_job(
                Box::new(FnPal::new(&format!("multi-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_ms(1));
                    steps_left -= 1;
                    if steps_left == 0 {
                        Ok(PalOutcome::Exit(vec![i]))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            );
        }
        let out = s.run_all(SimDuration::from_ms(100)).unwrap();
        assert_eq!(out.outputs, vec![vec![0], vec![1], vec![2]]);
        // Each job: 2 yields + 2 resumes worth of switches in its report.
        for r in &out.reports {
            assert!(r.context_switch > SimDuration::ZERO);
            assert_eq!(r.pal_work, SimDuration::from_ms(3));
        }
    }

    #[test]
    fn legacy_batch_stalls_other_cores() {
        let platform = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"batch");
        let mut batch = LegacyBatch::new(LegacySea::new(platform).unwrap());
        for i in 0..2 {
            batch.add_job(make_pal(i, 10), b"");
        }
        let horizon = SimDuration::from_secs(2);
        let out = batch.run_all(horizon).unwrap();
        assert_eq!(out.outputs.len(), 2);
        // Each session ≈ SKINIT(4 KB ≈ 11 ms) + 10 ms work ≈ 21 ms.
        assert!(out.wall > SimDuration::from_ms(40));
        // The second core lost exactly the wall duration.
        assert_eq!(out.stalled, out.wall);
        assert!(out.legacy_available < SimDuration::from_ns(horizon.as_ns() * 2));
    }

    fn make_send_pal(n: usize, work_ms: u64) -> Box<dyn PalLogic + Send> {
        Box::new(
            FnPal::new(&format!("job-{n}"), move |ctx| {
                ctx.work(SimDuration::from_ms(work_ms));
                Ok(PalOutcome::Exit(vec![n as u8]))
            })
            .with_image_size(4096),
        )
    }

    fn secure_platform(n_cpus: u16) -> SecurePlatform {
        SecurePlatform::new(
            Platform::recommended(n_cpus),
            KeyStrength::Demo512,
            b"sched",
        )
    }

    #[test]
    fn parallel_scheduler_empty_queue_is_an_error() {
        let mut s = ParallelScheduler::new(secure_platform(2), 2).unwrap();
        assert_eq!(
            s.run_all(SimDuration::from_secs(1)),
            Err(OsError::NothingToRun)
        );
    }

    #[test]
    fn parallel_scheduler_matches_outputs_and_overlaps_work() {
        let mut s = ParallelScheduler::new(secure_platform(4), 4).unwrap();
        for i in 0..4 {
            s.add_job(make_send_pal(i, 100), b"");
        }
        let out = s.run_all(SimDuration::from_secs(1)).unwrap();
        assert_eq!(out.outputs, vec![vec![0], vec![1], vec![2], vec![3]]);
        // Four jobs (~100 ms work + ~262 ms attestation each) on four
        // worker threads overlap in virtual time: wall ≈ one job, the
        // aggregate is ~4×.
        assert!(out.wall < SimDuration::from_ms(400), "wall {}", out.wall);
        assert!(
            out.pal_busy > SimDuration::from_ms(400),
            "busy {}",
            out.pal_busy
        );
        assert_eq!(out.stalled, SimDuration::ZERO);
        for r in &out.reports {
            assert_eq!(r.pal_work, SimDuration::from_ms(100));
        }
    }

    #[test]
    fn parallel_scheduler_outputs_equal_cooperative_scheduler() {
        // The two proposed-hardware drivers agree byte-for-byte on what
        // the PALs produced and what each session cost.
        let mut coop = Scheduler::new(enhanced(4));
        let mut par = ParallelScheduler::new(secure_platform(4), 4).unwrap();
        for i in 0..6 {
            coop.add_job(make_pal(i, 20), b"");
            par.add_job(make_send_pal(i, 20), b"");
        }
        let horizon = SimDuration::from_secs(1);
        let c = coop.run_all(horizon).unwrap();
        let p = par.run_all(horizon).unwrap();
        assert_eq!(c.outputs, p.outputs);
        for (cr, pr) in c.reports.iter().zip(&p.reports) {
            assert_eq!(cr.pal_work, pr.pal_work);
            assert_eq!(cr.late_launch, pr.late_launch);
        }
    }

    #[test]
    fn scheduler_recovers_from_transient_faults() {
        let mut s = Scheduler::new(enhanced(2));
        s.sea_mut().set_fault_plan(Some(
            FaultPlan::new(11)
                .with_tpm_rate(5000)
                .with_mem_rate(5000)
                .with_timer_rate(5000)
                .with_fatal_ratio(0),
        ));
        s.set_retry_policy(Some(RetryPolicy::default()));
        for i in 0..6 {
            s.add_job(make_pal(i, 5), b"");
        }
        let out = s.run_all(SimDuration::from_secs(1)).unwrap();
        // Retryable-only faults within budget: everything completes.
        assert!(out.killed.is_empty(), "killed {:?}", out.killed);
        assert!(out.degraded.is_empty());
        assert_eq!(out.outputs, (0..6u8).map(|i| vec![i]).collect::<Vec<_>>());
        // The engine is clean afterwards.
        let tpm = s.sea().platform().tpm().expect("tpm");
        assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
    }

    #[test]
    fn scheduler_kills_fatal_sessions_and_batch_completes() {
        let mut s = Scheduler::new(enhanced(2));
        s.sea_mut().set_fault_plan(Some(
            FaultPlan::new(5)
                .with_tpm_rate(15_000)
                .with_fatal_ratio(sea_hw::RATE_DENOM),
        ));
        s.set_retry_policy(Some(RetryPolicy::default()));
        for i in 0..8 {
            s.add_job(make_pal(i, 5), b"");
        }
        let out = s.run_all(SimDuration::from_secs(1)).unwrap();
        assert!(!out.killed.is_empty(), "seed 5 at ~23% must kill");
        assert_eq!(out.outputs.len(), 8);
        for key in &out.killed {
            assert!(out.outputs[*key as usize].is_empty());
        }
        for i in 0..8u64 {
            if !out.killed.contains(&i) {
                assert_eq!(out.outputs[i as usize], vec![i as u8]);
            }
        }
        // Killed slots were reclaimed: every sePCR is Free again.
        let tpm = s.sea().platform().tpm().expect("tpm");
        assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
        let (_, cpus_pages, none_pages) = s.sea().platform().machine().controller().state_census();
        assert_eq!((cpus_pages, none_pages), (0, 0));
    }

    #[test]
    fn saturated_sepcr_bank_degrades_to_legacy_path() {
        // A platform with a single sePCR: job 0 holds it (yielding so it
        // stays live), job 1 must fall back to the legacy slow path.
        let mut platform = Platform::recommended(2);
        platform.sepcr_count = 1;
        let sea = EnhancedSea::new(SecurePlatform::new(
            platform,
            KeyStrength::Demo512,
            b"sched",
        ))
        .unwrap();
        let mut s = Scheduler::new(sea);
        s.sea_mut().set_fault_plan(Some(FaultPlan::fault_free()));
        s.set_retry_policy(Some(RetryPolicy::default()));
        for i in 0..2 {
            let mut steps = 2u8;
            s.add_job(
                Box::new(FnPal::new(&format!("sat-{i}"), move |ctx| {
                    ctx.work(SimDuration::from_ms(1));
                    steps -= 1;
                    if steps == 0 {
                        Ok(PalOutcome::Exit(vec![i]))
                    } else {
                        Ok(PalOutcome::Yield)
                    }
                })),
                b"",
            );
        }
        let out = s.run_all(SimDuration::from_secs(1)).unwrap();
        assert_eq!(out.degraded, vec![1]);
        assert!(out.killed.is_empty());
        assert_eq!(out.outputs, vec![vec![0], vec![1]]);
        // The degraded job paid a full late launch of its own.
        assert!(out.reports[1].late_launch > SimDuration::ZERO);
    }

    #[test]
    fn parallel_scheduler_recovery_is_worker_count_invariant() {
        // Same fault plan, same jobs: one worker and four workers agree
        // on which sessions die and what the survivors produced.
        let plan = FaultPlan::new(5)
            .with_tpm_rate(15_000)
            .with_fatal_ratio(sea_hw::RATE_DENOM);
        let run = |workers: usize| {
            let mut par = ParallelScheduler::new(secure_platform(4), workers).unwrap();
            par.set_fault_plan(Some(plan.clone()));
            par.set_retry_policy(Some(RetryPolicy::default()));
            for i in 0..8 {
                par.add_job(make_send_pal(i, 5), b"");
            }
            par.run_all(SimDuration::from_secs(1)).unwrap()
        };
        let serial = run(1);
        let wide = run(4);
        assert!(!serial.killed.is_empty(), "seed 5 at ~23% must kill");
        assert_eq!(serial.killed, wide.killed);
        assert_eq!(serial.outputs, wide.outputs);
        assert_eq!(serial.degraded, wide.degraded);
    }

    #[test]
    fn parallel_scheduler_durable_reset_free_matches_recovered() {
        // A reset-free plan exercises the journaled path without ever
        // pulling the plug: the schedule must agree with the plain
        // recovered driver on every output and report.
        let run_recovered = || {
            let mut par = ParallelScheduler::new(secure_platform(4), 2).unwrap();
            par.set_fault_plan(Some(FaultPlan::fault_free()));
            par.set_retry_policy(Some(RetryPolicy::default()));
            for i in 0..6 {
                par.add_job(make_send_pal(i, 10), b"");
            }
            par.run_all(SimDuration::from_secs(1)).unwrap()
        };
        let plain = run_recovered();

        let mut par = ParallelScheduler::new(secure_platform(4), 2).unwrap();
        par.set_fault_plan(Some(FaultPlan::fault_free()));
        par.set_retry_policy(Some(RetryPolicy::default()));
        par.set_reset_plan(Some(ResetPlan::reset_free()));
        for i in 0..6 {
            par.add_job(make_send_pal(i, 10), b"");
        }
        let durable = par.run_all(SimDuration::from_secs(1)).unwrap();

        assert_eq!(durable.resets, 0);
        assert!(durable.relaunched.is_empty());
        assert_eq!(durable.outputs, plain.outputs);
        assert_eq!(durable.reports, plain.reports);
        assert!(durable.killed.is_empty() && durable.degraded.is_empty());
    }

    #[test]
    fn parallel_scheduler_durable_rebuilds_queue_after_power_loss() {
        // Cut power at the very first commit gate: the whole batch is
        // torn, the platform reboots, and the scheduler rebuilds its run
        // queue from the (empty) journal — every job relaunches and the
        // final outputs match a crash-free run.
        let mut par = ParallelScheduler::new(secure_platform(4), 4).unwrap();
        par.set_fault_plan(Some(FaultPlan::fault_free()));
        par.set_retry_policy(Some(RetryPolicy::default()));
        par.set_reset_plan(Some(ResetPlan::reset_free().with_cut_after_events(0)));
        for i in 0..6 {
            par.add_job(make_send_pal(i, 10), b"");
        }
        let out = par.run_all(SimDuration::from_secs(1)).unwrap();
        assert_eq!(out.resets, 1);
        assert_eq!(out.relaunched, (0..6u64).collect::<Vec<_>>());
        assert_eq!(out.outputs, (0..6u8).map(|i| vec![i]).collect::<Vec<_>>());
        assert!(out.killed.is_empty() && out.degraded.is_empty());
        // The reboot cost is on the schedule's wall clock.
        assert!(out.wall >= sea_hw::RESET_REBOOT_COST);
    }

    #[test]
    fn enhanced_beats_baseline_on_legacy_throughput() {
        // The §4.4/§5.7 punchline as a test: same PAL workload, same
        // horizon — the proposed hardware leaves more CPU for legacy.
        let horizon = SimDuration::from_secs(2);

        let mut sched = Scheduler::new(enhanced(2));
        for i in 0..4 {
            sched.add_job(make_pal(i, 10), b"");
        }
        let e = sched.run_all(horizon).unwrap();

        let platform = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"cmp");
        let mut batch = LegacyBatch::new(LegacySea::new(platform).unwrap());
        for i in 0..4 {
            batch.add_job(make_pal(i, 10), b"");
        }
        let b = batch.run_all(horizon).unwrap();

        assert!(
            e.legacy_available > b.legacy_available,
            "enhanced {} vs baseline {}",
            e.legacy_available,
            b.legacy_available
        );
    }
}
