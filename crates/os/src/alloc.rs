//! First-fit physical page allocator.
//!
//! The OS hands contiguous page runs to PALs (the paper requires PAL +
//! SECB contiguity, §5.1.1) and reclaims them at `SFREE`/`SKILL`. While
//! a PAL holds pages, the OS itself cannot touch them — the resulting
//! holes are exactly the "discontiguous physical memory" §5.2.2 says the
//! OS must tolerate, like an AGP graphics aperture.

use sea_hw::{PageIndex, PageRange};

use crate::error::OsError;

/// A first-fit allocator over a fixed arena of physical pages.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    arena: PageRange,
    /// Sorted, disjoint, non-adjacent free runs.
    free: Vec<PageRange>,
}

impl PageAllocator {
    /// Creates an allocator owning `arena`.
    pub fn new(arena: PageRange) -> Self {
        PageAllocator {
            arena,
            free: vec![arena],
        }
    }

    /// The arena this allocator manages.
    pub fn arena(&self) -> PageRange {
        self.arena
    }

    /// Total free pages (possibly fragmented).
    pub fn free_pages(&self) -> u32 {
        self.free.iter().map(|r| r.count).sum()
    }

    /// Size of the largest contiguous free run.
    pub fn largest_free_run(&self) -> u32 {
        self.free.iter().map(|r| r.count).max().unwrap_or(0)
    }

    /// Allocates `count` contiguous pages, first-fit.
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfMemory`] if no free run is large enough (even if
    /// the *total* free space would suffice — fragmentation is real).
    pub fn alloc(&mut self, count: u32) -> Result<PageRange, OsError> {
        if count == 0 {
            return Err(OsError::OutOfMemory {
                requested: 0,
                largest_free: self.largest_free_run(),
            });
        }
        let slot = self
            .free
            .iter()
            .position(|r| r.count >= count)
            .ok_or(OsError::OutOfMemory {
                requested: count,
                largest_free: self.largest_free_run(),
            })?;
        let run = self.free[slot];
        let allocated = PageRange::new(run.start, count);
        if run.count == count {
            self.free.remove(slot);
        } else {
            self.free[slot] = PageRange::new(PageIndex(run.start.0 + count), run.count - count);
        }
        Ok(allocated)
    }

    /// Returns `range` to the free pool, coalescing with neighbours.
    ///
    /// # Errors
    ///
    /// [`OsError::NotAllocated`] if `range` lies outside the arena or
    /// overlaps a free run (double free).
    pub fn free(&mut self, range: PageRange) -> Result<(), OsError> {
        let arena_end = self.arena.start.0 + self.arena.count;
        if range.count == 0
            || range.start.0 < self.arena.start.0
            || range.start.0 + range.count > arena_end
        {
            return Err(OsError::NotAllocated);
        }
        if self.free.iter().any(|r| r.overlaps(&range)) {
            return Err(OsError::NotAllocated);
        }
        // Insert in sorted position and coalesce.
        let pos = self
            .free
            .iter()
            .position(|r| r.start.0 > range.start.0)
            .unwrap_or(self.free.len());
        self.free.insert(pos, range);
        self.coalesce();
        Ok(())
    }

    fn coalesce(&mut self) {
        let mut merged: Vec<PageRange> = Vec::with_capacity(self.free.len());
        for &r in &self.free {
            match merged.last_mut() {
                Some(last) if last.start.0 + last.count == r.start.0 => {
                    last.count += r.count;
                }
                _ => merged.push(r),
            }
        }
        self.free = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc64() -> PageAllocator {
        PageAllocator::new(PageRange::new(PageIndex(100), 64))
    }

    #[test]
    fn alloc_is_first_fit_and_disjoint() {
        let mut a = alloc64();
        let r1 = a.alloc(8).unwrap();
        let r2 = a.alloc(8).unwrap();
        assert_eq!(r1.start, PageIndex(100));
        assert_eq!(r2.start, PageIndex(108));
        assert!(!r1.overlaps(&r2));
        assert_eq!(a.free_pages(), 48);
    }

    #[test]
    fn exhaustion_reports_largest_run() {
        let mut a = alloc64();
        let _ = a.alloc(60).unwrap();
        match a.alloc(8) {
            Err(OsError::OutOfMemory {
                requested: 8,
                largest_free: 4,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_page_request_rejected() {
        let mut a = alloc64();
        assert!(matches!(a.alloc(0), Err(OsError::OutOfMemory { .. })));
    }

    #[test]
    fn free_coalesces_adjacent_runs() {
        let mut a = alloc64();
        let r1 = a.alloc(8).unwrap();
        let r2 = a.alloc(8).unwrap();
        let r3 = a.alloc(8).unwrap();
        a.free(r1).unwrap();
        a.free(r3).unwrap();
        // Fragmented: r2 still held; r3's run coalesced with the tail
        // (pages 116..164 = 48), while r1's 8 pages sit alone.
        assert_eq!(a.free_pages(), 56);
        assert_eq!(a.largest_free_run(), 48);
        a.free(r2).unwrap();
        // Fully coalesced again.
        assert_eq!(a.largest_free_run(), 64);
        let big = a.alloc(64).unwrap();
        assert_eq!(big, PageRange::new(PageIndex(100), 64));
    }

    #[test]
    fn fragmentation_blocks_large_requests() {
        let mut a = alloc64();
        let r1 = a.alloc(32).unwrap();
        let _r2 = a.alloc(32).unwrap();
        a.free(r1).unwrap();
        // 32 free but split? No — one run of 32. Request 33 fails.
        assert!(matches!(a.alloc(33), Err(OsError::OutOfMemory { .. })));
        assert!(a.alloc(32).is_ok());
    }

    #[test]
    fn double_free_rejected() {
        let mut a = alloc64();
        let r = a.alloc(8).unwrap();
        a.free(r).unwrap();
        assert_eq!(a.free(r), Err(OsError::NotAllocated));
    }

    #[test]
    fn foreign_range_rejected() {
        let mut a = alloc64();
        assert_eq!(
            a.free(PageRange::new(PageIndex(0), 4)),
            Err(OsError::NotAllocated)
        );
        assert_eq!(
            a.free(PageRange::new(PageIndex(160), 8)),
            Err(OsError::NotAllocated)
        );
        assert_eq!(
            a.free(PageRange::new(PageIndex(100), 0)),
            Err(OsError::NotAllocated)
        );
    }

    #[test]
    fn out_of_order_frees_coalesce() {
        let mut a = alloc64();
        let rs: Vec<_> = (0..8).map(|_| a.alloc(8).unwrap()).collect();
        // Free in scrambled order.
        for i in [3usize, 0, 7, 1, 5, 2, 6, 4] {
            a.free(rs[i]).unwrap();
        }
        assert_eq!(a.largest_free_run(), 64);
        assert_eq!(a.free_pages(), 64);
    }
}
