//! OS-level error type.

use std::error::Error;
use std::fmt;

use sea_core::SeaError;

/// Errors raised by the untrusted-OS simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OsError {
    /// The allocator has no contiguous run of the requested size.
    OutOfMemory {
        /// Pages requested.
        requested: u32,
        /// Largest contiguous run currently available.
        largest_free: u32,
    },
    /// A range passed to `free` was not (entirely) allocated by this
    /// allocator.
    NotAllocated,
    /// A SEA operation performed on the OS's behalf failed.
    Sea(SeaError),
    /// The scheduler was asked to run with no work registered.
    NothingToRun,
    /// A scheduler invariant was violated — a bug in the OS simulator
    /// itself, surfaced as an error instead of a panic so batch drivers
    /// can report it.
    SchedulerInternal(&'static str),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of memory: requested {requested} contiguous pages, largest free run is {largest_free}"
            ),
            OsError::NotAllocated => write!(f, "range was not allocated"),
            OsError::Sea(e) => write!(f, "SEA operation failed: {e}"),
            OsError::NothingToRun => write!(f, "scheduler has no jobs"),
            OsError::SchedulerInternal(what) => write!(f, "scheduler invariant violated: {what}"),
        }
    }
}

impl Error for OsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OsError::Sea(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeaError> for OsError {
    fn from(e: SeaError) -> Self {
        OsError::Sea(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = OsError::OutOfMemory {
            requested: 10,
            largest_free: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(Error::source(&e).is_none());
        let s: OsError = SeaError::NoTpm.into();
        assert!(Error::source(&s).is_some());
        assert!(!OsError::NotAllocated.to_string().is_empty());
        assert!(!OsError::NothingToRun.to_string().is_empty());
        let i = OsError::SchedulerInternal("slot unfilled");
        assert!(i.to_string().contains("slot unfilled"));
        assert!(Error::source(&i).is_none());
    }
}
