//! # sea-os
//!
//! The *untrusted* operating system of the minimal-TCB reproduction of
//! McCune et al., *"How Low Can You Go?"* (ASPLOS 2008).
//!
//! §5's requirement: "the untrusted OS retain\[s\] the role of the
//! resource manager". This crate plays that role:
//!
//! * [`PageAllocator`] — allocates physical pages to PALs and copes with
//!   the discontiguous memory that PAL protection creates ("supporting
//!   the execution of PALs requires the OS to cope with discontiguous
//!   physical memory", §5.2.2).
//! * [`Scheduler`] — multiprograms PALs and legacy work across CPUs on
//!   the proposed hardware, and [`LegacyBatch`] — the baseline
//!   whole-platform-stall execution — together reproducing the paper's
//!   concurrency argument (§4.2/§4.4 vs §5.7).
//! * [`Adversary`] — the threat model's ring-0 attacker (§3.2): reads and
//!   writes PAL memory, mounts DMA attacks from peripherals, forges
//!   measurements, and replays launches; every attack returns whether
//!   the hardware let it through.
//!
//! # Example
//!
//! ```
//! use sea_os::PageAllocator;
//! use sea_hw::{PageIndex, PageRange};
//!
//! let mut alloc = PageAllocator::new(PageRange::new(PageIndex(64), 64));
//! let a = alloc.alloc(10).unwrap();
//! let b = alloc.alloc(10).unwrap();
//! assert!(!a.overlaps(&b));
//! alloc.free(a).unwrap();
//! assert_eq!(alloc.free_pages(), 54);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod alloc;
mod dispatch;
mod error;
mod scheduler;
mod workload;

pub use adversary::{Adversary, AttackOutcome};
pub use alloc::PageAllocator;
pub use dispatch::{DispatchPolicy, Dispatcher};
pub use error::OsError;
pub use scheduler::{LegacyBatch, ParallelScheduler, ScheduleOutcome, Scheduler};
pub use workload::{simulate_service, ArrivalTrace, ResponseStats};
