//! Deterministic fleet dispatch: which platform serves which request.
//!
//! The untrusted OS is the resource manager (§5); at fleet scale the
//! same role appears one level up — a dispatcher in front of many
//! platforms deciding where each attestation request runs. The fleet's
//! byte-identity contract ("same results across shard counts and
//! dispatch orders") needs the assignment to be a **pure function of
//! the request id**: if placement depended on arrival order, queue
//! depth, or wall-clock load, two submissions of the same request
//! stream in different orders would land work on different platforms
//! and produce different (equally valid, but not comparable) results.
//!
//! [`Dispatcher::assign`] is that pure function, and
//! [`Dispatcher::partition`] normalizes any submission order into
//! per-platform work lists sorted by request id — so a permuted stream
//! partitions identically to the sorted one.

/// How the dispatcher maps request ids onto platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Request `r` runs on platform `r mod platforms` — the static
    /// striping the session engine itself uses for jobs within one
    /// platform (job *i* → worker *i* mod workers).
    RoundRobin,
    /// Request `r` runs on platform `mix64(r xor seed) mod platforms` —
    /// hashed load balancing. Spreads adjacent request ids apart (so a
    /// burst of consecutive ids does not queue on one stripe) while
    /// remaining a pure function of the id.
    Hashed {
        /// Salt mixed into every request id before hashing.
        seed: u64,
    },
}

/// Finalizer of SplitMix64 — a full-avalanche 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic request-to-platform dispatcher.
///
/// # Example
///
/// ```
/// use sea_os::{DispatchPolicy, Dispatcher};
///
/// let d = Dispatcher::new(4, DispatchPolicy::RoundRobin);
/// assert_eq!(d.assign(6), 2);
/// // Partitioning is submission-order invariant.
/// let a = d.partition(&[0, 1, 2, 3, 4, 5]);
/// let b = d.partition(&[5, 3, 1, 4, 2, 0]);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatcher {
    platforms: usize,
    policy: DispatchPolicy,
}

impl Dispatcher {
    /// Creates a dispatcher over `platforms` platforms.
    ///
    /// # Panics
    ///
    /// Panics if `platforms` is zero.
    pub fn new(platforms: usize, policy: DispatchPolicy) -> Self {
        assert!(platforms > 0, "a fleet needs at least one platform");
        Dispatcher { platforms, policy }
    }

    /// Number of platforms dispatched over.
    pub fn platforms(&self) -> usize {
        self.platforms
    }

    /// The policy in effect.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The platform serving `request` — a pure function of the id.
    pub fn assign(&self, request: u64) -> usize {
        match self.policy {
            DispatchPolicy::RoundRobin => (request % self.platforms as u64) as usize,
            DispatchPolicy::Hashed { seed } => {
                (mix64(request ^ seed) % self.platforms as u64) as usize
            }
        }
    }

    /// Splits a request stream into per-platform work lists, each
    /// sorted by request id. Because assignment ignores order and the
    /// output is sorted, any permutation of `requests` partitions
    /// byte-identically — the property the fleet's differential suite
    /// pins.
    pub fn partition(&self, requests: &[u64]) -> Vec<Vec<u64>> {
        let mut per: Vec<Vec<u64>> = (0..self.platforms).map(|_| Vec::new()).collect();
        for &r in requests {
            per[self.assign(r)].push(r);
        }
        for list in &mut per {
            list.sort_unstable();
        }
        per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_stripes_by_id() {
        let d = Dispatcher::new(3, DispatchPolicy::RoundRobin);
        let got: Vec<usize> = (0..7).map(|r| d.assign(r)).collect();
        assert_eq!(got, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn partition_is_submission_order_invariant() {
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::Hashed { seed: 0xF1EE7 },
        ] {
            let d = Dispatcher::new(5, policy);
            let sorted: Vec<u64> = (0..100).collect();
            let mut shuffled = sorted.clone();
            // Deterministic permutation: order by mixed id.
            shuffled.sort_by_key(|&r| mix64(r));
            assert_ne!(sorted, shuffled, "permutation must actually permute");
            assert_eq!(d.partition(&sorted), d.partition(&shuffled), "{policy:?}");
        }
    }

    #[test]
    fn partition_covers_every_request_exactly_once() {
        let d = Dispatcher::new(4, DispatchPolicy::Hashed { seed: 7 });
        let reqs: Vec<u64> = (0..64).collect();
        let parts = d.partition(&reqs);
        assert_eq!(parts.len(), 4);
        let mut all: Vec<u64> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, reqs);
    }

    #[test]
    fn hashed_policy_spreads_consecutive_ids() {
        // Adjacent ids should not all land on the same platform.
        let d = Dispatcher::new(8, DispatchPolicy::Hashed { seed: 1 });
        let hit: std::collections::BTreeSet<usize> = (0..64).map(|r| d.assign(r)).collect();
        assert!(hit.len() >= 6, "only {} platforms hit", hit.len());
    }

    #[test]
    #[should_panic(expected = "at least one platform")]
    fn zero_platforms_is_a_bug() {
        Dispatcher::new(0, DispatchPolicy::RoundRobin);
    }
}
