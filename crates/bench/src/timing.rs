//! A dependency-free wall-clock micro-benchmark harness built on
//! [`std::time::Instant`], used by the `benches/` targets (which set
//! `harness = false`).
//!
//! Unlike the experiment binaries — which report *virtual* time and are
//! byte-for-byte deterministic — these measure what the simulator itself
//! costs to run on the host, so the numbers are inherently noisy. The
//! harness therefore reports order statistics (median and p95) rather
//! than a mean, and supports a *smoke mode* (`SEA_BENCH_SMOKE=1`) that
//! runs each benchmark a handful of times just to prove it executes;
//! CI uses smoke mode so the tier-1 script stays fast.

use std::time::{Duration, Instant};

/// Wall-clock budget spent sampling one benchmark in full mode.
const SAMPLE_BUDGET: Duration = Duration::from_millis(1500);
/// Wall-clock budget spent warming up one benchmark in full mode.
const WARMUP_BUDGET: Duration = Duration::from_millis(200);
/// Sample-count ceiling in full mode.
const MAX_SAMPLES: usize = 200;
/// Sample count in smoke mode.
const SMOKE_SAMPLES: usize = 3;

/// True when `SEA_BENCH_SMOKE` is set to anything but `0`/empty, asking
/// for the cheapest run that still exercises every benchmark body.
pub fn smoke_mode() -> bool {
    std::env::var("SEA_BENCH_SMOKE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Order statistics over one benchmark's timed iterations.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark name as printed.
    pub name: String,
    /// Per-iteration wall-clock samples, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Timing {
    /// The p-th percentile (0.0..=1.0) by nearest-rank on the sorted
    /// sample vector (delegates to [`crate::stats::percentile_sorted`]).
    pub fn percentile(&self, p: f64) -> Duration {
        crate::stats::percentile_sorted(&self.samples, p)
    }

    /// Median (p50) iteration time.
    pub fn median(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 95th-percentile iteration time.
    pub fn p95(&self) -> Duration {
        self.percentile(0.95)
    }

    /// Fastest observed iteration.
    pub fn min(&self) -> Duration {
        self.samples[0]
    }
}

/// Renders a duration with a unit chosen for a 3-significant-digit-ish
/// reading (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times `f` repeatedly and prints one aligned report line:
/// median, p95, min, and sample count. Returns the samples for callers
/// (e.g. throughput post-processing).
///
/// In full mode the function warms up for `WARMUP_BUDGET`, then
/// samples until `SAMPLE_BUDGET` or `MAX_SAMPLES` is reached; smoke
/// mode runs one warmup and `SMOKE_SAMPLES` timed iterations.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Timing {
    let smoke = smoke_mode();

    // Warmup: fill caches, fault pages, let the first allocation happen.
    if smoke {
        std::hint::black_box(f());
    } else {
        let start = Instant::now();
        while start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
        }
    }

    let (budget, cap) = if smoke {
        (Duration::MAX, SMOKE_SAMPLES)
    } else {
        (SAMPLE_BUDGET, MAX_SAMPLES)
    };
    let mut samples = Vec::new();
    let run_start = Instant::now();
    while samples.len() < cap {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
        if run_start.elapsed() >= budget {
            break;
        }
    }
    samples.sort_unstable();
    let timing = Timing {
        name: name.to_string(),
        samples,
    };
    println!(
        "{:<32} median {:>10}   p95 {:>10}   min {:>10}   n={}",
        timing.name,
        fmt_duration(timing.median()),
        fmt_duration(timing.p95()),
        fmt_duration(timing.min()),
        timing.samples.len(),
    );
    timing
}

/// Prints a section header separating benchmark groups.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

/// Derives MiB/s throughput from a per-iteration byte count and a
/// median iteration time.
pub fn mib_per_sec(bytes: usize, median: Duration) -> f64 {
    let secs = median.as_secs_f64();
    if secs == 0.0 {
        f64::INFINITY
    } else {
        bytes as f64 / (1 << 20) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing_of(mut samples: Vec<u64>) -> Timing {
        samples.sort_unstable();
        Timing {
            name: "t".into(),
            samples: samples.into_iter().map(Duration::from_nanos).collect(),
        }
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let t = timing_of((1..=100).collect());
        assert_eq!(t.min(), Duration::from_nanos(1));
        assert_eq!(t.median(), Duration::from_nanos(51));
        assert_eq!(t.p95(), Duration::from_nanos(95));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let t = timing_of(vec![7]);
        assert_eq!(t.min(), t.median());
        assert_eq!(t.median(), t.p95());
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1500)), "1.50 µs");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.500 s");
    }

    #[test]
    fn throughput_math() {
        let mib = mib_per_sec(1 << 20, Duration::from_secs(1));
        assert!((mib - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bench_smoke_runs_bounded_iterations() {
        // Force smoke behaviour irrespective of the environment by
        // checking the sample cap math only.
        let t = bench("unit-test-noop", || 1 + 1);
        assert!(!t.samples.is_empty());
        assert!(t.samples.len() <= MAX_SAMPLES);
    }
}
