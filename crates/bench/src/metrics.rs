//! Integer-only structured metrics distilled from the observability
//! span stream ([`sea_hw::obs`]), one value per suite experiment.
//!
//! Everything here is a `u64` of virtual nanoseconds or a plain count —
//! never a float — so [`ExperimentMetrics`] derives `Eq` and the suite's
//! byte-identity contract (serial vs parallel, any worker count) extends
//! to the structured rows, not just the rendered text.

use sea_hw::{Layer, LockStats, ObsSnapshot};

/// Contention attribution for one lock class, distilled from
/// [`sea_hw::RecordingSink::lock_stats`]: virtual time spent *waiting*
/// for the resource (queued behind other holders) and *holding* it,
/// charged separately so a bench row can say whether a lock is
/// contended or merely busy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockRow {
    /// Lock class name (`"tpm.gate"`, `"core.runtime"`,
    /// `"journal.seal"`, ...).
    pub class: String,
    /// The [`Layer`] the class charges to, as its JSON name.
    pub layer: String,
    /// Acquisitions recorded.
    pub acquisitions: u64,
    /// Total virtual wait (queued before the grant) in ns.
    pub wait_ns: u64,
    /// Total virtual hold (occupied after the grant) in ns.
    pub hold_ns: u64,
    /// Log₂ wait histogram bucket counts
    /// ([`sea_hw::LayerHistogram::buckets`]).
    pub wait_buckets: Vec<u64>,
}

/// Structured, machine-readable metrics for one suite experiment,
/// aggregated from the [`ObsSnapshot`] its instrumented run produced.
///
/// The per-layer attribution is fed exclusively by *leaf* charges (every
/// [`sea_hw::Machine::charge`] and bare-TPM command cost), so
/// `total_virtual_ns` is exactly the virtual time the experiment charged
/// — lifecycle frames bracket that time but never add to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExperimentMetrics {
    /// Virtual time attributed to each layer in ns, ordered as
    /// [`Layer::ALL`] (hw, tpm, core, os).
    pub layer_ns: [u64; 4],
    /// Total attributed virtual time in ns — the sum of `layer_ns`.
    pub total_virtual_ns: u64,
    /// Leaf charges recorded.
    pub leaf_spans: u64,
    /// All spans recorded (leaves plus session-lifecycle frames).
    pub spans: u64,
    /// Named integer inputs of the experiment (runs, trials, jobs,
    /// seeds, ...), in insertion order.
    pub scalars: Vec<(&'static str, u64)>,
    /// Counters emitted through the span stream, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-lock-class contention rows, sorted by class name (the order
    /// [`sea_hw::RecordingSink::lock_stats`] returns).
    pub locks: Vec<LockRow>,
}

impl ExperimentMetrics {
    /// Aggregates a snapshot into metrics: per-layer histogram totals,
    /// span counts, and counters (already name-sorted by the sink).
    pub fn from_snapshot(snap: &ObsSnapshot) -> Self {
        let mut layer_ns = [0u64; 4];
        for (slot, layer) in layer_ns.iter_mut().zip(Layer::ALL) {
            *slot = snap.layer_total(layer).as_ns();
        }
        ExperimentMetrics {
            layer_ns,
            total_virtual_ns: snap.total().as_ns(),
            leaf_spans: snap.leaves().count() as u64,
            spans: snap.spans.len() as u64,
            scalars: Vec::new(),
            counters: snap.counters.clone(),
            locks: Vec::new(),
        }
    }

    /// Appends a named integer input (builder-style).
    pub fn with_scalar(mut self, name: &'static str, value: u64) -> Self {
        self.scalars.push((name, value));
        self
    }

    /// Attaches per-lock-class contention rows (builder-style), as
    /// returned by [`sea_hw::RecordingSink::lock_stats`].
    pub fn with_locks(mut self, stats: &[(String, LockStats)]) -> Self {
        self.locks = stats
            .iter()
            .map(|(class, s)| LockRow {
                class: class.clone(),
                layer: s.layer.as_str().to_string(),
                acquisitions: s.acquisitions,
                wait_ns: s.wait.as_ns(),
                hold_ns: s.hold.as_ns(),
                wait_buckets: s.wait_hist.buckets.to_vec(),
            })
            .collect();
        self
    }

    /// Total virtual lock-wait across all classes, in ns.
    pub fn lock_wait_ns(&self) -> u64 {
        self.locks.iter().map(|l| l.wait_ns).sum()
    }

    /// Total virtual lock-hold across all classes, in ns.
    pub fn lock_hold_ns(&self) -> u64 {
        self.locks.iter().map(|l| l.hold_ns).sum()
    }

    /// The attributed virtual time of one layer, in ns.
    pub fn layer(&self, layer: Layer) -> u64 {
        let idx = Layer::ALL
            .iter()
            .position(|l| *l == layer)
            .expect("layer in ALL");
        self.layer_ns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_hw::{Obs, SimDuration};

    #[test]
    fn from_snapshot_sums_layers() {
        let (obs, sink) = Obs::recording();
        obs.leaf(Layer::Hw, "hw.reset", SimDuration::from_us(3));
        obs.leaf(Layer::Tpm, "tpm.seal", SimDuration::from_us(5));
        obs.open(Layer::Core, "session.step");
        obs.leaf(Layer::Core, "core.pal_work", SimDuration::from_us(7));
        obs.close();
        obs.add("core.retries", 2);

        let m = ExperimentMetrics::from_snapshot(&sink.snapshot());
        assert_eq!(m.layer(Layer::Hw), 3_000);
        assert_eq!(m.layer(Layer::Tpm), 5_000);
        assert_eq!(m.layer(Layer::Core), 7_000);
        assert_eq!(m.layer(Layer::Os), 0);
        assert_eq!(m.total_virtual_ns, 15_000);
        assert_eq!(m.leaf_spans, 3);
        assert_eq!(m.spans, 4);
        assert_eq!(m.counters, vec![("core.retries".to_string(), 2)]);
    }

    #[test]
    fn scalars_keep_insertion_order() {
        let m = ExperimentMetrics::default()
            .with_scalar("runs", 2)
            .with_scalar("jobs", 8);
        assert_eq!(m.scalars, vec![("runs", 2), ("jobs", 8)]);
    }

    #[test]
    fn empty_snapshot_is_default() {
        let (_obs, sink) = Obs::recording();
        let m = ExperimentMetrics::from_snapshot(&sink.snapshot());
        assert_eq!(m, ExperimentMetrics::default());
    }

    #[test]
    fn with_locks_distills_wait_and_hold() {
        let (obs, sink) = Obs::recording();
        obs.lock_event(
            "tpm.gate",
            Layer::Tpm,
            SimDuration::from_us(4),
            SimDuration::from_us(6),
        );
        obs.lock_event(
            "tpm.gate",
            Layer::Tpm,
            SimDuration::from_us(1),
            SimDuration::from_us(2),
        );
        obs.lock_event(
            "core.runtime",
            Layer::Core,
            SimDuration::ZERO,
            SimDuration::from_us(3),
        );

        let m = ExperimentMetrics::from_snapshot(&sink.snapshot()).with_locks(&sink.lock_stats());
        assert_eq!(m.locks.len(), 2);
        // Rows arrive sorted by class name.
        assert_eq!(m.locks[0].class, "core.runtime");
        assert_eq!(m.locks[0].layer, "core");
        assert_eq!(m.locks[0].acquisitions, 1);
        assert_eq!(m.locks[0].wait_ns, 0);
        assert_eq!(m.locks[0].hold_ns, 3_000);
        assert_eq!(m.locks[1].class, "tpm.gate");
        assert_eq!(m.locks[1].acquisitions, 2);
        assert_eq!(m.locks[1].wait_ns, 5_000);
        assert_eq!(m.locks[1].hold_ns, 8_000);
        assert_eq!(m.lock_wait_ns(), 5_000);
        assert_eq!(m.lock_hold_ns(), 11_000);
        // Lock events attribute contention only; they never inflate the
        // layer timeline the spans already account for.
        assert_eq!(m.total_virtual_ns, 0);
    }
}
