//! The experiments: one function per table/figure, returning structured
//! data the binaries print and the tests assert against.

use sea_core::{
    BatchPolicy, ConcurrentJob, EnhancedSea, Executor, FnPal, LegacySea, PalLogic, PalOutcome,
    RetryPolicy, SecurePlatform, SessionEngine, SessionReport, SessionResult,
};
use sea_hw::{
    CpuId, FaultPlan, Obs, PageIndex, PageRange, Platform, ResetPlan, SimDuration, TpmKind,
};
use sea_os::{LegacyBatch, Scheduler};
use sea_tpm::{KeyStrength, PcrIndex, Quote, Tpm, TpmOp, TpmTimingModel};

/// The PAL sizes Table 1 sweeps (bytes).
pub const PAL_SIZES: [usize; 6] = [0, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024];

fn platform(p: Platform, seed: &[u8]) -> SecurePlatform {
    SecurePlatform::new(p, KeyStrength::Demo512, seed)
}

// ---------------------------------------------------------------------
// Table 1: late-launch latency vs PAL size
// ---------------------------------------------------------------------

/// One Table 1 row: a platform's late-launch latency across PAL sizes.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Platform name as in the paper.
    pub system: String,
    /// Whether a TPM is present (the row's first column in the paper).
    pub tpm_present: bool,
    /// Measured (simulated) latencies in ms, one per [`PAL_SIZES`] entry.
    pub measured_ms: Vec<f64>,
    /// The paper's published values in ms.
    pub paper_ms: Vec<f64>,
}

/// Reproduces Table 1 by *executing* a late launch of each size on each
/// of the paper's three machines and reading the virtual clock.
pub fn table1() -> Vec<Table1Row> {
    table1_with_obs(Obs::null())
}

/// [`table1`] with an observability handle installed into every
/// platform it builds, so each late launch's charges (CPU init plus the
/// measurement transfer/hash) land in the span stream.
pub fn table1_with_obs(obs: Obs) -> Vec<Table1Row> {
    let configs: [(Platform, bool, [f64; 6]); 3] = [
        (
            Platform::hp_dc5750(),
            true,
            [0.00, 11.94, 22.98, 45.05, 89.21, 177.52],
        ),
        (
            Platform::tyan_n3600r(),
            false,
            [0.01, 0.56, 1.11, 2.21, 4.41, 8.82],
        ),
        (
            Platform::intel_tep(),
            true,
            [26.39, 26.88, 27.38, 28.37, 30.46, 34.35],
        ),
    ];
    configs
        .into_iter()
        .map(|(p, tpm_present, paper)| {
            let system = p.name.clone();
            let measured_ms = PAL_SIZES
                .iter()
                .map(|&size| {
                    // Fresh platform per point: late launch mutates PCRs.
                    let mut sp = platform(p.clone(), b"table1");
                    sp.install_obs(obs.clone());
                    let pages = ((size as u32).div_ceil(4096)).max(1);
                    let range = PageRange::new(PageIndex(8), pages);
                    let image = vec![0x90u8; size];
                    sp.machine_mut()
                        .memory_mut()
                        .write_raw(range.base_addr(), &image)
                        .expect("staging fits");
                    let launch = sp
                        .late_launch(CpuId(0), range, size)
                        .expect("late launch succeeds");
                    launch.total().as_ms_f64()
                })
                .collect();
            Table1Row {
                system,
                tpm_present,
                measured_ms,
                paper_ms: paper.to_vec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 2: VM entry/exit
// ---------------------------------------------------------------------

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Vendor/system label.
    pub system: String,
    /// Measured VM-entry cost (µs).
    pub vm_enter_us: f64,
    /// Measured VM-exit cost (µs).
    pub vm_exit_us: f64,
    /// Paper's VM-entry (µs).
    pub paper_enter_us: f64,
    /// Paper's VM-exit (µs).
    pub paper_exit_us: f64,
}

/// Reproduces Table 2 from the platform virtualization cost model.
pub fn table2() -> Vec<Table2Row> {
    [
        (
            Platform::tyan_n3600r(),
            "AMD SVM (Tyan n3600R)",
            0.5580,
            0.5193,
        ),
        (
            Platform::intel_tep(),
            "Intel TXT (MPC ClientPro 385)",
            0.4457,
            0.4491,
        ),
    ]
    .into_iter()
    .map(|(p, label, pe, px)| Table2Row {
        system: label.to_string(),
        vm_enter_us: p.virt.vm_enter.as_us_f64(),
        vm_exit_us: p.virt.vm_exit.as_us_f64(),
        paper_enter_us: pe,
        paper_exit_us: px,
    })
    .collect()
}

// ---------------------------------------------------------------------
// Figure 2: PAL Gen / PAL Use / Quote overhead breakdown
// ---------------------------------------------------------------------

/// One Figure 2 bar: a session type's overhead, broken into the stacked
/// components the figure shows.
#[derive(Debug, Clone)]
pub struct Figure2Bar {
    /// Bar label ("PAL Gen", "PAL Use", "Quote").
    pub label: String,
    /// SKINIT component (ms).
    pub skinit_ms: f64,
    /// Seal component (ms).
    pub seal_ms: f64,
    /// Unseal component (ms).
    pub unseal_ms: f64,
    /// Quote component (ms).
    pub quote_ms: f64,
    /// Total overhead (ms).
    pub total_ms: f64,
}

impl Figure2Bar {
    fn from_report(label: &str, r: &SessionReport, quote: SimDuration) -> Self {
        Figure2Bar {
            label: label.to_string(),
            skinit_ms: r.late_launch.as_ms_f64(),
            seal_ms: r.seal.as_ms_f64(),
            unseal_ms: r.unseal.as_ms_f64(),
            quote_ms: quote.as_ms_f64(),
            total_ms: (r.overhead() + quote).as_ms_f64(),
        }
    }
}

/// Reproduces Figure 2: generic PAL Gen and PAL Use sessions on the HP
/// dc5750, averaged over `runs` runs, plus the standalone Quote cost.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn figure2(runs: usize) -> Vec<Figure2Bar> {
    figure2_with_obs(runs, Obs::null())
}

/// [`figure2`] with an observability handle installed into the one
/// platform it runs every session on: each session emits a
/// `session.legacy` frame bracketing its charged leaves, and the
/// snapshot's total equals the machine clock's advance exactly.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn figure2_with_obs(runs: usize, obs: Obs) -> Vec<Figure2Bar> {
    assert!(runs > 0, "need at least one run");
    let mut sp = platform(Platform::hp_dc5750(), b"figure2");
    sp.install_obs(obs);
    let mut sea = LegacySea::new(sp).expect("platform fits");

    let mut gen_total = SessionReport::default();
    let mut use_total = SessionReport::default();
    let mut quote_total = SimDuration::ZERO;

    for _ in 0..runs {
        // PAL Gen: generate state, seal it, exit (§4.1).
        let mut holder = None;
        {
            let h = &mut holder;
            let mut gen = FnPal::new("generic", move |ctx| {
                *h = Some(ctx.seal(b"generated application state")?);
                Ok(PalOutcome::Exit(vec![]))
            })
            .with_image_size(64 * 1024);
            let r = sea.run_session(&mut gen, b"").expect("gen session");
            gen_total = gen_total.merged(&r.report);
        }
        let blob = holder.expect("gen sealed state");

        // PAL Use: unseal previous state, modify, reseal, exit.
        let mut use_pal = FnPal::new("generic", move |ctx| {
            let mut state = ctx.unseal(&blob)?;
            state.reverse();
            let _ = ctx.seal(&state)?;
            Ok(PalOutcome::Exit(vec![]))
        })
        .with_image_size(64 * 1024);
        let r = sea.run_session(&mut use_pal, b"").expect("use session");
        use_total = use_total.merged(&r.report);

        // Quote: the attestation the OS generates afterwards.
        quote_total += sea.quote(b"fig2").expect("quote").elapsed;
    }

    let scale = |r: &SessionReport| SessionReport {
        late_launch: r.late_launch / runs as u64,
        seal: r.seal / runs as u64,
        unseal: r.unseal / runs as u64,
        quote: r.quote / runs as u64,
        tpm_other: r.tpm_other / runs as u64,
        context_switch: r.context_switch / runs as u64,
        pal_work: r.pal_work / runs as u64,
    };
    let gen = scale(&gen_total);
    let use_r = scale(&use_total);
    let quote_avg = quote_total / runs as u64;

    vec![
        Figure2Bar::from_report("PAL Gen", &gen, SimDuration::ZERO),
        Figure2Bar::from_report("PAL Use", &use_r, SimDuration::ZERO),
        Figure2Bar {
            label: "Quote".to_string(),
            skinit_ms: 0.0,
            seal_ms: 0.0,
            unseal_ms: 0.0,
            quote_ms: quote_avg.as_ms_f64(),
            total_ms: quote_avg.as_ms_f64(),
        },
    ]
}

// ---------------------------------------------------------------------
// Figure 3: TPM microbenchmarks
// ---------------------------------------------------------------------

/// One Figure 3 measurement: a TPM chip × operation cell.
#[derive(Debug, Clone)]
pub struct Figure3Cell {
    /// TPM label as in the figure's legend.
    pub tpm: String,
    /// Operation label as on the figure's x-axis.
    pub op: String,
    /// Mean latency over the trials (ms).
    pub mean_ms: f64,
    /// Standard deviation over the trials (ms).
    pub stddev_ms: f64,
}

/// The four TPMs of Figure 3, with their legend labels.
pub fn figure3_tpms() -> Vec<(TpmKind, &'static str)> {
    vec![
        (TpmKind::AtmelT60, "T60 Atmel"),
        (TpmKind::Broadcom, "Broadcom"),
        (TpmKind::Infineon, "Infineon"),
        (TpmKind::AtmelTep, "TEP Atmel"),
    ]
}

/// Reproduces Figure 3 by *executing* each TPM command `trials` times
/// (the paper uses 20) against each chip's simulator and collecting
/// mean ± stddev.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn figure3(trials: usize) -> Vec<Figure3Cell> {
    figure3_with_obs(trials, Obs::null())
}

/// [`figure3`] with an observability handle installed directly into
/// each bare TPM (there is no full platform here, so the chip's own
/// `cost()` choke point is the attribution site): every command lands
/// as a `tpm.*` leaf and the snapshot's total equals the sum of the
/// commands' elapsed times exactly.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn figure3_with_obs(trials: usize, obs: Obs) -> Vec<Figure3Cell> {
    assert!(trials > 0, "need at least one trial");
    let mut out = Vec::new();
    for (kind, label) in figure3_tpms() {
        let mut tpm = Tpm::new(kind, KeyStrength::Demo512, b"figure3");
        tpm.install_obs(obs.clone());
        for op in TpmOp::FIGURE3_OPS {
            let samples: Vec<f64> = (0..trials)
                .map(|i| run_tpm_op(&mut tpm, op, i).as_ms_f64())
                .collect();
            let s = crate::stats::Summary::of(&samples);
            out.push(Figure3Cell {
                tpm: label.to_string(),
                op: op.label().to_string(),
                mean_ms: s.mean,
                stddev_ms: s.stddev,
            });
        }
    }
    out
}

fn run_tpm_op(tpm: &mut Tpm, op: TpmOp, i: usize) -> SimDuration {
    let digest = sea_crypto::Sha1::digest(&i.to_le_bytes());
    match op {
        TpmOp::PcrExtend => tpm.extend(PcrIndex(17), &digest).expect("extend").elapsed,
        TpmOp::Seal => {
            tpm.seal(b"benchmark state", &[PcrIndex(17)])
                .expect("seal")
                .elapsed
        }
        TpmOp::Quote => {
            tpm.quote(b"bench nonce", &[PcrIndex(17)])
                .expect("quote")
                .elapsed
        }
        TpmOp::Unseal => {
            let blob = tpm
                .seal(b"benchmark state", &[PcrIndex(17)])
                .expect("seal")
                .value;
            tpm.unseal(&blob).expect("unseal").elapsed
        }
        TpmOp::GetRandom128 => tpm.get_random(128).elapsed,
        TpmOp::PcrRead => tpm.pcr_read(PcrIndex(17)).expect("read").elapsed,
    }
}

// ---------------------------------------------------------------------
// §5.7 impact: context-switch cost, baseline vs proposed
// ---------------------------------------------------------------------

/// The §5.7 comparison.
#[derive(Debug, Clone)]
pub struct ImpactReport {
    /// Baseline cost to context-switch *into* a PAL (SKINIT + Unseal), ms.
    pub baseline_switch_in_ms: f64,
    /// Baseline cost to context-switch *out* (Seal), ms.
    pub baseline_switch_out_ms: f64,
    /// Proposed cost of a full suspend + resume pair, µs.
    pub proposed_pair_us: f64,
    /// Improvement factor (baseline in+out over proposed pair).
    pub improvement: f64,
}

/// Measures the §5.7 comparison with real sessions on both runtimes.
pub fn impact() -> ImpactReport {
    // Baseline: a PAL Use session's overhead decomposes into switch-in
    // (SKINIT + Unseal) and switch-out (Seal).
    let bars = figure2(10);
    let use_bar = &bars[1];
    let switch_in = use_bar.skinit_ms + use_bar.unseal_ms;
    let switch_out = use_bar.seal_ms;

    // Proposed: one real SYIELD + resume pair.
    let mut sea =
        EnhancedSea::new(platform(Platform::recommended(2), b"impact")).expect("proposed platform");
    let mut first = true;
    let mut pal = FnPal::new("switcher", move |_| {
        if first {
            first = false;
            Ok(PalOutcome::Yield)
        } else {
            Ok(PalOutcome::Exit(vec![]))
        }
    });
    let id = sea.slaunch(&mut pal, b"", CpuId(0), None).expect("launch");
    let done = sea.run_to_exit(&mut pal, id, CpuId(0)).expect("run");
    let pair_us = done.report.context_switch.as_us_f64();

    ImpactReport {
        baseline_switch_in_ms: switch_in,
        baseline_switch_out_ms: switch_out,
        proposed_pair_us: pair_us,
        improvement: (switch_in + switch_out) * 1000.0 / pair_us,
    }
}

// ---------------------------------------------------------------------
// Concurrency: legacy throughput under PAL load
// ---------------------------------------------------------------------

/// One point of the concurrency experiment.
#[derive(Debug, Clone)]
pub struct ConcurrencyPoint {
    /// Number of PAL jobs in the batch.
    pub n_pals: usize,
    /// Legacy CPU time available on baseline hardware (ms).
    pub baseline_legacy_ms: f64,
    /// CPU time burned in forced idle on baseline hardware (ms).
    pub baseline_stalled_ms: f64,
    /// Legacy CPU time available on proposed hardware (ms).
    pub enhanced_legacy_ms: f64,
}

/// Runs `n_pals ∈ pal_counts` PAL jobs (each `work_ms` of useful work,
/// with seal/unseal state like the paper's generic PALs) on both
/// architectures with `n_cpus` cores over `horizon`, and reports the
/// legacy CPU time each leaves.
pub fn concurrency(
    n_cpus: u16,
    pal_counts: &[usize],
    work_ms: u64,
    horizon: SimDuration,
) -> Vec<ConcurrencyPoint> {
    pal_counts
        .iter()
        .map(|&n| {
            // Proposed.
            let mut sched = Scheduler::new(
                EnhancedSea::new(platform(Platform::recommended(n_cpus), b"conc"))
                    .expect("platform"),
            );
            for i in 0..n {
                sched.add_job(job(i, work_ms), b"");
            }
            let e = sched.run_all(horizon).expect("schedule");

            // Baseline (same core count for fairness).
            let mut base = Platform::hp_dc5750();
            base.n_cpus = n_cpus;
            let mut batch =
                LegacyBatch::new(LegacySea::new(platform(base, b"conc-b")).expect("sea"));
            for i in 0..n {
                batch.add_job(job(i, work_ms), b"");
            }
            let b = batch.run_all(horizon).expect("batch");

            ConcurrencyPoint {
                n_pals: n,
                baseline_legacy_ms: b.legacy_available.as_ms_f64(),
                baseline_stalled_ms: b.stalled.as_ms_f64(),
                enhanced_legacy_ms: e.legacy_available.as_ms_f64(),
            }
        })
        .collect()
}

fn job(i: usize, work_ms: u64) -> Box<dyn PalLogic> {
    Box::new(
        FnPal::new(&format!("job-{i}"), move |ctx| {
            let state = ctx.random(16)?;
            let blob = ctx.seal(&state)?;
            let back = ctx.unseal(&blob)?;
            debug_assert_eq!(back, state);
            ctx.work(SimDuration::from_ms(work_ms));
            Ok(PalOutcome::Exit(vec![]))
        })
        .with_image_size(16 * 1024),
    )
}

// ---------------------------------------------------------------------
// Responsiveness: PAL service latency under random load (§4.2)
// ---------------------------------------------------------------------

/// One point of the responsiveness experiment.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Mean request inter-arrival time (ms).
    pub interarrival_ms: f64,
    /// Baseline mean / p95 response (ms).
    pub baseline_mean_ms: f64,
    /// Baseline 95th-percentile response (ms).
    pub baseline_p95_ms: f64,
    /// Proposed mean response (ms).
    pub proposed_mean_ms: f64,
    /// Proposed 95th-percentile response (ms).
    pub proposed_p95_ms: f64,
}

/// Measures PAL-service response times under Poisson load.
///
/// The per-request service times are *measured*, not assumed: one real
/// PAL-Use session on the baseline (`LegacySea`) and one real
/// launch+step on the proposed hardware (`EnhancedSea`), both including
/// `work_ms` of application work. The queueing simulation in
/// `sea-os::simulate_service` then serves a seeded arrival trace —
/// baseline as a single whole-platform server, proposed with one server
/// per core.
pub fn latency(
    n_cpus: u16,
    interarrival_ms: &[u64],
    work_ms: u64,
    horizon: SimDuration,
) -> Vec<LatencyPoint> {
    use sea_os::{simulate_service, ArrivalTrace};

    // Measure the baseline per-request service time: a real PAL-Use
    // session (SKINIT + Unseal + work + Seal).
    let mut legacy = LegacySea::new(platform(Platform::hp_dc5750(), b"latency-l")).expect("sea");
    let mut holder = None;
    {
        let h = &mut holder;
        let mut gen = FnPal::new("svc", move |ctx| {
            *h = Some(ctx.seal(b"svc state")?);
            Ok(PalOutcome::Exit(vec![]))
        })
        .with_image_size(16 * 1024);
        legacy.run_session(&mut gen, b"").expect("gen");
    }
    let blob = holder.expect("sealed");
    let mut use_pal = FnPal::new("svc", move |ctx| {
        let state = ctx.unseal(&blob)?;
        ctx.work(SimDuration::from_ms(work_ms));
        let _ = ctx.seal(&state)?;
        Ok(PalOutcome::Exit(vec![]))
    })
    .with_image_size(16 * 1024);
    let baseline_service = legacy
        .run_session(&mut use_pal, b"")
        .expect("use")
        .report
        .total();

    // Measure the proposed per-request service time: launch + run with
    // in-region state.
    let mut enhanced =
        EnhancedSea::new(platform(Platform::recommended(n_cpus), b"latency-e")).expect("sea");
    let mut epal = FnPal::new("svc-e", move |ctx| {
        ctx.work(SimDuration::from_ms(work_ms));
        Ok(PalOutcome::Exit(vec![]))
    })
    .with_image_size(16 * 1024);
    let id = enhanced
        .slaunch(&mut epal, b"", CpuId(0), None)
        .expect("launch");
    let done = enhanced.run_to_exit(&mut epal, id, CpuId(0)).expect("run");
    let proposed_service = done.report.total();

    interarrival_ms
        .iter()
        .map(|&ia| {
            let trace = ArrivalTrace::poisson(
                horizon,
                SimDuration::from_ms(ia),
                format!("latency-{ia}").as_bytes(),
            );
            let b = simulate_service(&trace, 1, baseline_service);
            let p = simulate_service(&trace, n_cpus as usize, proposed_service);
            LatencyPoint {
                interarrival_ms: ia as f64,
                baseline_mean_ms: b.mean.as_ms_f64(),
                baseline_p95_ms: b.p95.as_ms_f64(),
                proposed_mean_ms: p.mean.as_ms_f64(),
                proposed_p95_ms: p.p95.as_ms_f64(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablation: "just make the TPM and bus faster" (§5.7 alternative)
// ---------------------------------------------------------------------

/// One point of the TPM speed-up ablation.
#[derive(Debug, Clone)]
pub struct FastTpmPoint {
    /// TPM/bus speed-up factor relative to the Broadcom baseline.
    pub speedup: f64,
    /// Resulting baseline context-switch cost (switch-in + switch-out), µs.
    pub baseline_switch_us: f64,
    /// The proposed hardware's switch pair for comparison, µs.
    pub proposed_pair_us: f64,
}

/// Sweeps TPM speed-up factors and evaluates the baseline context-switch
/// cost (SKINIT + Unseal + Seal) under each, against the proposed
/// hardware's constant VM-scale cost.
pub fn ablation_fast_tpm(factors: &[f64]) -> Vec<FastTpmPoint> {
    let base = TpmTimingModel::for_kind(TpmKind::Broadcom);
    let proposed_pair_us = {
        let p = Platform::recommended(2);
        (p.virt.vm_enter + p.virt.vm_exit).as_us_f64()
    };
    factors
        .iter()
        .map(|&f| {
            let m = base.sped_up(f);
            let skinit = m.hash_time(64 * 1024);
            let switch_cost = skinit + m.mean(TpmOp::Unseal) + m.mean(TpmOp::Seal);
            FastTpmPoint {
                speedup: f,
                baseline_switch_us: switch_cost.as_us_f64(),
                proposed_pair_us,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablation: hash-on-TPM (AMD) vs hash-on-CPU (Intel), §4.3.2
// ---------------------------------------------------------------------

/// One point of the hash-placement ablation.
#[derive(Debug, Clone)]
pub struct HashPlacementPoint {
    /// PAL size in bytes.
    pub size: usize,
    /// AMD strategy: stream the whole PAL through the TPM (ms).
    pub amd_ms: f64,
    /// Intel strategy: fixed ACMod cost + CPU-side hashing (ms).
    pub intel_ms: f64,
    /// Footnote-4 two-part PAL on AMD: tiny measured loader + CPU-side
    /// hashing of the rest (ms).
    pub two_part_ms: f64,
}

/// Sweeps PAL sizes under the three launch-measurement strategies the
/// paper discusses, exposing the AMD/Intel crossover and the two-part
/// PAL optimization.
pub fn ablation_hash_placement(sizes: &[usize]) -> Vec<HashPlacementPoint> {
    let amd = platform(Platform::hp_dc5750(), b"hp-amd");
    let intel = platform(Platform::intel_tep(), b"hp-intel");
    // Footnote 4: a fixed 1 KB loader is measured via the TPM, the rest
    // is hashed on the CPU at Intel's fitted rate.
    const LOADER: usize = 1024;
    const CPU_HASH_NS_PER_BYTE: f64 = 121.45;
    sizes
        .iter()
        .map(|&size| {
            let two_part = amd.late_launch_cost(LOADER.min(size))
                + SimDuration::from_ns_f64(
                    size.saturating_sub(LOADER) as f64 * CPU_HASH_NS_PER_BYTE,
                );
            HashPlacementPoint {
                size,
                amd_ms: amd.late_launch_cost(size).as_ms_f64(),
                intel_ms: intel.late_launch_cost(size).as_ms_f64(),
                two_part_ms: two_part.as_ms_f64(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablation: sePCR capacity vs concurrent PALs (§5.4)
// ---------------------------------------------------------------------

/// One point of the sePCR-capacity ablation.
#[derive(Debug, Clone)]
pub struct SePcrPoint {
    /// Number of sePCRs in the TPM.
    pub sepcrs: u16,
    /// PALs whose launch succeeded.
    pub launched: usize,
    /// PALs whose launch failed with `NoFreeSePcr`.
    pub rejected: usize,
}

/// Attempts to hold `attempted` PALs live simultaneously under varying
/// sePCR bank sizes; the success count is capped by the bank, exactly as
/// §5.4 predicts ("the number of sePCRs ... establishes the limit for
/// the number of concurrently executing PALs").
pub fn ablation_sepcr(attempted: usize, bank_sizes: &[u16]) -> Vec<SePcrPoint> {
    bank_sizes
        .iter()
        .map(|&k| {
            let p = Platform::recommended(2).with_sepcr_count(k);
            let mut sea = EnhancedSea::new(platform(p, b"sepcr")).expect("platform");
            let mut launched = 0;
            let mut rejected = 0;
            for i in 0..attempted {
                let mut pal = FnPal::new(&format!("concurrent-{i}"), |_| Ok(PalOutcome::Yield));
                match sea.slaunch(&mut pal, b"", CpuId(0), None) {
                    Ok(id) => {
                        launched += 1;
                        // Suspend it so the CPU is free but the sePCR
                        // stays Exclusive (the PAL is still live).
                        sea.step(&mut pal, id).expect("yield step");
                    }
                    Err(_) => rejected += 1,
                }
            }
            SePcrPoint {
                sepcrs: k,
                launched,
                rejected,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Concurrent engine: aggregate PAL throughput vs core count
// ---------------------------------------------------------------------

/// One point of the throughput-vs-core-count sweep.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Worker threads = simulated CPUs running PAL sessions.
    pub workers: usize,
    /// Sessions completed.
    pub jobs: usize,
    /// Virtual wall time of the batch (ms).
    pub wall_ms: f64,
    /// Sum of every session's virtual cost (ms) — the one-core wall time.
    pub aggregate_ms: f64,
    /// Sessions completed per virtual second of wall time.
    pub per_sec: f64,
    /// Parallel speedup over one core.
    pub speedup: f64,
}

/// Aggregate PAL throughput vs core count on the proposed hardware:
/// pushes `jobs` identical sessions (launch, then `work` of PAL
/// computation, then attestation) through a plain-policy
/// [`SessionEngine`] batch at each worker count. §5.4's
/// per-PAL sePCRs and the access-control table are what let the sessions
/// overlap; the baseline hardware of §4.2 would serialize them at
/// `aggregate_ms` regardless of core count.
pub fn throughput(worker_counts: &[usize], jobs: usize, work: SimDuration) -> Vec<ThroughputPoint> {
    throughput_with_obs(worker_counts, jobs, work, Obs::null())
}

/// [`throughput`] with an observability handle installed into each
/// sweep point's engine. Per-layer totals and counters are additive, so
/// the aggregated metrics are invariant to worker interleaving even
/// though this path's sessions are unkeyed.
pub fn throughput_with_obs(
    worker_counts: &[usize],
    jobs: usize,
    work: SimDuration,
    obs: Obs,
) -> Vec<ThroughputPoint> {
    worker_counts
        .iter()
        .map(|&w| {
            let mut p = platform(Platform::recommended(w as u16), b"throughput");
            p.install_obs(obs.clone());
            let mut sea =
                SessionEngine::<sea_core::Slaunch>::new(p, w).expect("pool fits platform");
            let batch: Vec<ConcurrentJob> = (0..jobs)
                .map(|i| {
                    ConcurrentJob::new(
                        Box::new(FnPal::new(&format!("tp-{i}"), move |ctx| {
                            ctx.work(work);
                            Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                        })),
                        b"",
                    )
                })
                .collect();
            let out = sea.run(batch, &BatchPolicy::plain()).expect("batch runs");
            ThroughputPoint {
                workers: w,
                jobs,
                wall_ms: out.wall.as_ms_f64(),
                aggregate_ms: out.aggregate().as_ms_f64(),
                per_sec: out.throughput_per_sec(),
                speedup: out.speedup(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fault sweep: goodput vs injected fault rate under the recovery layer
// ---------------------------------------------------------------------

/// The seed every fault-sweep batch derives its fault tape from, so the
/// sweep is reproducible run to run.
pub const FAULT_SWEEP_SEED: u64 = 0xFA17;

/// Of the TPM transport faults injected at each sweep point, 1 in 8 is
/// fatal (non-retryable); the rest clear on retry.
pub const FAULT_SWEEP_FATAL_RATIO: u32 = sea_hw::RATE_DENOM / 8;

/// One point of the goodput-vs-fault-rate sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Per-roll fault probability numerator (denominator
    /// [`sea_hw::RATE_DENOM`]).
    pub rate: u32,
    /// Sessions in the batch.
    pub jobs: usize,
    /// Sessions that completed with a quote.
    pub quoted: usize,
    /// Sessions killed after exhausting their retry budget.
    pub killed: usize,
    /// Total retries absorbed across the batch.
    pub retries: u32,
    /// Virtual wall time of the batch (ms).
    pub wall_ms: f64,
    /// Completed sessions per virtual second of wall time.
    pub goodput_per_sec: f64,
}

/// Goodput vs injected fault rate: pushes `jobs` identical sessions
/// through [`SessionEngine::run`] under a retrying policy at each TPM-transport
/// fault rate (per-roll probability `rate`/[`sea_hw::RATE_DENOM`],
/// memory-denial and timer-expiry rates at half that), under the default
/// [`RetryPolicy`]. Every batch replays the same deterministic fault
/// tape ([`FAULT_SWEEP_SEED`]), so the sweep is reproducible and
/// worker-count invariant. Transient faults cost retries (goodput decays
/// roughly linearly); the fatal fraction ([`FAULT_SWEEP_FATAL_RATIO`])
/// kills sessions outright, so completions drop as the rate climbs —
/// but the batch always finishes and every sePCR comes back.
pub fn fault_sweep(
    rates: &[u32],
    jobs: usize,
    work: SimDuration,
    workers: usize,
) -> Vec<FaultSweepPoint> {
    fault_sweep_with_obs(rates, jobs, work, workers, Obs::null())
}

/// [`fault_sweep`] with an observability handle installed into each
/// sweep point's engine: sessions are keyed (batch index = track), so
/// retries surface as `recovery.backoff` leaves and `core.retries`
/// counts on the faulted session's own track.
pub fn fault_sweep_with_obs(
    rates: &[u32],
    jobs: usize,
    work: SimDuration,
    workers: usize,
    obs: Obs,
) -> Vec<FaultSweepPoint> {
    rates
        .iter()
        .map(|&rate| {
            let mut p = platform(Platform::recommended(workers as u16), b"fault-sweep");
            p.install_obs(obs.clone());
            let mut sea =
                SessionEngine::<sea_core::Slaunch>::new(p, workers).expect("pool fits platform");
            sea.set_fault_plan(Some(
                FaultPlan::new(FAULT_SWEEP_SEED)
                    .with_tpm_rate(rate)
                    .with_mem_rate(rate / 2)
                    .with_timer_rate(rate / 2)
                    .with_fatal_ratio(FAULT_SWEEP_FATAL_RATIO),
            ));
            let batch: Vec<ConcurrentJob> = (0..jobs)
                .map(|i| {
                    ConcurrentJob::new(
                        Box::new(FnPal::new(&format!("fs-{i}"), move |ctx| {
                            ctx.work(work);
                            Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                        })),
                        b"",
                    )
                })
                .collect();
            let out = sea
                .run(
                    batch,
                    &BatchPolicy::plain().with_retry(RetryPolicy::default()),
                )
                .expect("batch runs");
            let retries = out
                .sessions
                .iter()
                .map(|s| match s {
                    SessionResult::Quoted { retries, .. } => *retries,
                    _ => 0,
                })
                .sum();
            FaultSweepPoint {
                rate,
                jobs,
                quoted: out.quoted(),
                killed: out.killed(),
                retries,
                wall_ms: out.wall.as_ms_f64(),
                goodput_per_sec: out.goodput_per_sec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Crash sweep: goodput vs power-loss rate under the durable engine
// ---------------------------------------------------------------------

/// The seed every crash-sweep batch derives its power-loss tape from, so
/// the sweep is reproducible run to run.
pub const CRASH_SWEEP_SEED: u64 = 0x0C0FFEE;

/// Reset budget per sweep point: the durable engine stops pulling the
/// plug after this many reboots so every batch terminates.
pub const CRASH_SWEEP_MAX_RESETS: u32 = 4;

/// One point of the goodput-vs-power-loss-rate sweep.
#[derive(Debug, Clone)]
pub struct CrashSweepPoint {
    /// Per-commit power-loss probability numerator (denominator
    /// [`sea_hw::RATE_DENOM`]).
    pub rate: u32,
    /// Sessions in the batch.
    pub jobs: usize,
    /// Sessions that completed with a quote.
    pub quoted: usize,
    /// Platform resets survived.
    pub resets: u32,
    /// Sessions restored from the sealed NVRAM journal after the last
    /// reset (their results survived the power loss).
    pub committed: usize,
    /// Sessions relaunched from scratch after the last reset (torn or
    /// volatile at the moment the plug was pulled).
    pub relaunched: usize,
    /// Virtual time spent rebooting and replaying the journal (ms).
    pub recovery_ms: f64,
    /// Virtual time spent sealing journal checkpoints to NVRAM (ms).
    pub journal_ms: f64,
    /// Virtual wall time of the batch (ms).
    pub wall_ms: f64,
    /// Completed sessions per virtual second of wall time.
    pub goodput_per_sec: f64,
}

/// Goodput vs injected power-loss rate: pushes `jobs` identical sessions
/// through [`SessionEngine::run`] under a durable policy at each per-commit
/// power-loss probability (`rate`/[`sea_hw::RATE_DENOM`]), capped at
/// [`CRASH_SWEEP_MAX_RESETS`] reboots. Every batch replays the same
/// deterministic power-loss tape ([`CRASH_SWEEP_SEED`]); the final
/// session results are interleaving-invariant, and with a single worker
/// the whole sweep — resets, committed/relaunched splits, recovery
/// accounting — is byte-identical run to run. Each reset costs a reboot
/// ([`sea_hw::RESET_REBOOT_COST`]) plus a journal replay; sessions that
/// had committed to the sealed NVRAM journal keep their results, the
/// rest relaunch — so goodput decays with the rate but the batch always
/// finishes with every session quoted.
pub fn crash_sweep(
    rates: &[u32],
    jobs: usize,
    work: SimDuration,
    workers: usize,
) -> Vec<CrashSweepPoint> {
    crash_sweep_with_obs(rates, jobs, work, workers, Obs::null())
}

/// [`crash_sweep`] with an observability handle installed into each
/// sweep point's engine: journal checkpoints and reboot recovery land
/// on the platform-wide track ([`sea_hw::PLATFORM_TRACK`]) as
/// `journal.seal`/`journal.unseal` leaves plus `journal.*` counters.
pub fn crash_sweep_with_obs(
    rates: &[u32],
    jobs: usize,
    work: SimDuration,
    workers: usize,
    obs: Obs,
) -> Vec<CrashSweepPoint> {
    rates
        .iter()
        .map(|&rate| {
            let mut p = platform(Platform::recommended(workers as u16), b"crash-sweep");
            p.install_obs(obs.clone());
            let mut sea =
                SessionEngine::<sea_core::Slaunch>::new(p, workers).expect("pool fits platform");
            sea.set_fault_plan(Some(FaultPlan::fault_free()));
            let plan = ResetPlan::new(CRASH_SWEEP_SEED)
                .with_reset_rate(rate)
                .with_max_resets(CRASH_SWEEP_MAX_RESETS);
            let batch: Vec<ConcurrentJob> = (0..jobs)
                .map(|i| {
                    ConcurrentJob::new(
                        Box::new(FnPal::new(&format!("cs-{i}"), move |ctx| {
                            ctx.work(work);
                            Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                        })),
                        b"",
                    )
                })
                .collect();
            let out = sea
                .run(
                    batch,
                    &BatchPolicy::plain()
                        .with_retry(RetryPolicy::default())
                        .with_durability(plan),
                )
                .expect("batch runs");
            CrashSweepPoint {
                rate,
                jobs,
                quoted: out.quoted(),
                resets: out.resets,
                committed: out.committed.len(),
                relaunched: out.relaunched.len(),
                recovery_ms: out.recovery_latency.as_ms_f64(),
                journal_ms: out.journal_overhead.as_ms_f64(),
                wall_ms: out.wall.as_ms_f64(),
                goodput_per_sec: out.goodput_per_sec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Scale: virtual-CPU counts past any host's physical cores
// ---------------------------------------------------------------------

/// The seed of the scale sweep's power-loss tape.
pub const SCALE_SEED: u64 = 0x5CA1E;

/// Per-commit power-loss rate the scale sweep injects (numerator over
/// [`sea_hw::RATE_DENOM`]).
pub const SCALE_RESET_RATE: u32 = sea_hw::RATE_DENOM / 64;

/// Reboot cap of the scale sweep's reset plan.
pub const SCALE_MAX_RESETS: u32 = 2;

/// One point of the platform-scale sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Virtual CPUs modeled (= engine workers under the event queue).
    pub cpus: usize,
    /// Sessions in the batch.
    pub jobs: usize,
    /// Sessions that completed with a quote.
    pub quoted: usize,
    /// Platform reboots the power-loss tape forced.
    pub resets: u32,
    /// Sessions restored from the sealed journal across all reboots.
    pub committed: usize,
    /// Sessions relaunched after losing uncommitted work.
    pub relaunched: usize,
    /// Virtual wall time of the batch (ms).
    pub wall_ms: f64,
    /// Sum of every session's virtual cost (ms) — the one-CPU wall time.
    pub aggregate_ms: f64,
    /// Parallel speedup over one CPU.
    pub speedup: f64,
    /// Completed sessions per virtual second of wall time.
    pub goodput_per_sec: f64,
}

/// Durable-batch goodput vs platform width, far past the host's core
/// count: pushes `jobs` identical attested sessions through a
/// crash-consistent [`SessionEngine`] batch on the **discrete-event
/// executor** ([`Executor::DiscreteEvent`]) at each virtual-CPU count —
/// the thread-pool backend would need one OS thread per simulated CPU
/// and so caps out at the host. Every point replays the same power-loss
/// tape ([`SCALE_SEED`]), and because the event queue's schedule is
/// structural, the *whole* ledger — resets, the committed/relaunched
/// split, recovery accounting — is byte-identical run to run at every
/// width (the thread pool can promise that only at one worker).
pub fn scale(cpu_counts: &[usize], jobs: usize, work: SimDuration) -> Vec<ScalePoint> {
    scale_with_obs(cpu_counts, jobs, work, Obs::null())
}

/// [`scale`] with an observability handle installed into each sweep
/// point's engine: journal checkpoints and reboot recovery land on
/// [`sea_hw::PLATFORM_TRACK`] exactly as in the crash sweep.
pub fn scale_with_obs(
    cpu_counts: &[usize],
    jobs: usize,
    work: SimDuration,
    obs: Obs,
) -> Vec<ScalePoint> {
    cpu_counts
        .iter()
        .map(|&cpus| {
            let mut p = platform(Platform::recommended(cpus as u16), b"scale");
            p.install_obs(obs.clone());
            let mut sea =
                SessionEngine::<sea_core::Slaunch>::new(p, cpus).expect("pool fits platform");
            sea.set_fault_plan(Some(FaultPlan::fault_free()));
            let plan = ResetPlan::new(SCALE_SEED)
                .with_reset_rate(SCALE_RESET_RATE)
                .with_max_resets(SCALE_MAX_RESETS);
            let batch: Vec<ConcurrentJob> = (0..jobs)
                .map(|i| {
                    ConcurrentJob::new(
                        Box::new(FnPal::new(&format!("sc-{i}"), move |ctx| {
                            ctx.work(work);
                            Ok(PalOutcome::Exit(i.to_le_bytes().to_vec()))
                        })),
                        b"",
                    )
                })
                .collect();
            let out = sea
                .run(
                    batch,
                    &BatchPolicy::plain()
                        .with_retry(RetryPolicy::default())
                        .with_durability(plan)
                        .with_executor(Executor::DiscreteEvent),
                )
                .expect("batch runs");
            ScalePoint {
                cpus,
                jobs,
                quoted: out.quoted(),
                resets: out.resets,
                committed: out.committed.len(),
                relaunched: out.relaunched.len(),
                wall_ms: out.wall.as_ms_f64(),
                aggregate_ms: out.aggregate().as_ms_f64(),
                speedup: out.speedup(),
                goodput_per_sec: out.goodput_per_sec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fleet: sharded platforms vs a remote verifier service
// ---------------------------------------------------------------------

/// Seed of the fleet sweep's hashed dispatch policy.
pub const FLEET_SEED: u64 = 0xF1EE7;

/// OS threads (shards) the fleet sweep runs each fleet over. The
/// outcome is byte-identical at any shard count; this just bounds host
/// threads.
pub const FLEET_SHARDS: usize = 4;

/// One point of the fleet-attestation sweep.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Platforms in the fleet.
    pub platforms: usize,
    /// Attestation requests dispatched across the fleet.
    pub requests: usize,
    /// Requests the remote verifier accepted.
    pub accepted: usize,
    /// Requests the remote verifier rejected.
    pub rejected: usize,
    /// AIK certificate-chain walks the verifier performed.
    pub cert_walks: u64,
    /// AIK session-ticket cache hits at the verifier.
    pub ticket_hits: u64,
    /// Virtual wall time until the last verdict (ms).
    pub wall_ms: f64,
    /// Median attestation latency, quote emission to verdict (ms).
    pub p50_ms: f64,
    /// 95th-percentile attestation latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile attestation latency (ms).
    pub p99_ms: f64,
    /// Accepted attestations per virtual second of fleet wall time.
    pub goodput_per_sec: f64,
}

/// Fleet-scale attestation: goodput and latency percentiles vs fleet
/// size. Each point hash-dispatches ([`FLEET_SEED`]) `requests`
/// attestation requests across a fleet of [`sea_fleet`] platforms,
/// runs every platform's sessions to a wire quote, and drains the
/// completions through the remote [`sea_fleet::VerifierService`] —
/// certificate walks, session tickets, nonce freshness, TCB policy and
/// all. Deterministic at every fleet size and shard count.
pub fn fleet_sweep(platform_counts: &[usize], requests: usize) -> Vec<FleetPoint> {
    fleet_sweep_with_obs(platform_counts, requests, Obs::null())
}

/// [`fleet_sweep`] with an observability handle installed into every
/// platform in every fleet: session spans and layer charges from all
/// shards land in one recording.
pub fn fleet_sweep_with_obs(
    platform_counts: &[usize],
    requests: usize,
    obs: Obs,
) -> Vec<FleetPoint> {
    platform_counts
        .iter()
        .map(|&platforms| {
            let cfg = sea_fleet::FleetConfig::new(platforms, requests)
                .with_shards(FLEET_SHARDS)
                .with_policy(sea_os::DispatchPolicy::Hashed { seed: FLEET_SEED });
            let out = sea_fleet::run_fleet_with_obs(&cfg, obs.clone());
            let lat = out.latencies_sorted_ns();
            let pct = |p: f64| {
                if lat.is_empty() {
                    0.0
                } else {
                    crate::stats::percentile_sorted(&lat, p) as f64 / 1e6
                }
            };
            FleetPoint {
                platforms,
                requests,
                accepted: out.accepted,
                rejected: out.rejected,
                cert_walks: out.cert_walks,
                ticket_hits: out.ticket_hits,
                wall_ms: out.wall_ns as f64 / 1e6,
                p50_ms: pct(0.50),
                p95_ms: pct(0.95),
                p99_ms: pct(0.99),
                goodput_per_sec: out.goodput_per_sec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Churn: the fleet under network faults, reboots, rotation, adversaries
// ---------------------------------------------------------------------

/// Seed of the churn sweep: one seed derives the network fault plan,
/// reboot/rotation draws, adversarial schedule, and dispatch hashing.
pub const CHURN_SEED: u64 = 0xC7A05;

/// Platforms in the churn sweep's fleet.
pub const CHURN_PLATFORMS: usize = 8;

/// Verifier nonce-freshness window for the churn sweep. Finite (unlike
/// the calm fleet sweep's unbounded window) so stale-nonce adversarial
/// wires are actually distinguishable from honest retries, yet roomy
/// enough that backed-off honest re-quotes stay fresh.
pub const CHURN_FRESHNESS_NS: u64 = 100_000_000;

/// Session-ticket TTL for the churn sweep's verifier.
pub const CHURN_TICKET_TTL_NS: u64 = 50_000_000;

/// One point of the churn sweep: the fleet at one churn intensity.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    /// Churn intensity, parts per [`sea_hw::RATE_DENOM`]; the network,
    /// reboot, rotation, and adversary rates all scale with it.
    pub intensity: u32,
    /// Attestation requests dispatched across the fleet.
    pub requests: usize,
    /// Requests whose fate is accepted (verified, retried, degraded).
    pub accepted: usize,
    /// Requests terminally rejected by the verifier.
    pub rejected: usize,
    /// Requests that exhausted their attempt budget without a verdict.
    pub timed_out: usize,
    /// Accepted requests that rode a TCB-rollout grace window.
    pub degraded: usize,
    /// Total retry wires sent beyond each request's first attempt.
    pub retries: u64,
    /// Adversarial wires injected alongside the honest traffic.
    pub adversarial: usize,
    /// Adversarial wires the verifier rejected (must equal
    /// `adversarial`: the verifier never accepts forged traffic).
    pub adversarial_rejected: usize,
    /// Share of all wires reaching the verifier that it rejected
    /// (adversarial traffic included, unlike the fate counts).
    pub wire_rejection_rate: f64,
    /// Virtual wall time until the last verdict (ms).
    pub wall_ms: f64,
    /// Median request latency, first send to settlement (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Accepted attestations per virtual second of fleet wall time.
    pub goodput_per_sec: f64,
}

/// The [`ChurnPlan`](sea_fleet::ChurnPlan) the churn sweep runs at one
/// intensity: every fault family scales with `intensity` from a calm
/// plan at 0, and any nonzero intensity also stages a mid-run TCB push
/// with a bounded grace window.
pub fn churn_plan(intensity: u32) -> sea_fleet::ChurnPlan {
    let plan = sea_fleet::ChurnPlan::new(CHURN_SEED)
        .with_net(
            sea_hw::NetPlan::new(CHURN_SEED)
                .with_drop_rate(intensity / 2)
                .with_delay_rate(intensity)
                .with_duplicate_rate(intensity / 2)
                .with_reorder_rate(intensity / 2),
        )
        .with_reboots(intensity / 4, 1_000_000)
        .with_rotation(intensity / 4, 2_000_000, 500_000)
        .with_adversary(intensity / 2, intensity / 2, intensity / 2, intensity / 2);
    if intensity == 0 {
        plan
    } else {
        // Announced mid-run (the sweep's fleets run for hundreds of
        // virtual milliseconds), propagating group by group, with a
        // bounded grace window sized to outlast the rest of the run:
        // requests settled before the push verify cleanly, later ones
        // are accepted degraded rather than cut off wholesale.
        plan.with_tcb_push(sea_fleet::TcbPush {
            at_ns: 200_000_000,
            groups: 4,
            group_delay_ns: 50_000_000,
            grace_ns: 10_000_000_000,
        })
    }
}

/// Churn tolerance: request fates, retry cost, and adversarial
/// rejection vs churn intensity. Each point runs [`CHURN_PLATFORMS`]
/// platforms under [`churn_plan`] with a resilient
/// [`FleetPolicy`](sea_fleet::FleetPolicy) and finite verifier
/// freshness/ticket windows, then charts how goodput degrades and what
/// share of wire traffic the verifier turns away. Deterministic at
/// every intensity, shard count, and executor.
pub fn churn_sweep(intensities: &[u32], requests: usize) -> Vec<ChurnPoint> {
    churn_sweep_with_obs(intensities, requests, Obs::null())
}

/// [`churn_sweep`] with an observability handle installed into every
/// platform in every fleet.
pub fn churn_sweep_with_obs(intensities: &[u32], requests: usize, obs: Obs) -> Vec<ChurnPoint> {
    intensities
        .iter()
        .map(|&intensity| {
            let cfg = sea_fleet::FleetConfig::new(CHURN_PLATFORMS, requests)
                .with_shards(FLEET_SHARDS)
                .with_policy(sea_os::DispatchPolicy::Hashed { seed: CHURN_SEED })
                .with_lifecycle(sea_fleet::FleetPolicy::resilient().with_max_attempts(6))
                .with_churn(churn_plan(intensity))
                .with_freshness_window_ns(CHURN_FRESHNESS_NS)
                .with_ticket_ttl_ns(CHURN_TICKET_TTL_NS);
            let out = sea_fleet::run_fleet_with_obs(&cfg, obs.clone());
            let lat = out.latencies_sorted_ns();
            let pct = |p: f64| {
                if lat.is_empty() {
                    0.0
                } else {
                    crate::stats::percentile_sorted(&lat, p) as f64 / 1e6
                }
            };
            ChurnPoint {
                intensity,
                requests,
                accepted: out.accepted,
                rejected: out.rejected,
                timed_out: out.timed_out,
                degraded: out.degraded,
                retries: out.retries,
                adversarial: out.adversarial.len(),
                adversarial_rejected: out.adversarial_rejected,
                wire_rejection_rate: out.stats.rejected as f64 / out.stats.requests.max(1) as f64,
                wall_ms: out.wall_ns as f64 / 1e6,
                p50_ms: pct(0.50),
                p95_ms: pct(0.95),
                p99_ms: pct(0.99),
                goodput_per_sec: out.goodput_per_sec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// VM: the measured PAL bytecode VM — direct block chaining vs lookup
// ---------------------------------------------------------------------

/// Prime factor *p* of the semiprime the VM factoring workload cracks.
pub const VM_FACTOR_P: u64 = 65_519;
/// Prime factor *q* of the semiprime the VM factoring workload cracks.
pub const VM_FACTOR_Q: u64 = 65_521;
/// Trial-division candidates per execution quantum in the VM factoring
/// workload — sized so the session suspends and resumes several times.
pub const VM_FACTOR_QUANTUM: u64 = 8_192;

/// One point of the VM dispatch experiment: a paper PAL's canonical
/// workload executed as measured bytecode twice — once with direct
/// block chaining, once forced through the block-cache lookup on every
/// dispatch — on the proposed hardware's session engine.
#[derive(Debug, Clone)]
pub struct VmPoint {
    /// PAL name (also its measured identity's program).
    pub pal: String,
    /// Sessions the workload ran.
    pub sessions: usize,
    /// Instructions retired (identical in both runs by construction).
    pub retired: u64,
    /// Translation blocks dispatched.
    pub blocks: u64,
    /// Dispatches served through a patched chain edge (chained run).
    pub chain_hits: u64,
    /// Virtual ns spent on dispatch + decode with chaining on.
    pub chained_dispatch_ns: u64,
    /// Virtual ns spent on dispatch + decode with chaining off.
    pub lookup_dispatch_ns: u64,
    /// `lookup_dispatch_ns / chained_dispatch_ns`.
    pub dispatch_speedup: f64,
}

/// Drives `pal` through `inputs` as one attested session each on a
/// fresh proposed-hardware platform, returning the session outputs.
/// The per-invocation block cache resets between sessions; the PAL's
/// slot state and cumulative [`sea_core::VmStats`] carry across them,
/// which is exactly what the multi-session workloads (SSH enroll →
/// verify, CA generate → sign) need.
fn run_vm_workload(pal: &mut sea_core::VmPal, inputs: &[Vec<u8>], obs: Obs) -> Vec<Vec<u8>> {
    let mut p = platform(Platform::recommended(2), b"vm");
    p.install_obs(obs);
    let mut sea = EnhancedSea::new(p).expect("proposed platform");
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let id = sea.slaunch(pal, input, CpuId(0), None).expect("launch");
            let done = sea.run_to_exit(pal, id, CpuId(0)).expect("run");
            let nonce = (i as u64).to_le_bytes();
            sea.quote_and_free(id, &nonce).expect("quote");
            done.output
        })
        .collect()
}

/// One bench workload: `(name, constructor, session inputs)`.
type VmWorkload = (&'static str, Box<dyn Fn() -> sea_core::VmPal>, Vec<Vec<u8>>);

/// The four paper PALs as bench workloads.
fn vm_workloads() -> Vec<VmWorkload> {
    use sea_pals::vm::{vm_ca, vm_factoring, vm_rootkit, vm_ssh};
    use sea_pals::{CaRequest, PersistMode, SshRequest};
    let kernel = vec![0xC3u8; 4096];
    let other = vec![0x90u8; 4096];
    vec![
        (
            "ssh-password",
            Box::new(vm_ssh),
            vec![
                SshRequest::Enroll(b"correct horse".to_vec()).to_bytes(),
                SshRequest::Verify(b"correct horse".to_vec()).to_bytes(),
                SshRequest::Verify(b"battery staple".to_vec()).to_bytes(),
            ],
        ),
        (
            "certificate-authority",
            Box::new(vm_ca),
            vec![
                CaRequest::Generate.to_bytes(),
                CaRequest::Sign(b"vm bench csr".to_vec()).to_bytes(),
            ],
        ),
        (
            "distributed-factoring",
            Box::new(move || {
                vm_factoring(
                    VM_FACTOR_P * VM_FACTOR_Q,
                    VM_FACTOR_QUANTUM,
                    PersistMode::InRegion,
                )
            }),
            vec![Vec::new()],
        ),
        (
            "rootkit-detector",
            {
                let kernel = kernel.clone();
                Box::new(move || vm_rootkit(&[&kernel, &other]))
            },
            vec![kernel],
        ),
    ]
}

/// The VM experiment without instrumentation.
pub fn vm_dispatch() -> Vec<VmPoint> {
    vm_dispatch_with_obs(Obs::null())
}

/// Runs each paper PAL's canonical workload as executed bytecode twice
/// — chaining on, then chaining off — and reports what direct block
/// chaining saves in dispatch gas. Outputs and retired-instruction
/// counts are asserted identical between the two runs (chaining is a
/// dispatch optimization, never a semantic one), so the speedup column
/// measures dispatch alone.
pub fn vm_dispatch_with_obs(obs: Obs) -> Vec<VmPoint> {
    vm_workloads()
        .into_iter()
        .map(|(name, make, inputs)| {
            let mut chained = make();
            let chained_out = run_vm_workload(&mut chained, &inputs, obs.clone());
            let c = chained.stats();

            let mut lookup = make().with_chaining(false);
            let lookup_out = run_vm_workload(&mut lookup, &inputs, obs.clone());
            let l = lookup.stats();

            assert_eq!(chained_out, lookup_out, "{name}: chaining changed outputs");
            assert_eq!(c.retired, l.retired, "{name}: chaining changed execution");
            assert_eq!(l.chain_hits, 0, "{name}: disabled chaining still chained");

            VmPoint {
                pal: name.to_string(),
                sessions: inputs.len(),
                retired: c.retired,
                blocks: c.blocks_executed,
                chain_hits: c.chain_hits,
                chained_dispatch_ns: c.dispatch_gas,
                lookup_dispatch_ns: l.dispatch_gas,
                dispatch_speedup: l.dispatch_gas as f64 / c.dispatch_gas.max(1) as f64,
            }
        })
        .collect()
}

/// Cross-executor pin for the VM artifact: a batch of four VM PALs
/// (one session each) run through the session engine on the one- and
/// four-worker thread pools and the discrete-event executor. Returns
/// whether every job's attestation quote was byte-identical across all
/// three schedules — the engine's determinism contract extended to
/// executed bytecode.
pub fn vm_quotes_identical_across_executors() -> bool {
    use sea_pals::vm::{vm_ca, vm_factoring, vm_rootkit, vm_ssh};
    use sea_pals::{CaRequest, PersistMode, SshRequest};
    let batch = || -> Vec<ConcurrentJob> {
        let kernel = vec![0xC3u8; 4096];
        vec![
            ConcurrentJob::new(
                Box::new(vm_ssh()),
                SshRequest::Enroll(b"pw".to_vec()).to_bytes(),
            ),
            ConcurrentJob::new(Box::new(vm_ca()), CaRequest::Generate.to_bytes()),
            ConcurrentJob::new(
                Box::new(vm_factoring(65_519 * 3, 4_096, PersistMode::InRegion)),
                b"",
            ),
            ConcurrentJob::new(Box::new(vm_rootkit(&[&kernel])), kernel.clone()),
        ]
    };
    let quotes = |workers: usize, executor: Executor| -> Vec<Quote> {
        let mut sea = SessionEngine::<sea_core::Slaunch>::new(
            platform(Platform::recommended(workers as u16), b"vm-exec"),
            workers,
        )
        .expect("pool fits platform")
        .with_executor(executor);
        let out = sea
            .run(
                batch(),
                &BatchPolicy::plain().with_retry(RetryPolicy::default()),
            )
            .expect("batch runs");
        out.sessions
            .into_iter()
            .map(|s| match s {
                SessionResult::Quoted { quote, .. } => quote,
                other => panic!("VM session did not quote: {other:?}"),
            })
            .collect()
    };
    let reference = quotes(1, Executor::ThreadPool);
    quotes(4, Executor::ThreadPool) == reference && quotes(4, Executor::DiscreteEvent) == reference
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.measured_ms.len(), PAL_SIZES.len());
            // Monotone in PAL size.
            for w in row.measured_ms.windows(2) {
                assert!(w[1] >= w[0], "{}: not monotone", row.system);
            }
            // Endpoint within 2% of the paper (64 KB column).
            let m = row.measured_ms[5];
            let p = row.paper_ms[5];
            assert!((m - p).abs() / p < 0.02, "{}: {m} vs {p}", row.system);
        }
        // TPM slows SKINIT ~20× (dc5750 vs Tyan at 64 KB).
        let ratio = rows[0].measured_ms[5] / rows[1].measured_ms[5];
        assert!(ratio > 15.0 && ratio < 25.0, "ratio {ratio}");
        // Intel beats AMD-with-TPM for large PALs but loses for small.
        assert!(rows[2].measured_ms[5] < rows[0].measured_ms[5]);
        assert!(rows[2].measured_ms[1] > rows[0].measured_ms[1]);
    }

    #[test]
    fn table2_matches_paper_within_rounding() {
        for row in table2() {
            assert!(
                (row.vm_enter_us - row.paper_enter_us).abs() < 0.02,
                "{row:?}"
            );
            assert!((row.vm_exit_us - row.paper_exit_us).abs() < 0.02, "{row:?}");
        }
    }

    #[test]
    fn figure2_shape_matches_paper() {
        let bars = figure2(5);
        let (gen, use_bar, quote) = (&bars[0], &bars[1], &bars[2]);
        // PAL Gen ≈ 200 ms: SKINIT + Seal, no Unseal.
        assert!((gen.total_ms - 197.5).abs() < 15.0, "gen {}", gen.total_ms);
        assert!(gen.unseal_ms < 1.0);
        // PAL Use > 1 s, dominated by Unseal.
        assert!(use_bar.total_ms > 1000.0, "use {}", use_bar.total_ms);
        assert!(use_bar.unseal_ms > use_bar.skinit_ms);
        // Quote is several hundred ms.
        assert!(quote.quote_ms > 700.0 && quote.quote_ms < 1100.0);
    }

    #[test]
    fn figure3_reproduces_ordering_constraints() {
        let cells = figure3(20);
        let get = |tpm: &str, op: &str| -> f64 {
            cells
                .iter()
                .find(|c| c.tpm == tpm && c.op == op)
                .unwrap_or_else(|| panic!("missing {tpm}/{op}"))
                .mean_ms
        };
        // Broadcom: fastest Seal, slowest Quote and Unseal.
        for other in ["T60 Atmel", "Infineon", "TEP Atmel"] {
            assert!(get("Broadcom", "Seal") < get(other, "Seal"));
            assert!(get("Broadcom", "Quote") > get(other, "Quote"));
            assert!(get("Broadcom", "Unseal") > get(other, "Unseal"));
        }
        // Infineon Unseal ≈ 390.98 ms.
        assert!((get("Infineon", "Unseal") - 390.98).abs() < 25.0);
        // Error bars exist but are small (≤ ~5% of mean).
        for c in &cells {
            assert!(c.stddev_ms >= 0.0);
            assert!(c.stddev_ms < c.mean_ms * 0.12, "{c:?}");
        }
    }

    #[test]
    fn impact_is_about_six_orders_of_magnitude() {
        let r = impact();
        assert!(r.baseline_switch_in_ms > 1000.0, "{r:?}");
        assert!(r.baseline_switch_out_ms > 10.0, "{r:?}");
        assert!(r.proposed_pair_us < 3.0, "{r:?}");
        assert!(
            r.improvement > 1e5 && r.improvement < 1e7,
            "improvement {}",
            r.improvement
        );
    }

    #[test]
    fn concurrency_enhanced_always_wins() {
        let points = concurrency(4, &[1, 4], 10, SimDuration::from_secs(20));
        for p in &points {
            assert!(
                p.enhanced_legacy_ms > p.baseline_legacy_ms,
                "n={} enhanced {} vs baseline {}",
                p.n_pals,
                p.enhanced_legacy_ms,
                p.baseline_legacy_ms
            );
            assert!(p.baseline_stalled_ms > 0.0);
        }
        // More PALs → bigger baseline loss.
        assert!(points[1].baseline_stalled_ms > points[0].baseline_stalled_ms);
    }

    #[test]
    fn latency_collapse_under_load_reproduced() {
        let points = latency(4, &[5000, 1500], 5, SimDuration::from_secs(60));
        for p in &points {
            // Proposed responses stay ~ms-scale; baseline is >1 s even
            // unloaded (the session itself exceeds a second).
            assert!(p.baseline_mean_ms > 1000.0, "{p:?}");
            assert!(p.proposed_mean_ms < 50.0, "{p:?}");
        }
        // Under heavier load (arrivals ~1.5 s apart vs ~1.25 s service),
        // the baseline queue amplifies the gap further.
        assert!(points[1].baseline_p95_ms > points[0].baseline_p95_ms);
    }

    #[test]
    fn fast_tpm_cannot_reach_proposed_costs() {
        let points = ablation_fast_tpm(&[1.0, 10.0, 100.0, 1000.0]);
        for p in &points {
            assert!(
                p.baseline_switch_us > p.proposed_pair_us * 10.0,
                "even {}x TPM gives {} µs vs {} µs",
                p.speedup,
                p.baseline_switch_us,
                p.proposed_pair_us
            );
        }
        // Monotone improvement with speed-up, of course.
        for w in points.windows(2) {
            assert!(w[1].baseline_switch_us < w[0].baseline_switch_us);
        }
    }

    #[test]
    fn hash_placement_crossover_near_10kb() {
        let sizes: Vec<usize> = (0..=64).map(|k| k * 1024).collect();
        let points = ablation_hash_placement(&sizes);
        // Small PALs: AMD wins. Large PALs: Intel wins.
        assert!(points[1].amd_ms < points[1].intel_ms);
        assert!(points[64].intel_ms < points[64].amd_ms);
        // Crossover between 8 KB and 12 KB (paper: ACMod ≈ 10 KB).
        let crossover = points
            .windows(2)
            .find(|w| w[0].amd_ms <= w[0].intel_ms && w[1].amd_ms > w[1].intel_ms)
            .map(|w| w[1].size)
            .expect("crossover exists");
        assert!(
            (8 * 1024..=12 * 1024).contains(&crossover),
            "crossover at {crossover}"
        );
        // The two-part trick beats plain AMD for large PALs.
        assert!(points[64].two_part_ms < points[64].amd_ms / 10.0);
    }

    #[test]
    fn throughput_scales_with_core_count() {
        let points = throughput(&[1, 2, 4], 8, SimDuration::from_ms(50));
        // One core is the serial baseline by definition.
        assert!((points[0].speedup - 1.0).abs() < 1e-9, "{points:?}");
        assert!((points[0].wall_ms - points[0].aggregate_ms).abs() < 1e-9);
        // Identical jobs, nominal costs: aggregate work is invariant.
        for p in &points[1..] {
            assert!(
                (p.aggregate_ms - points[0].aggregate_ms).abs() < 1e-6,
                "{p:?}"
            );
        }
        // Perfectly balanced batch → near-linear scaling.
        assert!(points[1].speedup > 1.9, "{points:?}");
        assert!(points[2].speedup > 3.9, "{points:?}");
        assert!(points[2].per_sec > points[1].per_sec && points[1].per_sec > points[0].per_sec);
    }

    #[test]
    fn sepcr_bank_caps_concurrency() {
        let points = ablation_sepcr(8, &[1, 2, 4, 8, 16]);
        for p in &points {
            assert_eq!(p.launched, (p.sepcrs as usize).min(8), "{p:?}");
            assert_eq!(p.launched + p.rejected, 8);
        }
    }

    #[test]
    fn crash_sweep_recovers_every_session() {
        let points = crash_sweep(&[0, sea_hw::RATE_DENOM / 3], 8, SimDuration::from_ms(2), 4);
        // Reset-free: no reboots, no recovery time, full goodput.
        assert_eq!(points[0].resets, 0, "{points:?}");
        assert_eq!(points[0].quoted, 8);
        assert_eq!(points[0].recovery_ms, 0.0);
        assert_eq!((points[0].committed, points[0].relaunched), (0, 0));
        // Checkpointing itself costs TPM time even without a crash.
        assert!(points[0].journal_ms > 0.0, "{points:?}");
        // Plug-pulling: at least one reboot within the budget, yet the
        // batch still finishes with every session quoted.
        let stressed = &points[1];
        assert!(
            stressed.resets >= 1 && stressed.resets <= CRASH_SWEEP_MAX_RESETS,
            "{stressed:?}"
        );
        assert_eq!(stressed.quoted, 8, "{stressed:?}");
        assert_eq!(stressed.committed + stressed.relaunched, 8, "{stressed:?}");
        // Each reboot shows up on the clock, so goodput sags.
        assert!(
            stressed.recovery_ms >= stressed.resets as f64 * sea_hw::RESET_REBOOT_COST.as_ms_f64(),
            "{stressed:?}"
        );
        assert!(
            stressed.goodput_per_sec < points[0].goodput_per_sec,
            "{points:?}"
        );
    }

    #[test]
    fn scale_sweep_holds_at_a_thousand_cpus() {
        // The 1024 width runs twice: the second pass is the
        // determinism probe at the bottom.
        let points = scale(&[1, 1024, 1024], 256, SimDuration::from_ms(1));
        for p in &points {
            // Every session quoted, every reset accounted for.
            assert_eq!(p.quoted, p.jobs, "{p:?}");
            assert!(p.resets <= SCALE_MAX_RESETS, "{p:?}");
            if p.resets > 0 {
                assert_eq!(p.committed + p.relaunched, p.jobs, "{p:?}");
            } else {
                assert_eq!((p.committed, p.relaunched), (0, 0), "{p:?}");
            }
        }
        // The power-loss tape must actually pull the plug somewhere.
        assert!(points.iter().any(|p| p.resets > 0), "{points:?}");
        // Final sessions are width-invariant, so the aggregate virtual
        // compute is too.
        for p in &points[1..] {
            assert!(
                (p.aggregate_ms - points[0].aggregate_ms).abs() < 1e-6,
                "{p:?}"
            );
        }
        // Adding virtual CPUs never makes the batch slower.
        for w in points.windows(2) {
            assert!(w[1].wall_ms <= w[0].wall_ms + 1e-9, "{w:?}");
        }
        // The event queue's schedule is structural: the whole ledger —
        // including the committed/relaunched crash split — reproduces
        // byte-identically even at 1024 virtual CPUs.
        assert_eq!(format!("{:?}", points[1]), format!("{:?}", points[2]));
    }

    #[test]
    fn fleet_sweep_accepts_everything_and_scales() {
        let points = fleet_sweep(&[1, 4], 8);
        assert_eq!(points.len(), 2);
        for p in &points {
            // An honest fleet is accepted wholesale.
            assert_eq!(p.accepted, p.requests, "{p:?}");
            assert_eq!(p.rejected, 0, "{p:?}");
            // One certificate walk per platform the dispatcher used;
            // every other quote rides a session ticket.
            assert_eq!(p.cert_walks + p.ticket_hits, p.requests as u64, "{p:?}");
            assert!(p.cert_walks <= p.platforms as u64, "{p:?}");
            assert!(p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms, "{p:?}");
            assert!(p.goodput_per_sec > 0.0, "{p:?}");
        }
        // A single platform forces exactly one certificate walk.
        assert_eq!(points[0].cert_walks, 1, "{points:?}");
        // More platforms never make the fleet slower overall.
        assert!(points[1].wall_ms <= points[0].wall_ms + 1e-9, "{points:?}");
    }

    #[test]
    fn churn_sweep_baseline_is_clean_and_chaos_is_contained() {
        let points = churn_sweep(&[0, 20_000], 12);
        assert_eq!(points.len(), 2);
        // Intensity 0 is the honest fleet: no retries, no adversaries,
        // nothing rejected, everything verified first try.
        let calm = &points[0];
        assert_eq!(calm.accepted, 12, "{calm:?}");
        assert_eq!(calm.rejected + calm.timed_out, 0, "{calm:?}");
        assert_eq!(calm.retries, 0, "{calm:?}");
        assert_eq!(calm.adversarial, 0, "{calm:?}");
        assert_eq!(calm.wire_rejection_rate, 0.0, "{calm:?}");
        // Under heavy churn the lifecycle works for its acceptances,
        // and every forged wire is turned away.
        let rough = &points[1];
        assert_eq!(
            rough.accepted + rough.rejected + rough.timed_out,
            12,
            "{rough:?}"
        );
        assert!(rough.retries > 0, "{rough:?}");
        // The honest fleet substantially survives: retries and the
        // TCB-push grace window keep churn from zeroing acceptance.
        assert!(rough.accepted >= 9, "{rough:?}");
        assert!(rough.degraded > 0, "{rough:?}");
        assert!(rough.adversarial > 0, "{rough:?}");
        assert_eq!(rough.adversarial_rejected, rough.adversarial, "{rough:?}");
        assert!(rough.wire_rejection_rate > 0.0, "{rough:?}");
        assert!(rough.p50_ms <= rough.p95_ms && rough.p95_ms <= rough.p99_ms);
    }

    #[test]
    fn fault_sweep_degrades_gracefully() {
        let points = fault_sweep(&[0, 2000, 12_000], 8, SimDuration::from_ms(2), 4);
        // Fault-free: everything quoted, no retries, no kills.
        assert_eq!(points[0].quoted, 8, "{points:?}");
        assert_eq!(points[0].killed, 0);
        assert_eq!(points[0].retries, 0);
        // Every batch completes: no session is unaccounted for.
        for p in &points {
            assert_eq!(p.quoted + p.killed, p.jobs, "{p:?}");
            assert!(p.goodput_per_sec >= 0.0);
        }
        // Faults cost retries and/or kills, and goodput never improves
        // as the rate climbs.
        let stressed = &points[2];
        assert!(stressed.retries > 0 || stressed.killed > 0, "{stressed:?}");
        assert!(
            stressed.goodput_per_sec <= points[0].goodput_per_sec,
            "{points:?}"
        );
    }
}
