//! Aggregate PAL throughput vs core count on the proposed hardware's
//! concurrent session engine.

use sea_bench::driver::{render_throughput, THROUGHPUT_CORES};
use sea_hw::SimDuration;

fn main() {
    print!(
        "{}",
        render_throughput(&THROUGHPUT_CORES, 16, SimDuration::from_ms(10))
    );
}
