//! The paper's PALs as measured bytecode: direct block chaining vs
//! block-cache lookup dispatch, plus the cross-executor quote pin.

use sea_bench::driver::render_vm;
use sea_bench::experiments::vm_quotes_identical_across_executors;

fn main() {
    print!("{}", render_vm(vm_quotes_identical_across_executors()));
}
