//! Durable-batch goodput vs virtual-CPU count on the discrete-event
//! executor — platforms far wider than any host's core count, modeled
//! on one OS thread.
//!
//! Usage: `scale [JOBS]`; `SEA_BENCH_SMOKE=1` shrinks the batch for CI.

use sea_bench::driver::{render_scale, SCALE_CPUS};
use sea_bench::timing::smoke_mode;
use sea_hw::SimDuration;

fn main() {
    let jobs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke_mode() { 256 } else { 2048 });
    print!(
        "{}",
        render_scale(&SCALE_CPUS, jobs, SimDuration::from_ms(10))
    );
}
