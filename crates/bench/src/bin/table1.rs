//! Regenerates Table 1: SKINIT/SENTER benchmarks vs PAL size.

use sea_bench::format::{ms, render_table};
use sea_bench::{table1, PAL_SIZES};

fn main() {
    println!("Table 1: SKINIT and SENTER benchmarks (ms)");
    println!("(paper values in parentheses)\n");
    let mut rows = Vec::new();
    for row in table1() {
        let mut cells = vec![
            if row.tpm_present { "Yes" } else { "No" }.to_string(),
            row.system.clone(),
        ];
        for (m, p) in row.measured_ms.iter().zip(&row.paper_ms) {
            cells.push(format!("{} ({})", ms(*m), ms(*p)));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = ["TPM", "System"]
        .into_iter()
        .map(String::from)
        .chain(PAL_SIZES.iter().map(|s| format!("{} KB", s / 1024)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print!("{}", render_table(&header_refs, &rows));
    println!(
        "\nKey findings reproduced: the TPM's LPC long wait cycles slow a 64 KB\n\
         SKINIT ~20x (177.5 ms vs 8.8 ms); Intel's fixed ~26 ms ACMod cost beats\n\
         AMD's TPM-rate hashing for PALs larger than ~10 KB."
    );
}
