//! Regenerates Table 1: SKINIT/SENTER benchmarks vs PAL size.

fn main() {
    print!("{}", sea_bench::driver::render_table1());
}
