//! Goodput vs injected power-loss rate on the crash-consistent durable
//! engine: sealed NVRAM journal checkpoints, platform reboots, and
//! journal-replay recovery.
//!
//! `SEA_BENCH_SMOKE=1` shrinks the batch for CI smoke runs.

use sea_bench::driver::{render_crash_sweep, CRASH_SWEEP_RATES, CRASH_SWEEP_WORKERS};
use sea_bench::timing::smoke_mode;
use sea_hw::SimDuration;

fn main() {
    let jobs = if smoke_mode() { 8 } else { 16 };
    print!(
        "{}",
        render_crash_sweep(
            &CRASH_SWEEP_RATES,
            jobs,
            SimDuration::from_ms(10),
            CRASH_SWEEP_WORKERS,
        )
    );
}
