//! Regenerates Table 2: VM entry/exit micro-costs.

fn main() {
    print!("{}", sea_bench::driver::render_table2());
}
