//! Regenerates Table 2: VM entry/exit micro-costs.

use sea_bench::format::{render_table, us};
use sea_bench::table2;

fn main() {
    println!("Table 2: VM Entry / VM Exit (µs), paper values in parentheses\n");
    let rows: Vec<Vec<String>> = table2()
        .into_iter()
        .map(|r| {
            vec![
                r.system,
                format!("{} ({})", us(r.vm_enter_us), us(r.paper_enter_us)),
                format!("{} ({})", us(r.vm_exit_us), us(r.paper_exit_us)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["System", "VM Enter", "VM Exit"], &rows)
    );
    println!(
        "\nThese sub-microsecond costs are what §5.7 argues a PAL context switch\n\
         should cost on the proposed hardware — versus 200-1000 ms today."
    );
}
