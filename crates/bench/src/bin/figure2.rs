//! Regenerates Figure 2: overhead breakdown of generic SEA sessions on
//! the HP dc5750 (Broadcom TPM), 100 runs.

use sea_bench::figure2;
use sea_bench::format::{ms, render_table};

const RUNS: usize = 100;

fn main() {
    println!("Figure 2: SEA session overheads on HP dc5750 (avg of {RUNS} runs, ms)\n");
    let bars = figure2(RUNS);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.label.clone(),
                ms(b.skinit_ms),
                ms(b.seal_ms),
                ms(b.unseal_ms),
                ms(b.quote_ms),
                ms(b.total_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["Session", "SKINIT", "Seal", "Unseal", "Quote", "Total"],
            &rows
        )
    );

    // A terminal rendition of the stacked bars.
    println!("\n  (1 char ≈ 20 ms)");
    for b in &bars {
        let seg = |v: f64, c: char| c.to_string().repeat((v / 20.0).round() as usize);
        println!(
            "  {:>8} |{}{}{}{}| {:.0} ms",
            b.label,
            seg(b.skinit_ms, 'S'),
            seg(b.seal_ms, 's'),
            seg(b.unseal_ms, 'U'),
            seg(b.quote_ms, 'Q'),
            b.total_ms
        );
    }
    println!("\n  S = SKINIT  s = Seal  U = Unseal  Q = Quote");
    println!(
        "\nPaper's reading reproduced: storing state for later use costs ~200 ms\n\
         (PAL Gen); accessing, modifying and re-storing it costs over a second\n\
         (PAL Use) — all of it dead time for the whole platform."
    );
}
