//! Regenerates Figure 2: overhead breakdown of generic SEA sessions on
//! the HP dc5750 (Broadcom TPM), 100 runs.

use sea_bench::driver::{render_figure2, FIGURE2_RUNS};

fn main() {
    print!("{}", render_figure2(FIGURE2_RUNS));
}
