//! Goodput vs injected hardware-fault rate on the concurrent session
//! engine, under the recovery layer's default retry policy.
//!
//! `SEA_BENCH_SMOKE=1` shrinks the batch for CI smoke runs.

use sea_bench::driver::{render_fault_sweep, FAULT_SWEEP_RATES, FAULT_SWEEP_WORKERS};
use sea_bench::timing::smoke_mode;
use sea_hw::SimDuration;

fn main() {
    let jobs = if smoke_mode() { 8 } else { 16 };
    print!(
        "{}",
        render_fault_sweep(
            &FAULT_SWEEP_RATES,
            jobs,
            SimDuration::from_ms(10),
            FAULT_SWEEP_WORKERS,
        )
    );
}
