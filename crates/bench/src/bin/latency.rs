//! Responsiveness under load (§4.2): PAL service response times when
//! requests arrive randomly, baseline vs proposed hardware.

use sea_bench::format::{ms, render_table};
use sea_bench::latency;
use sea_hw::SimDuration;

const N_CPUS: u16 = 4;
const WORK_MS: u64 = 5;

fn main() {
    let horizon = SimDuration::from_secs(120);
    println!(
        "Responsiveness: PAL service response time under Poisson load\n\
         ({N_CPUS} cores, {WORK_MS} ms of work per request, {horizon} horizon;\n\
         per-request service times measured with real sessions)\n"
    );
    let points = latency(N_CPUS, &[10_000, 5_000, 2_000, 1_500], WORK_MS, horizon);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1} s", p.interarrival_ms / 1000.0),
                ms(p.baseline_mean_ms),
                ms(p.baseline_p95_ms),
                ms(p.proposed_mean_ms),
                ms(p.proposed_p95_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "mean inter-arrival",
                "baseline mean (ms)",
                "baseline p95 (ms)",
                "proposed mean (ms)",
                "proposed p95 (ms)",
            ],
            &rows
        )
    );
    println!(
        "\nEvery baseline request waits out a >1.1 s whole-platform session —\n\
         and queues behind its predecessors as load rises — while the proposed\n\
         hardware answers in milliseconds. \"Responsiveness vanish[es] for over\n\
         a second\" (§4.2) is an understatement once there is a queue."
    );
}
