//! Ablation (§5.4): the sePCR bank size caps concurrent PALs.
//!
//! "The number of sePCRs present in a TPM establishes the limit for the
//! number of concurrently executing PALs, as measurements of additional
//! PALs do not have a secure place to reside."

use sea_bench::ablation_sepcr;
use sea_bench::format::render_table;

const ATTEMPTED: usize = 12;

fn main() {
    println!("Ablation: launching {ATTEMPTED} concurrent PALs vs sePCR bank size\n");
    let points = ablation_sepcr(ATTEMPTED, &[1, 2, 4, 8, 12, 16]);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.sepcrs.to_string(),
                p.launched.to_string(),
                p.rejected.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["sePCRs", "launched", "rejected (NoFreeSePcr)"], &rows)
    );
    println!(
        "\nEvery rejected launch failed cleanly per Figure 7: pages returned to\n\
         ALL, failure code to the OS. Sizing guidance follows directly: provision\n\
         at least as many sePCRs as the peak number of live PALs."
    );
}
