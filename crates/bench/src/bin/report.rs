//! One-shot reproduction report: runs every experiment and prints a
//! compact paper-vs-measured summary. The per-experiment binaries give
//! full detail; this is the "does the reproduction hold?" overview.

use sea_bench::{
    ablation_fast_tpm, ablation_hash_placement, ablation_sepcr, concurrency, figure2, figure3,
    impact, latency, table1, table2,
};
use sea_hw::SimDuration;
use sea_tpm::TpmOp;

fn check(label: &str, ok: bool, detail: String) -> bool {
    println!("  [{}] {label}: {detail}", if ok { "ok" } else { "!!" });
    ok
}

fn main() {
    println!("minimal-tcb reproduction report\n===============================\n");
    let mut all_ok = true;

    println!("Table 1 — late launch vs PAL size:");
    let t1 = table1();
    for row in &t1 {
        let m = row.measured_ms[5];
        let p = row.paper_ms[5];
        all_ok &= check(
            &row.system,
            (m - p).abs() / p < 0.02,
            format!("64 KB: {m:.2} ms (paper {p:.2} ms)"),
        );
    }

    println!("\nTable 2 — VM entry/exit:");
    for row in table2() {
        all_ok &= check(
            &row.system,
            (row.vm_enter_us - row.paper_enter_us).abs() < 0.02,
            format!(
                "enter {:.4} µs (paper {:.4}), exit {:.4} µs (paper {:.4})",
                row.vm_enter_us, row.paper_enter_us, row.vm_exit_us, row.paper_exit_us
            ),
        );
    }

    println!("\nFigure 2 — session overheads (HP dc5750):");
    let bars = figure2(20);
    all_ok &= check(
        "PAL Gen ≈ 200 ms",
        (bars[0].total_ms - 197.5).abs() < 15.0,
        format!("{:.2} ms", bars[0].total_ms),
    );
    all_ok &= check(
        "PAL Use > 1 s",
        bars[1].total_ms > 1000.0,
        format!("{:.2} ms", bars[1].total_ms),
    );

    println!("\nFigure 3 — TPM microbenchmarks:");
    let cells = figure3(20);
    let get = |tpm: &str, op: TpmOp| {
        cells
            .iter()
            .find(|c| c.tpm == tpm && c.op == op.label())
            .map(|c| c.mean_ms)
            .unwrap_or(f64::NAN)
    };
    all_ok &= check(
        "Broadcom fastest Seal",
        get("Broadcom", TpmOp::Seal) < get("Infineon", TpmOp::Seal),
        format!("{:.2} ms", get("Broadcom", TpmOp::Seal)),
    );
    all_ok &= check(
        "Infineon Unseal ≈ 391 ms",
        (get("Infineon", TpmOp::Unseal) - 390.98).abs() < 25.0,
        format!("{:.2} ms", get("Infineon", TpmOp::Unseal)),
    );

    println!("\n§5.7 — context-switch impact:");
    let r = impact();
    all_ok &= check(
        "≈ six orders of magnitude",
        r.improvement > 1e5 && r.improvement < 1e7,
        format!(
            "{:.2} ms + {:.2} ms → {:.2} µs ({:.1e}x)",
            r.baseline_switch_in_ms, r.baseline_switch_out_ms, r.proposed_pair_us, r.improvement
        ),
    );

    println!("\nConcurrency & responsiveness:");
    let conc = concurrency(4, &[4], 10, SimDuration::from_secs(20));
    all_ok &= check(
        "proposed hardware frees legacy CPU time",
        conc[0].enhanced_legacy_ms > conc[0].baseline_legacy_ms,
        format!(
            "+{:.0} ms recovered over 20 s",
            conc[0].enhanced_legacy_ms - conc[0].baseline_legacy_ms
        ),
    );
    let lat = latency(4, &[5000], 5, SimDuration::from_secs(60));
    all_ok &= check(
        "service latency collapses",
        lat[0].proposed_mean_ms < 50.0 && lat[0].baseline_mean_ms > 1000.0,
        format!(
            "{:.0} ms → {:.1} ms mean response",
            lat[0].baseline_mean_ms, lat[0].proposed_mean_ms
        ),
    );

    println!("\nAblations:");
    let fast = ablation_fast_tpm(&[1000.0]);
    all_ok &= check(
        "1000x TPM still ≫ proposed",
        fast[0].baseline_switch_us > fast[0].proposed_pair_us * 100.0,
        format!(
            "{:.0} µs vs {:.2} µs",
            fast[0].baseline_switch_us, fast[0].proposed_pair_us
        ),
    );
    let sizes: Vec<usize> = (0..=16).map(|k| k * 1024).collect();
    let hp = ablation_hash_placement(&sizes);
    let crossover = hp
        .windows(2)
        .find(|w| w[0].amd_ms <= w[0].intel_ms && w[1].amd_ms > w[1].intel_ms)
        .map(|w| w[1].size);
    all_ok &= check(
        "AMD/Intel crossover ≈ 10 KB",
        matches!(crossover, Some(c) if (8 * 1024..=12 * 1024).contains(&c)),
        format!("{:?} bytes", crossover),
    );
    let sepcr = ablation_sepcr(8, &[4]);
    all_ok &= check(
        "sePCR bank caps concurrency",
        sepcr[0].launched == 4 && sepcr[0].rejected == 4,
        format!(
            "{} launched / {} rejected with 4 sePCRs",
            sepcr[0].launched, sepcr[0].rejected
        ),
    );

    println!(
        "\n{}",
        if all_ok {
            "ALL REPRODUCTION CHECKS PASSED"
        } else {
            "SOME CHECKS FAILED — see above"
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
