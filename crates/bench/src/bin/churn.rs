//! Churn-tolerant fleet attestation: request fates, retry cost, and
//! adversarial rejection vs churn intensity — network fault injection,
//! mid-sweep reboots, certificate rotation + re-enrollment, a staged
//! TCB push, and replay/stale/bit-flip/forged-cert traffic, all from
//! one seed.
//!
//! Usage: `churn [REQUESTS]`; `SEA_BENCH_SMOKE=1` shrinks the batch for CI.

use sea_bench::driver::{render_churn, CHURN_RATES};
use sea_bench::timing::smoke_mode;

fn main() {
    let requests = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke_mode() { 16 } else { 128 });
    print!("{}", render_churn(&CHURN_RATES, requests));
}
