//! Fleet-scale attestation: goodput and latency percentiles vs fleet
//! size — sharded simulated platforms each quoting to one remote
//! verifier service (certificate walks, session tickets, nonce
//! freshness, TCB policy).
//!
//! Usage: `fleet [REQUESTS]`; `SEA_BENCH_SMOKE=1` shrinks the batch for CI.

use sea_bench::driver::{render_fleet, FLEET_PLATFORMS};
use sea_bench::timing::smoke_mode;

fn main() {
    let requests = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke_mode() { 32 } else { 512 });
    print!("{}", render_fleet(&FLEET_PLATFORMS, requests));
}
