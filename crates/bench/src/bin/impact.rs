//! Regenerates the §5.7 impact analysis: PAL context-switch cost on
//! today's hardware versus the paper's recommended hardware.

use sea_bench::impact;

fn main() {
    println!("§5.7 Expected impact: PAL context-switch cost\n");
    let r = impact();
    println!(
        "baseline (TPM-based):   switch-in  (SKINIT + Unseal) = {:9.2} ms",
        r.baseline_switch_in_ms
    );
    println!(
        "                        switch-out (Seal)            = {:9.2} ms",
        r.baseline_switch_out_ms
    );
    println!(
        "proposed (SLAUNCH):     suspend + resume pair        = {:9.2} µs",
        r.proposed_pair_us
    );
    println!(
        "\nimprovement: {:.1e}x (paper: \"six orders of magnitude\")",
        r.improvement
    );
    assert!(r.improvement > 1e5);
}
