//! Ablation (§5.7 alternative): instead of new CPU/MC/TPM mechanisms,
//! just make the TPM and its bus faster. How fast would it have to be?

use sea_bench::ablation_fast_tpm;
use sea_bench::format::render_table;

fn main() {
    println!("Ablation: speeding up the TPM/bus vs. the proposed hardware\n");
    let points = ablation_fast_tpm(&[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0]);
    let proposed = points[0].proposed_pair_us;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}x", p.speedup),
                format!("{:.2}", p.baseline_switch_us),
                format!("{:.1}x", p.baseline_switch_us / p.proposed_pair_us),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["TPM speed-up", "switch cost (µs)", "vs proposed"], &rows)
    );
    println!("\nproposed hardware switch pair: {proposed:.2} µs");
    println!(
        "\nReproduces §5.7's conclusion: reaching sub-microsecond switches by\n\
         accelerating the TPM \"would require significant hardware engineering\n\
         of the TPM, since many of its operations use a 2048-bit RSA keypair\" —\n\
         a ~100,000x speed-up of a low-cost chip, with the attendant power cost,\n\
         where the architectural fix needs none of it."
    );
}
