//! Platform throughput under PAL load: baseline whole-platform stalls
//! (§4.2) versus concurrent execution on the proposed hardware (§5,
//! Figure 4).

use sea_bench::concurrency;
use sea_bench::format::{ms, render_table};
use sea_hw::SimDuration;

const N_CPUS: u16 = 4;
const WORK_MS: u64 = 10;

fn main() {
    let horizon = SimDuration::from_secs(30);
    println!(
        "Concurrency: legacy CPU time left over a {horizon} horizon on {N_CPUS} cores\n\
         (each PAL: seal + unseal + {WORK_MS} ms of work)\n"
    );
    let points = concurrency(N_CPUS, &[1, 2, 4, 8, 16], WORK_MS, horizon);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n_pals.to_string(),
                ms(p.baseline_legacy_ms),
                ms(p.baseline_stalled_ms),
                ms(p.enhanced_legacy_ms),
                ms(p.enhanced_legacy_ms - p.baseline_legacy_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "PALs",
                "baseline legacy (ms)",
                "baseline stalled (ms)",
                "proposed legacy (ms)",
                "recovered (ms)",
            ],
            &rows
        )
    );
    println!(
        "\nOn baseline hardware every PAL session idles all other cores for its\n\
         full >1 s duration; the proposed hardware runs PALs beside legacy work."
    );
}
