//! Ablation (§4.3.2): where should the PAL be hashed at launch?
//!
//! AMD streams the whole SLB through the TPM; Intel pays a fixed ACMod
//! cost, then hashes on the main CPU. Footnote 4 observes AMD PALs can
//! be split into a tiny measured loader plus CPU-hashed remainder.

use sea_bench::ablation_hash_placement;
use sea_bench::format::{ms, render_table};

fn main() {
    println!("Ablation: launch-measurement strategy vs PAL size (ms)\n");
    let sizes: Vec<usize> = [0usize, 2, 4, 8, 10, 12, 16, 32, 64]
        .iter()
        .map(|k| k * 1024)
        .collect();
    let points = ablation_hash_placement(&sizes);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let winner = if p.amd_ms <= p.intel_ms {
                "AMD"
            } else {
                "Intel"
            };
            vec![
                format!("{} KB", p.size / 1024),
                ms(p.amd_ms),
                ms(p.intel_ms),
                ms(p.two_part_ms),
                winner.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "PAL size",
                "AMD (hash-on-TPM)",
                "Intel (ACMod+CPU)",
                "AMD two-part (fn.4)",
                "winner",
            ],
            &rows
        )
    );
    println!(
        "\nReproduces §4.3.2: \"for large PALs, Intel's implementation decision\n\
         pays off\" — the crossover sits near the ~10 KB ACMod size — while the\n\
         footnote-4 two-part trick gives AMD the best of both worlds."
    );
}
