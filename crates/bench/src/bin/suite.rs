//! Runs the whole paper-artifact suite — Table 1, Table 2, Figure 2,
//! Figure 3 and the concurrent-engine sweeps — either serially or
//! across a worker pool, with byte-identical output.
//!
//! Usage:
//!
//! ```text
//! suite [WORKERS] [--json FILE]   # run; omit WORKERS or pass 1 for serial
//! suite --validate FILE           # check an emitted BENCH_suite.json
//! ```
//!
//! `--json FILE` additionally writes the machine-readable
//! `BENCH_suite.json` artifact (schema in `EXPERIMENTS.md`);
//! `SEA_BENCH_SMOKE=1` shrinks the per-artifact workload for CI.

use sea_bench::driver::{
    render_suite, run_suite_parallel, run_suite_serial, suite_json, validate_suite_json,
    SuiteConfig,
};

fn fail(msg: &str) -> ! {
    eprintln!("suite: {msg}");
    std::process::exit(1);
}

fn validate(path: &str) -> ! {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    match validate_suite_json(&text) {
        Ok(()) => {
            println!("suite: {path} is a valid BENCH_suite.json");
            std::process::exit(0);
        }
        Err(e) => fail(&format!("{path} is invalid: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers: usize = 1;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--validate" => {
                let path = args
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--validate needs a FILE"));
                validate(path);
            }
            "--json" => {
                json_path = Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| fail("--json needs a FILE"))
                        .clone(),
                );
                i += 2;
            }
            arg => {
                workers = arg
                    .parse()
                    .unwrap_or_else(|_| fail("WORKERS must be a number"));
                i += 1;
            }
        }
    }

    let smoke = std::env::var_os("SEA_BENCH_SMOKE").is_some();
    let cfg = if smoke {
        SuiteConfig::smoke()
    } else {
        SuiteConfig::default()
    };
    let artifacts = if workers <= 1 {
        run_suite_serial(&cfg)
    } else {
        run_suite_parallel(&cfg, workers)
    };
    println!(
        "minimal-tcb experiment suite ({} artifact{}, {} worker{})\n",
        artifacts.len(),
        if artifacts.len() == 1 { "" } else { "s" },
        workers.max(1),
        if workers.max(1) == 1 { "" } else { "s" },
    );
    print!("{}", render_suite(&artifacts));
    if let Some(path) = json_path {
        let text = suite_json(&artifacts, smoke);
        std::fs::write(&path, &text).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("suite: wrote {path} ({} bytes)", text.len());
    }
}
