//! Runs the whole paper-artifact suite — Table 1, Table 2, Figure 2,
//! Figure 3 and the concurrent-engine throughput sweep — either serially
//! or across a worker pool, with byte-identical output.
//!
//! Usage: `suite [WORKERS]` — omit or pass `1` for serial; `SEA_BENCH_SMOKE=1`
//! shrinks the per-artifact workload for CI.

use sea_bench::driver::{render_suite, run_suite_parallel, run_suite_serial, SuiteConfig};

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("WORKERS must be a number"))
        .unwrap_or(1);
    let cfg = if std::env::var_os("SEA_BENCH_SMOKE").is_some() {
        SuiteConfig::smoke()
    } else {
        SuiteConfig::default()
    };
    let artifacts = if workers <= 1 {
        run_suite_serial(&cfg)
    } else {
        run_suite_parallel(&cfg, workers)
    };
    println!(
        "minimal-tcb experiment suite ({} artifact{}, {} worker{})\n",
        artifacts.len(),
        if artifacts.len() == 1 { "" } else { "s" },
        workers.max(1),
        if workers.max(1) == 1 { "" } else { "s" },
    );
    print!("{}", render_suite(&artifacts));
}
