//! Regenerates Figure 3: TPM microbenchmarks across four v1.2 chips,
//! 20 trials each, mean ± standard deviation.

use sea_bench::format::render_table;
use sea_bench::{figure3, figure3_tpms};
use sea_tpm::TpmOp;

const TRIALS: usize = 20;

fn main() {
    println!("Figure 3: TPM benchmarks, mean ± stddev over {TRIALS} trials (ms)\n");
    let cells = figure3(TRIALS);
    let tpms: Vec<&str> = figure3_tpms().iter().map(|(_, l)| *l).collect();

    let mut rows = Vec::new();
    for op in TpmOp::FIGURE3_OPS {
        let mut row = vec![op.label().to_string()];
        for tpm in &tpms {
            let c = cells
                .iter()
                .find(|c| c.tpm == *tpm && c.op == op.label())
                .expect("cell exists");
            row.push(format!("{:7.2} ±{:5.2}", c.mean_ms, c.stddev_ms));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("TPM Operation")
        .chain(tpms.iter().copied())
        .collect();
    print!("{}", render_table(&headers, &rows));
    println!(
        "\nOrdering constraints from the paper, all reproduced:\n\
         - Broadcom: fastest Seal (~20 ms) but slowest Quote and Unseal;\n\
         - Infineon: best average, Unseal ≈ 391 ms;\n\
         - Broadcom→Infineon saves ~1132 ms on Quote+Unseal, costs +213 ms Seal;\n\
         - best-per-op composition still leaves PAL Use ≈ 579 ms (§4.3.3)."
    );
}
