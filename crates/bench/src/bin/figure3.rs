//! Regenerates Figure 3: TPM microbenchmarks across four v1.2 chips,
//! 20 trials each, mean ± standard deviation.

use sea_bench::driver::{render_figure3, FIGURE3_TRIALS};

fn main() {
    print!("{}", render_figure3(FIGURE3_TRIALS));
}
