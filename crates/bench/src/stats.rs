//! Small summary-statistics helpers for the experiment harness.
//!
//! Derived *rates* are not computed here: [`rate_per_sec`] and
//! [`speedup`] are re-exports of the engine's own canonical math, so a
//! number in bench JSON and the same number on a [`sea_core::BatchOutcome`]
//! come from one implementation and can never disagree.

pub use sea_core::engine::{rate_per_sec, speedup};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (the paper reports stddev over its
    /// 20 trials, not a sample-corrected estimate).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Computes summary statistics.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "summary of an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
        }
        Summary {
            mean,
            stddev: var.sqrt(),
            min,
            max,
            n,
        }
    }

    /// Relative standard deviation (stddev / mean), `0` for a zero mean.
    pub fn rel_stddev(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Nearest-rank percentile over an **already sorted** sample: `p` in
/// `[0, 1]` selects `sorted[round((n - 1) · p)]`. This is the one
/// percentile definition the whole workspace uses (wall-clock harness
/// and virtual-time aggregation alike), consolidated here so the two
/// can never drift.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn percentile_sorted<T: Copy>(sorted: &[T], p: f64) -> T {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let n = sorted.len();
    let idx = ((n - 1) as f64 * p).round() as usize;
    sorted[idx.min(n - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.n, 3);
        assert_eq!(s.rel_stddev(), 0.0);
    }

    #[test]
    fn known_values() {
        // Population stddev of [2, 4, 4, 4, 5, 5, 7, 9] is exactly 2.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.rel_stddev() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_mean_rel_stddev() {
        let s = Summary::of(&[0.0, 0.0]);
        assert_eq!(s.rel_stddev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [10, 20, 30, 40, 50];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10);
        assert_eq!(percentile_sorted(&sorted, 0.5), 30);
        assert_eq!(percentile_sorted(&sorted, 0.99), 50);
        assert_eq!(percentile_sorted(&sorted, 1.0), 50);
        assert_eq!(percentile_sorted(&[7.5], 0.5), 7.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        let _: f64 = percentile_sorted(&[], 0.5);
    }
}
