//! The experiment suite driver: every paper artifact rendered to a
//! string, runnable serially or across a worker pool with
//! **byte-identical** output either way.
//!
//! Each experiment is self-contained — it builds its own platform and
//! TPMs from fixed seeds — so the unit of parallelism is the whole
//! artifact. Jobs are assigned statically (job *i* → worker *i* mod
//! `workers`) and collected in job-index order, which makes
//! [`run_suite_parallel`] byte-identical to [`run_suite_serial`] at any
//! worker count: no shared mutable state crosses a thread boundary, so
//! the interleaving cannot leak into the rendered text.
//!
//! The `suite` binary drives this module; `tests/parallel_determinism.rs`
//! asserts the byte-identity contract.

use sea_hw::SimDuration;
use sea_tpm::TpmOp;

use crate::experiments::{
    crash_sweep, fault_sweep, figure2, figure3, figure3_tpms, table1, table2, throughput, PAL_SIZES,
};
use crate::format::{ms, render_table, us};

/// Figure 2 session runs used by the full-size suite (the binary's 100).
pub const FIGURE2_RUNS: usize = 100;
/// Figure 3 trials used by the full-size suite (the paper's 20).
pub const FIGURE3_TRIALS: usize = 20;
/// Worker counts the throughput artifact sweeps.
pub const THROUGHPUT_CORES: [usize; 4] = [1, 2, 4, 8];
/// TPM-transport fault rates the fault-sweep artifact sweeps
/// (per-roll probability numerators over [`sea_hw::RATE_DENOM`]).
pub const FAULT_SWEEP_RATES: [u32; 5] = [0, 1000, 4000, 8000, 16_000];
/// Worker threads the fault-sweep artifact uses.
pub const FAULT_SWEEP_WORKERS: usize = 4;
/// Power-loss rates the crash-sweep artifact sweeps (per-commit
/// probability numerators over [`sea_hw::RATE_DENOM`]).
pub const CRASH_SWEEP_RATES: [u32; 4] = [0, 4000, 16_000, 32_000];
/// Worker threads the crash-sweep artifact uses. One worker keeps the
/// rendered table byte-identical run to run: with more, which sessions
/// had already committed when the plug is pulled depends on host thread
/// interleaving, so the committed/relaunched split (never the final
/// results) could vary between runs.
pub const CRASH_SWEEP_WORKERS: usize = 1;

/// How much work the suite gives each artifact; shrink it for tests.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Figure 2 session runs to average over.
    pub figure2_runs: usize,
    /// Figure 3 trials per TPM × operation cell.
    pub figure3_trials: usize,
    /// Sessions per batch in the throughput sweep.
    pub throughput_jobs: usize,
    /// Sessions per batch in the fault sweep.
    pub fault_jobs: usize,
    /// Sessions per batch in the crash sweep.
    pub crash_jobs: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            figure2_runs: FIGURE2_RUNS,
            figure3_trials: FIGURE3_TRIALS,
            throughput_jobs: 16,
            fault_jobs: 16,
            crash_jobs: 16,
        }
    }
}

impl SuiteConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        SuiteConfig {
            figure2_runs: 2,
            figure3_trials: 3,
            throughput_jobs: 8,
            fault_jobs: 8,
            crash_jobs: 8,
        }
    }
}

/// One rendered paper artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Artifact name ("Table 1", "Figure 2", ...).
    pub name: String,
    /// The rendered plain-text table/figure.
    pub rendered: String,
}

type Job = (&'static str, Box<dyn FnOnce() -> String + Send>);

fn suite_jobs(cfg: &SuiteConfig) -> Vec<Job> {
    let SuiteConfig {
        figure2_runs,
        figure3_trials,
        throughput_jobs,
        fault_jobs,
        crash_jobs,
    } = *cfg;
    vec![
        ("Table 1", Box::new(render_table1)),
        ("Table 2", Box::new(render_table2)),
        ("Figure 2", Box::new(move || render_figure2(figure2_runs))),
        ("Figure 3", Box::new(move || render_figure3(figure3_trials))),
        (
            "Throughput",
            Box::new(move || {
                render_throughput(&THROUGHPUT_CORES, throughput_jobs, SimDuration::from_ms(10))
            }),
        ),
        (
            "Fault sweep",
            Box::new(move || {
                render_fault_sweep(
                    &FAULT_SWEEP_RATES,
                    fault_jobs,
                    SimDuration::from_ms(10),
                    FAULT_SWEEP_WORKERS,
                )
            }),
        ),
        (
            "Crash sweep",
            Box::new(move || {
                render_crash_sweep(
                    &CRASH_SWEEP_RATES,
                    crash_jobs,
                    SimDuration::from_ms(10),
                    CRASH_SWEEP_WORKERS,
                )
            }),
        ),
    ]
}

/// Runs every suite artifact in order on the calling thread.
pub fn run_suite_serial(cfg: &SuiteConfig) -> Vec<Artifact> {
    suite_jobs(cfg)
        .into_iter()
        .map(|(name, f)| Artifact {
            name: name.to_string(),
            rendered: f(),
        })
        .collect()
}

/// Runs the same artifacts across `workers` threads. Output is
/// byte-identical to [`run_suite_serial`]: assignment is static (job *i*
/// → worker *i* mod `workers`) and results are collected by job index.
///
/// # Panics
///
/// Panics if a worker thread panics (an experiment itself failed).
pub fn run_suite_parallel(cfg: &SuiteConfig, workers: usize) -> Vec<Artifact> {
    let jobs = suite_jobs(cfg);
    let n = jobs.len();
    let workers = workers.clamp(1, n);
    let mut per_worker: Vec<Vec<(usize, Job)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        per_worker[i % workers].push((i, job));
    }
    let mut slots: Vec<Option<Artifact>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|assigned| {
                s.spawn(move || {
                    assigned
                        .into_iter()
                        .map(|(i, (name, f))| {
                            (
                                i,
                                Artifact {
                                    name: name.to_string(),
                                    rendered: f(),
                                },
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, artifact) in h.join().expect("suite worker panicked") {
                slots[i] = Some(artifact);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

/// Joins rendered artifacts into the one-document suite report.
pub fn render_suite(artifacts: &[Artifact]) -> String {
    let mut out = String::new();
    for (i, a) in artifacts.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&"=".repeat(72));
        out.push('\n');
        out.push_str(&a.rendered);
    }
    out
}

// ---------------------------------------------------------------------
// Per-artifact renderers (shared by the suite and the one-shot binaries)
// ---------------------------------------------------------------------

/// Renders Table 1 exactly as the `table1` binary prints it.
pub fn render_table1() -> String {
    let mut out = String::from(
        "Table 1: SKINIT and SENTER benchmarks (ms)\n(paper values in parentheses)\n\n",
    );
    let mut rows = Vec::new();
    for row in table1() {
        let mut cells = vec![
            if row.tpm_present { "Yes" } else { "No" }.to_string(),
            row.system.clone(),
        ];
        for (m, p) in row.measured_ms.iter().zip(&row.paper_ms) {
            cells.push(format!("{} ({})", ms(*m), ms(*p)));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = ["TPM", "System"]
        .into_iter()
        .map(String::from)
        .chain(PAL_SIZES.iter().map(|s| format!("{} KB", s / 1024)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&render_table(&header_refs, &rows));
    out.push_str(
        "\nKey findings reproduced: the TPM's LPC long wait cycles slow a 64 KB\n\
         SKINIT ~20x (177.5 ms vs 8.8 ms); Intel's fixed ~26 ms ACMod cost beats\n\
         AMD's TPM-rate hashing for PALs larger than ~10 KB.\n",
    );
    out
}

/// Renders Table 2 exactly as the `table2` binary prints it.
pub fn render_table2() -> String {
    let mut out = String::from("Table 2: VM Entry / VM Exit (µs), paper values in parentheses\n\n");
    let rows: Vec<Vec<String>> = table2()
        .into_iter()
        .map(|r| {
            vec![
                r.system,
                format!("{} ({})", us(r.vm_enter_us), us(r.paper_enter_us)),
                format!("{} ({})", us(r.vm_exit_us), us(r.paper_exit_us)),
            ]
        })
        .collect();
    out.push_str(&render_table(&["System", "VM Enter", "VM Exit"], &rows));
    out.push_str(
        "\nThese sub-microsecond costs are what §5.7 argues a PAL context switch\n\
         should cost on the proposed hardware — versus 200-1000 ms today.\n",
    );
    out
}

/// Renders Figure 2 (table + terminal bar chart) as the `figure2`
/// binary prints it.
pub fn render_figure2(runs: usize) -> String {
    let mut out =
        format!("Figure 2: SEA session overheads on HP dc5750 (avg of {runs} runs, ms)\n\n");
    let bars = figure2(runs);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.label.clone(),
                ms(b.skinit_ms),
                ms(b.seal_ms),
                ms(b.unseal_ms),
                ms(b.quote_ms),
                ms(b.total_ms),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["Session", "SKINIT", "Seal", "Unseal", "Quote", "Total"],
        &rows,
    ));

    // A terminal rendition of the stacked bars.
    out.push_str("\n  (1 char ≈ 20 ms)\n");
    for b in &bars {
        let seg = |v: f64, c: char| c.to_string().repeat((v / 20.0).round() as usize);
        out.push_str(&format!(
            "  {:>8} |{}{}{}{}| {:.0} ms\n",
            b.label,
            seg(b.skinit_ms, 'S'),
            seg(b.seal_ms, 's'),
            seg(b.unseal_ms, 'U'),
            seg(b.quote_ms, 'Q'),
            b.total_ms
        ));
    }
    out.push_str("\n  S = SKINIT  s = Seal  U = Unseal  Q = Quote\n");
    out.push_str(
        "\nPaper's reading reproduced: storing state for later use costs ~200 ms\n\
         (PAL Gen); accessing, modifying and re-storing it costs over a second\n\
         (PAL Use) — all of it dead time for the whole platform.\n",
    );
    out
}

/// Renders Figure 3 exactly as the `figure3` binary prints it.
pub fn render_figure3(trials: usize) -> String {
    let mut out = format!("Figure 3: TPM benchmarks, mean ± stddev over {trials} trials (ms)\n\n");
    let cells = figure3(trials);
    let tpms: Vec<&str> = figure3_tpms().iter().map(|(_, l)| *l).collect();

    let mut rows = Vec::new();
    for op in TpmOp::FIGURE3_OPS {
        let mut row = vec![op.label().to_string()];
        for tpm in &tpms {
            let c = cells
                .iter()
                .find(|c| c.tpm == *tpm && c.op == op.label())
                .expect("cell exists");
            row.push(format!("{:7.2} ±{:5.2}", c.mean_ms, c.stddev_ms));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("TPM Operation")
        .chain(tpms.iter().copied())
        .collect();
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\nOrdering constraints from the paper, all reproduced:\n\
         - Broadcom: fastest Seal (~20 ms) but slowest Quote and Unseal;\n\
         - Infineon: best average, Unseal ≈ 391 ms;\n\
         - Broadcom→Infineon saves ~1132 ms on Quote+Unseal, costs +213 ms Seal;\n\
         - best-per-op composition still leaves PAL Use ≈ 579 ms (§4.3.3).\n",
    );
    out
}

/// Renders the concurrent-engine throughput sweep: aggregate PAL
/// throughput vs core count on the proposed hardware.
pub fn render_throughput(worker_counts: &[usize], jobs: usize, work: SimDuration) -> String {
    let points = throughput(worker_counts, jobs, work);
    let mut out = format!(
        "Throughput: {jobs} PAL sessions ({work} of work each) on the proposed\n\
         hardware's concurrent engine, virtual time, by core count\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                ms(p.wall_ms),
                ms(p.aggregate_ms),
                format!("{:.2}", p.per_sec),
                format!("{:.2}x", p.speedup),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "cores",
            "wall (ms)",
            "aggregate (ms)",
            "sessions/s",
            "speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nEach core runs its own PAL beside the others (per-PAL sePCRs, §5.4):\n\
         aggregate virtual work is constant while wall time divides by the core\n\
         count. Baseline hardware would serialize the whole batch (§4.2).\n",
    );
    out
}

/// Renders the fault sweep: goodput vs injected fault rate under the
/// recovery layer's default retry policy.
pub fn render_fault_sweep(rates: &[u32], jobs: usize, work: SimDuration, workers: usize) -> String {
    let points = fault_sweep(rates, jobs, work, workers);
    let mut out = format!(
        "Fault sweep: {jobs} PAL sessions ({work} of work each) on {workers} cores\n\
         under injected hardware faults, default retry policy, virtual time\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}%", p.rate as f64 * 100.0 / sea_hw::RATE_DENOM as f64),
                p.quoted.to_string(),
                p.killed.to_string(),
                p.retries.to_string(),
                ms(p.wall_ms),
                format!("{:.2}", p.goodput_per_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "fault rate",
            "quoted",
            "killed",
            "retries",
            "wall (ms)",
            "goodput/s",
        ],
        &rows,
    ));
    out.push_str(
        "\nTransient faults are absorbed by bounded retries (wall time grows,\n\
         goodput sags); the fatal fraction SKILLs its session (§5.5) without\n\
         taking the batch down. Every sweep point replays the same seeded\n\
         fault tape, so this table is byte-identical run to run.\n",
    );
    out
}

/// Renders the crash sweep: goodput vs injected power-loss rate under
/// the crash-consistent durable engine.
pub fn render_crash_sweep(rates: &[u32], jobs: usize, work: SimDuration, workers: usize) -> String {
    let points = crash_sweep(rates, jobs, work, workers);
    let mut out = format!(
        "Crash sweep: {jobs} PAL sessions ({work} of work each) on {workers} cores\n\
         under injected power losses, journaled NVRAM checkpoints, virtual time\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}%", p.rate as f64 * 100.0 / sea_hw::RATE_DENOM as f64),
                p.resets.to_string(),
                p.committed.to_string(),
                p.relaunched.to_string(),
                p.quoted.to_string(),
                ms(p.recovery_ms),
                ms(p.journal_ms),
                ms(p.wall_ms),
                format!("{:.2}", p.goodput_per_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "loss rate",
            "resets",
            "committed",
            "relaunched",
            "quoted",
            "recovery (ms)",
            "journal (ms)",
            "wall (ms)",
            "goodput/s",
        ],
        &rows,
    ));
    out.push_str(
        "\nEvery terminal session commits to a sealed journal in TPM NVRAM; a\n\
         power loss reboots the platform (static PCRs to zero, dynamic to -1,\n\
         every sePCR freed) and the batch resumes from the journal — committed\n\
         results survive, torn sessions relaunch. Same seeded loss tape every\n\
         run, so this table is byte-identical run to run.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_every_artifact_in_order() {
        let arts = run_suite_serial(&SuiteConfig::smoke());
        let names: Vec<&str> = arts.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Table 1",
                "Table 2",
                "Figure 2",
                "Figure 3",
                "Throughput",
                "Fault sweep",
                "Crash sweep"
            ]
        );
        for a in &arts {
            assert!(!a.rendered.is_empty(), "{} rendered nothing", a.name);
        }
    }

    #[test]
    fn parallel_suite_is_byte_identical_to_serial() {
        let cfg = SuiteConfig::smoke();
        let serial = run_suite_serial(&cfg);
        for workers in [2, 4, 16] {
            let par = run_suite_parallel(&cfg, workers);
            assert_eq!(serial, par, "diverged at {workers} workers");
        }
        assert_eq!(
            render_suite(&serial),
            render_suite(&run_suite_parallel(&cfg, 3))
        );
    }

    #[test]
    fn renderers_match_experiment_content() {
        let t1 = render_table1();
        assert!(t1.contains("64 KB") && t1.contains("177.52"), "{t1}");
        let tp = render_throughput(&[1, 2], 4, SimDuration::from_ms(5));
        assert!(tp.contains("2.00x"), "{tp}");
        let fs = render_fault_sweep(&[0, 8000], 4, SimDuration::from_ms(2), 2);
        assert!(fs.contains("0.00%") && fs.contains("12.21%"), "{fs}");
        assert!(fs.contains("goodput/s"), "{fs}");
        let cs = render_crash_sweep(&[0], 4, SimDuration::from_ms(2), 2);
        assert!(
            cs.contains("recovery (ms)") && cs.contains("journal (ms)"),
            "{cs}"
        );
    }
}
