//! The experiment suite driver: every paper artifact rendered to a
//! string **and** aggregated into structured metrics, runnable serially
//! or across a worker pool with **byte-identical** output either way.
//!
//! Each experiment is self-contained — it builds its own platform and
//! TPMs from fixed seeds, plus its own recording observability sink —
//! so the unit of parallelism is the whole artifact. Jobs are assigned
//! statically (job *i* → worker *i* mod `workers`) and collected in
//! job-index order, which makes [`run_suite_parallel`] byte-identical
//! to [`run_suite_serial`] at any worker count: no shared mutable state
//! crosses a thread boundary, so the interleaving cannot leak into the
//! rendered text or the metrics.
//!
//! Alongside the plain-text report, [`suite_json`] serializes the
//! structured rows as the versioned `BENCH_suite.json` artifact
//! (schema: [`SUITE_SCHEMA_VERSION`]), which [`validate_suite_json`]
//! checks — CI fails if the file is missing, unparseable, or its
//! per-layer attribution stops summing to each experiment's total.
//!
//! The `suite` binary drives this module; `tests/parallel_determinism.rs`
//! and `tests/observability.rs` assert the byte-identity contract.

use sea_hw::{Layer, Obs, SimDuration};
use sea_tpm::TpmOp;

use crate::experiments::{
    churn_sweep_with_obs, crash_sweep_with_obs, fault_sweep_with_obs, figure2_with_obs,
    figure3_tpms, figure3_with_obs, fleet_sweep_with_obs, scale_with_obs, table1_with_obs, table2,
    throughput_with_obs, vm_dispatch_with_obs, vm_quotes_identical_across_executors, ChurnPoint,
    CrashSweepPoint, FaultSweepPoint, Figure2Bar, Figure3Cell, FleetPoint, ScalePoint, Table1Row,
    ThroughputPoint, VmPoint, CHURN_PLATFORMS, CHURN_SEED, CRASH_SWEEP_SEED, FAULT_SWEEP_SEED,
    FLEET_SEED, FLEET_SHARDS, PAL_SIZES, SCALE_SEED,
};
use crate::format::{ms, render_table, us};
use crate::json::Json;
use crate::metrics::ExperimentMetrics;

/// Figure 2 session runs used by the full-size suite (the binary's 100).
pub const FIGURE2_RUNS: usize = 100;
/// Figure 3 trials used by the full-size suite (the paper's 20).
pub const FIGURE3_TRIALS: usize = 20;
/// Worker counts the throughput artifact sweeps.
pub const THROUGHPUT_CORES: [usize; 4] = [1, 2, 4, 8];
/// TPM-transport fault rates the fault-sweep artifact sweeps
/// (per-roll probability numerators over [`sea_hw::RATE_DENOM`]).
pub const FAULT_SWEEP_RATES: [u32; 5] = [0, 1000, 4000, 8000, 16_000];
/// Worker threads the fault-sweep artifact uses.
pub const FAULT_SWEEP_WORKERS: usize = 4;
/// Power-loss rates the crash-sweep artifact sweeps (per-commit
/// probability numerators over [`sea_hw::RATE_DENOM`]).
pub const CRASH_SWEEP_RATES: [u32; 4] = [0, 4000, 16_000, 32_000];
/// Worker threads the crash-sweep artifact uses. One worker keeps the
/// rendered table byte-identical run to run: with more, which sessions
/// had already committed when the plug is pulled depends on host thread
/// interleaving, so the committed/relaunched split (never the final
/// results) could vary between runs.
pub const CRASH_SWEEP_WORKERS: usize = 1;
/// Virtual-CPU counts the scale artifact sweeps on the discrete-event
/// executor — the largest far past any host's physical core count.
pub const SCALE_CPUS: [usize; 5] = [4, 16, 64, 256, 1024];
/// Fleet sizes (platform counts) the fleet artifact sweeps.
pub const FLEET_PLATFORMS: [usize; 4] = [1, 4, 16, 64];
/// Churn intensities the churn artifact sweeps (parts per
/// [`sea_hw::RATE_DENOM`]; every fault family scales with the
/// intensity — see [`crate::experiments::churn_plan`]).
pub const CHURN_RATES: [u32; 4] = [0, 2000, 8000, 20_000];

/// Schema version of the `BENCH_suite.json` artifact. Bump on any
/// field rename/removal; additions are backward-compatible.
pub const SUITE_SCHEMA_VERSION: u64 = 1;

/// How much work the suite gives each artifact; shrink it for tests.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Figure 2 session runs to average over.
    pub figure2_runs: usize,
    /// Figure 3 trials per TPM × operation cell.
    pub figure3_trials: usize,
    /// Sessions per batch in the throughput sweep.
    pub throughput_jobs: usize,
    /// Sessions per batch in the fault sweep.
    pub fault_jobs: usize,
    /// Sessions per batch in the crash sweep.
    pub crash_jobs: usize,
    /// Sessions per batch in the virtual-CPU scale sweep.
    pub scale_jobs: usize,
    /// Attestation requests per fleet in the fleet sweep.
    pub fleet_requests: usize,
    /// Attestation requests per fleet in the churn sweep.
    pub churn_requests: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            figure2_runs: FIGURE2_RUNS,
            figure3_trials: FIGURE3_TRIALS,
            throughput_jobs: 16,
            fault_jobs: 16,
            crash_jobs: 16,
            scale_jobs: 2048,
            fleet_requests: 512,
            churn_requests: 128,
        }
    }
}

impl SuiteConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        SuiteConfig {
            figure2_runs: 2,
            figure3_trials: 3,
            throughput_jobs: 8,
            fault_jobs: 8,
            crash_jobs: 8,
            scale_jobs: 256,
            fleet_requests: 32,
            churn_requests: 16,
        }
    }
}

/// One paper artifact: the rendered plain-text table/figure plus the
/// structured metrics aggregated from its instrumented run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Artifact name ("Table 1", "Figure 2", ...).
    pub name: String,
    /// The rendered plain-text table/figure.
    pub rendered: String,
    /// Per-layer latency attribution, counters, and experiment inputs.
    pub metrics: ExperimentMetrics,
}

type Job = (
    &'static str,
    Box<dyn FnOnce() -> (String, ExperimentMetrics) + Send>,
);

/// Runs one experiment under a fresh recording sink and aggregates the
/// snapshot, tagging the metrics with the experiment's integer inputs.
fn observed<T>(
    run: impl FnOnce(Obs) -> T,
    render: impl FnOnce(&T) -> String,
    scalars: &[(&'static str, u64)],
) -> (String, ExperimentMetrics) {
    let (obs, sink) = Obs::recording();
    let data = run(obs);
    let mut metrics =
        ExperimentMetrics::from_snapshot(&sink.snapshot()).with_locks(&sink.lock_stats());
    for &(name, value) in scalars {
        metrics = metrics.with_scalar(name, value);
    }
    (render(&data), metrics)
}

fn suite_jobs(cfg: &SuiteConfig) -> Vec<Job> {
    let SuiteConfig {
        figure2_runs,
        figure3_trials,
        throughput_jobs,
        fault_jobs,
        crash_jobs,
        scale_jobs,
        fleet_requests,
        churn_requests,
    } = *cfg;
    vec![
        (
            "Table 1",
            Box::new(|| observed(table1_with_obs, |rows| render_table1_rows(rows), &[])),
        ),
        (
            "Table 2",
            // Table 2 reads the virtualization cost model without
            // executing anything, so its attribution is legitimately
            // all-zero.
            Box::new(|| (render_table2(), ExperimentMetrics::default())),
        ),
        (
            "Figure 2",
            Box::new(move || {
                observed(
                    |obs| figure2_with_obs(figure2_runs, obs),
                    |bars| render_figure2_bars(bars, figure2_runs),
                    &[("runs", figure2_runs as u64)],
                )
            }),
        ),
        (
            "Figure 3",
            Box::new(move || {
                observed(
                    |obs| figure3_with_obs(figure3_trials, obs),
                    |cells| render_figure3_cells(cells, figure3_trials),
                    &[("trials", figure3_trials as u64)],
                )
            }),
        ),
        (
            "Throughput",
            Box::new(move || {
                let work = SimDuration::from_ms(10);
                observed(
                    |obs| throughput_with_obs(&THROUGHPUT_CORES, throughput_jobs, work, obs),
                    |points| render_throughput_points(points, throughput_jobs, work),
                    &[("jobs", throughput_jobs as u64), ("work_ns", work.as_ns())],
                )
            }),
        ),
        (
            "Fault sweep",
            Box::new(move || {
                let work = SimDuration::from_ms(10);
                observed(
                    |obs| {
                        fault_sweep_with_obs(
                            &FAULT_SWEEP_RATES,
                            fault_jobs,
                            work,
                            FAULT_SWEEP_WORKERS,
                            obs,
                        )
                    },
                    |points| {
                        render_fault_sweep_points(points, fault_jobs, work, FAULT_SWEEP_WORKERS)
                    },
                    &[
                        ("jobs", fault_jobs as u64),
                        ("workers", FAULT_SWEEP_WORKERS as u64),
                        ("seed", FAULT_SWEEP_SEED),
                    ],
                )
            }),
        ),
        (
            "Crash sweep",
            Box::new(move || {
                let work = SimDuration::from_ms(10);
                observed(
                    |obs| {
                        crash_sweep_with_obs(
                            &CRASH_SWEEP_RATES,
                            crash_jobs,
                            work,
                            CRASH_SWEEP_WORKERS,
                            obs,
                        )
                    },
                    |points| {
                        render_crash_sweep_points(points, crash_jobs, work, CRASH_SWEEP_WORKERS)
                    },
                    &[
                        ("jobs", crash_jobs as u64),
                        ("workers", CRASH_SWEEP_WORKERS as u64),
                        ("seed", CRASH_SWEEP_SEED),
                    ],
                )
            }),
        ),
        (
            "Scale",
            Box::new(move || {
                let work = SimDuration::from_ms(10);
                observed(
                    |obs| scale_with_obs(&SCALE_CPUS, scale_jobs, work, obs),
                    |points| render_scale_points(points, scale_jobs, work),
                    &[
                        ("jobs", scale_jobs as u64),
                        ("work_ns", work.as_ns()),
                        ("seed", SCALE_SEED),
                    ],
                )
            }),
        ),
        (
            "Fleet",
            Box::new(move || {
                observed(
                    |obs| fleet_sweep_with_obs(&FLEET_PLATFORMS, fleet_requests, obs),
                    |points| render_fleet_points(points, fleet_requests),
                    &[
                        ("requests", fleet_requests as u64),
                        ("shards", FLEET_SHARDS as u64),
                        ("seed", FLEET_SEED),
                    ],
                )
            }),
        ),
        (
            "Churn",
            Box::new(move || {
                observed(
                    |obs| churn_sweep_with_obs(&CHURN_RATES, churn_requests, obs),
                    |points| render_churn_points(points, churn_requests),
                    &[
                        ("requests", churn_requests as u64),
                        ("platforms", CHURN_PLATFORMS as u64),
                        ("seed", CHURN_SEED),
                    ],
                )
            }),
        ),
        (
            "VM",
            Box::new(|| {
                let identical = vm_quotes_identical_across_executors();
                observed(
                    vm_dispatch_with_obs,
                    |points| render_vm_points(points, identical),
                    &[("executors_identical", identical as u64)],
                )
            }),
        ),
    ]
}

/// Runs every suite artifact in order on the calling thread.
pub fn run_suite_serial(cfg: &SuiteConfig) -> Vec<Artifact> {
    suite_jobs(cfg)
        .into_iter()
        .map(|(name, f)| {
            let (rendered, metrics) = f();
            Artifact {
                name: name.to_string(),
                rendered,
                metrics,
            }
        })
        .collect()
}

/// Runs the same artifacts across `workers` threads. Output — rendered
/// text and metrics alike — is byte-identical to [`run_suite_serial`]:
/// assignment is static (job *i* → worker *i* mod `workers`), results
/// are collected by job index, and every artifact records into its own
/// sink.
///
/// # Panics
///
/// Panics if a worker thread panics (an experiment itself failed).
pub fn run_suite_parallel(cfg: &SuiteConfig, workers: usize) -> Vec<Artifact> {
    let jobs = suite_jobs(cfg);
    let n = jobs.len();
    let workers = workers.clamp(1, n);
    let mut per_worker: Vec<Vec<(usize, Job)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        per_worker[i % workers].push((i, job));
    }
    let mut slots: Vec<Option<Artifact>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|assigned| {
                s.spawn(move || {
                    assigned
                        .into_iter()
                        .map(|(i, (name, f))| {
                            let (rendered, metrics) = f();
                            (
                                i,
                                Artifact {
                                    name: name.to_string(),
                                    rendered,
                                    metrics,
                                },
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, artifact) in h.join().expect("suite worker panicked") {
                slots[i] = Some(artifact);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

/// The artifact's hottest lock class — the per-class row with the
/// largest total virtual wait, ties broken by class name so the line
/// is deterministic. `None` when the experiment recorded no lock
/// events at all.
fn hottest_lock(m: &ExperimentMetrics) -> Option<&crate::metrics::LockRow> {
    m.locks
        .iter()
        .max_by(|a, b| a.wait_ns.cmp(&b.wait_ns).then(b.class.cmp(&a.class)))
}

/// Joins rendered artifacts into the one-document suite report. Each
/// artifact is followed by its hottest lock class (largest total
/// virtual wait), so contention regressions are visible in the
/// human-readable report without opening `BENCH_suite.json`.
pub fn render_suite(artifacts: &[Artifact]) -> String {
    let mut out = String::new();
    for (i, a) in artifacts.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&"=".repeat(72));
        out.push('\n');
        out.push_str(&a.rendered);
        if let Some(l) = hottest_lock(&a.metrics) {
            out.push_str(&format!(
                "\nHottest lock: {} ({}) — {} acquisitions, {} ms waited, {} ms held\n",
                l.class,
                l.layer,
                l.acquisitions,
                ms(l.wait_ns as f64 / 1e6),
                ms(l.hold_ns as f64 / 1e6),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// BENCH_suite.json: the machine-readable suite artifact
// ---------------------------------------------------------------------

fn experiment_json(a: &Artifact) -> Json {
    let m = &a.metrics;
    let layers = Json::Obj(
        Layer::ALL
            .iter()
            .zip(m.layer_ns)
            .map(|(l, ns)| (l.as_str().to_string(), Json::UInt(ns)))
            .collect(),
    );
    Json::Obj(vec![
        ("name".to_string(), Json::Str(a.name.clone())),
        (
            "total_virtual_ns".to_string(),
            Json::UInt(m.total_virtual_ns),
        ),
        ("layers_ns".to_string(), layers),
        ("spans".to_string(), Json::UInt(m.spans)),
        ("leaf_spans".to_string(), Json::UInt(m.leaf_spans)),
        (
            "scalars".to_string(),
            Json::Obj(
                m.scalars
                    .iter()
                    .map(|&(k, v)| (k.to_string(), Json::UInt(v)))
                    .collect(),
            ),
        ),
        (
            "counters".to_string(),
            Json::Obj(
                m.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect(),
            ),
        ),
        ("lock_wait_ns".to_string(), Json::UInt(m.lock_wait_ns())),
        ("lock_hold_ns".to_string(), Json::UInt(m.lock_hold_ns())),
        (
            "locks".to_string(),
            Json::Obj(
                m.locks
                    .iter()
                    .map(|l| {
                        (
                            l.class.clone(),
                            Json::Obj(vec![
                                ("layer".to_string(), Json::Str(l.layer.clone())),
                                ("acquisitions".to_string(), Json::UInt(l.acquisitions)),
                                ("wait_ns".to_string(), Json::UInt(l.wait_ns)),
                                ("hold_ns".to_string(), Json::UInt(l.hold_ns)),
                                (
                                    "wait_buckets".to_string(),
                                    Json::Arr(
                                        l.wait_buckets.iter().map(|&b| Json::UInt(b)).collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serializes the suite's structured rows as the versioned
/// `BENCH_suite.json` document. Deterministic: the same artifacts (and
/// smoke flag) always produce the same bytes, at any worker count.
///
/// See `EXPERIMENTS.md` ("The BENCH_suite.json artifact") for the
/// schema.
pub fn suite_json(artifacts: &[Artifact], smoke: bool) -> String {
    Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("minimal-tcb/bench-suite".to_string()),
        ),
        (
            "schema_version".to_string(),
            Json::UInt(SUITE_SCHEMA_VERSION),
        ),
        ("smoke".to_string(), Json::Bool(smoke)),
        (
            "seeds".to_string(),
            Json::Obj(vec![
                ("fault_sweep".to_string(), Json::UInt(FAULT_SWEEP_SEED)),
                ("crash_sweep".to_string(), Json::UInt(CRASH_SWEEP_SEED)),
                ("scale".to_string(), Json::UInt(SCALE_SEED)),
                ("fleet".to_string(), Json::UInt(FLEET_SEED)),
                ("churn".to_string(), Json::UInt(CHURN_SEED)),
            ]),
        ),
        (
            "experiments".to_string(),
            Json::Arr(artifacts.iter().map(experiment_json).collect()),
        ),
    ])
    .render()
}

/// Validates a `BENCH_suite.json` document: parses it, checks the
/// schema version, and re-derives every experiment's
/// `total_virtual_ns` from its per-layer attribution.
///
/// # Errors
///
/// Returns a message describing the first failure: unparseable JSON, a
/// missing/mismatched field, or an attribution that does not sum.
pub fn validate_suite_json(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SUITE_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SUITE_SCHEMA_VERSION}"
        ));
    }
    doc.get("smoke")
        .and_then(Json::as_bool)
        .ok_or("missing smoke flag")?;
    doc.get("seeds").ok_or("missing seeds")?;
    let experiments = doc
        .get("experiments")
        .and_then(Json::as_array)
        .ok_or("missing experiments array")?;
    if experiments.is_empty() {
        return Err("experiments array is empty".to_string());
    }
    for e in experiments {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("experiment missing name")?;
        let total = e
            .get("total_virtual_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{name}: missing total_virtual_ns"))?;
        let layers = e
            .get("layers_ns")
            .ok_or_else(|| format!("{name}: missing layers_ns"))?;
        let mut sum = 0u64;
        for layer in Layer::ALL {
            sum += layers
                .get(layer.as_str())
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: missing layers_ns.{}", layer.as_str()))?;
        }
        if sum != total {
            return Err(format!(
                "{name}: layers_ns sums to {sum} but total_virtual_ns is {total}"
            ));
        }
        // Lock attribution sums the same way layers_ns does: the
        // per-class rows must re-derive the experiment's totals.
        let lock_wait = e
            .get("lock_wait_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{name}: missing lock_wait_ns"))?;
        let lock_hold = e
            .get("lock_hold_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{name}: missing lock_hold_ns"))?;
        let locks = e
            .get("locks")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("{name}: missing locks object"))?;
        let (mut wait_sum, mut hold_sum) = (0u64, 0u64);
        for (class, row) in locks {
            wait_sum += row
                .get("wait_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: locks.{class} missing wait_ns"))?;
            hold_sum += row
                .get("hold_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: locks.{class} missing hold_ns"))?;
            let acquisitions = row
                .get("acquisitions")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: locks.{class} missing acquisitions"))?;
            let bucket_count: u64 = row
                .get("wait_buckets")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("{name}: locks.{class} missing wait_buckets"))?
                .iter()
                .map(|b| b.as_u64().unwrap_or(0))
                .sum();
            if bucket_count != acquisitions {
                return Err(format!(
                    "{name}: locks.{class} wait_buckets count {bucket_count} != \
                     acquisitions {acquisitions}"
                ));
            }
        }
        if wait_sum != lock_wait {
            return Err(format!(
                "{name}: locks wait_ns sums to {wait_sum} but lock_wait_ns is {lock_wait}"
            ));
        }
        if hold_sum != lock_hold {
            return Err(format!(
                "{name}: locks hold_ns sums to {hold_sum} but lock_hold_ns is {lock_hold}"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Per-artifact renderers (shared by the suite and the one-shot binaries)
// ---------------------------------------------------------------------

/// Renders Table 1 exactly as the `table1` binary prints it.
pub fn render_table1() -> String {
    render_table1_rows(&crate::experiments::table1())
}

/// Renders already-measured Table 1 rows.
pub fn render_table1_rows(data: &[Table1Row]) -> String {
    let mut out = String::from(
        "Table 1: SKINIT and SENTER benchmarks (ms)\n(paper values in parentheses)\n\n",
    );
    let mut rows = Vec::new();
    for row in data {
        let mut cells = vec![
            if row.tpm_present { "Yes" } else { "No" }.to_string(),
            row.system.clone(),
        ];
        for (m, p) in row.measured_ms.iter().zip(&row.paper_ms) {
            cells.push(format!("{} ({})", ms(*m), ms(*p)));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = ["TPM", "System"]
        .into_iter()
        .map(String::from)
        .chain(PAL_SIZES.iter().map(|s| format!("{} KB", s / 1024)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&render_table(&header_refs, &rows));
    out.push_str(
        "\nKey findings reproduced: the TPM's LPC long wait cycles slow a 64 KB\n\
         SKINIT ~20x (177.5 ms vs 8.8 ms); Intel's fixed ~26 ms ACMod cost beats\n\
         AMD's TPM-rate hashing for PALs larger than ~10 KB.\n",
    );
    out
}

/// Renders Table 2 exactly as the `table2` binary prints it.
pub fn render_table2() -> String {
    let mut out = String::from("Table 2: VM Entry / VM Exit (µs), paper values in parentheses\n\n");
    let rows: Vec<Vec<String>> = table2()
        .into_iter()
        .map(|r| {
            vec![
                r.system,
                format!("{} ({})", us(r.vm_enter_us), us(r.paper_enter_us)),
                format!("{} ({})", us(r.vm_exit_us), us(r.paper_exit_us)),
            ]
        })
        .collect();
    out.push_str(&render_table(&["System", "VM Enter", "VM Exit"], &rows));
    out.push_str(
        "\nThese sub-microsecond costs are what §5.7 argues a PAL context switch\n\
         should cost on the proposed hardware — versus 200-1000 ms today.\n",
    );
    out
}

/// Renders Figure 2 (table + terminal bar chart) as the `figure2`
/// binary prints it.
pub fn render_figure2(runs: usize) -> String {
    render_figure2_bars(&crate::experiments::figure2(runs), runs)
}

/// Renders already-measured Figure 2 bars.
pub fn render_figure2_bars(bars: &[Figure2Bar], runs: usize) -> String {
    let mut out =
        format!("Figure 2: SEA session overheads on HP dc5750 (avg of {runs} runs, ms)\n\n");
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.label.clone(),
                ms(b.skinit_ms),
                ms(b.seal_ms),
                ms(b.unseal_ms),
                ms(b.quote_ms),
                ms(b.total_ms),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["Session", "SKINIT", "Seal", "Unseal", "Quote", "Total"],
        &rows,
    ));

    // A terminal rendition of the stacked bars.
    out.push_str("\n  (1 char ≈ 20 ms)\n");
    for b in bars {
        let seg = |v: f64, c: char| c.to_string().repeat((v / 20.0).round() as usize);
        out.push_str(&format!(
            "  {:>8} |{}{}{}{}| {:.0} ms\n",
            b.label,
            seg(b.skinit_ms, 'S'),
            seg(b.seal_ms, 's'),
            seg(b.unseal_ms, 'U'),
            seg(b.quote_ms, 'Q'),
            b.total_ms
        ));
    }
    out.push_str("\n  S = SKINIT  s = Seal  U = Unseal  Q = Quote\n");
    out.push_str(
        "\nPaper's reading reproduced: storing state for later use costs ~200 ms\n\
         (PAL Gen); accessing, modifying and re-storing it costs over a second\n\
         (PAL Use) — all of it dead time for the whole platform.\n",
    );
    out
}

/// Renders Figure 3 exactly as the `figure3` binary prints it.
pub fn render_figure3(trials: usize) -> String {
    render_figure3_cells(&crate::experiments::figure3(trials), trials)
}

/// Renders already-measured Figure 3 cells.
pub fn render_figure3_cells(cells: &[Figure3Cell], trials: usize) -> String {
    let mut out = format!("Figure 3: TPM benchmarks, mean ± stddev over {trials} trials (ms)\n\n");
    let tpms: Vec<&str> = figure3_tpms().iter().map(|(_, l)| *l).collect();

    let mut rows = Vec::new();
    for op in TpmOp::FIGURE3_OPS {
        let mut row = vec![op.label().to_string()];
        for tpm in &tpms {
            let c = cells
                .iter()
                .find(|c| c.tpm == *tpm && c.op == op.label())
                .expect("cell exists");
            row.push(format!("{:7.2} ±{:5.2}", c.mean_ms, c.stddev_ms));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("TPM Operation")
        .chain(tpms.iter().copied())
        .collect();
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\nOrdering constraints from the paper, all reproduced:\n\
         - Broadcom: fastest Seal (~20 ms) but slowest Quote and Unseal;\n\
         - Infineon: best average, Unseal ≈ 391 ms;\n\
         - Broadcom→Infineon saves ~1132 ms on Quote+Unseal, costs +213 ms Seal;\n\
         - best-per-op composition still leaves PAL Use ≈ 579 ms (§4.3.3).\n",
    );
    out
}

/// Renders the concurrent-engine throughput sweep: aggregate PAL
/// throughput vs core count on the proposed hardware.
pub fn render_throughput(worker_counts: &[usize], jobs: usize, work: SimDuration) -> String {
    render_throughput_points(
        &crate::experiments::throughput(worker_counts, jobs, work),
        jobs,
        work,
    )
}

/// Renders already-measured throughput points.
pub fn render_throughput_points(
    points: &[ThroughputPoint],
    jobs: usize,
    work: SimDuration,
) -> String {
    let mut out = format!(
        "Throughput: {jobs} PAL sessions ({work} of work each) on the proposed\n\
         hardware's concurrent engine, virtual time, by core count\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                ms(p.wall_ms),
                ms(p.aggregate_ms),
                format!("{:.2}", p.per_sec),
                format!("{:.2}x", p.speedup),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "cores",
            "wall (ms)",
            "aggregate (ms)",
            "sessions/s",
            "speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nEach core runs its own PAL beside the others (per-PAL sePCRs, §5.4):\n\
         aggregate virtual work is constant while wall time divides by the core\n\
         count. Baseline hardware would serialize the whole batch (§4.2).\n",
    );
    out
}

/// Renders the fault sweep: goodput vs injected fault rate under the
/// recovery layer's default retry policy.
pub fn render_fault_sweep(rates: &[u32], jobs: usize, work: SimDuration, workers: usize) -> String {
    render_fault_sweep_points(
        &crate::experiments::fault_sweep(rates, jobs, work, workers),
        jobs,
        work,
        workers,
    )
}

/// Renders already-measured fault-sweep points.
pub fn render_fault_sweep_points(
    points: &[FaultSweepPoint],
    jobs: usize,
    work: SimDuration,
    workers: usize,
) -> String {
    let mut out = format!(
        "Fault sweep: {jobs} PAL sessions ({work} of work each) on {workers} cores\n\
         under injected hardware faults, default retry policy, virtual time\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}%", p.rate as f64 * 100.0 / sea_hw::RATE_DENOM as f64),
                p.quoted.to_string(),
                p.killed.to_string(),
                p.retries.to_string(),
                ms(p.wall_ms),
                format!("{:.2}", p.goodput_per_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "fault rate",
            "quoted",
            "killed",
            "retries",
            "wall (ms)",
            "goodput/s",
        ],
        &rows,
    ));
    out.push_str(
        "\nTransient faults are absorbed by bounded retries (wall time grows,\n\
         goodput sags); the fatal fraction SKILLs its session (§5.5) without\n\
         taking the batch down. Every sweep point replays the same seeded\n\
         fault tape, so this table is byte-identical run to run.\n",
    );
    out
}

/// Renders the crash sweep: goodput vs injected power-loss rate under
/// the crash-consistent durable engine.
pub fn render_crash_sweep(rates: &[u32], jobs: usize, work: SimDuration, workers: usize) -> String {
    render_crash_sweep_points(
        &crate::experiments::crash_sweep(rates, jobs, work, workers),
        jobs,
        work,
        workers,
    )
}

/// Renders already-measured crash-sweep points.
pub fn render_crash_sweep_points(
    points: &[CrashSweepPoint],
    jobs: usize,
    work: SimDuration,
    workers: usize,
) -> String {
    let mut out = format!(
        "Crash sweep: {jobs} PAL sessions ({work} of work each) on {workers} cores\n\
         under injected power losses, journaled NVRAM checkpoints, virtual time\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}%", p.rate as f64 * 100.0 / sea_hw::RATE_DENOM as f64),
                p.resets.to_string(),
                p.committed.to_string(),
                p.relaunched.to_string(),
                p.quoted.to_string(),
                ms(p.recovery_ms),
                ms(p.journal_ms),
                ms(p.wall_ms),
                format!("{:.2}", p.goodput_per_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "loss rate",
            "resets",
            "committed",
            "relaunched",
            "quoted",
            "recovery (ms)",
            "journal (ms)",
            "wall (ms)",
            "goodput/s",
        ],
        &rows,
    ));
    out.push_str(
        "\nEvery terminal session commits to a sealed journal in TPM NVRAM; a\n\
         power loss reboots the platform (static PCRs to zero, dynamic to -1,\n\
         every sePCR freed) and the batch resumes from the journal — committed\n\
         results survive, torn sessions relaunch. Same seeded loss tape every\n\
         run, so this table is byte-identical run to run.\n",
    );
    out
}

/// Renders the virtual-CPU scale sweep: durable-batch goodput vs
/// platform width on the discrete-event executor.
pub fn render_scale(cpu_counts: &[usize], jobs: usize, work: SimDuration) -> String {
    render_scale_points(
        &crate::experiments::scale(cpu_counts, jobs, work),
        jobs,
        work,
    )
}

/// Renders already-measured scale points.
pub fn render_scale_points(points: &[ScalePoint], jobs: usize, work: SimDuration) -> String {
    let mut out = format!(
        "Scale: {jobs} durable attested sessions ({work} of work each) on the\n\
         discrete-event executor, virtual time, by virtual-CPU count\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.cpus.to_string(),
                p.resets.to_string(),
                p.committed.to_string(),
                p.relaunched.to_string(),
                p.quoted.to_string(),
                ms(p.wall_ms),
                ms(p.aggregate_ms),
                format!("{:.2}x", p.speedup),
                format!("{:.2}", p.goodput_per_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "vCPUs",
            "resets",
            "committed",
            "relaunched",
            "quoted",
            "wall (ms)",
            "aggregate (ms)",
            "speedup",
            "goodput/s",
        ],
        &rows,
    ));
    out.push_str(
        "\nEach point models the whole platform — CPUs, TPM arbitration, journal\n\
         commits, injected power losses — as one event-ordered timeline on a\n\
         single OS thread, so the widest machine here is a thousand virtual\n\
         CPUs on any host. The schedule is structural: every column, including\n\
         the committed/relaunched split, is byte-identical run to run.\n",
    );
    out
}

/// Renders the fleet sweep: attestation goodput and latency
/// percentiles vs fleet size, platforms quoting to the remote verifier.
pub fn render_fleet(platform_counts: &[usize], requests: usize) -> String {
    render_fleet_points(
        &crate::experiments::fleet_sweep(platform_counts, requests),
        requests,
    )
}

/// Renders already-measured fleet points.
pub fn render_fleet_points(points: &[FleetPoint], requests: usize) -> String {
    let mut out = format!(
        "Fleet: {requests} attestation requests hash-dispatched across a\n\
         sharded platform fleet, quoted on-platform, and decided by the\n\
         remote verifier service, by fleet size\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.platforms.to_string(),
                p.accepted.to_string(),
                p.rejected.to_string(),
                p.cert_walks.to_string(),
                p.ticket_hits.to_string(),
                ms(p.wall_ms),
                ms(p.p50_ms),
                ms(p.p95_ms),
                ms(p.p99_ms),
                format!("{:.2}", p.goodput_per_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "platforms",
            "accepted",
            "rejected",
            "cert walks",
            "ticket hits",
            "wall (ms)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "goodput/s",
        ],
        &rows,
    ));
    out.push_str(
        "\nEvery request runs a full attested session on its platform and is\n\
         checked end to end by the verifier: wire-quote parse, AIK certificate\n\
         walk (amortized by session tickets after the first quote per\n\
         platform), signature verify, nonce freshness, measurement-chain\n\
         replay, TCB policy. Latency spans quote emission to verdict. The\n\
         whole sweep is byte-identical at any shard count.\n",
    );
    out
}

/// Renders the churn sweep: request fates, retry cost, and adversarial
/// rejection vs churn intensity.
pub fn render_churn(intensities: &[u32], requests: usize) -> String {
    render_churn_points(
        &crate::experiments::churn_sweep(intensities, requests),
        requests,
    )
}

/// Renders the VM dispatch experiment: the four paper PALs as executed
/// bytecode, block chaining on vs off, plus the cross-executor quote
/// pin.
pub fn render_vm(executors_identical: bool) -> String {
    render_vm_points(&crate::experiments::vm_dispatch(), executors_identical)
}

/// Renders already-measured VM dispatch points.
pub fn render_vm_points(points: &[VmPoint], executors_identical: bool) -> String {
    let mut out = String::from(
        "VM: the paper's PALs as measured bytecode on the proposed hardware,\n\
         direct block chaining vs block-cache lookup on every dispatch,\n\
         virtual time\n\n",
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.pal.clone(),
                p.sessions.to_string(),
                p.retired.to_string(),
                p.blocks.to_string(),
                p.chain_hits.to_string(),
                p.chained_dispatch_ns.to_string(),
                p.lookup_dispatch_ns.to_string(),
                format!("{:.2}x", p.dispatch_speedup),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "PAL",
            "sessions",
            "retired",
            "blocks",
            "chain hits",
            "chained (ns)",
            "lookup (ns)",
            "speedup",
        ],
        &rows,
    ));

    // A terminal rendition of the dispatch-speedup bars.
    out.push_str("\n  dispatch speedup (1 char = 0.25x)\n");
    for p in points {
        out.push_str(&format!(
            "  {:>22} |{}| {:.2}x\n",
            p.pal,
            "#".repeat((p.dispatch_speedup / 0.25).round() as usize),
            p.dispatch_speedup
        ));
    }
    out.push_str(&format!(
        "\nQuotes byte-identical across 1/4-worker thread pools and the\n\
         discrete-event executor: {}\n",
        if executors_identical { "yes" } else { "NO" }
    ));
    out.push_str(
        "\nEach PAL's measured identity is the SHA-1 of its serialized bytecode;\n\
         gas retires to the virtual clock at every translation-block boundary.\n\
         Chaining patches a block's successor in directly, skipping the block-\n\
         cache lookup — same retired instructions, same outputs, cheaper\n\
         dispatch. Loop-heavy PALs (factoring) benefit most.\n",
    );
    out
}

/// Renders already-measured churn points.
pub fn render_churn_points(points: &[ChurnPoint], requests: usize) -> String {
    let mut out = format!(
        "Churn: {requests} attestation requests across a fleet of {CHURN_PLATFORMS}\n\
         platforms under seeded churn — dropped/delayed/duplicated/reordered\n\
         wires, mid-sweep reboots, certificate rotation + re-enrollment, a\n\
         staged TCB push, and adversarial traffic — by churn intensity\n\
         (parts per 65536)\n\n"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.intensity.to_string(),
                p.accepted.to_string(),
                p.rejected.to_string(),
                p.timed_out.to_string(),
                p.degraded.to_string(),
                p.retries.to_string(),
                format!("{}/{}", p.adversarial_rejected, p.adversarial),
                format!("{:.2}%", p.wire_rejection_rate * 100.0),
                ms(p.wall_ms),
                ms(p.p95_ms),
                format!("{:.2}", p.goodput_per_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "churn",
            "accepted",
            "rejected",
            "timed out",
            "degraded",
            "retries",
            "adv rej",
            "wire rej",
            "wall (ms)",
            "p95 (ms)",
            "goodput/s",
        ],
        &rows,
    ));
    out.push_str(
        "\nEach request's lifecycle — per-attempt timeout, bounded retries with\n\
         exponential backoff, re-quoting under fresh nonces — runs against the\n\
         remote verifier with finite nonce-freshness and session-ticket\n\
         windows, so every row's accepted/rejected/timed-out split is a typed\n\
         request fate. \"adv rej\" counts adversarial wires (replay,\n\
         stale-nonce, bit-flip, forged-cert) the verifier turned away over\n\
         those injected; the verifier accepts none of them. \"wire rej\" is\n\
         the verifier's rejection share across all wires it saw. The whole\n\
         sweep is byte-identical at any shard count, worker count,\n\
         submission order, and executor backend.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_every_artifact_in_order() {
        let arts = run_suite_serial(&SuiteConfig::smoke());
        let names: Vec<&str> = arts.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Table 1",
                "Table 2",
                "Figure 2",
                "Figure 3",
                "Throughput",
                "Fault sweep",
                "Crash sweep",
                "Scale",
                "Fleet",
                "Churn",
                "VM"
            ]
        );
        for a in &arts {
            assert!(!a.rendered.is_empty(), "{} rendered nothing", a.name);
        }
        // Every executing experiment carries a non-trivial attribution
        // whose layers sum to its total (Table 2 only reads a cost
        // model, so its attribution is all-zero by design).
        for a in &arts {
            let m = &a.metrics;
            assert_eq!(
                m.layer_ns.iter().sum::<u64>(),
                m.total_virtual_ns,
                "{}: layers do not sum",
                a.name
            );
            if a.name != "Table 2" {
                assert!(m.total_virtual_ns > 0, "{}: no attribution", a.name);
                assert!(m.leaf_spans > 0, "{}: no leaf spans", a.name);
            }
        }
        // The concurrent artifacts surface their engine counters.
        let crash = arts.iter().find(|a| a.name == "Crash sweep").unwrap();
        assert!(
            crash
                .metrics
                .counters
                .iter()
                .any(|(k, _)| k == "journal.commits"),
            "{:?}",
            crash.metrics.counters
        );
        // The human-readable report surfaces each artifact's hottest
        // lock class, deterministically.
        let report = render_suite(&arts);
        assert!(report.contains("Hottest lock: "), "{report}");
        assert_eq!(report, render_suite(&arts));
    }

    #[test]
    fn parallel_suite_is_byte_identical_to_serial() {
        let cfg = SuiteConfig::smoke();
        let serial = run_suite_serial(&cfg);
        for workers in [2, 4, 16] {
            let par = run_suite_parallel(&cfg, workers);
            assert_eq!(serial, par, "diverged at {workers} workers");
        }
        let par3 = run_suite_parallel(&cfg, 3);
        assert_eq!(render_suite(&serial), render_suite(&par3));
        // The machine-readable artifact is byte-identical too.
        assert_eq!(suite_json(&serial, true), suite_json(&par3, true));
    }

    #[test]
    fn suite_json_validates_and_breaks_loudly() {
        let arts = run_suite_serial(&SuiteConfig::smoke());
        let text = suite_json(&arts, true);
        validate_suite_json(&text).expect("fresh suite JSON validates");
        // Unparseable and schema-violating documents are rejected.
        assert!(validate_suite_json("not json").is_err());
        assert!(validate_suite_json("{}").is_err());
        let wrong_version = text.replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(validate_suite_json(&wrong_version).is_err());
        // A total that stops summing is caught.
        let broken = text.replace("\"total_virtual_ns\": 0", "\"total_virtual_ns\": 12345");
        assert!(validate_suite_json(&broken).is_err());
    }

    #[test]
    fn renderers_match_experiment_content() {
        let t1 = render_table1();
        assert!(t1.contains("64 KB") && t1.contains("177.52"), "{t1}");
        let tp = render_throughput(&[1, 2], 4, SimDuration::from_ms(5));
        assert!(tp.contains("2.00x"), "{tp}");
        let fs = render_fault_sweep(&[0, 8000], 4, SimDuration::from_ms(2), 2);
        assert!(fs.contains("0.00%") && fs.contains("12.21%"), "{fs}");
        assert!(fs.contains("goodput/s"), "{fs}");
        let cs = render_crash_sweep(&[0], 4, SimDuration::from_ms(2), 2);
        assert!(
            cs.contains("recovery (ms)") && cs.contains("journal (ms)"),
            "{cs}"
        );
        let fl = render_fleet(&[2], 4);
        assert!(fl.contains("cert walks") && fl.contains("p99 (ms)"), "{fl}");
        let ch = render_churn(&[0, 16_000], 8);
        assert!(
            ch.contains("goodput/s") && ch.contains("adv rej") && ch.contains("wire rej"),
            "{ch}"
        );
    }

    #[test]
    fn vm_artifact_shows_chaining_speedup() {
        let points = crate::experiments::vm_dispatch();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.retired > 0, "{p:?}");
            assert!(
                p.dispatch_speedup > 1.0,
                "{}: chaining showed no dispatch speedup: {p:?}",
                p.pal
            );
        }
        // The loop-heavy PAL chains on nearly every dispatch.
        let factoring = points
            .iter()
            .find(|p| p.pal == "distributed-factoring")
            .unwrap();
        assert!(
            factoring.chain_hits * 10 > factoring.blocks * 9,
            "{factoring:?}"
        );
        let rendered = render_vm_points(&points, true);
        assert!(
            rendered.contains("speedup") && rendered.contains("yes"),
            "{rendered}"
        );
    }

    #[test]
    fn vm_quotes_pin_across_executors() {
        assert!(vm_quotes_identical_across_executors());
    }
}
