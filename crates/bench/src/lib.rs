//! # sea-bench
//!
//! The experiment harness: one function per table/figure of McCune et
//! al., *"How Low Can You Go?"* (ASPLOS 2008), each returning structured
//! data that (a) the `src/bin/*` binaries print as paper-style tables
//! and (b) the unit tests assert reproduces the paper's *shape* — who is
//! fastest/slowest, linear scaling, crossovers, orders of magnitude.
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — SKINIT/SENTER latency vs PAL size |
//! | `table2` | Table 2 — VM entry/exit |
//! | `figure2` | Figure 2 — PAL Gen / PAL Use / Quote breakdown |
//! | `figure3` | Figure 3 — TPM microbenchmarks across four chips |
//! | `impact` | §5.7 — context-switch cost, baseline vs proposed |
//! | `concurrency` | §4.2/§4.4 vs §5 — platform throughput under PAL load |
//! | `ablation_fast_tpm` | §5.7 alternative — just speed the TPM/bus up |
//! | `ablation_hash_placement` | §4.3.2 — hash-on-TPM vs hash-on-CPU |
//! | `ablation_sepcr` | §5.4 — concurrency limit vs sePCR count |
//! | `fault_sweep` | recovery layer — goodput vs injected fault rate |
//! | `crash_sweep` | durable engine — goodput vs injected power-loss rate |
//! | `scale` | discrete-event executor — durable batches on up to 1024 virtual CPUs |
//! | `fleet` | fleet-scale attestation — goodput and latency percentiles vs fleet size |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod experiments;
pub mod format;
pub mod json;
pub mod metrics;
pub mod stats;
pub mod timing;

pub use experiments::*;
