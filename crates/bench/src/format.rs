//! Plain-text table rendering for the experiment binaries.

/// Renders an aligned text table with a header row.
///
/// # Example
///
/// ```
/// let s = sea_bench::format::render_table(
///     &["op", "ms"],
///     &[vec!["seal".into(), "20.01".into()]],
/// );
/// assert!(s.contains("seal"));
/// assert!(s.contains("20.01"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:>w$}  "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a millisecond quantity the way the paper's tables do.
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a microsecond quantity the way Table 2 does.
pub fn us(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let s = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "2.50".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains('a'));
        assert!(lines[3].contains("longer-name"));
    }

    #[test]
    fn numeric_formats() {
        assert_eq!(ms(177.519), "177.52");
        assert_eq!(us(0.558), "0.5580");
    }
}
