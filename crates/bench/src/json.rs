//! Minimal deterministic JSON — a writer for the suite's
//! machine-readable `BENCH_suite.json` artifact and a strict validator
//! for it — with no external dependencies (see README "Offline,
//! zero-dependency build").
//!
//! The writer renders objects in the field order they were built in and
//! never emits floats, so the same suite run always produces the same
//! bytes; the parser is a strict recursive-descent validator used by
//! `suite --validate` and CI to reject a missing or malformed artifact.

use std::fmt::Write as _;

/// A JSON value, sufficient for `BENCH_suite.json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number kind the suite writes).
    UInt(u64),
    /// Any other number, accepted by the parser for robustness.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; field order is preserved (and meaningful: the writer
    /// is deterministic because of it).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a field up in an object; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's fields (in document order), if it is
    /// an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent,
    /// trailing newline). Deterministic: field order is the build order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str(&escape(k));
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Quotes and escapes a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", want as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Json::UInt(n));
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogates are rejected rather than paired: the
                        // writer never emits them.
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid UTF-8 tail");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn round_trips_the_suite_shape() {
        let doc = obj(vec![
            ("schema_version", Json::UInt(1)),
            ("smoke", Json::Bool(true)),
            ("name", Json::Str("Fault sweep".into())),
            (
                "layers_ns",
                obj(vec![("hw", Json::UInt(42)), ("tpm", Json::UInt(0))]),
            ),
            ("rows", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(vec![])),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        assert!(text.ends_with('\n'));
        let back = parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(back.get("smoke").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn escapes_and_unescapes() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = doc.render();
        assert_eq!(parse(&text).expect("parses"), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\": 00x}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_general_numbers() {
        assert_eq!(parse("18446744073709551615"), Ok(Json::UInt(u64::MAX)));
        assert_eq!(parse("-2.5e3"), Ok(Json::Num(-2500.0)));
    }

    #[test]
    fn render_is_deterministic() {
        let doc = obj(vec![("b", Json::UInt(2)), ("a", Json::UInt(1))]);
        assert_eq!(doc.render(), doc.render());
        // Field order is build order, not alphabetical.
        assert!(doc.render().find("\"b\"").unwrap() < doc.render().find("\"a\"").unwrap());
    }
}
