//! Criterion benches over the SEA runtimes and TPM model: the real cost
//! of simulating each paper experiment's unit of work.

use criterion::{criterion_group, criterion_main, Criterion};
use sea_core::{EnhancedSea, FnPal, LegacySea, PalOutcome, SecurePlatform};
use sea_hw::{CpuId, Platform, SimDuration};
use sea_tpm::{KeyStrength, PcrIndex, Tpm};

fn platform(p: Platform, seed: &[u8]) -> SecurePlatform {
    SecurePlatform::new(p, KeyStrength::Demo512, seed)
}

fn bench_tpm_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpm");
    let mut tpm = Tpm::new(sea_hw::TpmKind::Broadcom, KeyStrength::Demo512, b"bench");
    let digest = sea_crypto::Sha1::digest(b"m");
    g.bench_function("extend", |b| {
        b.iter(|| tpm.extend(PcrIndex(17), &digest).unwrap())
    });
    g.bench_function("seal", |b| {
        b.iter(|| tpm.seal(b"state", &[PcrIndex(17)]).unwrap())
    });
    let blob = tpm.seal(b"state", &[PcrIndex(17)]).unwrap().value;
    g.bench_function("unseal", |b| b.iter(|| tpm.unseal(&blob).unwrap()));
    g.bench_function("quote", |b| {
        b.iter(|| tpm.quote(b"nonce", &[PcrIndex(17)]).unwrap())
    });
    g.finish();
}

fn bench_late_launch(c: &mut Criterion) {
    // The Table 1 unit of work: one full late launch, 64 KB PAL.
    c.bench_function("late_launch/skinit_64k", |b| {
        b.iter_batched(
            || {
                let mut sp = platform(Platform::hp_dc5750(), b"ll");
                let range = sea_hw::PageRange::new(sea_hw::PageIndex(8), 16);
                sp.machine_mut()
                    .memory_mut()
                    .write_raw(range.base_addr(), &vec![0x90u8; 64 * 1024])
                    .unwrap();
                (sp, range)
            },
            |(mut sp, range)| sp.late_launch(CpuId(0), range, 64 * 1024).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_sessions(c: &mut Criterion) {
    // The Figure 2 unit of work: one baseline PAL Gen session.
    c.bench_function("session/legacy_gen", |b| {
        let mut sea = LegacySea::new(platform(Platform::hp_dc5750(), b"gen")).unwrap();
        let mut pal = FnPal::new("gen", |ctx| {
            let _ = ctx.seal(b"state")?;
            Ok(PalOutcome::Exit(vec![]))
        })
        .with_image_size(64 * 1024);
        b.iter(|| sea.run_session(&mut pal, b"").unwrap())
    });
}

fn bench_context_switch(c: &mut Criterion) {
    // The §5.7 unit of work: one SYIELD + resume pair on the proposed
    // hardware (real simulator execution, not just the cost model).
    c.bench_function("session/enhanced_switch_pair", |b| {
        let mut sea = EnhancedSea::new(platform(Platform::recommended(2), b"sw")).unwrap();
        let mut pal = FnPal::new("spinner", |ctx| {
            ctx.work(SimDuration::from_us(1));
            Ok(PalOutcome::Yield)
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.step(&mut pal, id).unwrap(); // now suspended
        b.iter(|| {
            sea.resume(id, CpuId(0)).unwrap();
            sea.step(&mut pal, id).unwrap(); // yields again
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tpm_ops, bench_late_launch, bench_sessions, bench_context_switch
}
criterion_main!(benches);
