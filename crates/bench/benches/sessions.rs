//! Wall-clock benches over the SEA runtimes and TPM model — the real
//! cost of simulating each paper experiment's unit of work — on the
//! in-repo timer harness (`sea_bench::timing`).
//!
//! Run with `cargo bench --bench sessions`; set `SEA_BENCH_SMOKE=1` for
//! the CI smoke pass.

use sea_bench::timing::{bench, group};
use sea_core::{EnhancedSea, FnPal, LegacySea, PalOutcome, SecurePlatform};
use sea_hw::{CpuId, Platform, SimDuration};
use sea_tpm::{KeyStrength, PcrIndex, Tpm};

fn platform(p: Platform, seed: &[u8]) -> SecurePlatform {
    SecurePlatform::new(p, KeyStrength::Demo512, seed)
}

fn bench_tpm_ops() {
    group("tpm");
    let mut tpm = Tpm::new(sea_hw::TpmKind::Broadcom, KeyStrength::Demo512, b"bench");
    let digest = sea_crypto::Sha1::digest(b"m");
    bench("extend", || tpm.extend(PcrIndex(17), &digest).unwrap());
    bench("seal", || tpm.seal(b"state", &[PcrIndex(17)]).unwrap());
    let blob = tpm.seal(b"state", &[PcrIndex(17)]).unwrap().value;
    bench("unseal", || tpm.unseal(&blob).unwrap());
    bench("quote", || tpm.quote(b"nonce", &[PcrIndex(17)]).unwrap());
}

fn bench_late_launch() {
    group("late_launch");
    // The Table 1 unit of work: one full late launch, 64 KB PAL. The
    // platform is rebuilt every iteration (late launch consumes it), so
    // this bench includes that setup — the launch itself dominates.
    bench("late_launch/skinit_64k", || {
        let mut sp = platform(Platform::hp_dc5750(), b"ll");
        let range = sea_hw::PageRange::new(sea_hw::PageIndex(8), 16);
        sp.machine_mut()
            .memory_mut()
            .write_raw(range.base_addr(), &vec![0x90u8; 64 * 1024])
            .unwrap();
        sp.late_launch(CpuId(0), range, 64 * 1024).unwrap()
    });
}

fn bench_sessions() {
    group("sessions");
    // The Figure 2 unit of work: one baseline PAL Gen session.
    let mut sea = LegacySea::new(platform(Platform::hp_dc5750(), b"gen")).unwrap();
    let mut pal = FnPal::new("gen", |ctx| {
        let _ = ctx.seal(b"state")?;
        Ok(PalOutcome::Exit(vec![]))
    })
    .with_image_size(64 * 1024);
    bench("session/legacy_gen", || {
        sea.run_session(&mut pal, b"").unwrap()
    });
}

fn bench_context_switch() {
    group("context_switch");
    // The §5.7 unit of work: one SYIELD + resume pair on the proposed
    // hardware (real simulator execution, not just the cost model).
    let mut sea = EnhancedSea::new(platform(Platform::recommended(2), b"sw")).unwrap();
    let mut pal = FnPal::new("spinner", |ctx| {
        ctx.work(SimDuration::from_us(1));
        Ok(PalOutcome::Yield)
    });
    let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
    sea.step(&mut pal, id).unwrap(); // now suspended
    bench("session/enhanced_switch_pair", || {
        sea.resume(id, CpuId(0)).unwrap();
        sea.step(&mut pal, id).unwrap(); // yields again
    });
}

fn main() {
    bench_tpm_ops();
    bench_late_launch();
    bench_sessions();
    bench_context_switch();
}
