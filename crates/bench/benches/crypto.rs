//! Wall-clock benches of the cryptographic substrate (the simulator's
//! hot paths), on the in-repo timer harness (`sea_bench::timing`) — no
//! external bench framework. These complement the virtual-time
//! experiment binaries: virtual time reproduces the paper's numbers;
//! these measure what the reproduction itself costs to run.
//!
//! Run with `cargo bench --bench crypto`; set `SEA_BENCH_SMOKE=1` for
//! the CI smoke pass.

use sea_bench::timing::{bench, group, mib_per_sec, smoke_mode};
use sea_crypto::{Drbg, OaepLabel, RsaPrivateKey, Sha1, Sha256};

fn bench_hashing() {
    group("hashing");
    for size in [1usize << 10, 64 << 10] {
        let data = vec![0xABu8; size];
        let t = bench(&format!("sha1/{size}"), || {
            Sha1::digest(std::hint::black_box(&data))
        });
        println!("{:<32} {:>10.1} MiB/s", "", mib_per_sec(size, t.median()));
        let t = bench(&format!("sha256/{size}"), || {
            Sha256::digest(std::hint::black_box(&data))
        });
        println!("{:<32} {:>10.1} MiB/s", "", mib_per_sec(size, t.median()));
    }
}

fn bench_rsa() {
    let key = RsaPrivateKey::generate(512, &mut Drbg::new(b"bench key")).unwrap();
    let key1024 = RsaPrivateKey::generate(1024, &mut Drbg::new(b"bench key 1024")).unwrap();
    let digest = Sha1::digest(b"benchmark payload");

    group("rsa");
    let mut i = 0u64;
    bench("keygen/512", || {
        i += 1;
        RsaPrivateKey::generate(512, &mut Drbg::new(&i.to_le_bytes())).unwrap()
    });
    bench("sign/512", || key.sign_pkcs1v15(&digest).unwrap());
    if !smoke_mode() {
        bench("sign/1024", || key1024.sign_pkcs1v15(&digest).unwrap());
    }
    let sig = key.sign_pkcs1v15(&digest).unwrap();
    bench("verify/512", || {
        assert!(key.public_key().verify_pkcs1v15(&digest, &sig))
    });
    let mut rng = Drbg::new(b"oaep");
    let label = OaepLabel::default();
    bench("oaep_roundtrip/512", || {
        let ct = key
            .public_key()
            .encrypt_oaep(b"secret", &label, &mut rng)
            .unwrap();
        key.decrypt_oaep(&ct, &label).unwrap()
    });
}

fn bench_drbg() {
    group("drbg");
    let mut rng = Drbg::new(b"bench");
    bench("drbg/fill_1k", || rng.fill(1024));
}

fn main() {
    bench_hashing();
    bench_rsa();
    bench_drbg();
}
