//! Criterion benches: real wall-clock cost of the cryptographic
//! substrate (the simulator's hot paths). These complement the
//! virtual-time experiment binaries: virtual time reproduces the paper's
//! numbers; these measure what the reproduction itself costs to run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sea_crypto::{Drbg, OaepLabel, RsaPrivateKey, Sha1, Sha256};

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    for size in [1usize << 10, 64 << 10] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha1/{size}"), |b| {
            b.iter(|| Sha1::digest(std::hint::black_box(&data)))
        });
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let key = RsaPrivateKey::generate(512, &mut Drbg::new(b"bench key")).unwrap();
    let key1024 = RsaPrivateKey::generate(1024, &mut Drbg::new(b"bench key 1024")).unwrap();
    let digest = Sha1::digest(b"benchmark payload");

    let mut g = c.benchmark_group("rsa");
    g.bench_function("keygen/512", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            RsaPrivateKey::generate(512, &mut Drbg::new(&i.to_le_bytes())).unwrap()
        })
    });
    g.bench_function("sign/512", |b| {
        b.iter(|| key.sign_pkcs1v15(&digest).unwrap())
    });
    g.bench_function("sign/1024", |b| {
        b.iter(|| key1024.sign_pkcs1v15(&digest).unwrap())
    });
    let sig = key.sign_pkcs1v15(&digest).unwrap();
    g.bench_function("verify/512", |b| {
        b.iter(|| assert!(key.public_key().verify_pkcs1v15(&digest, &sig)))
    });
    g.bench_function("oaep_roundtrip/512", |b| {
        let mut rng = Drbg::new(b"oaep");
        let label = OaepLabel::default();
        b.iter(|| {
            let ct = key
                .public_key()
                .encrypt_oaep(b"secret", &label, &mut rng)
                .unwrap();
            key.decrypt_oaep(&ct, &label).unwrap()
        })
    });
    g.finish();
}

fn bench_drbg(c: &mut Criterion) {
    c.bench_function("drbg/fill_1k", |b| {
        let mut rng = Drbg::new(b"bench");
        b.iter(|| rng.fill(1024))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hashing, bench_rsa, bench_drbg
}
criterion_main!(benches);
