//! The standalone remote verifier service.
//!
//! This module is the *relying party* side of the paper's External
//! Verification property (§3.1), built as a genuinely separate trust
//! domain: it imports **only `sea_crypto` and `std`** — no TPM, no
//! machine, no platform code. Everything it knows about quotes it knows
//! from the canonical wire format and from out-of-band provisioning
//! (the privacy-CA root, trusted build images, the TCB-info table). If
//! the platform and the verifier disagree about a byte, the quote is
//! rejected — there is no shared struct through which representation
//! assumptions could leak. `tests/verifier_differential.rs` pins this
//! module's independent constants and parser against the platform's.
//!
//! A [`VerifierService`] performs the full remote-attestation chain for
//! a fleet of platforms:
//!
//! 1. parse the wire quote (magic, version, framing);
//! 2. walk the AIK certificate chain to the privacy-CA root — or hit
//!    the per-AIK session-ticket cache from an earlier walk;
//! 3. verify the AIK signature over the quoted state and nonce;
//! 4. check nonce freshness against outstanding challenges (each nonce
//!    single-use; optionally bounded by a freshness window);
//! 5. replay the measurement chain against trusted builds, separating
//!    reboot (−1), `SKILL`ed PALs (kill-constant brand) and plain
//!    mismatches;
//! 6. evaluate the TCB-status policy over the matched build.
//!
//! Every decision carries a virtual-time cost so the fleet experiment
//! can model the verifier as a queueing server.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use sea_crypto::{RsaPublicKey, Sha1, Sha1Digest, Signature};

use crate::cert::AikCert;
use crate::tcb::{TcbInfo, TcbPolicy, TcbRollout, TcbStatus, TcbVerdict};

// ---------------------------------------------------------------------------
// The verifier's independent copy of the platform's public constants.
//
// These are *protocol* constants, not shared code: the verifier derives
// them from the wire-format specification, and the differential suite
// asserts they equal the platform's. Importing them from `sea_tpm`
// would collapse the two trust domains this crate exists to separate.
// ---------------------------------------------------------------------------

/// Magic prefix of the quote wire format (spec: `SEAQ`).
const WIRE_MAGIC: [u8; 4] = *b"SEAQ";
/// The one wire-format version this verifier understands.
const WIRE_VERSION: u16 = 2;
/// Domain-separation tag under the quote signature.
const QUOTE_TAG: &[u8] = b"TPM_QUOTE_v1";
/// The value a `SKILL`ed PAL's chain is branded with (§5.5).
const SKILL_BRAND: Sha1Digest = [0x5B; 20];
/// The −1 value dynamic PCRs read after a reboot (§2.1.3).
const PCR_MINUS_ONE: Sha1Digest = [0xFF; 20];
/// The reset value a measurement chain starts from at late launch.
const CHAIN_ZERO: Sha1Digest = [0x00; 20];

/// Virtual cost of parsing and framing checks, per request.
pub const PARSE_COST_NS: u64 = 2_000;
/// Virtual cost of a full AIK certificate-chain walk (RSA verify).
pub const CERT_WALK_COST_NS: u64 = 150_000;
/// Virtual cost of a session-ticket cache hit replacing the walk.
pub const TICKET_HIT_COST_NS: u64 = 1_000;
/// Virtual cost of the quote signature verification (RSA verify).
pub const SIG_VERIFY_COST_NS: u64 = 50_000;
/// Virtual cost of the chain replay + TCB policy evaluation.
pub const POLICY_COST_NS: u64 = 500;
/// Virtual cost of rejecting a session that produced no quote at all.
pub const REJECT_MISSING_COST_NS: u64 = 500;

/// One SHA-1 extend step: `chain ← SHA1(chain ‖ measurement)`.
fn extend(chain: &Sha1Digest, measurement: &Sha1Digest) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update_bytes(chain);
    h.update_bytes(measurement);
    h.finalize_fixed()
}

/// Replays the measurement chain a trusted `image` produces when late
/// launched and then fed `extra_extends` (inputs the PAL measured).
pub fn expected_chain(image: &[u8], extra_extends: &[Sha1Digest]) -> Sha1Digest {
    let mut chain = extend(&CHAIN_ZERO, &Sha1::digest(image));
    for m in extra_extends {
        chain = extend(&chain, m);
    }
    chain
}

/// The digest the AIK signs: `SHA1(tag ‖ source ‖ nonce_len ‖ nonce)`.
fn signed_digest(source_encoding: &[u8], nonce: &[u8]) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update_bytes(QUOTE_TAG);
    h.update_bytes(source_encoding);
    h.update_bytes(&(nonce.len() as u32).to_be_bytes());
    h.update_bytes(nonce);
    h.finalize_fixed()
}

/// Why a session produced no quote at all — the platform-side outcome
/// kinds a verifier can be told about out of band. Typed so verdict
/// accounting cannot drift from the reject taxonomy the way a free-form
/// string could.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum MissingKind {
    /// The session fell back to the unmeasured legacy path.
    Degraded,
    /// The session was terminated by `SKILL` before quoting.
    Killed,
    /// The platform reported an outcome the verifier has no name for.
    Unknown,
}

impl fmt::Display for MissingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissingKind::Degraded => write!(f, "degraded"),
            MissingKind::Killed => write!(f, "killed"),
            MissingKind::Unknown => write!(f, "unknown"),
        }
    }
}

/// Why the verifier rejected an attestation request. Every failure mode
/// is typed: operators triage `PalKilled` very differently from
/// `BadSignature`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The wire bytes do not start with the quote magic.
    BadMagic,
    /// The wire format version is not one this verifier understands.
    UnsupportedVersion(u16),
    /// A field extends past the end of the input.
    Truncated,
    /// Bytes follow the last field — a framing error.
    TrailingBytes,
    /// The source encoding inside the quote is malformed.
    MalformedSource,
    /// No AIK certificate is enrolled for the claimed platform.
    UnknownPlatform,
    /// The enrolled certificate's embedded AIK does not decode.
    BadAikEncoding,
    /// The certificate chain does not walk back to the privacy-CA root.
    BadCertChain,
    /// The enrolled certificate's validity bound has passed. Checked
    /// before the session-ticket cache, so a cached walk can never mask
    /// an expiry.
    CertExpired,
    /// The AIK signature over the quoted state and nonce failed.
    BadSignature,
    /// The quote's nonce matches no outstanding challenge.
    UnknownNonce,
    /// The quote's nonce was already consumed — a replay.
    ReplayedNonce,
    /// The challenge was answered outside the freshness window.
    StaleQuote,
    /// The quote covers ordinary PCRs where a sePCR attestation was
    /// required.
    WrongSource,
    /// The chain reads −1: the platform rebooted since late launch.
    PlatformRebooted,
    /// The chain carries the kill brand: the PAL was `SKILL`ed.
    PalKilled,
    /// The chain replays no trusted build.
    MeasurementMismatch,
    /// The matched build is superseded and policy rejects stale TCBs.
    TcbOutOfDate,
    /// The matched build is revoked.
    TcbRevoked,
    /// The matched build is not listed in the TCB table and policy
    /// requires listing.
    TcbUnlisted,
    /// The session produced no quote at all; carries the typed session
    /// outcome kind.
    MissingQuote(MissingKind),
}

impl RejectReason {
    /// Whether an honest client can plausibly succeed by re-quoting:
    /// transient identity/freshness failures (an expired or mid-rotation
    /// certificate, a timed-out challenge) heal on retry, while
    /// structural, measurement, and TCB failures are terminal.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RejectReason::CertExpired
                | RejectReason::BadSignature
                | RejectReason::StaleQuote
                | RejectReason::UnknownNonce
        )
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BadMagic => write!(f, "bad wire magic"),
            RejectReason::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            RejectReason::Truncated => write!(f, "truncated wire quote"),
            RejectReason::TrailingBytes => write!(f, "trailing bytes after quote"),
            RejectReason::MalformedSource => write!(f, "malformed quote source"),
            RejectReason::UnknownPlatform => write!(f, "no certificate for platform"),
            RejectReason::BadAikEncoding => write!(f, "certificate AIK does not decode"),
            RejectReason::BadCertChain => write!(f, "certificate chain invalid"),
            RejectReason::CertExpired => write!(f, "certificate expired"),
            RejectReason::BadSignature => write!(f, "AIK signature invalid"),
            RejectReason::UnknownNonce => write!(f, "nonce matches no challenge"),
            RejectReason::ReplayedNonce => write!(f, "nonce already consumed"),
            RejectReason::StaleQuote => write!(f, "quote outside freshness window"),
            RejectReason::WrongSource => write!(f, "quote covers unexpected source"),
            RejectReason::PlatformRebooted => write!(f, "platform rebooted since launch"),
            RejectReason::PalKilled => write!(f, "PAL was terminated by SKILL"),
            RejectReason::MeasurementMismatch => write!(f, "chain matches no trusted build"),
            RejectReason::TcbOutOfDate => write!(f, "TCB out of date"),
            RejectReason::TcbRevoked => write!(f, "TCB revoked"),
            RejectReason::TcbUnlisted => write!(f, "build not listed in TCB table"),
            RejectReason::MissingQuote(kind) => {
                write!(f, "session produced no quote ({kind})")
            }
        }
    }
}

impl Error for RejectReason {}

/// The verifier's own structural view of a parsed quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedQuote {
    /// The raw source encoding (covered by the signature).
    pub source_encoding: Vec<u8>,
    /// The decoded source.
    pub source: ParsedSource,
    /// The embedded anti-replay nonce.
    pub nonce: Vec<u8>,
    /// The raw AIK signature bytes.
    pub signature: Vec<u8>,
}

/// What a parsed quote reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedSource {
    /// Ordinary PCRs: `(index, value)` pairs in selection order.
    Pcrs(Vec<(u8, Sha1Digest)>),
    /// A secure-execution PCR value.
    SePcr(Sha1Digest),
}

/// Parses the canonical wire format. Structural checks only — the
/// verifier's independent implementation of the framing spec.
///
/// # Errors
///
/// A typed [`RejectReason`] naming the first structural defect.
pub fn parse_wire(bytes: &[u8]) -> Result<ParsedQuote, RejectReason> {
    let rest = bytes
        .strip_prefix(&WIRE_MAGIC[..])
        .ok_or(RejectReason::BadMagic)?;
    if rest.len() < 2 {
        return Err(RejectReason::Truncated);
    }
    let version = u16::from_be_bytes(rest[..2].try_into().expect("2 bytes"));
    if version != WIRE_VERSION {
        return Err(RejectReason::UnsupportedVersion(version));
    }
    let mut cursor = &rest[2..];
    let mut next = || -> Result<Vec<u8>, RejectReason> {
        if cursor.len() < 4 {
            return Err(RejectReason::Truncated);
        }
        let len = u32::from_be_bytes(cursor[..4].try_into().expect("4 bytes")) as usize;
        cursor = &cursor[4..];
        if cursor.len() < len {
            return Err(RejectReason::Truncated);
        }
        let part = cursor[..len].to_vec();
        cursor = &cursor[len..];
        Ok(part)
    };
    let source_encoding = next()?;
    let nonce = next()?;
    let signature = next()?;
    if !cursor.is_empty() {
        return Err(RejectReason::TrailingBytes);
    }
    let source = parse_source(&source_encoding)?;
    Ok(ParsedQuote {
        source_encoding,
        source,
        nonce,
        signature,
    })
}

fn parse_source(bytes: &[u8]) -> Result<ParsedSource, RejectReason> {
    match bytes.split_first() {
        Some((0x00, rest)) => {
            let n = *rest.first().ok_or(RejectReason::MalformedSource)? as usize;
            let mut cursor = &rest[1..];
            let mut pcrs = Vec::with_capacity(n);
            for _ in 0..n {
                if cursor.len() < 21 {
                    return Err(RejectReason::MalformedSource);
                }
                let value: Sha1Digest = cursor[1..21].try_into().expect("20 bytes");
                pcrs.push((cursor[0], value));
                cursor = &cursor[21..];
            }
            if !cursor.is_empty() {
                return Err(RejectReason::MalformedSource);
            }
            Ok(ParsedSource::Pcrs(pcrs))
        }
        Some((0x01, rest)) => {
            let value: Sha1Digest = rest.try_into().map_err(|_| RejectReason::MalformedSource)?;
            Ok(ParsedSource::SePcr(value))
        }
        _ => Err(RejectReason::MalformedSource),
    }
}

/// A successful attestation: which platform attested to which trusted
/// service, and the TCB status the policy accepted it at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attestation {
    /// The attesting platform.
    pub platform: u64,
    /// Name of the trusted service whose build the chain replayed.
    pub service: String,
    /// The TCB status the build was accepted at.
    pub tcb: TcbStatus,
}

/// The verifier's decision on one request, with its virtual cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The platform the request claimed to come from.
    pub platform: u64,
    /// Accepted attestation or the typed rejection.
    pub result: Result<Attestation, RejectReason>,
    /// Virtual service time spent reaching the decision.
    pub cost_ns: u64,
    /// Whether the AIK session-ticket cache replaced the cert walk.
    pub ticket_hit: bool,
    /// Whether the acceptance happened inside a TCB-rollout grace
    /// window — accepted, but on a build the incoming table has already
    /// superseded.
    pub degraded: bool,
}

/// A cached result of a certificate-chain walk, keyed by AIK
/// fingerprint: subsequent quotes under the same AIK skip the walk
/// until the ticket ages past the configured TTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SessionTicket {
    issued_ns: u64,
}

/// One trusted build the verifier will accept chains from.
#[derive(Debug, Clone)]
struct TrustedBuild {
    service: String,
    image_digest: Sha1Digest,
    /// Chain after launch + measured inputs: what an honest run reads.
    expected: Sha1Digest,
    /// The launch chain branded with the kill constant.
    killed: Sha1Digest,
}

/// Running counters over a verifier's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifierStats {
    /// Requests processed (including missing-quote rejections).
    pub requests: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Full certificate-chain walks performed.
    pub cert_walks: u64,
    /// Session-ticket cache hits.
    pub ticket_hits: u64,
}

/// The remote verifier service for a fleet of platforms.
pub struct VerifierService {
    ca: RsaPublicKey,
    certs: BTreeMap<u64, AikCert>,
    builds: Vec<TrustedBuild>,
    tcb: TcbInfo,
    rollout: Option<TcbRollout>,
    policy: TcbPolicy,
    freshness_window_ns: u64,
    ticket_ttl_ns: u64,
    /// Outstanding challenges: `(platform, nonce) → issued_ns`.
    challenges: BTreeMap<(u64, Vec<u8>), u64>,
    /// Consumed nonces (replay detection outlives the challenge).
    spent: BTreeSet<(u64, Vec<u8>)>,
    tickets: BTreeMap<Sha1Digest, SessionTicket>,
    stats: VerifierStats,
}

impl VerifierService {
    /// A verifier trusting `ca` as its privacy-CA root, with an empty
    /// TCB table at version 0 and the strict policy.
    pub fn new(ca: RsaPublicKey) -> Self {
        VerifierService {
            ca,
            certs: BTreeMap::new(),
            builds: Vec::new(),
            tcb: TcbInfo::new(0),
            rollout: None,
            policy: TcbPolicy::strict(),
            freshness_window_ns: u64::MAX,
            ticket_ttl_ns: u64::MAX,
            challenges: BTreeMap::new(),
            spent: BTreeSet::new(),
            tickets: BTreeMap::new(),
            stats: VerifierStats::default(),
        }
    }

    /// Enrolls a platform's AIK certificate. The chain is walked lazily
    /// on the platform's first quote, not here.
    pub fn enroll(&mut self, cert: AikCert) {
        self.certs.insert(cert.platform(), cert);
    }

    /// Registers `image` as the trusted build of `service`, with the
    /// `extra_extends` an honest run measures into its chain.
    pub fn trust(&mut self, service: &str, image: &[u8], extra_extends: &[Sha1Digest]) {
        let image_chain = extend(&CHAIN_ZERO, &Sha1::digest(image));
        self.builds.push(TrustedBuild {
            service: service.to_owned(),
            image_digest: Sha1::digest(image),
            expected: expected_chain(image, extra_extends),
            killed: extend(&image_chain, &SKILL_BRAND),
        });
    }

    /// Ingests a newer TCB-info table, refusing rollback.
    ///
    /// # Errors
    ///
    /// Returns the rejected table's version if older than the current.
    pub fn ingest_tcb(&mut self, table: TcbInfo) -> Result<(), u32> {
        self.tcb.merge(table)
    }

    /// Begins a staged rollout of a new TCB table: each platform's
    /// logical propagation group switches to the rollout table at its
    /// own arrival time, with the rollout's grace window softening
    /// `OutOfDate` rejections just after the switch. Refuses rollback
    /// against the currently installed table.
    ///
    /// # Errors
    ///
    /// Returns the rejected table's version if older than the current.
    pub fn push_tcb(&mut self, rollout: TcbRollout) -> Result<(), u32> {
        if rollout.table().version() < self.tcb.version() {
            return Err(rollout.table().version());
        }
        self.rollout = Some(rollout);
        Ok(())
    }

    /// Replaces the TCB acceptance policy.
    pub fn set_policy(&mut self, policy: TcbPolicy) {
        self.policy = policy;
    }

    /// Bounds how long after `challenge` a quote stays acceptable.
    pub fn set_freshness_window_ns(&mut self, window: u64) {
        self.freshness_window_ns = window;
    }

    /// Bounds how long a session ticket replaces the certificate walk
    /// before the chain must be re-verified.
    pub fn set_ticket_ttl_ns(&mut self, ttl: u64) {
        self.ticket_ttl_ns = ttl;
    }

    /// Issues a challenge nonce to `platform` at virtual time
    /// `issued_ns`. A quote must echo an outstanding nonce exactly once.
    pub fn challenge(&mut self, platform: u64, nonce: &[u8], issued_ns: u64) {
        self.challenges
            .insert((platform, nonce.to_vec()), issued_ns);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &VerifierStats {
        &self.stats
    }

    /// Rejects a session that produced no quote (degraded or killed on
    /// the platform side); `outcome` is the typed session outcome kind.
    pub fn reject_missing(&mut self, platform: u64, outcome: MissingKind) -> Verdict {
        self.stats.requests += 1;
        self.stats.rejected += 1;
        Verdict {
            platform,
            result: Err(RejectReason::MissingQuote(outcome)),
            cost_ns: REJECT_MISSING_COST_NS,
            ticket_hit: false,
            degraded: false,
        }
    }

    /// Runs the full remote-attestation chain over `wire` at virtual
    /// time `now_ns`, returning the decision and its cost.
    pub fn verify(&mut self, platform: u64, wire: &[u8], now_ns: u64) -> Verdict {
        let mut cost_ns = 0;
        let mut ticket_hit = false;
        let mut degraded = false;
        let result = self.verify_inner(
            platform,
            wire,
            now_ns,
            &mut cost_ns,
            &mut ticket_hit,
            &mut degraded,
        );
        self.stats.requests += 1;
        match &result {
            Ok(_) => self.stats.accepted += 1,
            Err(_) => self.stats.rejected += 1,
        }
        Verdict {
            platform,
            result,
            cost_ns,
            ticket_hit,
            degraded,
        }
    }

    fn verify_inner(
        &mut self,
        platform: u64,
        wire: &[u8],
        now_ns: u64,
        cost_ns: &mut u64,
        ticket_hit: &mut bool,
        degraded: &mut bool,
    ) -> Result<Attestation, RejectReason> {
        // 1. Structure.
        *cost_ns += PARSE_COST_NS;
        let parsed = parse_wire(wire)?;

        // 2. Certificate chain (or session-ticket cache). Expiry is
        // checked on every request — before the ticket cache, so a
        // cached walk can never serve past the certificate's bound.
        let cert = self
            .certs
            .get(&platform)
            .ok_or(RejectReason::UnknownPlatform)?
            .clone();
        if cert.is_expired(now_ns) {
            return Err(RejectReason::CertExpired);
        }
        let aik = cert.aik().map_err(|_| RejectReason::BadAikEncoding)?;
        let fingerprint = aik.fingerprint();
        let live_ticket = self
            .tickets
            .get(&fingerprint)
            .is_some_and(|t| now_ns.saturating_sub(t.issued_ns) <= self.ticket_ttl_ns);
        if live_ticket {
            *cost_ns += TICKET_HIT_COST_NS;
            *ticket_hit = true;
            self.stats.ticket_hits += 1;
        } else {
            *cost_ns += CERT_WALK_COST_NS;
            self.stats.cert_walks += 1;
            if !cert.verify(&self.ca) {
                return Err(RejectReason::BadCertChain);
            }
            self.tickets
                .insert(fingerprint, SessionTicket { issued_ns: now_ns });
        }

        // 3. Quote signature.
        *cost_ns += SIG_VERIFY_COST_NS;
        let digest = signed_digest(&parsed.source_encoding, &parsed.nonce);
        let signature = Signature(parsed.signature.clone());
        if !aik.verify_pkcs1v15(&digest, &signature) {
            return Err(RejectReason::BadSignature);
        }

        // 4. Nonce freshness: single-use, outstanding, inside window.
        let key = (platform, parsed.nonce.clone());
        if self.spent.contains(&key) {
            return Err(RejectReason::ReplayedNonce);
        }
        let issued_ns = self
            .challenges
            .remove(&key)
            .ok_or(RejectReason::UnknownNonce)?;
        self.spent.insert(key);
        if now_ns.saturating_sub(issued_ns) > self.freshness_window_ns {
            return Err(RejectReason::StaleQuote);
        }

        // 5. Chain replay against the trusted builds.
        let ParsedSource::SePcr(value) = parsed.source else {
            return Err(RejectReason::WrongSource);
        };
        let matched = self.builds.iter().find(|b| value == b.expected);
        let Some(build) = matched else {
            if value == PCR_MINUS_ONE {
                return Err(RejectReason::PlatformRebooted);
            }
            if self.builds.iter().any(|b| value == b.killed) {
                return Err(RejectReason::PalKilled);
            }
            return Err(RejectReason::MeasurementMismatch);
        };

        // 6. TCB-status policy, against whichever table has reached
        // this platform's propagation group.
        *cost_ns += POLICY_COST_NS;
        let rollout_active = self
            .rollout
            .as_ref()
            .is_some_and(|r| r.active_for(platform, now_ns));
        let status = if rollout_active {
            self.rollout
                .as_ref()
                .expect("rollout_active implies Some")
                .table()
                .status(&build.image_digest)
        } else {
            self.tcb.status(&build.image_digest)
        };
        let mut verdict = self.policy.evaluate(status);
        if verdict == TcbVerdict::OutOfDate
            && self
                .rollout
                .as_ref()
                .is_some_and(|r| r.in_grace(platform, now_ns))
        {
            // The superseding table only just reached this group: accept
            // the stale build, degraded, for the bounded grace window.
            verdict = TcbVerdict::Accepted(TcbStatus::OutOfDate);
            *degraded = true;
        }
        match verdict {
            TcbVerdict::Accepted(status) => Ok(Attestation {
                platform,
                service: build.service.clone(),
                tcb: status,
            }),
            TcbVerdict::OutOfDate => Err(RejectReason::TcbOutOfDate),
            TcbVerdict::Revoked => Err(RejectReason::TcbRevoked),
            TcbVerdict::Unlisted => Err(RejectReason::TcbUnlisted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcb::TcbStatus;
    use sea_crypto::{Drbg, RsaPrivateKey};

    // These tests build quotes BY HAND from the wire-format spec, using
    // only sea-crypto — proving the verifier needs no platform code.

    fn key(seed: &[u8]) -> RsaPrivateKey {
        RsaPrivateKey::generate(512, &mut Drbg::new(seed)).expect("keygen")
    }

    fn encode_sepcr(value: &Sha1Digest) -> Vec<u8> {
        let mut out = vec![0x01];
        out.extend_from_slice(value);
        out
    }

    fn wire_quote(aik: &RsaPrivateKey, source: &[u8], nonce: &[u8]) -> Vec<u8> {
        let sig = aik
            .sign_pkcs1v15(&signed_digest(source, nonce))
            .expect("sign");
        let mut out = WIRE_MAGIC.to_vec();
        out.extend_from_slice(&WIRE_VERSION.to_be_bytes());
        for part in [source, nonce, &sig.0] {
            out.extend_from_slice(&(part.len() as u32).to_be_bytes());
            out.extend_from_slice(part);
        }
        out
    }

    struct Rig {
        verifier: VerifierService,
        aik: RsaPrivateKey,
        image: Vec<u8>,
    }

    fn rig() -> Rig {
        let ca = key(b"verifier test ca");
        let aik = key(b"verifier test aik");
        let image = b"trusted service image".to_vec();
        let mut verifier = VerifierService::new(ca.public_key().clone());
        verifier.enroll(AikCert::issue(&ca, 1, aik.public_key()));
        verifier.trust("svc", &image, &[]);
        verifier
            .ingest_tcb(TcbInfo::new(1).with_status(Sha1::digest(&image), TcbStatus::UpToDate))
            .expect("fresh table");
        Rig {
            verifier,
            aik,
            image,
        }
    }

    fn honest_wire(r: &Rig, nonce: &[u8]) -> Vec<u8> {
        wire_quote(&r.aik, &encode_sepcr(&expected_chain(&r.image, &[])), nonce)
    }

    #[test]
    fn honest_quote_accepted_and_ticket_cached() {
        let mut r = rig();
        r.verifier.challenge(1, b"n1", 0);
        r.verifier.challenge(1, b"n2", 0);
        let v1 = r.verifier.verify(1, &honest_wire(&r, b"n1"), 10);
        let att = v1.result.expect("accept");
        assert_eq!(att.service, "svc");
        assert_eq!(att.tcb, TcbStatus::UpToDate);
        assert!(!v1.ticket_hit);
        assert_eq!(
            v1.cost_ns,
            PARSE_COST_NS + CERT_WALK_COST_NS + SIG_VERIFY_COST_NS + POLICY_COST_NS
        );
        // Second quote under the same AIK hits the ticket cache.
        let v2 = r.verifier.verify(1, &honest_wire(&r, b"n2"), 20);
        assert!(v2.result.is_ok());
        assert!(v2.ticket_hit);
        assert_eq!(
            v2.cost_ns,
            PARSE_COST_NS + TICKET_HIT_COST_NS + SIG_VERIFY_COST_NS + POLICY_COST_NS
        );
        assert_eq!(r.verifier.stats().cert_walks, 1);
        assert_eq!(r.verifier.stats().ticket_hits, 1);
        assert_eq!(r.verifier.stats().accepted, 2);
    }

    #[test]
    fn expired_ticket_forces_certificate_rewalk() {
        let mut r = rig();
        r.verifier.set_ticket_ttl_ns(100);
        for nonce in [b"1", b"2", b"3"] {
            r.verifier.challenge(1, nonce, 0);
        }
        assert!(!r.verifier.verify(1, &honest_wire(&r, b"1"), 0).ticket_hit);
        // Inside the TTL the ticket still serves.
        assert!(r.verifier.verify(1, &honest_wire(&r, b"2"), 50).ticket_hit);
        // Past the TTL the chain is walked again and the ticket renewed.
        let v = r.verifier.verify(1, &honest_wire(&r, b"3"), 500);
        assert!(!v.ticket_hit);
        assert!(v.result.is_ok());
        assert_eq!(r.verifier.stats().cert_walks, 2);
    }

    #[test]
    fn nonce_is_single_use_and_window_bounded() {
        let mut r = rig();
        r.verifier.challenge(1, b"n", 0);
        let wire = honest_wire(&r, b"n");
        assert!(r.verifier.verify(1, &wire, 5).result.is_ok());
        // Replaying the same quote is rejected.
        assert_eq!(
            r.verifier.verify(1, &wire, 6).result,
            Err(RejectReason::ReplayedNonce)
        );
        // A nonce never challenged is unknown.
        assert_eq!(
            r.verifier.verify(1, &honest_wire(&r, b"x"), 7).result,
            Err(RejectReason::UnknownNonce)
        );
        // A challenge answered outside the window is stale.
        r.verifier.set_freshness_window_ns(100);
        r.verifier.challenge(1, b"late", 1_000);
        assert_eq!(
            r.verifier
                .verify(1, &honest_wire(&r, b"late"), 2_000)
                .result,
            Err(RejectReason::StaleQuote)
        );
    }

    #[test]
    fn structural_defects_are_typed() {
        let mut r = rig();
        r.verifier.challenge(1, b"n", 0);
        let wire = honest_wire(&r, b"n");
        assert_eq!(parse_wire(b"").unwrap_err(), RejectReason::BadMagic);
        assert_eq!(parse_wire(b"SEAQ").unwrap_err(), RejectReason::Truncated);
        let mut future = wire.clone();
        future[5] = 0x63;
        assert_eq!(
            parse_wire(&future).unwrap_err(),
            RejectReason::UnsupportedVersion(0x0063)
        );
        assert_eq!(
            parse_wire(&wire[..wire.len() - 1]).unwrap_err(),
            RejectReason::Truncated
        );
        let mut padded = wire.clone();
        padded.push(0);
        assert_eq!(
            parse_wire(&padded).unwrap_err(),
            RejectReason::TrailingBytes
        );
        // All surface through verify() too, with parse-only cost.
        let v = r.verifier.verify(1, &padded, 1);
        assert_eq!(v.result, Err(RejectReason::TrailingBytes));
        assert_eq!(v.cost_ns, PARSE_COST_NS);
    }

    #[test]
    fn identity_failures_are_typed() {
        let mut r = rig();
        r.verifier.challenge(1, b"n", 0);
        r.verifier.challenge(99, b"n", 0);
        // Unknown platform: no certificate enrolled.
        assert_eq!(
            r.verifier.verify(99, &honest_wire(&r, b"n"), 1).result,
            Err(RejectReason::UnknownPlatform)
        );
        // Quote signed by a different AIK than the certificate vouches.
        let mallory = key(b"verifier test mallory");
        let forged = wire_quote(
            &mallory,
            &encode_sepcr(&expected_chain(&r.image, &[])),
            b"n",
        );
        assert_eq!(
            r.verifier.verify(1, &forged, 1).result,
            Err(RejectReason::BadSignature)
        );
    }

    #[test]
    fn chain_states_classify_reboot_kill_and_mismatch() {
        let mut r = rig();
        for nonce in [b"a", b"b", b"c", b"d"] {
            r.verifier.challenge(1, nonce, 0);
        }
        // Reboot: dynamic PCRs read −1.
        let v = r.verifier.verify(
            1,
            &wire_quote(&r.aik, &encode_sepcr(&PCR_MINUS_ONE), b"a"),
            1,
        );
        assert_eq!(v.result, Err(RejectReason::PlatformRebooted));
        // SKILLed: launch chain branded with the kill constant.
        let launch = extend(&CHAIN_ZERO, &Sha1::digest(&r.image));
        let killed = extend(&launch, &SKILL_BRAND);
        let v = r
            .verifier
            .verify(1, &wire_quote(&r.aik, &encode_sepcr(&killed), b"b"), 1);
        assert_eq!(v.result, Err(RejectReason::PalKilled));
        // Unknown code.
        let other = expected_chain(b"evil image", &[]);
        let v = r
            .verifier
            .verify(1, &wire_quote(&r.aik, &encode_sepcr(&other), b"c"), 1);
        assert_eq!(v.result, Err(RejectReason::MeasurementMismatch));
        // Ordinary-PCR quote where a sePCR attestation is required.
        let pcr_src = [vec![0x00, 0x01, 17], expected_chain(&r.image, &[]).to_vec()].concat();
        let v = r.verifier.verify(1, &wire_quote(&r.aik, &pcr_src, b"d"), 1);
        assert_eq!(v.result, Err(RejectReason::WrongSource));
    }

    #[test]
    fn tcb_policy_gates_accepted_chains() {
        let mut r = rig();
        let digest = Sha1::digest(&r.image);
        for nonce in [b"1", b"2", b"3", b"4"] {
            r.verifier.challenge(1, nonce, 0);
        }
        // Out of date: strict policy rejects, tolerant accepts.
        r.verifier
            .ingest_tcb(TcbInfo::new(2).with_status(digest, TcbStatus::OutOfDate))
            .unwrap();
        assert_eq!(
            r.verifier.verify(1, &honest_wire(&r, b"1"), 1).result,
            Err(RejectReason::TcbOutOfDate)
        );
        r.verifier
            .set_policy(TcbPolicy::strict().accept_out_of_date(true));
        let att = r
            .verifier
            .verify(1, &honest_wire(&r, b"2"), 1)
            .result
            .unwrap();
        assert_eq!(att.tcb, TcbStatus::OutOfDate);
        // Revocation is terminal even under the tolerant policy.
        r.verifier
            .ingest_tcb(TcbInfo::new(3).with_status(digest, TcbStatus::Revoked))
            .unwrap();
        assert_eq!(
            r.verifier.verify(1, &honest_wire(&r, b"3"), 1).result,
            Err(RejectReason::TcbRevoked)
        );
        // Rollback to the old table is refused; verdict unchanged.
        assert_eq!(
            r.verifier
                .ingest_tcb(TcbInfo::new(1).with_status(digest, TcbStatus::UpToDate)),
            Err(1)
        );
        assert_eq!(
            r.verifier.verify(1, &honest_wire(&r, b"4"), 1).result,
            Err(RejectReason::TcbRevoked)
        );
    }

    #[test]
    fn missing_quote_rejection_counts() {
        let ca = key(b"verifier test ca");
        let mut v = VerifierService::new(ca.public_key().clone());
        let verdict = v.reject_missing(7, MissingKind::Degraded);
        assert_eq!(
            verdict.result,
            Err(RejectReason::MissingQuote(MissingKind::Degraded))
        );
        assert_eq!(verdict.cost_ns, REJECT_MISSING_COST_NS);
        assert_eq!(v.stats().requests, 1);
        assert_eq!(v.stats().rejected, 1);
    }

    #[test]
    fn expired_certificate_rejected_even_on_a_live_ticket() {
        let ca = key(b"verifier test ca");
        let aik = key(b"verifier test aik");
        let image = b"trusted service image".to_vec();
        let mut verifier = VerifierService::new(ca.public_key().clone());
        verifier.enroll(AikCert::issue_expiring(&ca, 1, aik.public_key(), 1_000));
        verifier.trust("svc", &image, &[]);
        verifier
            .ingest_tcb(TcbInfo::new(1).with_status(Sha1::digest(&image), TcbStatus::UpToDate))
            .expect("fresh table");
        let wire =
            |nonce: &[u8]| wire_quote(&aik, &encode_sepcr(&expected_chain(&image, &[])), nonce);
        verifier.challenge(1, b"a", 0);
        verifier.challenge(1, b"b", 0);
        verifier.challenge(1, b"c", 0);
        // Inside validity: accepted (inclusive bound), ticket cached.
        assert!(verifier.verify(1, &wire(b"a"), 500).result.is_ok());
        assert!(verifier.verify(1, &wire(b"b"), 1_000).result.is_ok());
        // Past the bound: the live ticket must NOT mask expiry.
        let v = verifier.verify(1, &wire(b"c"), 1_001);
        assert_eq!(v.result, Err(RejectReason::CertExpired));
        assert!(!v.ticket_hit);
        assert!(RejectReason::CertExpired.is_retryable());
        // Re-enrolling a fresh certificate heals the platform.
        verifier.enroll(AikCert::issue(&ca, 1, aik.public_key()));
        verifier.challenge(1, b"d", 1_002);
        assert!(verifier.verify(1, &wire(b"d"), 1_003).result.is_ok());
    }

    #[test]
    fn tcb_rollout_staggers_groups_and_grace_degrades() {
        let mut r = rig();
        let digest = Sha1::digest(&r.image);
        // New table marks the build OutOfDate; 2 groups, 1000ns apart,
        // 500ns grace. Platform 1 is group 1 → arrival at 11_000.
        r.verifier
            .push_tcb(TcbRollout::new(
                TcbInfo::new(2).with_status(digest, TcbStatus::OutOfDate),
                10_000,
                2,
                1_000,
                500,
            ))
            .expect("newer table");
        for nonce in [b"1", b"2", b"3"] {
            r.verifier.challenge(1, nonce, 0);
        }
        // Before the rollout reaches group 1: old table still rules.
        let v = r.verifier.verify(1, &honest_wire(&r, b"1"), 10_500);
        assert!(v.result.is_ok());
        assert!(!v.degraded);
        // Inside the grace window: accepted but degraded.
        let v = r.verifier.verify(1, &honest_wire(&r, b"2"), 11_400);
        assert_eq!(v.result.expect("grace accepts").tcb, TcbStatus::OutOfDate);
        assert!(v.degraded);
        // Past the grace window: strict policy rejects.
        let v = r.verifier.verify(1, &honest_wire(&r, b"3"), 11_501);
        assert_eq!(v.result, Err(RejectReason::TcbOutOfDate));
        // Rollback pushes are refused.
        assert_eq!(
            r.verifier
                .push_tcb(TcbRollout::new(TcbInfo::new(0), 0, 1, 0, 0)),
            Err(0)
        );
    }

    #[test]
    fn reject_reasons_display() {
        for r in [
            RejectReason::BadMagic,
            RejectReason::UnsupportedVersion(9),
            RejectReason::Truncated,
            RejectReason::TrailingBytes,
            RejectReason::MalformedSource,
            RejectReason::UnknownPlatform,
            RejectReason::BadAikEncoding,
            RejectReason::BadCertChain,
            RejectReason::BadSignature,
            RejectReason::UnknownNonce,
            RejectReason::ReplayedNonce,
            RejectReason::StaleQuote,
            RejectReason::WrongSource,
            RejectReason::PlatformRebooted,
            RejectReason::PalKilled,
            RejectReason::MeasurementMismatch,
            RejectReason::TcbOutOfDate,
            RejectReason::TcbRevoked,
            RejectReason::TcbUnlisted,
            RejectReason::CertExpired,
            RejectReason::MissingQuote(MissingKind::Degraded),
            RejectReason::MissingQuote(MissingKind::Killed),
            RejectReason::MissingQuote(MissingKind::Unknown),
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
