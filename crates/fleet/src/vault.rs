//! Process-wide key vault for fleet provisioning.
//!
//! A 1000-platform fleet needs 1000 AIKs, a shared SRK, and a
//! privacy-CA root — and RSA key generation is by far the most
//! expensive operation in the simulator (milliseconds per key even at
//! the demo strength). The vault derives every key deterministically
//! from fixed seeds and caches it for the life of the process, so
//! repeated fleet runs (and the differential suite's byte-identity
//! sweeps) pay the generation cost once. Determinism is the point:
//! platform *i* has the same AIK in every run, shard layout, and
//! dispatch order.

use std::sync::{Mutex, OnceLock};

use sea_crypto::{Drbg, RsaPrivateKey, RsaPublicKey};
use sea_hw::TpmKind;
use sea_tpm::Tpm;

use crate::cert::AikCert;

/// RSA modulus size for fleet keys (the workspace's demo strength).
const FLEET_KEY_BITS: usize = 512;

/// Deterministic, process-cached key material for a simulated fleet.
pub struct KeyVault {
    ca: RsaPrivateKey,
    srk: RsaPrivateKey,
    aiks: Mutex<Vec<Option<RsaPrivateKey>>>,
}

static VAULT: OnceLock<KeyVault> = OnceLock::new();

fn derive_key(seed: &[u8]) -> RsaPrivateKey {
    RsaPrivateKey::generate(FLEET_KEY_BITS, &mut Drbg::new(seed))
        .expect("fleet key generation from a fixed seed cannot fail")
}

impl KeyVault {
    /// The process-wide vault, generating the CA root and shared SRK on
    /// first use.
    pub fn global() -> &'static KeyVault {
        VAULT.get_or_init(|| KeyVault {
            ca: derive_key(b"fleet/ca"),
            srk: derive_key(b"fleet/srk"),
            aiks: Mutex::new(Vec::new()),
        })
    }

    /// The privacy-CA root public key (what verifiers are provisioned
    /// with).
    pub fn ca_public(&self) -> RsaPublicKey {
        self.ca.public_key().clone()
    }

    /// Platform `index`'s AIK, derived from a per-platform seed and
    /// cached.
    pub fn aik(&self, index: usize) -> RsaPrivateKey {
        let mut aiks = self.aiks.lock().expect("vault lock");
        if aiks.len() <= index {
            aiks.resize(index + 1, None);
        }
        aiks[index]
            .get_or_insert_with(|| {
                derive_key(&[b"fleet/aik/".as_slice(), &(index as u64).to_le_bytes()].concat())
            })
            .clone()
    }

    /// The privacy-CA certificate over platform `index`'s AIK.
    pub fn certificate(&self, index: usize) -> AikCert {
        AikCert::issue(&self.ca, index as u64, self.aik(index).public_key())
    }

    /// A TPM for platform `index`, provisioned with the vault's shared
    /// SRK and the platform's AIK (proposed-hardware kind, so sePCR
    /// quotes are available).
    pub fn tpm(&self, index: usize) -> Tpm {
        Tpm::with_keys(
            TpmKind::FutureFast,
            self.srk.clone(),
            self.aik(index),
            &[b"fleet/tpm/".as_slice(), &(index as u64).to_le_bytes()].concat(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let vault = KeyVault::global();
        assert_eq!(vault.aik(3).public_key(), vault.aik(3).public_key());
        assert_ne!(vault.aik(0).public_key(), vault.aik(1).public_key());
        assert_eq!(vault.ca_public(), KeyVault::global().ca_public());
    }

    #[test]
    fn certificates_verify_against_the_ca_root() {
        let vault = KeyVault::global();
        let cert = vault.certificate(5);
        assert_eq!(cert.platform(), 5);
        assert!(cert.verify(&vault.ca_public()));
        assert_eq!(
            &cert.aik().expect("embedded key"),
            vault.aik(5).public_key()
        );
    }

    #[test]
    fn tpms_carry_the_vault_identity() {
        let vault = KeyVault::global();
        let tpm = vault.tpm(2);
        assert_eq!(tpm.aik_public(), vault.aik(2).public_key());
        assert_eq!(tpm.srk_public(), vault.srk.public_key());
    }
}
