//! Process-wide key vault for fleet provisioning.
//!
//! A 1000-platform fleet needs 1000 AIKs, a shared SRK, and a
//! privacy-CA root — and RSA key generation is by far the most
//! expensive operation in the simulator (milliseconds per key even at
//! the demo strength). The vault derives every key deterministically
//! from fixed seeds and caches it for the life of the process, so
//! repeated fleet runs (and the differential suite's byte-identity
//! sweeps) pay the generation cost once. Determinism is the point:
//! platform *i* has the same AIK in every run, shard layout, and
//! dispatch order.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use sea_crypto::{Drbg, RsaPrivateKey, RsaPublicKey};
use sea_hw::TpmKind;
use sea_tpm::Tpm;

use crate::cert::AikCert;

/// RSA modulus size for fleet keys (the workspace's demo strength).
const FLEET_KEY_BITS: usize = 512;

/// Deterministic, process-cached key material for a simulated fleet.
///
/// AIKs are keyed by `(platform, generation)`: generation 0 is the key
/// a platform is born with (and the one its vault TPM signs with);
/// higher generations exist for certificate-rotation churn, where a
/// platform re-enrolls under a fresh identity key mid-run.
pub struct KeyVault {
    ca: RsaPrivateKey,
    srk: RsaPrivateKey,
    aiks: Mutex<BTreeMap<(usize, u32), RsaPrivateKey>>,
}

static VAULT: OnceLock<KeyVault> = OnceLock::new();

fn derive_key(seed: &[u8]) -> RsaPrivateKey {
    RsaPrivateKey::generate(FLEET_KEY_BITS, &mut Drbg::new(seed))
        .expect("fleet key generation from a fixed seed cannot fail")
}

impl KeyVault {
    /// The process-wide vault, generating the CA root and shared SRK on
    /// first use.
    pub fn global() -> &'static KeyVault {
        VAULT.get_or_init(|| KeyVault {
            ca: derive_key(b"fleet/ca"),
            srk: derive_key(b"fleet/srk"),
            aiks: Mutex::new(BTreeMap::new()),
        })
    }

    /// The privacy-CA root public key (what verifiers are provisioned
    /// with).
    pub fn ca_public(&self) -> RsaPublicKey {
        self.ca.public_key().clone()
    }

    /// Platform `index`'s generation-0 AIK, derived from a
    /// per-platform seed and cached.
    pub fn aik(&self, index: usize) -> RsaPrivateKey {
        self.aik_generation(index, 0)
    }

    /// Platform `index`'s AIK at `generation`, derived from a
    /// per-`(platform, generation)` seed and cached. Generation 0 uses
    /// the original seed so pre-rotation key material is unchanged.
    pub fn aik_generation(&self, index: usize, generation: u32) -> RsaPrivateKey {
        let mut aiks = self.aiks.lock().expect("vault lock");
        aiks.entry((index, generation))
            .or_insert_with(|| {
                let mut seed = [b"fleet/aik/".as_slice(), &(index as u64).to_le_bytes()].concat();
                if generation > 0 {
                    seed.extend_from_slice(b"/gen/");
                    seed.extend_from_slice(&generation.to_le_bytes());
                }
                derive_key(&seed)
            })
            .clone()
    }

    /// The never-expiring privacy-CA certificate over platform
    /// `index`'s generation-0 AIK.
    pub fn certificate(&self, index: usize) -> AikCert {
        AikCert::issue(&self.ca, index as u64, self.aik(index).public_key())
    }

    /// A privacy-CA certificate over platform `index`'s AIK at
    /// `generation`, valid through `not_after_ns` (inclusive). This is
    /// the rotation path: churn provisions generation 0 with a finite
    /// bound, then re-enrolls generation 1 once it expires.
    pub fn certificate_generation(
        &self,
        index: usize,
        generation: u32,
        not_after_ns: u64,
    ) -> AikCert {
        AikCert::issue_expiring(
            &self.ca,
            index as u64,
            self.aik_generation(index, generation).public_key(),
            not_after_ns,
        )
    }

    /// A TPM for platform `index`, provisioned with the vault's shared
    /// SRK and the platform's AIK (proposed-hardware kind, so sePCR
    /// quotes are available).
    pub fn tpm(&self, index: usize) -> Tpm {
        Tpm::with_keys(
            TpmKind::FutureFast,
            self.srk.clone(),
            self.aik(index),
            &[b"fleet/tpm/".as_slice(), &(index as u64).to_le_bytes()].concat(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let vault = KeyVault::global();
        assert_eq!(vault.aik(3).public_key(), vault.aik(3).public_key());
        assert_ne!(vault.aik(0).public_key(), vault.aik(1).public_key());
        assert_eq!(vault.ca_public(), KeyVault::global().ca_public());
    }

    #[test]
    fn generations_are_distinct_and_generation_zero_is_the_original() {
        let vault = KeyVault::global();
        assert_eq!(
            vault.aik(4).public_key(),
            vault.aik_generation(4, 0).public_key()
        );
        assert_ne!(
            vault.aik_generation(4, 0).public_key(),
            vault.aik_generation(4, 1).public_key()
        );
        assert_ne!(
            vault.aik_generation(4, 1).public_key(),
            vault.aik_generation(5, 1).public_key()
        );
        let rotated = vault.certificate_generation(4, 1, 77);
        assert_eq!(rotated.platform(), 4);
        assert_eq!(rotated.not_after_ns(), 77);
        assert!(rotated.verify(&vault.ca_public()));
        assert_eq!(
            &rotated.aik().expect("embedded key"),
            vault.aik_generation(4, 1).public_key()
        );
    }

    #[test]
    fn certificates_verify_against_the_ca_root() {
        let vault = KeyVault::global();
        let cert = vault.certificate(5);
        assert_eq!(cert.platform(), 5);
        assert!(cert.verify(&vault.ca_public()));
        assert_eq!(
            &cert.aik().expect("embedded key"),
            vault.aik(5).public_key()
        );
    }

    #[test]
    fn tpms_carry_the_vault_identity() {
        let vault = KeyVault::global();
        let tpm = vault.tpm(2);
        assert_eq!(tpm.aik_public(), vault.aik(2).public_key());
        assert_eq!(tpm.srk_public(), vault.srk.public_key());
    }
}
