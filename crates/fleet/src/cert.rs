//! Privacy-CA certificates binding an AIK public key to a platform.
//!
//! In the TPM v1.2 deployment model the paper assumes, a platform's
//! Attestation Identity Key is vouched for by a privacy CA: the CA signs
//! a certificate over the AIK public key, and a remote verifier trusts a
//! quote only after walking that chain back to the CA root it was
//! provisioned with. [`AikCert`] is the minimal such certificate — a
//! platform identifier plus the serialized AIK public key, signed by the
//! CA — with a canonical byte encoding so verifiers can ingest it over
//! the wire.

use sea_crypto::{CryptoError, RsaPrivateKey, RsaPublicKey, Sha1, Sha1Digest, Signature};

/// Domain-separation tag mixed into every certificate digest.
const CERT_TAG: &[u8] = b"SEA_AIK_CERT_v1";

/// A privacy-CA certificate over one platform's AIK public key.
///
/// Certificates carry a validity bound (`not_after_ns`, virtual
/// nanoseconds): a verifier must refuse quotes chained to an expired
/// certificate even when its session-ticket cache would otherwise skip
/// the walk. `u64::MAX` means "never expires" — the posture of the
/// original, rotation-free fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AikCert {
    platform: u64,
    not_after_ns: u64,
    aik_bytes: Vec<u8>,
    signature: Signature,
}

impl AikCert {
    /// Issues a never-expiring certificate: the CA signs
    /// `SHA1(tag || platform || not_after || aik)`.
    ///
    /// # Panics
    ///
    /// Panics if the CA key is too small to sign a SHA-1 digest — a
    /// provisioning error, not a runtime condition.
    pub fn issue(ca: &RsaPrivateKey, platform: u64, aik: &RsaPublicKey) -> Self {
        Self::issue_expiring(ca, platform, aik, u64::MAX)
    }

    /// Issues a certificate valid through `not_after_ns` (inclusive).
    /// The expiry is bound into the signed digest, so it cannot be
    /// stripped or extended in transit.
    ///
    /// # Panics
    ///
    /// Panics if the CA key is too small to sign a SHA-1 digest — a
    /// provisioning error, not a runtime condition.
    pub fn issue_expiring(
        ca: &RsaPrivateKey,
        platform: u64,
        aik: &RsaPublicKey,
        not_after_ns: u64,
    ) -> Self {
        let aik_bytes = aik.to_bytes();
        let digest = Self::digest(platform, not_after_ns, &aik_bytes);
        let signature = ca
            .sign_pkcs1v15(&digest)
            .expect("privacy-CA key must be able to sign a SHA-1 digest");
        AikCert {
            platform,
            not_after_ns,
            aik_bytes,
            signature,
        }
    }

    /// The platform this certificate vouches for.
    pub fn platform(&self) -> u64 {
        self.platform
    }

    /// Last virtual-time instant (inclusive) at which the certificate
    /// is valid; `u64::MAX` means it never expires.
    pub fn not_after_ns(&self) -> u64 {
        self.not_after_ns
    }

    /// Whether the certificate is expired at `now_ns`.
    pub fn is_expired(&self, now_ns: u64) -> bool {
        now_ns > self.not_after_ns
    }

    /// The serialized AIK public key the certificate binds.
    pub fn aik_bytes(&self) -> &[u8] {
        &self.aik_bytes
    }

    /// Decodes the embedded AIK public key.
    ///
    /// # Errors
    ///
    /// Returns the decoding error if the embedded bytes are not a valid
    /// public-key encoding (possible for certificates parsed off the
    /// wire; `issue` always embeds a valid one).
    pub fn aik(&self) -> Result<RsaPublicKey, CryptoError> {
        RsaPublicKey::from_bytes(&self.aik_bytes)
    }

    /// Checks the CA signature over this certificate.
    pub fn verify(&self, ca: &RsaPublicKey) -> bool {
        let digest = Self::digest(self.platform, self.not_after_ns, &self.aik_bytes);
        ca.verify_pkcs1v15(&digest, &self.signature)
    }

    fn digest(platform: u64, not_after_ns: u64, aik_bytes: &[u8]) -> Sha1Digest {
        let mut h = Sha1::new();
        h.update_bytes(CERT_TAG);
        h.update_bytes(&platform.to_be_bytes());
        h.update_bytes(&not_after_ns.to_be_bytes());
        h.update_bytes(&(aik_bytes.len() as u32).to_be_bytes());
        h.update_bytes(aik_bytes);
        h.finalize_fixed()
    }

    /// Canonical encoding: platform (u64 BE), validity bound (u64 BE),
    /// then length-prefixed AIK bytes and signature bytes (u32 BE
    /// lengths).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.platform.to_be_bytes());
        out.extend_from_slice(&self.not_after_ns.to_be_bytes());
        for field in [&self.aik_bytes, &self.signature.0] {
            out.extend_from_slice(&(field.len() as u32).to_be_bytes());
            out.extend_from_slice(field);
        }
        out
    }

    /// Parses the canonical encoding, rejecting truncated input and
    /// trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidCiphertext`] on any structural
    /// defect; the signature itself is *not* checked here (use
    /// [`AikCert::verify`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], CryptoError> {
            if cursor.len() < n {
                return Err(CryptoError::InvalidCiphertext);
            }
            let (head, rest) = cursor.split_at(n);
            *cursor = rest;
            Ok(head)
        }
        let mut cursor = bytes;
        let platform = u64::from_be_bytes(take(&mut cursor, 8)?.try_into().expect("eight bytes"));
        let not_after_ns =
            u64::from_be_bytes(take(&mut cursor, 8)?.try_into().expect("eight bytes"));
        let mut fields = Vec::with_capacity(2);
        for _ in 0..2 {
            let len =
                u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("four bytes")) as usize;
            fields.push(take(&mut cursor, len)?.to_vec());
        }
        if !cursor.is_empty() {
            return Err(CryptoError::InvalidCiphertext);
        }
        let signature = Signature(fields.pop().expect("two fields"));
        let aik_bytes = fields.pop().expect("two fields");
        Ok(AikCert {
            platform,
            not_after_ns,
            aik_bytes,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_crypto::Drbg;

    fn keypair(seed: &[u8]) -> RsaPrivateKey {
        let mut rng = Drbg::new(seed);
        RsaPrivateKey::generate(512, &mut rng).expect("keygen")
    }

    #[test]
    fn issue_verify_roundtrip() {
        let ca = keypair(b"cert test ca");
        let aik = keypair(b"cert test aik");
        let cert = AikCert::issue(&ca, 42, aik.public_key());
        assert_eq!(cert.platform(), 42);
        assert!(cert.verify(ca.public_key()));
        assert_eq!(&cert.aik().expect("embedded key"), aik.public_key());

        let parsed = AikCert::from_bytes(&cert.to_bytes()).expect("parse");
        assert_eq!(parsed, cert);
        assert!(parsed.verify(ca.public_key()));
    }

    #[test]
    fn wrong_ca_and_tampered_fields_fail() {
        let ca = keypair(b"cert test ca");
        let other = keypair(b"cert test other ca");
        let aik = keypair(b"cert test aik");
        let cert = AikCert::issue(&ca, 7, aik.public_key());
        assert!(!cert.verify(other.public_key()));

        // Flipping any byte of the encoding must break verification or
        // parsing — the certificate binds every field it carries.
        let bytes = cert.to_bytes();
        for idx in [0, 8, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x01;
            match AikCert::from_bytes(&bad) {
                Ok(parsed) => assert!(!parsed.verify(ca.public_key())),
                Err(e) => assert_eq!(e, CryptoError::InvalidCiphertext),
            }
        }
    }

    #[test]
    fn expiry_is_bound_into_the_signature() {
        let ca = keypair(b"cert test ca");
        let aik = keypair(b"cert test aik");
        let cert = AikCert::issue_expiring(&ca, 9, aik.public_key(), 1_000_000);
        assert_eq!(cert.not_after_ns(), 1_000_000);
        assert!(!cert.is_expired(1_000_000), "bound is inclusive");
        assert!(cert.is_expired(1_000_001));
        assert!(cert.verify(ca.public_key()));

        // The bound survives the wire and cannot be extended: rewriting
        // the not_after field breaks the CA signature.
        let parsed = AikCert::from_bytes(&cert.to_bytes()).expect("parse");
        assert_eq!(parsed, cert);
        let mut stretched = cert.to_bytes();
        stretched[8..16].copy_from_slice(&u64::MAX.to_be_bytes());
        let forged = AikCert::from_bytes(&stretched).expect("structurally valid");
        assert_eq!(forged.not_after_ns(), u64::MAX);
        assert!(!forged.verify(ca.public_key()));

        // Never-expiring issue() is the u64::MAX special case.
        assert_eq!(
            AikCert::issue(&ca, 9, aik.public_key()).not_after_ns(),
            u64::MAX
        );
    }

    #[test]
    fn decoding_rejects_truncation_and_trailing_bytes() {
        let ca = keypair(b"cert test ca");
        let aik = keypair(b"cert test aik");
        let bytes = AikCert::issue(&ca, 1, aik.public_key()).to_bytes();
        for cut in [0, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                AikCert::from_bytes(&bytes[..cut]),
                Err(CryptoError::InvalidCiphertext),
                "cut at {cut}"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert_eq!(
            AikCert::from_bytes(&padded),
            Err(CryptoError::InvalidCiphertext)
        );
    }
}
