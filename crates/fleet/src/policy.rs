//! Client-side request lifecycle policy: retries, timeouts, backoff.
//!
//! The verifier decides whether a *quote* is trustworthy; the fleet's
//! relying-party client decides what to do when no decision arrives —
//! the wire was dropped, the platform was mid-reboot, the certificate
//! was mid-rotation. [`FleetPolicy`] is that client policy, composable
//! builder-style like `sea-core`'s `BatchPolicy`: per-attempt timeout,
//! bounded attempts, exponential backoff. [`RequestFate`] is the typed
//! terminal outcome of one request's whole lifecycle, as distinct from
//! the verifier's per-quote verdict.

use std::fmt;

/// The typed terminal outcome of one attestation request's lifecycle.
///
/// A fate is about the *request*, not any single wire: a request whose
/// first wire was dropped and whose re-quote was accepted is
/// `Retried`, even though the verifier only ever saw one (accepted)
/// quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum RequestFate {
    /// Accepted on the first attempt.
    Verified,
    /// Accepted, but only after at least one retry.
    Retried,
    /// Accepted inside a TCB-rollout grace window — trusted, but on a
    /// build the incoming table has already superseded.
    Degraded,
    /// Terminally rejected by the verifier (a typed
    /// [`RejectReason`](crate::RejectReason) accompanies it).
    Rejected,
    /// Attempts exhausted without any verdict reaching the client.
    TimedOut,
}

impl RequestFate {
    /// Whether the fate represents an accepted attestation.
    pub fn is_accepted(&self) -> bool {
        matches!(
            self,
            RequestFate::Verified | RequestFate::Retried | RequestFate::Degraded
        )
    }
}

impl fmt::Display for RequestFate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestFate::Verified => write!(f, "verified"),
            RequestFate::Retried => write!(f, "retried"),
            RequestFate::Degraded => write!(f, "degraded"),
            RequestFate::Rejected => write!(f, "rejected"),
            RequestFate::TimedOut => write!(f, "timed-out"),
        }
    }
}

/// Composable retry/timeout/backoff policy for the fleet's
/// relying-party client.
///
/// # Example
///
/// ```
/// use sea_fleet::FleetPolicy;
///
/// let p = FleetPolicy::resilient();
/// assert!(p.max_attempts() > 1);
/// // Exponential, capped backoff: each retry waits twice as long.
/// assert_eq!(p.backoff_ns(2), 2 * p.backoff_ns(1));
/// let plain = FleetPolicy::plain();
/// assert_eq!(plain.max_attempts(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPolicy {
    max_attempts: u32,
    timeout_ns: u64,
    backoff_base_ns: u64,
    backoff_cap_ns: u64,
}

impl FleetPolicy {
    /// The zero-resilience policy: one attempt, no timeout. This is the
    /// posture of the original churn-free fleet, and the default of
    /// [`FleetConfig`](crate::FleetConfig) — a plain-policy run is
    /// byte-identical to the pre-lifecycle pipeline.
    pub fn plain() -> Self {
        FleetPolicy {
            max_attempts: 1,
            timeout_ns: u64::MAX,
            backoff_base_ns: 0,
            backoff_cap_ns: 0,
        }
    }

    /// A retrying policy sized to the fleet's virtual network: 5ms
    /// per-attempt timeout (generously above one queued round trip),
    /// four attempts, 500µs base backoff doubling to an 8ms cap.
    pub fn resilient() -> Self {
        FleetPolicy {
            max_attempts: 4,
            timeout_ns: 5_000_000,
            backoff_base_ns: 500_000,
            backoff_cap_ns: 8_000_000,
        }
    }

    /// Overrides the total attempt budget (clamped to at least 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the per-attempt timeout.
    #[must_use]
    pub fn with_timeout_ns(mut self, timeout_ns: u64) -> Self {
        self.timeout_ns = timeout_ns;
        self
    }

    /// Overrides the exponential-backoff base and cap.
    #[must_use]
    pub fn with_backoff_ns(mut self, base_ns: u64, cap_ns: u64) -> Self {
        self.backoff_base_ns = base_ns;
        self.backoff_cap_ns = cap_ns.max(base_ns);
        self
    }

    /// Total attempts allowed per request (first send included).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Per-attempt client timeout.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }

    /// Backoff before retry number `retry` (1-based): exponential in
    /// the base, saturating at the cap.
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        if self.backoff_base_ns == 0 || retry == 0 {
            return 0;
        }
        let factor = 1u64.checked_shl(retry - 1).unwrap_or(u64::MAX);
        self.backoff_base_ns
            .saturating_mul(factor)
            .min(self.backoff_cap_ns)
    }

    /// True if the policy never retries and never times out — the
    /// lifecycle degenerates to the original single-shot pipeline.
    pub fn is_plain(&self) -> bool {
        self.max_attempts == 1 && self.timeout_ns == u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_policy_is_single_shot() {
        let p = FleetPolicy::plain();
        assert!(p.is_plain());
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.timeout_ns(), u64::MAX);
        assert_eq!(p.backoff_ns(1), 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FleetPolicy::plain()
            .with_max_attempts(6)
            .with_timeout_ns(1_000)
            .with_backoff_ns(100, 350);
        assert!(!p.is_plain());
        assert_eq!(p.backoff_ns(0), 0);
        assert_eq!(p.backoff_ns(1), 100);
        assert_eq!(p.backoff_ns(2), 200);
        assert_eq!(p.backoff_ns(3), 350, "capped");
        assert_eq!(p.backoff_ns(63), 350, "shift overflow saturates");
        // Cap is clamped up to the base.
        assert_eq!(
            FleetPolicy::plain().with_backoff_ns(500, 10).backoff_ns(1),
            500
        );
    }

    #[test]
    fn attempt_budget_clamps_to_one() {
        assert_eq!(FleetPolicy::plain().with_max_attempts(0).max_attempts(), 1);
    }

    #[test]
    fn fates_classify_acceptance_and_display() {
        for (fate, accepted, needle) in [
            (RequestFate::Verified, true, "verified"),
            (RequestFate::Retried, true, "retried"),
            (RequestFate::Degraded, true, "degraded"),
            (RequestFate::Rejected, false, "rejected"),
            (RequestFate::TimedOut, false, "timed-out"),
        ] {
            assert_eq!(fate.is_accepted(), accepted);
            assert_eq!(fate.to_string(), needle);
        }
    }
}
