//! Versioned TCB-status policy — the verifier's *freshness* dimension.
//!
//! Knowing that a quote replays a trusted build's measurement chain is
//! necessary but not sufficient: the build itself may have aged out.
//! DCAP-style attestation separates the two concerns with a signed,
//! versioned TCB-info structure whose per-component verdicts
//! (`UpToDate` / `OutOfDate` / `Revoked`) are evaluated by a relying
//! party *policy* — some deployments accept `OutOfDate` hardware, some
//! do not. This module models that split: [`TcbInfo`] is the versioned
//! table (image digest → status), [`TcbPolicy`] the composable policy
//! that turns a status into a [`TcbVerdict`].

use std::collections::BTreeMap;

/// The TCB status a table assigns to one trusted build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TcbStatus {
    /// The build is the current, fully patched one.
    UpToDate,
    /// The build is still trusted but superseded — a newer build fixes
    /// known (non-fatal) issues.
    OutOfDate,
    /// The build is revoked: a vulnerability makes its attestations
    /// worthless regardless of policy.
    Revoked,
}

/// A versioned table mapping PAL image digests to their TCB status.
///
/// The version is monotone: a verifier that has seen version *n* must
/// refuse to ingest an older table (rollback protection); this type
/// enforces that at [`TcbInfo::merge`] time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcbInfo {
    version: u32,
    entries: BTreeMap<[u8; 20], TcbStatus>,
}

impl TcbInfo {
    /// An empty table at `version`.
    pub fn new(version: u32) -> Self {
        TcbInfo {
            version,
            entries: BTreeMap::new(),
        }
    }

    /// Table version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Records `status` for the build with the given image digest
    /// (builder-style).
    pub fn with_status(mut self, image_digest: [u8; 20], status: TcbStatus) -> Self {
        self.entries.insert(image_digest, status);
        self
    }

    /// The status assigned to an image digest, if listed.
    pub fn status(&self, image_digest: &[u8; 20]) -> Option<TcbStatus> {
        self.entries.get(image_digest).copied()
    }

    /// Number of listed builds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no builds are listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replaces this table with `newer`, refusing rollback.
    ///
    /// # Errors
    ///
    /// Returns the rejected table's version if it is older than the
    /// current one.
    pub fn merge(&mut self, newer: TcbInfo) -> Result<(), u32> {
        if newer.version < self.version {
            return Err(newer.version);
        }
        *self = newer;
        Ok(())
    }
}

/// A staged, mid-run push of a new [`TcbInfo`] table across a fleet.
///
/// Real TCB-info distribution is not atomic: the table reaches
/// different parts of the fleet at different times. A rollout models
/// that with *logical* propagation groups — platform `p` belongs to
/// group `p % groups`, and group `g` sees the new table from
/// `announced_ns + g * group_delay_ns`. Grouping is a pure function of
/// the platform id, never of shard layout or worker count, which is
/// what keeps a churned sweep byte-identical across execution shapes.
///
/// The rollout also carries a bounded *grace window*: for `grace_ns`
/// after the table reaches a platform's group, a build the new table
/// marks `OutOfDate` is still accepted (degraded) even under a strict
/// policy, so a fleet mid-update degrades gracefully instead of
/// cliff-rejecting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcbRollout {
    table: TcbInfo,
    announced_ns: u64,
    groups: u64,
    group_delay_ns: u64,
    grace_ns: u64,
}

impl TcbRollout {
    /// A rollout of `table` announced at `announced_ns`, propagating to
    /// `groups` logical groups one `group_delay_ns` apart, with a
    /// `grace_ns` stale-TCB grace window per group.
    pub fn new(
        table: TcbInfo,
        announced_ns: u64,
        groups: u64,
        group_delay_ns: u64,
        grace_ns: u64,
    ) -> Self {
        TcbRollout {
            table,
            announced_ns,
            groups: groups.max(1),
            group_delay_ns,
            grace_ns,
        }
    }

    /// The table being rolled out.
    pub fn table(&self) -> &TcbInfo {
        &self.table
    }

    /// When the new table reaches `platform`'s propagation group.
    pub fn arrival_ns(&self, platform: u64) -> u64 {
        self.announced_ns
            .saturating_add((platform % self.groups).saturating_mul(self.group_delay_ns))
    }

    /// Whether `platform` already sees the new table at `now_ns`.
    pub fn active_for(&self, platform: u64, now_ns: u64) -> bool {
        now_ns >= self.arrival_ns(platform)
    }

    /// Whether `now_ns` is inside `platform`'s stale-TCB grace window
    /// (the bounded span after arrival during which `OutOfDate` builds
    /// are still accepted, degraded).
    pub fn in_grace(&self, platform: u64, now_ns: u64) -> bool {
        self.active_for(platform, now_ns)
            && now_ns <= self.arrival_ns(platform).saturating_add(self.grace_ns)
    }
}

/// What a policy decides about one status lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcbVerdict {
    /// Accepted; carries the status so relying parties can still
    /// surface "accepted, but out of date" to operators.
    Accepted(TcbStatus),
    /// Rejected: the build is superseded and the policy does not accept
    /// stale TCBs.
    OutOfDate,
    /// Rejected: the build is revoked (no policy accepts this).
    Revoked,
    /// Rejected: the build is not listed in the table and the policy
    /// requires listing.
    Unlisted,
}

/// A composable acceptance policy over [`TcbStatus`] lookups.
///
/// # Example
///
/// ```
/// use sea_fleet::{TcbPolicy, TcbStatus, TcbVerdict};
///
/// let strict = TcbPolicy::strict();
/// assert_eq!(
///     strict.evaluate(Some(TcbStatus::OutOfDate)),
///     TcbVerdict::OutOfDate
/// );
/// let tolerant = TcbPolicy::strict().accept_out_of_date(true);
/// assert_eq!(
///     tolerant.evaluate(Some(TcbStatus::OutOfDate)),
///     TcbVerdict::Accepted(TcbStatus::OutOfDate)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcbPolicy {
    accept_out_of_date: bool,
    require_listed: bool,
}

impl TcbPolicy {
    /// The strictest policy: only listed, up-to-date builds pass.
    pub fn strict() -> Self {
        TcbPolicy {
            accept_out_of_date: false,
            require_listed: true,
        }
    }

    /// Also accept `OutOfDate` builds (builder-style).
    pub fn accept_out_of_date(mut self, yes: bool) -> Self {
        self.accept_out_of_date = yes;
        self
    }

    /// Whether unlisted builds are rejected (builder-style). Disabling
    /// this treats an unlisted build as `UpToDate` — the posture of a
    /// deployment that has not yet published a table.
    pub fn require_listed(mut self, yes: bool) -> Self {
        self.require_listed = yes;
        self
    }

    /// Evaluates one status lookup. `Revoked` is terminal under every
    /// composition.
    pub fn evaluate(&self, status: Option<TcbStatus>) -> TcbVerdict {
        match status {
            Some(TcbStatus::UpToDate) => TcbVerdict::Accepted(TcbStatus::UpToDate),
            Some(TcbStatus::OutOfDate) if self.accept_out_of_date => {
                TcbVerdict::Accepted(TcbStatus::OutOfDate)
            }
            Some(TcbStatus::OutOfDate) => TcbVerdict::OutOfDate,
            Some(TcbStatus::Revoked) => TcbVerdict::Revoked,
            None if self.require_listed => TcbVerdict::Unlisted,
            None => TcbVerdict::Accepted(TcbStatus::UpToDate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMG: [u8; 20] = [7u8; 20];

    #[test]
    fn table_lookup_and_version() {
        let t = TcbInfo::new(3).with_status(IMG, TcbStatus::OutOfDate);
        assert_eq!(t.version(), 3);
        assert_eq!(t.status(&IMG), Some(TcbStatus::OutOfDate));
        assert_eq!(t.status(&[0u8; 20]), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn merge_refuses_rollback() {
        let mut t = TcbInfo::new(5);
        assert_eq!(t.merge(TcbInfo::new(4)), Err(4));
        assert_eq!(t.version(), 5);
        t.merge(TcbInfo::new(6).with_status(IMG, TcbStatus::Revoked))
            .unwrap();
        assert_eq!(t.version(), 6);
        assert_eq!(t.status(&IMG), Some(TcbStatus::Revoked));
    }

    #[test]
    fn revocation_is_terminal_under_every_policy() {
        for policy in [
            TcbPolicy::strict(),
            TcbPolicy::strict().accept_out_of_date(true),
            TcbPolicy::strict().require_listed(false),
            TcbPolicy::strict()
                .accept_out_of_date(true)
                .require_listed(false),
        ] {
            assert_eq!(
                policy.evaluate(Some(TcbStatus::Revoked)),
                TcbVerdict::Revoked
            );
        }
    }

    #[test]
    fn rollout_propagates_by_logical_group_with_grace() {
        let table = TcbInfo::new(2).with_status(IMG, TcbStatus::OutOfDate);
        let r = TcbRollout::new(table, 1_000, 4, 100, 50);
        // Group = platform % 4; arrival staggers by 100ns per group.
        assert_eq!(r.arrival_ns(0), 1_000);
        assert_eq!(r.arrival_ns(5), 1_100);
        assert_eq!(r.arrival_ns(7), 1_300);
        assert!(!r.active_for(7, 1_299));
        assert!(r.active_for(7, 1_300));
        // Grace is a bounded, inclusive window after arrival.
        assert!(r.in_grace(7, 1_300));
        assert!(r.in_grace(7, 1_350));
        assert!(!r.in_grace(7, 1_351));
        assert!(!r.in_grace(7, 1_299), "grace cannot precede arrival");
        // Zero groups clamps to one (everything arrives together).
        let flat = TcbRollout::new(TcbInfo::new(2), 500, 0, 100, 0);
        assert_eq!(flat.arrival_ns(9), 500);
    }

    #[test]
    fn unlisted_depends_on_policy() {
        assert_eq!(TcbPolicy::strict().evaluate(None), TcbVerdict::Unlisted);
        assert_eq!(
            TcbPolicy::strict().require_listed(false).evaluate(None),
            TcbVerdict::Accepted(TcbStatus::UpToDate)
        );
    }
}
