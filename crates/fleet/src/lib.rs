//! # sea-fleet
//!
//! Fleet-scale attestation for the minimal-TCB reproduction of McCune
//! et al., *"How Low Can You Go?"* (ASPLOS 2008): a sharded fleet of
//! simulated platforms behind a deterministic dispatcher, checked by a
//! standalone **remote verifier service**.
//!
//! The paper's External Verification property (§3.1) is an argument
//! about *two* parties — the platform that quotes and the remote party
//! that decides. The rest of the workspace simulates the platform side
//! in depth; this crate builds the relying-party side as a genuinely
//! separate trust domain and then scales both to a fleet:
//!
//! * [`verifier`] — the remote verifier: wire-quote parsing, AIK
//!   certificate-chain walking (with a session-ticket cache), quote
//!   signature verification, nonce freshness, measurement-chain replay,
//!   and a TCB-status policy verdict. The module imports **only
//!   `sea_crypto` and `std`** — its view of a quote is the canonical
//!   wire bytes, never a platform struct (`scripts/ci.sh` greps to keep
//!   it that way).
//! * [`cert`] — privacy-CA certificates binding an AIK to a platform.
//! * [`tcb`] — the versioned TCB-info table and composable acceptance
//!   policy (`UpToDate` / `OutOfDate` / `Revoked`).
//! * [`vault`] — process-cached deterministic key material (now with
//!   AIK *generations* for rotation) so a 1000-platform fleet does not
//!   pay RSA keygen per run.
//! * [`policy`] — the client-side request lifecycle policy
//!   ([`FleetPolicy`]: bounded attempts, per-attempt timeout,
//!   exponential backoff) and the typed terminal [`RequestFate`].
//! * [`churn`] — seeded platform churn and adversarial traffic
//!   ([`ChurnPlan`]): network faults via `sea_hw::NetPlan`, mid-sweep
//!   reboots, certificate rotation + re-enrollment, staged TCB pushes,
//!   and replay / stale-nonce / bit-flip / forged-cert wires.
//! * [`fleet`] — the fleet itself: per-request platform assignment via
//!   `sea_os::Dispatcher`, sharded execution of per-platform
//!   `SessionEngine`s, an `EventQueue` merge of completions, and the
//!   verifier as a single queueing server in virtual time driving each
//!   request's lifecycle to a typed fate. The whole pipeline is a pure
//!   function of its configuration: [`FleetOutcome`] is byte-identical
//!   across shard counts, dispatch orders, submission permutations,
//!   and executor backends — with or without churn.
//!
//! # Example
//!
//! ```
//! use sea_fleet::{run_fleet, FleetConfig};
//!
//! let out = run_fleet(&FleetConfig::new(2, 4));
//! assert_eq!(out.accepted, 4);
//! // One certificate walk per platform; the rest hit session tickets.
//! assert_eq!(out.cert_walks, 2);
//! assert_eq!(out.ticket_hits, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod churn;
pub mod fleet;
pub mod policy;
pub mod tcb;
pub mod vault;
pub mod verifier;

pub use cert::AikCert;
pub use churn::{AdversaryKind, ChurnPlan, TcbPush};
pub use fleet::{
    run_fleet, run_fleet_with_obs, run_fleet_with_submission, service_image, AdversaryOutcome,
    FleetConfig, FleetOutcome, RequestOutcome, FLEET_SERVICE, NETWORK_RTT_NS,
};
pub use policy::{FleetPolicy, RequestFate};
pub use tcb::{TcbInfo, TcbPolicy, TcbRollout, TcbStatus, TcbVerdict};
pub use vault::KeyVault;
pub use verifier::{
    expected_chain, parse_wire, Attestation, MissingKind, ParsedQuote, ParsedSource, RejectReason,
    Verdict, VerifierService, VerifierStats,
};
