//! Sharded fleet execution with remote verification.
//!
//! A fleet is many simulated platforms — each a full [`SessionEngine`]
//! on its own [`SecurePlatform`] — fed attestation requests by a
//! deterministic [`Dispatcher`] and checked by one remote
//! [`VerifierService`]. The pipeline has three phases, each of which is
//! a pure function of the configuration:
//!
//! 1. **Dispatch**: request *r* goes to platform `assign(r)` — a pure
//!    function of *r*, so submission order is irrelevant.
//! 2. **Execute**: shard *s* runs the platforms with `p % shards == s`,
//!    one OS thread per shard. Within a platform, the engine's static
//!    job→CPU assignment and virtual-time accounting make completion
//!    times independent of the executor backend and host scheduling.
//! 3. **Verify**: completions merge through an [`EventQueue`] keyed by
//!    `(completion time, request id)` — the fleet-level routing point —
//!    and drain through the verifier modeled as a single queueing
//!    server with virtual service times.
//!
//! Because every phase is deterministic, [`FleetOutcome`] is
//! byte-identical across shard counts, dispatch submission orders, and
//! executor backends — which `tests/verifier_differential.rs` pins for
//! a 1000-platform fleet.

use sea_core::{
    BatchPolicy, ConcurrentJob, Executor, FnPal, PalLogic, PalOutcome, SecurePlatform,
    SessionEngine, SessionResult, Slaunch,
};
use sea_hw::{EventQueue, FaultPlan, Obs, Platform, SimDuration, SimTime};
use sea_os::{DispatchPolicy, Dispatcher};

use crate::tcb::{TcbInfo, TcbStatus};
use crate::vault::KeyVault;
use crate::verifier::{Attestation, RejectReason, VerifierService};

/// Name of the one trusted service every fleet platform runs. One name
/// means one PAL image, hence one trusted build at the verifier.
pub const FLEET_SERVICE: &str = "fleet-service";

/// Virtual one-way network transit from a platform to the verifier.
pub const NETWORK_RTT_NS: u64 = 200_000;

/// The measured image of the fleet service PAL (what the verifier is
/// provisioned to trust).
pub fn service_image() -> Vec<u8> {
    FnPal::new(FLEET_SERVICE, |_| Ok(PalOutcome::Exit(Vec::new()))).image()
}

/// Per-request PAL compute time: deterministic jitter over the request
/// id so the dispatcher's choice of platform never changes the work.
fn request_work(request: u64) -> SimDuration {
    SimDuration::from_us(25 * (1 + request % 5))
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated platforms.
    pub platforms: usize,
    /// CPUs (and engine workers) per platform.
    pub cpus_per_platform: u16,
    /// Total attestation requests dispatched across the fleet.
    pub requests: usize,
    /// OS threads the platform set is sharded over.
    pub shards: usize,
    /// How requests map to platforms.
    pub policy: DispatchPolicy,
    /// Engine executor backend for every platform.
    pub executor: Executor,
    /// Version of the TCB table the verifier is provisioned with.
    pub tcb_version: u32,
}

impl FleetConfig {
    /// A fleet of `platforms` handling `requests`, single-sharded,
    /// round-robin dispatched, on the discrete-event backend.
    pub fn new(platforms: usize, requests: usize) -> Self {
        assert!(platforms > 0, "a fleet needs at least one platform");
        FleetConfig {
            platforms,
            cpus_per_platform: 2,
            requests,
            shards: 1,
            policy: DispatchPolicy::RoundRobin,
            executor: Executor::DiscreteEvent,
            tcb_version: 1,
        }
    }

    /// Overrides the shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        self.shards = shards;
        self
    }

    /// Overrides the dispatch policy (builder-style).
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the executor backend (builder-style).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Overrides the per-platform CPU count (builder-style).
    pub fn with_cpus(mut self, cpus: u16) -> Self {
        assert!(cpus > 0, "a platform needs at least one CPU");
        self.cpus_per_platform = cpus;
        self
    }
}

/// One request's journey through the fleet, in verification order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The request id.
    pub request: u64,
    /// The platform the dispatcher assigned it to.
    pub platform: usize,
    /// Virtual time the platform finished the session and emitted its
    /// quote (or failed).
    pub completed_ns: u64,
    /// Virtual time the verifier finished deciding.
    pub verified_ns: u64,
    /// Attestation latency: transit + verifier queueing + service.
    pub latency_ns: u64,
    /// Whether the verifier's AIK session-ticket cache was hit.
    pub ticket_hit: bool,
    /// The exact wire bytes the platform emitted, when it produced a
    /// quote (kept for tamper-property tests).
    pub wire: Option<Vec<u8>>,
    /// The verifier's decision.
    pub verdict: Result<Attestation, RejectReason>,
}

/// The complete, deterministic result of a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Per-request outcomes in verification (event-queue) order.
    pub requests: Vec<RequestOutcome>,
    /// Requests the verifier accepted.
    pub accepted: usize,
    /// Requests the verifier rejected.
    pub rejected: usize,
    /// Certificate-chain walks the verifier performed.
    pub cert_walks: u64,
    /// AIK session-ticket cache hits.
    pub ticket_hits: u64,
    /// Virtual wall time: when the last verdict landed.
    pub wall_ns: u64,
}

impl FleetOutcome {
    /// Attestation latencies, ascending.
    pub fn latencies_sorted_ns(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self.requests.iter().map(|r| r.latency_ns).collect();
        l.sort_unstable();
        l
    }

    /// Accepted attestations per virtual second of fleet wall time.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.accepted as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// What one platform reports upward to the fleet-level merge.
struct Completion {
    request: u64,
    platform: usize,
    completed_ns: u64,
    /// Wire quote bytes, or the typed reason there are none.
    wire: Result<Vec<u8>, &'static str>,
    nonce: Vec<u8>,
}

/// Runs the per-platform batch and computes virtual completion times
/// from the engine's static job→CPU assignment (job *i* on CPU
/// `i % workers`, sequential per CPU).
fn run_platform(
    cfg: &FleetConfig,
    platform: usize,
    requests: &[u64],
    obs: &Obs,
) -> Vec<Completion> {
    let workers = cfg.cpus_per_platform as usize;
    let mut secure = SecurePlatform::with_tpm(
        Platform::recommended(cfg.cpus_per_platform),
        KeyVault::global().tpm(platform),
    );
    secure.install_obs(obs.clone());
    let mut engine =
        SessionEngine::<Slaunch>::new(secure, workers).expect("workers fit the platform");
    engine.set_fault_plan(Some(FaultPlan::fault_free()));
    let jobs: Vec<ConcurrentJob> = requests
        .iter()
        .map(|&r| {
            ConcurrentJob::new(
                Box::new(FnPal::new(FLEET_SERVICE, move |ctx| {
                    ctx.work(request_work(r));
                    Ok(PalOutcome::Exit(r.to_le_bytes().to_vec()))
                })),
                b"",
            )
        })
        .collect();
    let out = engine
        .run(jobs, &BatchPolicy::plain().with_executor(cfg.executor))
        .expect("plain fleet batch runs");

    let mut cpu_busy = vec![SimDuration::ZERO; workers];
    out.sessions
        .iter()
        .enumerate()
        .map(|(job, session)| {
            let cpu = job % workers;
            cpu_busy[cpu] += session.cost();
            let wire = match session {
                SessionResult::Quoted { quote, .. } => Ok(quote.to_bytes()),
                SessionResult::Degraded { .. } => Err("degraded"),
                SessionResult::Killed { .. } => Err("killed"),
                _ => Err("unknown"),
            };
            Completion {
                request: requests[job],
                platform,
                completed_ns: cpu_busy[cpu].as_ns(),
                wire,
                nonce: (job as u64).to_le_bytes().to_vec(),
            }
        })
        .collect()
}

/// Runs the fleet: dispatch, sharded execution, fleet-level merge,
/// remote verification. See the module docs for the determinism
/// argument.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutcome {
    run_fleet_with_obs(cfg, Obs::null())
}

/// [`run_fleet`] with an observability handle installed into every
/// platform: session lifecycle spans and layer charges from all shards
/// land in one recording.
pub fn run_fleet_with_obs(cfg: &FleetConfig, obs: Obs) -> FleetOutcome {
    let dispatcher = Dispatcher::new(cfg.platforms, cfg.policy);
    let ids: Vec<u64> = (0..cfg.requests as u64).collect();
    let per_platform = dispatcher.partition(&ids);

    // Sharded execution: shard s owns platforms p with p % shards == s.
    let shards = cfg.shards.min(cfg.platforms).max(1);
    let mut completions: Vec<Option<Vec<Completion>>> = Vec::new();
    completions.resize_with(cfg.platforms, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let per_platform = &per_platform;
                let obs = &obs;
                scope.spawn(move || {
                    (shard..cfg.platforms)
                        .step_by(shards)
                        .map(|p| (p, run_platform(cfg, p, &per_platform[p], obs)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (p, done) in handle.join().expect("shard thread") {
                completions[p] = Some(done);
            }
        }
    });

    // Provision the verifier out-of-band: CA root, per-platform AIK
    // certificates, the one trusted build, the TCB table, and a
    // challenge per expected quote.
    let vault = KeyVault::global();
    let mut verifier = VerifierService::new(vault.ca_public());
    let image = service_image();
    verifier.trust(FLEET_SERVICE, &image, &[]);
    verifier
        .ingest_tcb(
            TcbInfo::new(cfg.tcb_version)
                .with_status(sea_crypto::Sha1::digest(&image), TcbStatus::UpToDate),
        )
        .expect("fresh verifier accepts any table");
    for p in 0..cfg.platforms {
        verifier.enroll(vault.certificate(p));
    }

    // Fleet-level merge: completions from every shard meet in one
    // event queue ordered by (completion time, request id).
    let mut queue: EventQueue<()> = EventQueue::new();
    let mut by_request: Vec<Option<Completion>> = Vec::new();
    by_request.resize_with(cfg.requests, || None);
    for done in completions.into_iter().flatten() {
        for c in done {
            verifier.challenge(c.platform as u64, &c.nonce, 0);
            queue.schedule(SimTime::from_ns(c.completed_ns), c.request, ());
            let slot = c.request as usize;
            by_request[slot] = Some(c);
        }
    }

    // The verifier as a single queueing server in virtual time.
    let mut requests = Vec::with_capacity(cfg.requests);
    let mut busy_until = 0u64;
    while let Some(event) = queue.pop() {
        let c = by_request[event.id as usize]
            .take()
            .expect("every scheduled request has a completion");
        let arrival = event.at.as_ns() + NETWORK_RTT_NS;
        let start = busy_until.max(arrival);
        let (verdict, wire) = match c.wire {
            Ok(bytes) => {
                let v = verifier.verify(c.platform as u64, &bytes, start);
                (v, Some(bytes))
            }
            Err(kind) => (verifier.reject_missing(c.platform as u64, kind), None),
        };
        busy_until = start + verdict.cost_ns;
        requests.push(RequestOutcome {
            request: c.request,
            platform: c.platform,
            completed_ns: c.completed_ns,
            verified_ns: busy_until,
            latency_ns: busy_until - c.completed_ns,
            ticket_hit: verdict.ticket_hit,
            wire,
            verdict: verdict.result,
        });
    }

    let stats = *verifier.stats();
    FleetOutcome {
        wall_ns: requests.iter().map(|r| r.verified_ns).max().unwrap_or(0),
        accepted: requests.iter().filter(|r| r.verdict.is_ok()).count(),
        rejected: requests.iter().filter(|r| r.verdict.is_err()).count(),
        cert_walks: stats.cert_walks,
        ticket_hits: stats.ticket_hits,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcb::TcbStatus;

    #[test]
    fn small_fleet_attests_end_to_end() {
        let out = run_fleet(&FleetConfig::new(3, 9));
        assert_eq!(out.requests.len(), 9);
        assert_eq!(out.accepted, 9);
        assert_eq!(out.rejected, 0);
        // One cert walk per platform, the rest served from tickets.
        assert_eq!(out.cert_walks, 3);
        assert_eq!(out.ticket_hits, 6);
        assert!(out.wall_ns > 0);
        assert!(out.goodput_per_sec() > 0.0);
        for r in &out.requests {
            let att = r.verdict.as_ref().expect("honest fleet accepted");
            assert_eq!(att.service, FLEET_SERVICE);
            assert_eq!(att.tcb, TcbStatus::UpToDate);
            assert_eq!(att.platform, r.platform as u64);
            assert!(r.verified_ns > r.completed_ns);
            assert_eq!(r.latency_ns, r.verified_ns - r.completed_ns);
        }
    }

    #[test]
    fn round_robin_and_hashed_dispatch_both_complete() {
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::Hashed { seed: 7 },
        ] {
            let out = run_fleet(&FleetConfig::new(4, 8).with_policy(policy));
            assert_eq!(out.accepted, 8);
        }
    }

    #[test]
    fn outcome_is_identical_across_shard_counts() {
        let base = run_fleet(&FleetConfig::new(5, 10));
        for shards in [2, 3, 5, 8] {
            let sharded = run_fleet(&FleetConfig::new(5, 10).with_shards(shards));
            assert_eq!(sharded, base, "shards = {shards}");
        }
    }

    #[test]
    fn latencies_are_sorted_and_complete() {
        let out = run_fleet(&FleetConfig::new(2, 6));
        let lat = out.latencies_sorted_ns();
        assert_eq!(lat.len(), 6);
        assert!(lat.windows(2).all(|w| w[0] <= w[1]));
        // Every latency includes at least the network transit.
        assert!(lat[0] >= NETWORK_RTT_NS);
    }
}
