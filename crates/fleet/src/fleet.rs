//! Sharded fleet execution with remote verification and a churn-
//! tolerant client lifecycle.
//!
//! A fleet is many simulated platforms — each a full [`SessionEngine`]
//! on its own [`SecurePlatform`] — fed attestation requests by a
//! deterministic [`Dispatcher`] and checked by one remote
//! [`VerifierService`]. The pipeline has three phases, each of which is
//! a pure function of the configuration:
//!
//! 1. **Dispatch**: request *r* goes to platform `assign(r)` — a pure
//!    function of *r*, so submission order is irrelevant.
//! 2. **Execute**: shard *s* runs the platforms with `p % shards == s`,
//!    one OS thread per shard. Within a platform, the engine's static
//!    job→CPU assignment and virtual-time accounting make completion
//!    times independent of the executor backend and host scheduling.
//! 3. **Verify**: completions merge through an [`EventQueue`] keyed by
//!    `(event time, id)` — the fleet-level routing point — and drain
//!    through a *request lifecycle* loop: each request's wire crosses a
//!    [`NetPlan`](sea_hw::NetPlan)-faulted network (drop / delay /
//!    duplicate / reorder),
//!    the verifier runs as a single queueing server in virtual time,
//!    and the client side retries per a [`FleetPolicy`] (bounded
//!    attempts, per-attempt timeout, exponential backoff). Retries
//!    re-quote under a *fresh* nonce — the verifier's single-use-nonce
//!    rule is never weakened to accommodate them.
//!
//! Churn — mid-sweep reboots, certificate rotation + re-enrollment,
//! staged TCB pushes, and adversarial wires — comes from a seeded
//! [`ChurnPlan`]; every decision is a pure function of the plan and a
//! platform or request id. Because every phase is deterministic,
//! [`FleetOutcome`] is byte-identical across shard counts, dispatch
//! submission orders, and executor backends — which
//! `tests/verifier_differential.rs` pins for a 1000-platform fleet and
//! for churned sweeps.
//!
//! One modeling simplification: a client timeout races against a
//! wire's *arrival* at the verifier, not against verifier service
//! completion — a wire that arrives before the deadline is decided
//! even if the verifier's queue pushes the verdict past it.

use sea_core::{
    BatchPolicy, ConcurrentJob, Executor, FnPal, PalLogic, PalOutcome, SecurePlatform,
    SessionEngine, SessionResult, Slaunch,
};
use sea_hw::{EventQueue, FaultPlan, Obs, Platform, SimDuration, SimTime};
use sea_os::{DispatchPolicy, Dispatcher};
use sea_tpm::Quote;

use crate::churn::{AdversaryKind, ChurnPlan};
use crate::policy::{FleetPolicy, RequestFate};
use crate::tcb::{TcbInfo, TcbRollout, TcbStatus};
use crate::vault::KeyVault;
use crate::verifier::{Attestation, MissingKind, RejectReason, VerifierService, VerifierStats};

/// Name of the one trusted service every fleet platform runs. One name
/// means one PAL image, hence one trusted build at the verifier.
pub const FLEET_SERVICE: &str = "fleet-service";

/// Virtual one-way network transit from a platform to the verifier.
pub const NETWORK_RTT_NS: u64 = 200_000;

/// AIK generation used to sign forged-certificate adversarial wires —
/// a key the privacy CA never certified.
const ROGUE_GENERATION: u32 = u32::MAX;

/// Nonce suffix marking the stale-nonce adversary's challenge (outside
/// the retry-attempt suffix space).
const STALE_MARKER: u32 = 0xFFFF_FFFE;

/// Nonce suffix used by forged wires (never issued as a challenge).
const FORGE_MARKER: u32 = 0xFFFF_FFFD;

/// The measured image of the fleet service PAL (what the verifier is
/// provisioned to trust).
pub fn service_image() -> Vec<u8> {
    FnPal::new(FLEET_SERVICE, |_| Ok(PalOutcome::Exit(Vec::new()))).image()
}

/// Per-request PAL compute time: deterministic jitter over the request
/// id so the dispatcher's choice of platform never changes the work.
fn request_work(request: u64) -> SimDuration {
    SimDuration::from_us(25 * (1 + request % 5))
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated platforms.
    pub platforms: usize,
    /// CPUs (and engine workers) per platform.
    pub cpus_per_platform: u16,
    /// Total attestation requests dispatched across the fleet.
    pub requests: usize,
    /// OS threads the platform set is sharded over.
    pub shards: usize,
    /// How requests map to platforms.
    pub policy: DispatchPolicy,
    /// Engine executor backend for every platform.
    pub executor: Executor,
    /// Version of the TCB table the verifier is provisioned with.
    pub tcb_version: u32,
    /// Client-side retry/timeout/backoff policy.
    pub lifecycle: FleetPolicy,
    /// Seeded churn: network faults, reboots, rotation, adversaries.
    pub churn: ChurnPlan,
    /// Verifier challenge-freshness window (quotes answering older
    /// challenges are `StaleQuote`-rejected).
    pub freshness_window_ns: u64,
    /// Verifier AIK session-ticket TTL.
    pub ticket_ttl_ns: u64,
}

impl FleetConfig {
    /// A fleet of `platforms` handling `requests`, single-sharded,
    /// round-robin dispatched, on the discrete-event backend, with the
    /// calm churn plan and the plain (single-shot) client policy — a
    /// default run is byte-identical to the pre-lifecycle pipeline.
    pub fn new(platforms: usize, requests: usize) -> Self {
        assert!(platforms > 0, "a fleet needs at least one platform");
        FleetConfig {
            platforms,
            cpus_per_platform: 2,
            requests,
            shards: 1,
            policy: DispatchPolicy::RoundRobin,
            executor: Executor::DiscreteEvent,
            tcb_version: 1,
            lifecycle: FleetPolicy::plain(),
            churn: ChurnPlan::calm(),
            freshness_window_ns: u64::MAX,
            ticket_ttl_ns: u64::MAX,
        }
    }

    /// Overrides the shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        self.shards = shards;
        self
    }

    /// Overrides the dispatch policy (builder-style).
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the executor backend (builder-style).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Overrides the per-platform CPU count (builder-style).
    pub fn with_cpus(mut self, cpus: u16) -> Self {
        assert!(cpus > 0, "a platform needs at least one CPU");
        self.cpus_per_platform = cpus;
        self
    }

    /// Overrides the client lifecycle policy (builder-style).
    pub fn with_lifecycle(mut self, lifecycle: FleetPolicy) -> Self {
        self.lifecycle = lifecycle;
        self
    }

    /// Overrides the churn plan (builder-style).
    pub fn with_churn(mut self, churn: ChurnPlan) -> Self {
        self.churn = churn;
        self
    }

    /// Overrides the verifier freshness window (builder-style).
    pub fn with_freshness_window_ns(mut self, window: u64) -> Self {
        self.freshness_window_ns = window;
        self
    }

    /// Overrides the verifier ticket TTL (builder-style).
    pub fn with_ticket_ttl_ns(mut self, ttl: u64) -> Self {
        self.ticket_ttl_ns = ttl;
        self
    }
}

/// One request's journey through the fleet, in resolution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The request id.
    pub request: u64,
    /// The platform the dispatcher assigned it to.
    pub platform: usize,
    /// Virtual time the platform finished the session and emitted its
    /// quote (or failed).
    pub completed_ns: u64,
    /// Virtual time the request's fate settled (last verdict, terminal
    /// rejection, or final timeout).
    pub verified_ns: u64,
    /// Attestation latency from platform completion to settlement:
    /// transit + verifier queueing + service + any retries/backoff.
    pub latency_ns: u64,
    /// Whether the settling wire hit the verifier's AIK session-ticket
    /// cache.
    pub ticket_hit: bool,
    /// The exact wire bytes of the *first* attempt, when the platform
    /// produced a quote (kept for tamper-property tests).
    pub wire: Option<Vec<u8>>,
    /// The last verifier decision the client saw, if any verdict
    /// arrived at all (a fully timed-out request has `None`).
    pub verdict: Option<Result<Attestation, RejectReason>>,
    /// The typed terminal outcome of the whole lifecycle.
    pub fate: RequestFate,
    /// Attempts sent (1 = no retries).
    pub attempts: u32,
}

/// One adversarial wire's outcome, in verification order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryOutcome {
    /// The honest request the wire rode alongside.
    pub request: u64,
    /// The platform the wire claimed to be from.
    pub platform: usize,
    /// What kind of attack the wire was.
    pub kind: AdversaryKind,
    /// Virtual time the verifier finished deciding.
    pub verified_ns: u64,
    /// The verifier's decision — `Err` for every sound verifier.
    pub verdict: Result<Attestation, RejectReason>,
}

/// The complete, deterministic result of a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Per-request outcomes in fate-resolution order.
    pub requests: Vec<RequestOutcome>,
    /// Requests whose fate is accepted (verified, retried, degraded).
    pub accepted: usize,
    /// Requests terminally rejected by the verifier.
    pub rejected: usize,
    /// Requests whose attempt budget ran out without a settled verdict.
    pub timed_out: usize,
    /// Requests accepted inside a TCB-rollout grace window.
    pub degraded: usize,
    /// Total retry sends across all requests.
    pub retries: u64,
    /// Adversarial wires interleaved into the sweep, with verdicts.
    pub adversarial: Vec<AdversaryOutcome>,
    /// Adversarial wires the verifier rejected (all of them, for a
    /// sound verifier — pinned by tests).
    pub adversarial_rejected: usize,
    /// Certificate-chain walks the verifier performed.
    pub cert_walks: u64,
    /// AIK session-ticket cache hits.
    pub ticket_hits: u64,
    /// The verifier's full wire-level counters (includes duplicate and
    /// adversarial traffic, unlike the fate-level counts above).
    pub stats: VerifierStats,
    /// Virtual wall time: when the last request's fate settled.
    pub wall_ns: u64,
}

impl FleetOutcome {
    /// Attestation latencies, ascending.
    pub fn latencies_sorted_ns(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self.requests.iter().map(|r| r.latency_ns).collect();
        l.sort_unstable();
        l
    }

    /// Accepted attestations per virtual second of fleet wall time.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.accepted as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// What one platform reports upward to the fleet-level merge.
struct Completion {
    request: u64,
    platform: usize,
    completed_ns: u64,
    /// Wire quote bytes, or the typed reason there are none.
    wire: Result<Vec<u8>, MissingKind>,
    nonce: Vec<u8>,
}

/// Runs the per-platform batch and computes virtual completion times
/// from the engine's static job→CPU assignment (job *i* on CPU
/// `i % workers`, sequential per CPU).
fn run_platform(
    cfg: &FleetConfig,
    platform: usize,
    requests: &[u64],
    obs: &Obs,
) -> Vec<Completion> {
    let workers = cfg.cpus_per_platform as usize;
    let mut secure = SecurePlatform::with_tpm(
        Platform::recommended(cfg.cpus_per_platform),
        KeyVault::global().tpm(platform),
    );
    secure.install_obs(obs.clone());
    let mut engine =
        SessionEngine::<Slaunch>::new(secure, workers).expect("workers fit the platform");
    engine.set_fault_plan(Some(FaultPlan::fault_free()));
    let jobs: Vec<ConcurrentJob> = requests
        .iter()
        .map(|&r| {
            ConcurrentJob::new(
                Box::new(FnPal::new(FLEET_SERVICE, move |ctx| {
                    ctx.work(request_work(r));
                    Ok(PalOutcome::Exit(r.to_le_bytes().to_vec()))
                })),
                b"",
            )
        })
        .collect();
    let out = engine
        .run(jobs, &BatchPolicy::plain().with_executor(cfg.executor))
        .expect("plain fleet batch runs");

    let mut cpu_busy = vec![SimDuration::ZERO; workers];
    out.sessions
        .iter()
        .enumerate()
        .map(|(job, session)| {
            let cpu = job % workers;
            cpu_busy[cpu] += session.cost();
            let wire = match session {
                SessionResult::Quoted { quote, .. } => Ok(quote.to_bytes()),
                SessionResult::Degraded { .. } => Err(MissingKind::Degraded),
                SessionResult::Killed { .. } => Err(MissingKind::Killed),
                _ => Err(MissingKind::Unknown),
            };
            Completion {
                request: requests[job],
                platform,
                completed_ns: cpu_busy[cpu].as_ns(),
                wire,
                nonce: (job as u64).to_le_bytes().to_vec(),
            }
        })
        .collect()
}

/// Events flowing through the fleet-level lifecycle queue. The event
/// id carries the request id for `Deliver`/`Timeout`; `ReEnroll` and
/// `Adversary` live in disjoint id ranges above the request space.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// A wire (or a missing-quote report) arriving at the verifier.
    Deliver {
        attempt: u32,
        wire: Result<Vec<u8>, MissingKind>,
    },
    /// The client-side per-attempt deadline.
    Timeout { attempt: u32 },
    /// A rotated platform's generation-1 certificate re-enrolling.
    ReEnroll { platform: usize },
    /// An adversarial wire arriving at the verifier.
    Adversary {
        request: u64,
        kind: AdversaryKind,
        wire: Vec<u8>,
    },
}

/// Per-request client lifecycle state.
struct Life {
    platform: usize,
    completed_ns: u64,
    nonce0: Vec<u8>,
    wire0: Result<Vec<u8>, MissingKind>,
    /// Attempts sent so far.
    attempts: u32,
    /// The attempt the client currently waits on (0-based).
    current: u32,
    /// Virtual time of the most recent send.
    last_send_ns: u64,
    last_verdict: Option<Result<Attestation, RejectReason>>,
    last_ticket_hit: bool,
    resolved: bool,
    /// Whether the churn plan interleaves a replay attack on this
    /// request (fires once, after acceptance).
    wants_replay: bool,
}

/// The nonce for attempt `attempt` of a request whose engine-issued
/// nonce is `nonce0`: attempt 0 keeps the engine nonce, retries append
/// the attempt number so every attempt consumes a distinct single-use
/// challenge.
fn attempt_nonce(nonce0: &[u8], attempt: u32) -> Vec<u8> {
    let mut n = nonce0.to_vec();
    if attempt > 0 {
        n.extend_from_slice(&attempt.to_le_bytes());
    }
    n
}

/// A nonce in the adversary marker space (outside any retry attempt).
fn marker_nonce(nonce0: &[u8], marker: u32) -> Vec<u8> {
    let mut n = nonce0.to_vec();
    n.extend_from_slice(&marker.to_le_bytes());
    n
}

/// The AIK generation platform `p` signs with at virtual time `t`:
/// generation 1 once its rotation re-enrollment has landed, else 0.
fn generation_at(churn: &ChurnPlan, platform: usize, t_ns: u64) -> u32 {
    match churn.rotation_for(platform as u64) {
        Some((_, re_enroll_at)) if t_ns >= re_enroll_at => 1,
        _ => 0,
    }
}

/// Runs the fleet: dispatch, sharded execution, fleet-level merge,
/// lifecycle-driven remote verification. See the module docs for the
/// determinism argument.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutcome {
    run_fleet_with_obs(cfg, Obs::null())
}

/// [`run_fleet`] with an observability handle installed into every
/// platform: session lifecycle spans and layer charges from all shards
/// land in one recording.
pub fn run_fleet_with_obs(cfg: &FleetConfig, obs: Obs) -> FleetOutcome {
    let ids: Vec<u64> = (0..cfg.requests as u64).collect();
    run_fleet_with_submission(cfg, &ids, obs)
}

/// [`run_fleet_with_obs`] with an explicit submission order:
/// `submission` must be a permutation of `0..cfg.requests`. The
/// outcome is byte-identical for every permutation (pinned by tests) —
/// dispatch assignment is a pure function of the request id and the
/// per-platform batches are canonicalized.
pub fn run_fleet_with_submission(cfg: &FleetConfig, submission: &[u64], obs: Obs) -> FleetOutcome {
    assert_eq!(
        submission.len(),
        cfg.requests,
        "submission must cover every request exactly once"
    );
    let dispatcher = Dispatcher::new(cfg.platforms, cfg.policy);
    let per_platform = dispatcher.partition(submission);

    // Sharded execution: shard s owns platforms p with p % shards == s.
    let shards = cfg.shards.min(cfg.platforms).max(1);
    let mut completions: Vec<Option<Vec<Completion>>> = Vec::new();
    completions.resize_with(cfg.platforms, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let per_platform = &per_platform;
                let obs = &obs;
                scope.spawn(move || {
                    (shard..cfg.platforms)
                        .step_by(shards)
                        .map(|p| (p, run_platform(cfg, p, &per_platform[p], obs)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (p, done) in handle.join().expect("shard thread") {
                completions[p] = Some(done);
            }
        }
    });

    // Provision the verifier out-of-band: CA root, per-platform AIK
    // certificates (expiring ones for rotation-churned platforms), the
    // one trusted build, the TCB table (plus any staged rollout), and
    // acceptance windows.
    let vault = KeyVault::global();
    let mut verifier = VerifierService::new(vault.ca_public());
    let image = service_image();
    verifier.trust(FLEET_SERVICE, &image, &[]);
    verifier
        .ingest_tcb(
            TcbInfo::new(cfg.tcb_version)
                .with_status(sea_crypto::Sha1::digest(&image), TcbStatus::UpToDate),
        )
        .expect("fresh verifier accepts any table");
    verifier.set_freshness_window_ns(cfg.freshness_window_ns);
    verifier.set_ticket_ttl_ns(cfg.ticket_ttl_ns);
    if let Some(push) = cfg.churn.tcb_push() {
        let table = TcbInfo::new(cfg.tcb_version + 1)
            .with_status(sea_crypto::Sha1::digest(&image), TcbStatus::OutOfDate);
        verifier
            .push_tcb(TcbRollout::new(
                table,
                push.at_ns,
                push.groups,
                push.group_delay_ns,
                push.grace_ns,
            ))
            .expect("pushed table is newer than provisioned");
    }

    // Event-id ranges: requests, then re-enrollments, then adversaries.
    let nreq = cfg.requests as u64;
    let re_enroll_id = |p: usize| nreq + p as u64;
    let adversary_id = |r: u64, k: u32| nreq + cfg.platforms as u64 + r * 4 + k as u64;

    let mut queue: EventQueue<Ev> = EventQueue::new();
    for p in 0..cfg.platforms {
        match cfg.churn.rotation_for(p as u64) {
            Some((not_after_ns, re_enroll_at)) => {
                verifier.enroll(vault.certificate_generation(p, 0, not_after_ns));
                queue.schedule(
                    SimTime::from_ns(re_enroll_at),
                    re_enroll_id(p),
                    Ev::ReEnroll { platform: p },
                );
            }
            None => verifier.enroll(vault.certificate(p)),
        }
    }

    // Fleet-level merge: completions from every shard become lifecycle
    // state, indexed by request id.
    let mut lives: Vec<Option<Life>> = Vec::new();
    lives.resize_with(cfg.requests, || None);
    for done in completions.into_iter().flatten() {
        for c in done {
            lives[c.request as usize] = Some(Life {
                platform: c.platform,
                completed_ns: c.completed_ns,
                nonce0: c.nonce,
                wire0: c.wire,
                attempts: 0,
                current: 0,
                last_send_ns: 0,
                last_verdict: None,
                last_ticket_hit: false,
                resolved: false,
                wants_replay: false,
            });
        }
    }
    let mut lives: Vec<Life> = lives
        .into_iter()
        .map(|l| l.expect("every request id has a completion"))
        .collect();

    // Sends one attempt of one request: issues the challenge, derives
    // the wire (attempt 0 reuses the engine's quote; retries re-quote
    // under a fresh nonce with the platform's current-generation AIK),
    // pushes the network's delivery schedule and the client deadline,
    // and — on the first attempt — the request's adversarial riders.
    let dispatch_attempt = |queue: &mut EventQueue<Ev>,
                            verifier: &mut VerifierService,
                            life: &mut Life,
                            request: u64,
                            send_at_ns: u64| {
        let send = cfg.churn.available_at(life.platform as u64, send_at_ns);
        let attempt = life.current;
        life.attempts += 1;
        life.last_send_ns = send;
        match &life.wire0 {
            Err(kind) => {
                // A failed session has nothing to transmit; the report
                // is a control-plane message, delivered exactly once.
                queue.schedule(
                    SimTime::from_ns(send + NETWORK_RTT_NS),
                    request,
                    Ev::Deliver {
                        attempt,
                        wire: Err(*kind),
                    },
                );
            }
            Ok(bytes) => {
                let nonce = attempt_nonce(&life.nonce0, attempt);
                verifier.challenge(life.platform as u64, &nonce, send);
                let wire = if attempt == 0 {
                    bytes.clone()
                } else {
                    let aik = vault.aik_generation(
                        life.platform,
                        generation_at(&cfg.churn, life.platform, send),
                    );
                    Quote::from_bytes(bytes)
                        .expect("own wire parses")
                        .reissue(&nonce, &aik)
                        .expect("vault key signs")
                        .to_bytes()
                };
                for extra in cfg.churn.net().deliveries(request, attempt as u64) {
                    queue.schedule(
                        SimTime::from_ns(send + NETWORK_RTT_NS + extra),
                        request,
                        Ev::Deliver {
                            attempt,
                            wire: Ok(wire.clone()),
                        },
                    );
                }
                if cfg.lifecycle.timeout_ns() != u64::MAX {
                    queue.schedule(
                        SimTime::from_ns(send.saturating_add(cfg.lifecycle.timeout_ns())),
                        request,
                        Ev::Timeout { attempt },
                    );
                }
                if attempt == 0 {
                    for kind in cfg.churn.adversaries_for(request) {
                        match kind {
                            AdversaryKind::Replay => life.wants_replay = true,
                            AdversaryKind::StaleNonce => {
                                // Needs a finite freshness window to be
                                // distinguishable from an honest wire.
                                if cfg.freshness_window_ns == u64::MAX {
                                    continue;
                                }
                                let stale = marker_nonce(&life.nonce0, STALE_MARKER);
                                verifier.challenge(life.platform as u64, &stale, send);
                                let at = send
                                    .saturating_add(cfg.freshness_window_ns)
                                    .saturating_add(1 + NETWORK_RTT_NS);
                                let aik = vault.aik_generation(
                                    life.platform,
                                    generation_at(&cfg.churn, life.platform, at),
                                );
                                let wire = Quote::from_bytes(bytes)
                                    .expect("own wire parses")
                                    .reissue(&stale, &aik)
                                    .expect("vault key signs")
                                    .to_bytes();
                                queue.schedule(
                                    SimTime::from_ns(at),
                                    adversary_id(request, 1),
                                    Ev::Adversary {
                                        request,
                                        kind,
                                        wire,
                                    },
                                );
                            }
                            AdversaryKind::BitFlip => {
                                let mut flipped = bytes.clone();
                                let bit = cfg.churn.bitflip_bit(request, flipped.len() * 8);
                                flipped[bit / 8] ^= 1 << (bit % 8);
                                queue.schedule(
                                    SimTime::from_ns(send + NETWORK_RTT_NS),
                                    adversary_id(request, 2),
                                    Ev::Adversary {
                                        request,
                                        kind,
                                        wire: flipped,
                                    },
                                );
                            }
                            AdversaryKind::ForgedCert => {
                                let rogue = vault.aik_generation(life.platform, ROGUE_GENERATION);
                                let wire = Quote::from_bytes(bytes)
                                    .expect("own wire parses")
                                    .reissue(&marker_nonce(&life.nonce0, FORGE_MARKER), &rogue)
                                    .expect("rogue key signs")
                                    .to_bytes();
                                queue.schedule(
                                    SimTime::from_ns(send + NETWORK_RTT_NS),
                                    adversary_id(request, 3),
                                    Ev::Adversary {
                                        request,
                                        kind,
                                        wire,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    };

    // First attempt of every request, in request-id order (the order is
    // irrelevant to the outcome — event times and ids decide — but
    // fixing it keeps the queue's FIFO tiebreak submission-invariant).
    for (r, life) in lives.iter_mut().enumerate() {
        let at = life.completed_ns;
        dispatch_attempt(&mut queue, &mut verifier, life, r as u64, at);
    }

    // The verifier as a single queueing server in virtual time, driving
    // each request's client lifecycle to a typed fate.
    let mut requests = Vec::with_capacity(cfg.requests);
    let mut adversarial = Vec::new();
    let mut busy_until = 0u64;
    let resolve = |life: &mut Life,
                   requests: &mut Vec<RequestOutcome>,
                   request: u64,
                   fate: RequestFate,
                   settled_ns: u64| {
        life.resolved = true;
        requests.push(RequestOutcome {
            request,
            platform: life.platform,
            completed_ns: life.completed_ns,
            verified_ns: settled_ns,
            latency_ns: settled_ns.saturating_sub(life.completed_ns),
            ticket_hit: life.last_ticket_hit,
            wire: life.wire0.as_ref().ok().cloned(),
            verdict: life.last_verdict.clone(),
            fate,
            attempts: life.attempts,
        });
    };
    while let Some(event) = queue.pop() {
        match event.payload {
            Ev::Deliver { attempt, wire } => {
                let r = event.id;
                let life = &mut lives[r as usize];
                let arrival = event.at.as_ns();
                let start = busy_until.max(arrival);
                let verdict = match &wire {
                    Err(kind) => verifier.reject_missing(life.platform as u64, *kind),
                    Ok(bytes) => verifier.verify(life.platform as u64, bytes, start),
                };
                busy_until = start + verdict.cost_ns;
                // Late or duplicate wires (an abandoned attempt, or a
                // second copy after the first resolved) count at the
                // verifier but never re-resolve the request's fate.
                if life.resolved || attempt != life.current {
                    continue;
                }
                life.last_verdict = Some(verdict.result.clone());
                life.last_ticket_hit = verdict.ticket_hit;
                match &verdict.result {
                    Ok(_) => {
                        let fate = if verdict.degraded {
                            RequestFate::Degraded
                        } else if attempt > 0 {
                            RequestFate::Retried
                        } else {
                            RequestFate::Verified
                        };
                        resolve(life, &mut requests, r, fate, busy_until);
                        if life.wants_replay {
                            if let Ok(bytes) = &wire {
                                queue.schedule(
                                    SimTime::from_ns(busy_until + NETWORK_RTT_NS),
                                    adversary_id(r, 0),
                                    Ev::Adversary {
                                        request: r,
                                        kind: AdversaryKind::Replay,
                                        wire: bytes.clone(),
                                    },
                                );
                            }
                        }
                    }
                    Err(reason)
                        if reason.is_retryable()
                            && life.attempts < cfg.lifecycle.max_attempts() =>
                    {
                        life.current += 1;
                        let backoff = cfg.lifecycle.backoff_ns(life.current);
                        let at = busy_until + NETWORK_RTT_NS + backoff;
                        dispatch_attempt(&mut queue, &mut verifier, life, r, at);
                    }
                    Err(_) => {
                        resolve(life, &mut requests, r, RequestFate::Rejected, busy_until);
                    }
                }
            }
            Ev::Timeout { attempt } => {
                let r = event.id;
                let life = &mut lives[r as usize];
                if life.resolved || attempt != life.current {
                    continue;
                }
                if life.attempts < cfg.lifecycle.max_attempts() {
                    life.current += 1;
                    let at = event.at.as_ns() + cfg.lifecycle.backoff_ns(life.current);
                    dispatch_attempt(&mut queue, &mut verifier, life, r, at);
                } else {
                    resolve(
                        life,
                        &mut requests,
                        r,
                        RequestFate::TimedOut,
                        event.at.as_ns(),
                    );
                }
            }
            Ev::ReEnroll { platform } => {
                verifier.enroll(vault.certificate_generation(platform, 1, u64::MAX));
            }
            Ev::Adversary {
                request,
                kind,
                wire,
            } => {
                let platform = lives[request as usize].platform;
                let arrival = event.at.as_ns();
                let start = busy_until.max(arrival);
                let verdict = verifier.verify(platform as u64, &wire, start);
                busy_until = start + verdict.cost_ns;
                adversarial.push(AdversaryOutcome {
                    request,
                    platform,
                    kind,
                    verified_ns: busy_until,
                    verdict: verdict.result,
                });
            }
        }
    }

    // A lossy network with an infinite client timeout can strand a
    // request without any event left to settle it: close those out as
    // timed out at their last send.
    for (r, life) in lives.iter_mut().enumerate() {
        if !life.resolved {
            let settled = life.last_send_ns;
            resolve(
                life,
                &mut requests,
                r as u64,
                RequestFate::TimedOut,
                settled,
            );
        }
    }

    let stats = *verifier.stats();
    FleetOutcome {
        wall_ns: requests.iter().map(|r| r.verified_ns).max().unwrap_or(0),
        accepted: requests.iter().filter(|r| r.fate.is_accepted()).count(),
        rejected: requests
            .iter()
            .filter(|r| r.fate == RequestFate::Rejected)
            .count(),
        timed_out: requests
            .iter()
            .filter(|r| r.fate == RequestFate::TimedOut)
            .count(),
        degraded: requests
            .iter()
            .filter(|r| r.fate == RequestFate::Degraded)
            .count(),
        retries: requests.iter().map(|r| (r.attempts - 1) as u64).sum(),
        adversarial_rejected: adversarial.iter().filter(|a| a.verdict.is_err()).count(),
        adversarial,
        cert_walks: stats.cert_walks,
        ticket_hits: stats.ticket_hits,
        stats,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::TcbPush;
    use crate::tcb::TcbStatus;
    use sea_hw::{NetPlan, RATE_DENOM};

    #[test]
    fn small_fleet_attests_end_to_end() {
        let out = run_fleet(&FleetConfig::new(3, 9));
        assert_eq!(out.requests.len(), 9);
        assert_eq!(out.accepted, 9);
        assert_eq!(out.rejected, 0);
        assert_eq!(out.timed_out, 0);
        assert_eq!(out.retries, 0);
        assert!(out.adversarial.is_empty());
        // One cert walk per platform, the rest served from tickets.
        assert_eq!(out.cert_walks, 3);
        assert_eq!(out.ticket_hits, 6);
        assert!(out.wall_ns > 0);
        assert!(out.goodput_per_sec() > 0.0);
        for r in &out.requests {
            assert_eq!(r.fate, RequestFate::Verified);
            assert_eq!(r.attempts, 1);
            let verdict = r.verdict.as_ref().expect("a verdict arrived");
            let att = verdict.as_ref().expect("honest fleet accepted");
            assert_eq!(att.service, FLEET_SERVICE);
            assert_eq!(att.tcb, TcbStatus::UpToDate);
            assert_eq!(att.platform, r.platform as u64);
            assert!(r.verified_ns > r.completed_ns);
            assert_eq!(r.latency_ns, r.verified_ns - r.completed_ns);
        }
    }

    #[test]
    fn round_robin_and_hashed_dispatch_both_complete() {
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::Hashed { seed: 7 },
        ] {
            let out = run_fleet(&FleetConfig::new(4, 8).with_policy(policy));
            assert_eq!(out.accepted, 8);
        }
    }

    #[test]
    fn outcome_is_identical_across_shard_counts() {
        let base = run_fleet(&FleetConfig::new(5, 10));
        for shards in [2, 3, 5, 8] {
            let sharded = run_fleet(&FleetConfig::new(5, 10).with_shards(shards));
            assert_eq!(sharded, base, "shards = {shards}");
        }
    }

    #[test]
    fn outcome_is_identical_across_submission_orders() {
        let cfg = FleetConfig::new(3, 8);
        let base = run_fleet(&cfg);
        let mut reversed: Vec<u64> = (0..8).rev().collect();
        assert_eq!(
            run_fleet_with_submission(&cfg, &reversed, Obs::null()),
            base
        );
        reversed.swap(0, 3);
        assert_eq!(
            run_fleet_with_submission(&cfg, &reversed, Obs::null()),
            base
        );
    }

    #[test]
    fn latencies_are_sorted_and_complete() {
        let out = run_fleet(&FleetConfig::new(2, 6));
        let lat = out.latencies_sorted_ns();
        assert_eq!(lat.len(), 6);
        assert!(lat.windows(2).all(|w| w[0] <= w[1]));
        // Every latency includes at least the network transit.
        assert!(lat[0] >= NETWORK_RTT_NS);
    }

    #[test]
    fn goodput_is_zero_on_zero_wall_time() {
        // Regression: zero elapsed virtual time must not divide by
        // zero (or return NaN/inf) even with accepted requests.
        let out = FleetOutcome {
            requests: Vec::new(),
            accepted: 3,
            rejected: 0,
            timed_out: 0,
            degraded: 0,
            retries: 0,
            adversarial: Vec::new(),
            adversarial_rejected: 0,
            cert_walks: 0,
            ticket_hits: 0,
            stats: VerifierStats::default(),
            wall_ns: 0,
        };
        assert_eq!(out.goodput_per_sec(), 0.0);
        assert!(out.goodput_per_sec().is_finite());
    }

    #[test]
    fn dropped_wires_are_retried_to_acceptance() {
        let cfg = FleetConfig::new(3, 12)
            .with_churn(
                ChurnPlan::new(0xD00D).with_net(NetPlan::new(0xD00D).with_drop_rate(20_000)),
            )
            .with_lifecycle(FleetPolicy::resilient().with_max_attempts(8));
        let out = run_fleet(&cfg);
        assert_eq!(out.accepted, 12, "every request eventually lands");
        assert!(out.retries > 0, "a 30% drop rate over 12 wires retries");
        assert!(out
            .requests
            .iter()
            .any(|r| r.fate == RequestFate::Retried && r.attempts > 1));
        // Retried requests pay transit + backoff: latency grows.
        let retried = out
            .requests
            .iter()
            .find(|r| r.fate == RequestFate::Retried)
            .expect("some retry");
        assert!(retried.latency_ns > NETWORK_RTT_NS);
    }

    #[test]
    fn total_loss_times_out_with_typed_fates() {
        let cfg = FleetConfig::new(2, 4)
            .with_churn(ChurnPlan::new(1).with_net(NetPlan::new(1).with_drop_rate(RATE_DENOM)))
            .with_lifecycle(
                FleetPolicy::resilient()
                    .with_max_attempts(2)
                    .with_timeout_ns(1_000_000),
            );
        let out = run_fleet(&cfg);
        assert_eq!(out.accepted, 0);
        assert_eq!(out.timed_out, 4);
        assert_eq!(out.retries, 4, "each request burned both attempts");
        for r in &out.requests {
            assert_eq!(r.fate, RequestFate::TimedOut);
            assert_eq!(r.verdict, None, "no verdict ever reached the client");
            assert_eq!(r.attempts, 2);
        }
    }

    #[test]
    fn tcb_push_inside_grace_degrades_instead_of_rejecting() {
        let cfg = FleetConfig::new(2, 6).with_churn(ChurnPlan::new(3).with_tcb_push(TcbPush {
            at_ns: 0,
            groups: 1,
            group_delay_ns: 0,
            grace_ns: u64::MAX,
        }));
        let out = run_fleet(&cfg);
        assert_eq!(out.accepted, 6);
        assert_eq!(out.degraded, 6, "all accepted inside the grace window");
        assert!(out.requests.iter().all(|r| r.fate == RequestFate::Degraded));
    }

    #[test]
    fn churned_outcome_is_identical_across_shards_and_submissions() {
        let churn = ChurnPlan::new(0xBEEF)
            .with_net(
                NetPlan::new(0xBEEF)
                    .with_drop_rate(8_000)
                    .with_delay_rate(8_000)
                    .with_duplicate_rate(8_000)
                    .with_reorder_rate(8_000),
            )
            .with_reboots(RATE_DENOM / 4, 500_000)
            .with_adversary(20_000, 0, 20_000, 20_000);
        let cfg = FleetConfig::new(4, 12)
            .with_churn(churn)
            .with_lifecycle(FleetPolicy::resilient());
        let base = run_fleet(&cfg);
        assert_eq!(run_fleet(&cfg.clone().with_shards(4)), base);
        let rev: Vec<u64> = (0..12).rev().collect();
        assert_eq!(run_fleet_with_submission(&cfg, &rev, Obs::null()), base);
        // Sound verifier: every adversarial wire rejected, typed.
        assert!(!base.adversarial.is_empty());
        assert_eq!(base.adversarial_rejected, base.adversarial.len());
    }
}
