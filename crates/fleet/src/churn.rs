//! Seeded platform churn and adversarial traffic for a fleet sweep.
//!
//! Service reality for an attestation fleet is not a static set of
//! well-behaved platforms: machines reboot mid-sweep, AIK certificates
//! expire and are re-enrolled, TCB tables roll forward while requests
//! are in flight, and the request stream carries adversarial wires. A
//! [`ChurnPlan`] decides all of it *deterministically*: every decision
//! is a pure function of `(plan seed, decision site, platform or
//! request id)` — never of shard layout, executor backend, worker
//! count, or submission order — so a churned
//! [`FleetOutcome`](crate::FleetOutcome) is byte-identical across every execution
//! shape, exactly like the platform-level `FaultPlan` and `ResetPlan`
//! it extends upward.
//!
//! Reboots reuse the hardware layer's reset machinery: the *whether*
//! roll goes through [`ResetPlan::roll_power_loss`] and the blackout
//! length is [`RESET_REBOOT_COST`], so fleet-level churn and
//! engine-level crash testing share one vocabulary.

use std::fmt;

use sea_hw::{NetPlan, ResetPlan, RATE_DENOM, RESET_REBOOT_COST};

// Decision sites, mixed into the seed so the churn streams are
// independent of each other and of NetPlan/FaultPlan sites.
const SITE_REBOOT_AT: u64 = 0x6362_7400; // "cbt\0" — reboot instant
const SITE_ROTATE: u64 = 0x6372_6f74; // "crot" — cert rotation
const SITE_REPLAY: u64 = 0x6172_706c; // "arpl" — adversary: replay
const SITE_STALE: u64 = 0x6173_746c; // "astl" — adversary: stale nonce
const SITE_FLIP: u64 = 0x6166_6c70; // "aflp" — adversary: bit flip
const SITE_FORGE: u64 = 0x6166_7267; // "afrg" — adversary: forged cert

/// SplitMix64 finalizer — the same mixer `sea-os`'s dispatcher uses.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One kind of adversarial wire interleaved into the request sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AdversaryKind {
    /// An exact copy of an already-accepted wire, delivered again.
    Replay,
    /// A genuine quote answering a challenge long after its freshness
    /// window closed.
    StaleNonce,
    /// An honest wire with one seeded bit flipped in transit.
    BitFlip,
    /// A wire signed by a key the privacy CA never certified.
    ForgedCert,
}

impl fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryKind::Replay => write!(f, "replay"),
            AdversaryKind::StaleNonce => write!(f, "stale-nonce"),
            AdversaryKind::BitFlip => write!(f, "bit-flip"),
            AdversaryKind::ForgedCert => write!(f, "forged-cert"),
        }
    }
}

/// A staged mid-run TCB-table push, as the churn plan schedules it.
/// The fleet turns this into a
/// [`TcbRollout`](crate::TcbRollout) marking the service build
/// `OutOfDate` at `tcb_version + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcbPush {
    /// Virtual time the new table is announced.
    pub at_ns: u64,
    /// Logical propagation groups (platform `p` is in group
    /// `p % groups`).
    pub groups: u64,
    /// Delay between successive groups seeing the table.
    pub group_delay_ns: u64,
    /// Stale-TCB grace window after arrival, during which `OutOfDate`
    /// builds are still accepted (degraded).
    pub grace_ns: u64,
}

/// A seeded, deterministic churn plan for one fleet sweep.
///
/// Composes four independent chaos dimensions, each off by default:
/// network faults (a [`NetPlan`]), mid-sweep platform reboots, AIK
/// certificate rotation with re-enrollment, and an adversarial wire
/// stream. [`ChurnPlan::calm`] is the identity plan — a calm run is
/// byte-identical to the pre-churn pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPlan {
    seed: u64,
    net: NetPlan,
    reboot_rate: u32,
    reboot_window_ns: u64,
    rotation_rate: u32,
    rotation_at_ns: u64,
    re_enroll_delay_ns: u64,
    tcb_push: Option<TcbPush>,
    replay_rate: u32,
    stale_rate: u32,
    bitflip_rate: u32,
    forge_rate: u32,
}

impl ChurnPlan {
    /// A plan with the given seed and every chaos dimension off. The
    /// embedded network plan shares the seed (sites keep the streams
    /// independent).
    pub fn new(seed: u64) -> Self {
        ChurnPlan {
            seed,
            net: NetPlan::new(seed),
            reboot_rate: 0,
            reboot_window_ns: 2_000_000,
            rotation_rate: 0,
            rotation_at_ns: 1_000_000,
            re_enroll_delay_ns: 400_000,
            tcb_push: None,
            replay_rate: 0,
            stale_rate: 0,
            bitflip_rate: 0,
            forge_rate: 0,
        }
    }

    /// The canonical no-churn plan.
    pub fn calm() -> Self {
        ChurnPlan::new(0)
    }

    /// Replaces the embedded network-fault plan (builder-style).
    #[must_use]
    pub fn with_net(mut self, net: NetPlan) -> Self {
        self.net = net;
        self
    }

    /// Enables mid-sweep reboots: each platform reboots with
    /// probability `rate / RATE_DENOM`, at a seeded instant uniform in
    /// `1..=window_ns` (builder-style).
    #[must_use]
    pub fn with_reboots(mut self, rate: u32, window_ns: u64) -> Self {
        self.reboot_rate = rate.min(RATE_DENOM);
        self.reboot_window_ns = window_ns.max(1);
        self
    }

    /// Enables certificate rotation: each platform's generation-0
    /// certificate expires at `at_ns` with probability
    /// `rate / RATE_DENOM`, and its generation-1 certificate is
    /// re-enrolled `re_enroll_delay_ns` later (builder-style).
    #[must_use]
    pub fn with_rotation(mut self, rate: u32, at_ns: u64, re_enroll_delay_ns: u64) -> Self {
        self.rotation_rate = rate.min(RATE_DENOM);
        self.rotation_at_ns = at_ns;
        self.re_enroll_delay_ns = re_enroll_delay_ns;
        self
    }

    /// Schedules a staged mid-run TCB-table push (builder-style).
    #[must_use]
    pub fn with_tcb_push(mut self, push: TcbPush) -> Self {
        self.tcb_push = Some(push);
        self
    }

    /// Sets the adversarial-wire rates, each per honest request, parts
    /// per [`RATE_DENOM`] (builder-style).
    #[must_use]
    pub fn with_adversary(mut self, replay: u32, stale: u32, bitflip: u32, forge: u32) -> Self {
        self.replay_rate = replay.min(RATE_DENOM);
        self.stale_rate = stale.min(RATE_DENOM);
        self.bitflip_rate = bitflip.min(RATE_DENOM);
        self.forge_rate = forge.min(RATE_DENOM);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The embedded network-fault plan.
    pub fn net(&self) -> &NetPlan {
        &self.net
    }

    /// The scheduled TCB push, if any.
    pub fn tcb_push(&self) -> Option<TcbPush> {
        self.tcb_push
    }

    /// True if the plan can never perturb a run.
    pub fn is_calm(&self) -> bool {
        self.net.is_lossless()
            && self.reboot_rate == 0
            && self.rotation_rate == 0
            && self.tcb_push.is_none()
            && self.replay_rate == 0
            && self.stale_rate == 0
            && self.bitflip_rate == 0
            && self.forge_rate == 0
    }

    fn rate_roll(&self, site: u64, key: u64, rate: u32) -> bool {
        rate != 0
            && (mix64(self.seed ^ site.rotate_left(17) ^ mix64(key)) % RATE_DENOM as u64)
                < rate as u64
    }

    /// When (if ever) `platform` reboots mid-sweep. The *whether* roll
    /// goes through the hardware layer's [`ResetPlan`]; the instant is
    /// a seeded draw over the reboot window.
    pub fn reboot_instant(&self, platform: u64) -> Option<u64> {
        if self.reboot_rate == 0 {
            return None;
        }
        let decides = ResetPlan::new(self.seed)
            .with_reset_rate(self.reboot_rate)
            .roll_power_loss(platform, 0);
        if !decides {
            return None;
        }
        Some(
            1 + mix64(self.seed ^ SITE_REBOOT_AT.rotate_left(17) ^ mix64(platform))
                % self.reboot_window_ns,
        )
    }

    /// The earliest instant at or after `t_ns` when `platform` can
    /// transmit: a platform inside its reboot blackout
    /// (`[instant, instant + RESET_REBOOT_COST)`) transmits when the
    /// reboot finishes.
    pub fn available_at(&self, platform: u64, t_ns: u64) -> u64 {
        match self.reboot_instant(platform) {
            Some(r) if t_ns >= r && t_ns < r + RESET_REBOOT_COST.as_ns() => {
                r + RESET_REBOOT_COST.as_ns()
            }
            _ => t_ns,
        }
    }

    /// Whether (and when) `platform`'s certificate rotates:
    /// `(not_after_ns, re_enroll_at_ns)`.
    pub fn rotation_for(&self, platform: u64) -> Option<(u64, u64)> {
        if !self.rate_roll(SITE_ROTATE, platform, self.rotation_rate) {
            return None;
        }
        Some((
            self.rotation_at_ns,
            self.rotation_at_ns.saturating_add(self.re_enroll_delay_ns),
        ))
    }

    /// The adversarial wires to interleave alongside honest request
    /// `request`, in a fixed kind order.
    pub fn adversaries_for(&self, request: u64) -> Vec<AdversaryKind> {
        let mut kinds = Vec::new();
        if self.rate_roll(SITE_REPLAY, request, self.replay_rate) {
            kinds.push(AdversaryKind::Replay);
        }
        if self.rate_roll(SITE_STALE, request, self.stale_rate) {
            kinds.push(AdversaryKind::StaleNonce);
        }
        if self.rate_roll(SITE_FLIP, request, self.bitflip_rate) {
            kinds.push(AdversaryKind::BitFlip);
        }
        if self.rate_roll(SITE_FORGE, request, self.forge_rate) {
            kinds.push(AdversaryKind::ForgedCert);
        }
        kinds
    }

    /// Which bit a [`AdversaryKind::BitFlip`] wire has flipped, for a
    /// wire of `bits` total bits.
    pub fn bitflip_bit(&self, request: u64, bits: usize) -> usize {
        (mix64(self.seed ^ SITE_FLIP.rotate_left(31) ^ mix64(request)) % bits.max(1) as u64)
            as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churny() -> ChurnPlan {
        ChurnPlan::new(0xC0DE)
            .with_net(NetPlan::new(0xC0DE).with_drop_rate(8000))
            .with_reboots(RATE_DENOM / 2, 1_000_000)
            .with_rotation(RATE_DENOM / 2, 2_000_000, 300_000)
            .with_tcb_push(TcbPush {
                at_ns: 3_000_000,
                groups: 4,
                group_delay_ns: 100_000,
                grace_ns: 50_000,
            })
            .with_adversary(8000, 8000, 8000, 8000)
    }

    #[test]
    fn calm_plan_decides_nothing() {
        let calm = ChurnPlan::calm();
        assert!(calm.is_calm());
        for p in 0..32u64 {
            assert_eq!(calm.reboot_instant(p), None);
            assert_eq!(calm.available_at(p, 123), 123);
            assert_eq!(calm.rotation_for(p), None);
            assert!(calm.adversaries_for(p).is_empty());
        }
        assert!(!churny().is_calm());
    }

    #[test]
    fn decisions_are_deterministic_and_decorrelated() {
        let a = churny();
        let b = churny();
        let mut reboots = 0;
        let mut rotations = 0;
        let mut adversaries = 0;
        for p in 0..128u64 {
            assert_eq!(a.reboot_instant(p), b.reboot_instant(p));
            assert_eq!(a.rotation_for(p), b.rotation_for(p));
            assert_eq!(a.adversaries_for(p), b.adversaries_for(p));
            reboots += a.reboot_instant(p).is_some() as usize;
            rotations += a.rotation_for(p).is_some() as usize;
            adversaries += a.adversaries_for(p).len();
        }
        // At 50% rates over 128 draws, every dimension must fire some
        // but not all of the time.
        assert!(reboots > 16 && reboots < 112, "reboots = {reboots}");
        assert!(rotations > 16 && rotations < 112, "rotations = {rotations}");
        assert!(adversaries > 64, "adversaries = {adversaries}");
    }

    #[test]
    fn reboot_blackout_defers_transmission() {
        let plan = ChurnPlan::new(7).with_reboots(RATE_DENOM, 1_000);
        let p = 3u64;
        let r = plan.reboot_instant(p).expect("full rate always reboots");
        assert!((1..=1_000).contains(&r));
        let cost = RESET_REBOOT_COST.as_ns();
        assert_eq!(plan.available_at(p, r.saturating_sub(1)), r - 1);
        assert_eq!(plan.available_at(p, r), r + cost);
        assert_eq!(plan.available_at(p, r + cost - 1), r + cost);
        assert_eq!(plan.available_at(p, r + cost), r + cost);
    }

    #[test]
    fn rotation_carries_expiry_and_re_enrollment() {
        let plan = ChurnPlan::new(7).with_rotation(RATE_DENOM, 5_000, 1_000);
        assert_eq!(plan.rotation_for(9), Some((5_000, 6_000)));
        let never = ChurnPlan::new(7).with_rotation(0, 5_000, 1_000);
        assert_eq!(never.rotation_for(9), None);
    }

    #[test]
    fn bitflip_bit_is_in_range_and_varies() {
        let plan = churny();
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..64u64 {
            let bit = plan.bitflip_bit(r, 800);
            assert!(bit < 800);
            seen.insert(bit);
        }
        assert!(seen.len() > 16);
        assert_eq!(plan.bitflip_bit(0, 0), 0, "degenerate width clamps");
    }

    #[test]
    fn adversary_kinds_display() {
        for (kind, needle) in [
            (AdversaryKind::Replay, "replay"),
            (AdversaryKind::StaleNonce, "stale-nonce"),
            (AdversaryKind::BitFlip, "bit-flip"),
            (AdversaryKind::ForgedCert, "forged-cert"),
        ] {
            assert_eq!(kind.to_string(), needle);
        }
    }
}
