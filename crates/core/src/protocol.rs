//! The remote-attestation challenge/response protocol.
//!
//! §2.1.1 sketches the flow: the verifier supplies a nonce, receives a
//! signed quote, validates the AIK chain and the reported state, and
//! decides. [`AttestationService`] packages that flow with the nonce
//! hygiene a real deployment needs — unpredictable challenges, single
//! use, and bounded lifetime — on top of [`crate::Verifier`] /
//! [`crate::TrustPolicy`].

use sea_crypto::Drbg;
use sea_hw::{SimDuration, SimTime};
use sea_tpm::Quote;

use crate::attest::{TrustPolicy, VerifyError};

/// Length of challenge nonces in bytes.
const NONCE_LEN: usize = 20;

/// An outstanding challenge issued by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Challenge {
    nonce: Vec<u8>,
    issued_at: SimTime,
}

impl Challenge {
    /// The nonce to pass to the platform's quote operation.
    pub fn nonce(&self) -> &[u8] {
        &self.nonce
    }
}

/// Why the service rejected an attestation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The response's nonce matches no outstanding challenge — replayed,
    /// expired, already consumed, or fabricated.
    UnknownChallenge,
    /// The challenge was issued too long ago.
    ChallengeExpired,
    /// The quote failed cryptographic or policy verification.
    Verify(VerifyError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnknownChallenge => {
                write!(f, "response matches no outstanding challenge")
            }
            ProtocolError::ChallengeExpired => write!(f, "challenge expired"),
            ProtocolError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

/// A remote attestation service: issues challenges, consumes sePCR
/// quotes, and answers "which trusted service just ran?".
///
/// See the module tests for the full issue → quote → consume flow.
#[derive(Debug)]
pub struct AttestationService {
    policy: TrustPolicy,
    rng: Drbg,
    max_age: SimDuration,
    outstanding: Vec<Challenge>,
}

impl AttestationService {
    /// Creates a service over `policy`, accepting responses within
    /// `max_age` of their challenge. Nonces derive from `seed`
    /// deterministically (the simulation's replayability rule).
    pub fn new(policy: TrustPolicy, max_age: SimDuration, seed: &[u8]) -> Self {
        AttestationService {
            policy,
            rng: Drbg::new(&[seed, b"/attestation-nonces"].concat()),
            max_age,
            outstanding: Vec::new(),
        }
    }

    /// The underlying trust policy (e.g. for revocations).
    pub fn policy_mut(&mut self) -> &mut TrustPolicy {
        &mut self.policy
    }

    /// Number of challenges awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Issues a fresh single-use challenge at time `now`.
    pub fn issue(&mut self, now: SimTime) -> Challenge {
        let challenge = Challenge {
            nonce: self.rng.fill(NONCE_LEN),
            issued_at: now,
        };
        self.outstanding.push(challenge.clone());
        challenge
    }

    /// Consumes a response: checks the nonce against outstanding
    /// challenges (single use, bounded age) and then verifies the quote
    /// against the trust policy, returning the identified service name.
    ///
    /// # Errors
    ///
    /// See [`ProtocolError`]. On any error the challenge (if found) is
    /// still consumed — a failed response burns its nonce.
    pub fn consume(&mut self, quote: &Quote, now: SimTime) -> Result<String, ProtocolError> {
        let idx = self
            .outstanding
            .iter()
            .position(|c| c.nonce == quote.nonce())
            .ok_or(ProtocolError::UnknownChallenge)?;
        let challenge = self.outstanding.swap_remove(idx);
        if now.duration_since(challenge.issued_at) > self.max_age {
            return Err(ProtocolError::ChallengeExpired);
        }
        self.policy
            .identify_sepcr_quote(quote, &challenge.nonce, &[])
            .map(|s| s.to_owned())
            .map_err(ProtocolError::Verify)
    }

    /// Drops challenges older than the acceptance window (housekeeping).
    pub fn expire(&mut self, now: SimTime) {
        let max_age = self.max_age;
        self.outstanding
            .retain(|c| now.duration_since(c.issued_at) <= max_age);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::Verifier;
    use crate::enhanced::EnhancedSea;
    use crate::pal::{FnPal, PalLogic, PalOutcome};
    use crate::platform::SecurePlatform;
    use sea_hw::{CpuId, Platform};
    use sea_tpm::KeyStrength;

    fn setup() -> (EnhancedSea, AttestationService) {
        let sea = EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(2),
            KeyStrength::Demo512,
            b"protocol",
        ))
        .unwrap();
        let policy = TrustPolicy::new(Verifier::new(
            sea.platform().tpm().unwrap().aik_public().clone(),
        ));
        let service = AttestationService::new(policy, SimDuration::from_secs(60), b"svc");
        (sea, service)
    }

    fn run_and_quote(sea: &mut EnhancedSea, pal: &mut dyn PalLogic, nonce: &[u8]) -> Quote {
        let id = sea.slaunch(pal, b"", CpuId(0), None).unwrap();
        sea.run_to_exit(pal, id, CpuId(0)).unwrap();
        sea.quote_and_free(id, nonce).unwrap().value
    }

    #[test]
    fn happy_path_identifies_service() {
        let (mut sea, mut service) = setup();
        let mut pal = FnPal::new("ledger", |_| Ok(PalOutcome::Exit(vec![])));
        service.policy_mut().trust("ledger", &pal.image());

        let now = sea.platform().machine().now();
        let challenge = service.issue(now);
        assert_eq!(service.outstanding(), 1);
        let quote = run_and_quote(&mut sea, &mut pal, challenge.nonce());
        let later = sea.platform().machine().now();
        assert_eq!(service.consume(&quote, later), Ok("ledger".to_owned()));
        assert_eq!(service.outstanding(), 0);
    }

    #[test]
    fn replayed_response_rejected() {
        let (mut sea, mut service) = setup();
        let mut pal = FnPal::new("ledger", |_| Ok(PalOutcome::Exit(vec![])));
        service.policy_mut().trust("ledger", &pal.image());
        let now = sea.platform().machine().now();
        let challenge = service.issue(now);
        let quote = run_and_quote(&mut sea, &mut pal, challenge.nonce());
        let later = sea.platform().machine().now();
        assert!(service.consume(&quote, later).is_ok());
        // Second use of the same quote: the nonce is burned.
        assert_eq!(
            service.consume(&quote, later),
            Err(ProtocolError::UnknownChallenge)
        );
    }

    #[test]
    fn stale_challenge_rejected() {
        let (mut sea, mut service) = setup();
        let mut pal = FnPal::new("ledger", |_| Ok(PalOutcome::Exit(vec![])));
        service.policy_mut().trust("ledger", &pal.image());
        let now = sea.platform().machine().now();
        let challenge = service.issue(now);
        let quote = run_and_quote(&mut sea, &mut pal, challenge.nonce());
        // The response arrives two minutes later (window: 60 s).
        let too_late = now + SimDuration::from_secs(120);
        assert_eq!(
            service.consume(&quote, too_late),
            Err(ProtocolError::ChallengeExpired)
        );
    }

    #[test]
    fn untrusted_pal_rejected_and_nonce_burned() {
        let (mut sea, mut service) = setup();
        let mut impostor = FnPal::new("impostor", |_| Ok(PalOutcome::Exit(vec![])));
        // Policy trusts nothing.
        let now = sea.platform().machine().now();
        let challenge = service.issue(now);
        let quote = run_and_quote(&mut sea, &mut impostor, challenge.nonce());
        let later = sea.platform().machine().now();
        assert!(matches!(
            service.consume(&quote, later),
            Err(ProtocolError::Verify(VerifyError::MeasurementMismatch))
        ));
        // The failed attempt consumed the challenge.
        assert_eq!(service.outstanding(), 0);
    }

    #[test]
    fn fabricated_nonce_rejected() {
        let (mut sea, mut service) = setup();
        let mut pal = FnPal::new("ledger", |_| Ok(PalOutcome::Exit(vec![])));
        service.policy_mut().trust("ledger", &pal.image());
        // Quote against a nonce the service never issued.
        let quote = run_and_quote(&mut sea, &mut pal, b"attacker-chosen");
        let now = sea.platform().machine().now();
        assert_eq!(
            service.consume(&quote, now),
            Err(ProtocolError::UnknownChallenge)
        );
    }

    #[test]
    fn expire_drops_old_challenges() {
        let (sea, mut service) = setup();
        let t0 = sea.platform().machine().now();
        service.issue(t0);
        service.issue(t0 + SimDuration::from_secs(90));
        service.expire(t0 + SimDuration::from_secs(100));
        // First challenge (age 100 s) dropped; second (age 10 s) kept.
        assert_eq!(service.outstanding(), 1);
    }

    #[test]
    fn nonces_are_unique() {
        let (sea, mut service) = setup();
        let now = sea.platform().machine().now();
        let a = service.issue(now);
        let b = service.issue(now);
        assert_ne!(a.nonce(), b.nonce());
        assert_eq!(a.nonce().len(), NONCE_LEN);
    }

    #[test]
    fn error_display() {
        for e in [
            ProtocolError::UnknownChallenge,
            ProtocolError::ChallengeExpired,
            ProtocolError::Verify(VerifyError::BadSignature),
        ] {
            assert!(!e.to_string().is_empty());
        }
        assert!(
            std::error::Error::source(&ProtocolError::Verify(VerifyError::BadSignature)).is_some()
        );
    }
}
