//! SEA on the paper's recommended hardware (§5).
//!
//! [`EnhancedSea`] implements the full PAL life cycle of Figures 6–7:
//!
//! * **`SLAUNCH`** ([`EnhancedSea::slaunch`]): the OS allocates a SECB and
//!   memory, the memory controller flips the pages to `CPUᵢ` (failing on
//!   conflict), the TPM measures the PAL **once** into a freshly
//!   allocated sePCR, and execution begins.
//! * **`SYIELD` / preemption** ([`EnhancedSea::step`]): context switches
//!   cost a VM exit + entry (~1 µs, Table 2) instead of the baseline's
//!   TPM Seal + SKINIT + Unseal (~200–1100 ms) — the six-orders-of-
//!   magnitude improvement §5.7 projects.
//! * **Resume** ([`EnhancedSea::resume`]): honors the Measured Flag only
//!   when the pages are `NONE`, can land on a *different* CPU, and fails
//!   while the PAL runs elsewhere.
//! * **`SFREE`** (automatic on PAL exit): pages erased of secrets and
//!   returned to `ALL`; the sePCR moves to the Quote state.
//! * **`SKILL`** ([`EnhancedSea::skill`]): erases a misbehaving PAL's
//!   pages and brands its sePCR with the kill constant.
//! * **Attestation** ([`EnhancedSea::quote_and_free`]): *untrusted* code
//!   quotes the sePCR and recycles it (§5.4.3).

use std::collections::HashMap;

use sea_hw::{
    CpuId, FaultKind, FaultPlan, Layer, Obs, PageIndex, PageRange, SimDuration, TraceEvent,
    PAGE_SIZE, TRANSPORT_FAULT_COST,
};
use sea_tpm::{Quote, Timed, TpmError};

use crate::error::SeaError;
use crate::pal::{PalCtx, PalLogic, PalOutcome, SealBinding};
use crate::platform::SecurePlatform;
use crate::report::SessionReport;
use crate::secb::{InterruptPolicy, PalLifecycle, Secb};

/// Cost of reprogramming the interrupt routing logic when scheduling a
/// PAL with [`InterruptPolicy::Forward`] (§6: doing this "every time a
/// PAL is scheduled ... may create undesirable overhead").
const INTERRUPT_ROUTING_COST: SimDuration = SimDuration::from_us(2);

/// Identifier of a launched PAL within an [`EnhancedSea`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PalId(pub u64);

/// Result of driving one PAL scheduling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PalStep {
    /// The PAL yielded (`SYIELD`) or was preempted; it is suspended with
    /// its pages in the `NONE` state, awaiting [`EnhancedSea::resume`].
    Yielded,
    /// The PAL exited (`SFREE`); its resources are released and its
    /// sePCR awaits [`EnhancedSea::quote_and_free`].
    Exited {
        /// The PAL's output, now readable by untrusted code.
        output: Vec<u8>,
    },
}

/// Summary of a completed PAL run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PalDone {
    /// The PAL's output.
    pub output: Vec<u8>,
    /// Accumulated cost breakdown across launch, steps, and switches.
    pub report: SessionReport,
}

/// Bookkeeping for one live PAL.
#[derive(Debug)]
struct PalRun {
    secb: Secb,
    input_len: usize,
    state_capacity: usize,
    current_cpu: Option<CpuId>,
    /// §6 Multicore PALs: additional cores joined to this PAL while it
    /// executes. Cleared on every suspend — helpers must re-join.
    helper_cpus: Vec<CpuId>,
    report: SessionReport,
    output: Option<Vec<u8>>,
}

/// First page handed out by the built-in bump allocator (the low pages
/// belong to the "OS image").
const FIRST_PAL_PAGE: u32 = 64;

/// Bytes reserved in each PAL region for persistent state beyond image
/// and input.
const STATE_HEADROOM: usize = 2 * PAGE_SIZE;

/// Per-session fault-injection bookkeeping: a monotone roll counter and
/// how many spurious timer expiries the session has already absorbed.
#[derive(Debug, Default, Clone, Copy)]
struct FaultCursor {
    seq: u64,
    timer_count: u32,
}

/// SEA on the proposed hardware. See the crate-level example.
#[derive(Debug)]
pub struct EnhancedSea {
    platform: SecurePlatform,
    pals: HashMap<u64, PalRun>,
    next_id: u64,
    next_page: u32,
    fault_plan: Option<FaultPlan>,
    fault_cursors: HashMap<u64, FaultCursor>,
}

impl EnhancedSea {
    /// Creates the runtime.
    ///
    /// # Errors
    ///
    /// [`SeaError::SlaunchUnsupported`] on baseline platforms and
    /// [`SeaError::NoTpm`] on TPM-less ones.
    pub fn new(platform: SecurePlatform) -> Result<Self, SeaError> {
        if !platform.supports_slaunch() {
            return Err(SeaError::SlaunchUnsupported);
        }
        if platform.tpm().is_none() {
            return Err(SeaError::NoTpm);
        }
        Ok(EnhancedSea {
            platform,
            pals: HashMap::new(),
            next_id: 0,
            next_page: FIRST_PAL_PAGE,
            fault_plan: None,
            fault_cursors: HashMap::new(),
        })
    }

    /// Installs (or clears) a deterministic fault-injection plan. The
    /// `*_keyed` lifecycle operations consult it; the plain operations
    /// never inject. Installing a plan resets all per-session roll
    /// cursors, so the injection stream is a pure function of
    /// `(plan, session key, operation order within the session)`.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
        self.fault_cursors.clear();
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// A full power loss: every live PAL evaporates (their pages, SECBs,
    /// and CPU bindings are volatile), the bump allocator and fault
    /// cursors rewind, the machine rebuilds its volatile half, and the
    /// TPM applies v1.2 reset semantics — NVRAM (and thus the sealed
    /// session journal) survives. Returns the reboot's virtual cost,
    /// already charged to the machine clock; the machine records
    /// [`TraceEvent::PlatformReset`].
    pub fn power_cycle(&mut self) -> SimDuration {
        self.pals.clear();
        self.next_page = FIRST_PAL_PAGE;
        self.fault_cursors.clear();
        self.platform.power_cycle()
    }

    /// The underlying platform.
    pub fn platform(&self) -> &SecurePlatform {
        &self.platform
    }

    /// Mutable access to the underlying platform.
    pub fn platform_mut(&mut self) -> &mut SecurePlatform {
        &mut self.platform
    }

    /// The machine's observability handle (cheap clone of an `Arc`).
    fn obs(&self) -> Obs {
        self.platform.machine().obs().clone()
    }

    /// Cost of one suspend/resume pair on this platform (§5.7 expects
    /// the proposed context switch to cost about this much).
    pub fn context_switch_cost(&self) -> SimDuration {
        let virt = self.platform.machine().platform().virt;
        virt.vm_exit + virt.vm_enter
    }

    /// The SECB of a live PAL (diagnostics and tests).
    ///
    /// # Errors
    ///
    /// [`SeaError::NoSuchPal`] for unknown identifiers.
    pub fn secb(&self, id: PalId) -> Result<&Secb, SeaError> {
        Ok(&self.pals.get(&id.0).ok_or(SeaError::NoSuchPal(id.0))?.secb)
    }

    /// Accumulated cost report for a PAL.
    ///
    /// # Errors
    ///
    /// [`SeaError::NoSuchPal`] for unknown identifiers.
    pub fn report(&self, id: PalId) -> Result<SessionReport, SeaError> {
        Ok(self
            .pals
            .get(&id.0)
            .ok_or(SeaError::NoSuchPal(id.0))?
            .report)
    }

    /// `SLAUNCH` with `MF = 0` (Figure 7): allocates memory and a sePCR,
    /// installs isolation, measures the PAL, and leaves it in the
    /// `Execute` state ready for [`EnhancedSea::step`].
    ///
    /// The clock advances by the measurement cost (paid **once** per PAL,
    /// not per context switch — the heart of recommendation §5.3).
    ///
    /// # Errors
    ///
    /// [`SeaError::Hw`] with [`sea_hw::HwError::PageConflict`] if the
    /// region overlaps another PAL; [`SeaError::Tpm`] with
    /// [`sea_tpm::TpmError::NoFreeSePcr`] when the sePCR bank is
    /// exhausted (the pages are returned to `ALL` first, per Figure 7).
    pub fn slaunch(
        &mut self,
        pal: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        preemption_timer: Option<SimDuration>,
    ) -> Result<PalId, SeaError> {
        self.slaunch_with_interrupts(pal, input, cpu, preemption_timer, InterruptPolicy::Disabled)
    }

    /// [`EnhancedSea::slaunch`] with an explicit interrupt policy (§6).
    /// A `Forward` policy charges the interrupt-routing cost (2 µs) at launch
    /// and again on every resume.
    ///
    /// # Errors
    ///
    /// As for [`EnhancedSea::slaunch`].
    pub fn slaunch_with_interrupts(
        &mut self,
        pal: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        preemption_timer: Option<SimDuration>,
        interrupts: InterruptPolicy,
    ) -> Result<PalId, SeaError> {
        let image = pal.image();
        let region_bytes = image.len() + input.len() + STATE_HEADROOM;
        let pages = (region_bytes as u32).div_ceil(PAGE_SIZE as u32);
        let range = PageRange::new(PageIndex(self.next_page), pages);
        let installed = self.platform.machine().memory().num_pages();
        if range.start.0 + range.count > installed {
            return Err(SeaError::RegionTooSmall {
                needed: region_bytes,
                available: 0,
            });
        }

        // OS stages image and input into the (still-open) region.
        let machine = self.platform.machine_mut();
        machine.memory_mut().write_raw(range.base_addr(), &image)?;
        machine
            .memory_mut()
            .write_raw(range.base_addr().offset(image.len() as u64), input)?;

        let mut secb = Secb::new(pal.name(), range, image.len(), preemption_timer)
            .with_interrupt_policy(interrupts);
        assert!(secb.transition(PalLifecycle::Protect));

        // Memory controller: ALL → CPUᵢ (atomic; fails on conflict).
        machine.controller_mut().protect_for_cpu(range, cpu)?;

        assert!(secb.transition(PalLifecycle::Measure));
        // TPM: allocate + measure into a sePCR. On failure, return the
        // pages to ALL (Figure 7's failure path).
        let (machine, tpm) = self.platform.parts_mut();
        let tpm = tpm.ok_or(SeaError::NoTpm)?;
        let timed = match tpm.slaunch_measure(&image, cpu) {
            Ok(timed) => timed,
            Err(e) => {
                machine.controller_mut().release_pages(range)?;
                return Err(e.into());
            }
        };
        machine.charge(Layer::Tpm, "tpm.slaunch_measure", timed.elapsed);
        let routing_cost = if matches!(secb.interrupt_policy(), InterruptPolicy::Forward(_)) {
            machine.charge(Layer::Hw, "hw.interrupt_routing", INTERRUPT_ROUTING_COST);
            INTERRUPT_ROUTING_COST
        } else {
            SimDuration::ZERO
        };
        secb.bind_sepcr(timed.value);
        secb.set_measured();
        machine.cpu_mut(cpu)?.enter_secure(range.base_addr());
        machine.cpu_mut(cpu)?.set_preemption_timer(preemption_timer);
        assert!(secb.transition(PalLifecycle::Execute));

        let id = self.next_id;
        self.next_id += 1;
        self.next_page = range.start.0 + range.count;
        self.pals.insert(
            id,
            PalRun {
                secb,
                input_len: input.len(),
                state_capacity: STATE_HEADROOM - 16,
                current_cpu: Some(cpu),
                helper_cpus: Vec::new(),
                report: SessionReport {
                    late_launch: timed.elapsed,
                    context_switch: routing_cost,
                    ..SessionReport::default()
                },
                output: None,
            },
        );
        Ok(PalId(id))
    }

    /// Runs one scheduling quantum of a PAL in the `Execute` state.
    ///
    /// If the logic yields, the PAL suspends (pages → `NONE`, CPU state
    /// cleared) at VM-exit cost. If it exits, `SFREE` runs: state erased,
    /// pages → `ALL`, sePCR → Quote. If the step's work exceeds the
    /// preemption timer, the involuntary context switches are charged at
    /// VM-exit + VM-entry cost each.
    ///
    /// # Errors
    ///
    /// [`SeaError::WrongLifecycle`] outside `Execute`; PAL-logic and
    /// hardware errors propagate.
    pub fn step(&mut self, pal: &mut dyn PalLogic, id: PalId) -> Result<PalStep, SeaError> {
        let run = self.pals.get(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        if run.secb.lifecycle() != PalLifecycle::Execute {
            return Err(SeaError::WrongLifecycle {
                actual: run.secb.lifecycle(),
                operation: "step",
            });
        }
        let cpu = run
            .current_cpu
            .ok_or(SeaError::EngineFault("Execute state without a CPU"))?;
        let range = run.secb.pages();
        let handle = run
            .secb
            .sepcr()
            .ok_or(SeaError::EngineFault("Execute state without a sePCR"))?;
        let state_off = (run.secb.image_len() + run.input_len) as u64;
        let input_off = run.secb.image_len() as u64;
        let input_len = run.input_len;
        let state_cap = run.state_capacity;
        let timer = run.secb.preemption_timer();

        // The PAL reads its input and persistent state from its pages.
        let machine = self.platform.machine();
        let input = machine.read(
            sea_hw::Requester::Cpu(cpu),
            range.base_addr().offset(input_off),
            input_len,
        )?;
        let state = read_state(machine, range, state_off, state_cap, cpu)?;

        // Run the logic with sePCR-bound seals.
        let (machine, tpm) = self.platform.parts_mut();
        let tpm = tpm.ok_or(SeaError::NoTpm)?;
        let mut ctx = PalCtx::new(
            Some(&mut *tpm),
            Some(SealBinding::SePcr { handle, cpu }),
            &input,
            state,
        );
        let outcome = pal.run(&mut ctx);
        let seal = ctx.seal_cost;
        let unseal = ctx.unseal_cost;
        let tpm_other = ctx.tpm_other_cost;
        let work = ctx.work_done;
        let new_state = ctx.into_state();
        let outcome = outcome?;

        // Involuntary preemptions: the timer slices long-running work.
        let virt = machine.platform().virt;
        let switch_cost = virt.vm_exit + virt.vm_enter;
        let preemptions = match timer {
            Some(t) if t > SimDuration::ZERO && work > t => {
                (work.as_ns().div_ceil(t.as_ns()) - 1) as u32
            }
            _ => 0,
        };
        let step_switches = switch_cost * preemptions as u64;
        machine.charge(Layer::Tpm, "tpm.seal", seal);
        machine.charge(Layer::Tpm, "tpm.unseal", unseal);
        machine.charge(Layer::Tpm, "tpm.other", tpm_other);
        machine.charge(Layer::Core, "core.pal_work", work);
        machine.charge(Layer::Hw, "hw.context_switch", step_switches);

        // Write back state (this CPU still owns the pages).
        write_state(machine, range, state_off, state_cap, cpu, &new_state)?;

        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        run.report.seal += seal;
        run.report.unseal += unseal;
        run.report.tpm_other += tpm_other;
        run.report.pal_work += work;
        run.report.context_switch += step_switches;

        match outcome {
            PalOutcome::Yield => {
                // SYIELD: pages → NONE, secure state clear, VM-exit cost.
                assert!(run.secb.transition(PalLifecycle::Suspend));
                run.current_cpu = None;
                let helpers = std::mem::take(&mut run.helper_cpus);
                run.report.context_switch += virt.vm_exit;
                machine.controller_mut().suspend_pages(range, cpu)?;
                machine.cpu_mut(cpu)?.leave_secure();
                for h in helpers {
                    machine.cpu_mut(h)?.leave_secure();
                }
                machine.charge(Layer::Hw, "hw.vm_exit", virt.vm_exit);
                Ok(PalStep::Yielded)
            }
            PalOutcome::Exit(output) => {
                // SFREE: erase secrets, release pages, sePCR → Quote.
                assert!(run.secb.transition(PalLifecycle::Done));
                run.current_cpu = None;
                let helpers = std::mem::take(&mut run.helper_cpus);
                run.output = Some(output.clone());
                // Erase the state area (the PAL's secret-clear duty).
                let state_pages_start = range.start.0 + (state_off / PAGE_SIZE as u64) as u32;
                for p in state_pages_start..range.start.0 + range.count {
                    machine.memory_mut().zero_page(PageIndex(p))?;
                }
                tpm.sepcr_release_to_quote(handle, cpu)?;
                machine.controller_mut().release_pages(range)?;
                machine.cpu_mut(cpu)?.leave_secure();
                machine.cpu_mut(cpu)?.set_preemption_timer(None);
                for h in helpers {
                    machine.cpu_mut(h)?.leave_secure();
                }
                Ok(PalStep::Exited { output })
            }
        }
    }

    /// `SLAUNCH` with `MF = 1`: resumes a suspended PAL, possibly on a
    /// different CPU. Costs one VM entry (§5.7).
    ///
    /// # Errors
    ///
    /// [`SeaError::WrongLifecycle`] outside `Suspend`; [`SeaError::Hw`]
    /// with [`sea_hw::HwError::InvalidPageTransition`] if the pages are
    /// not `NONE` (e.g. the PAL is somehow running elsewhere — "any other
    /// CPU that tries to resume the same PAL will fail", §5.3.1).
    pub fn resume(&mut self, id: PalId, cpu: CpuId) -> Result<(), SeaError> {
        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        if run.secb.lifecycle() != PalLifecycle::Suspend {
            return Err(SeaError::WrongLifecycle {
                actual: run.secb.lifecycle(),
                operation: "resume",
            });
        }
        let range = run.secb.pages();
        let handle = run
            .secb
            .sepcr()
            .ok_or(SeaError::EngineFault("Suspend state without a sePCR"))?;
        let routing = matches!(run.secb.interrupt_policy(), InterruptPolicy::Forward(_));

        // Hardware first, SECB transitions last: a transient hardware
        // failure must leave the PAL in `Suspend` so the caller can
        // retry the resume instead of stranding the SECB mid-protect.
        let (machine, tpm) = self.platform.parts_mut();
        let tpm = tpm.ok_or(SeaError::NoTpm)?;
        machine.controller_mut().resume_pages(range, cpu)?;
        if let Err(e) = tpm.sepcr_rebind(handle, cpu) {
            // Roll the pages back to `NONE` so a later resume can run.
            machine.controller_mut().suspend_pages(range, cpu)?;
            return Err(e.into());
        }
        machine.cpu_mut(cpu)?.enter_secure(range.base_addr());
        let vm_enter = machine.platform().virt.vm_enter;
        let mut resume_cost = vm_enter;
        machine.charge(Layer::Hw, "hw.vm_enter", vm_enter);
        if routing {
            resume_cost += INTERRUPT_ROUTING_COST;
            machine.charge(Layer::Hw, "hw.interrupt_routing", INTERRUPT_ROUTING_COST);
        }

        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        assert!(run.secb.transition(PalLifecycle::Protect));
        assert!(run.secb.transition(PalLifecycle::Execute));
        run.current_cpu = Some(cpu);
        run.report.context_switch += resume_cost;
        Ok(())
    }

    /// `SKILL` (§5.5): kills a suspended, misbehaving PAL — erases its
    /// pages, returns them to `ALL`, extends the kill constant into its
    /// sePCR, and frees the slot.
    ///
    /// # Errors
    ///
    /// [`SeaError::WrongLifecycle`] unless the PAL is `Suspend`ed.
    pub fn skill(&mut self, id: PalId) -> Result<(), SeaError> {
        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        if run.secb.lifecycle() != PalLifecycle::Suspend {
            return Err(SeaError::WrongLifecycle {
                actual: run.secb.lifecycle(),
                operation: "skill",
            });
        }
        let range = run.secb.pages();
        let handle = run
            .secb
            .sepcr()
            .ok_or(SeaError::EngineFault("Suspend state without a sePCR"))?;
        assert!(run.secb.transition(PalLifecycle::Done));
        run.current_cpu = None;

        let (machine, tpm) = self.platform.parts_mut();
        let tpm = tpm.ok_or(SeaError::NoTpm)?;
        for p in range.iter() {
            machine.memory_mut().zero_page(p)?;
        }
        machine.controller_mut().release_pages(range)?;
        let timed = tpm.sepcr_skill(handle)?;
        machine.charge(Layer::Tpm, "tpm.skill", timed.elapsed);
        Ok(())
    }

    /// Untrusted post-termination attestation (§5.4.3): quotes the PAL's
    /// sePCR and frees it for reuse. Advances the clock by the quote
    /// cost.
    ///
    /// # Errors
    ///
    /// [`SeaError::WrongLifecycle`] unless the PAL exited normally (a
    /// `SKILL`ed PAL's sePCR is already free, carrying no quote).
    pub fn quote_and_free(&mut self, id: PalId, nonce: &[u8]) -> Result<Timed<Quote>, SeaError> {
        let run = self.pals.get(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        if run.secb.lifecycle() != PalLifecycle::Done {
            return Err(SeaError::WrongLifecycle {
                actual: run.secb.lifecycle(),
                operation: "quote_and_free",
            });
        }
        let handle = run
            .secb
            .sepcr()
            .ok_or(SeaError::EngineFault("Done state without a sePCR"))?;
        let (machine, tpm) = self.platform.parts_mut();
        let tpm = tpm.ok_or(SeaError::NoTpm)?;
        let wire = tpm.sepcr_quote(handle, nonce)?;
        tpm.sepcr_free(handle)?;
        machine.charge(Layer::Tpm, "tpm.quote", wire.elapsed);
        // Parse the TPM's canonical wire bytes back into the in-memory
        // form; remote verifiers consume the bytes directly.
        let quote = Quote::from_wire(&wire.value)?;
        Ok(wire.map(|_| quote))
    }

    /// Batch pre-signing for a cohort of PALs all sitting at the quote
    /// edge: resolves each `Done` PAL's sePCR handle and asks the TPM
    /// to prepare the cohort's quote signatures in one shared-context
    /// batch ([`sea_tpm::Tpm::prepare_sepcr_quotes`]).
    ///
    /// Best-effort and semantically invisible — [`EnhancedSea::quote_and_free`]
    /// consumes a prepared signature when its digest matches and signs
    /// on its own otherwise, and the batch signer is byte-identical to
    /// the one-at-a-time signer, so attestation bytes and virtual-time
    /// costs are unchanged either way.
    pub(crate) fn prepare_quotes(&mut self, cohort: &[(&PalId, [u8; 8])]) {
        let mut requests: Vec<(sea_tpm::SePcrHandle, [u8; 8])> = Vec::new();
        for (id, nonce) in cohort {
            let Some(run) = self.pals.get(&id.0) else {
                continue;
            };
            if run.secb.lifecycle() != PalLifecycle::Done {
                continue;
            }
            let Some(handle) = run.secb.sepcr() else {
                continue;
            };
            requests.push((handle, *nonce));
        }
        if requests.is_empty() {
            return;
        }
        let (_, tpm) = self.platform.parts_mut();
        if let Some(tpm) = tpm {
            tpm.prepare_sepcr_quotes(&requests);
        }
    }

    /// §6 *Multicore PALs*: joins `new_cpu` to a PAL currently in the
    /// `Execute` state, granting it access to the PAL's pages so the
    /// application can parallelize internally ("a mechanism is needed to
    /// join a CPU to an existing PAL. The join operation serves to add
    /// the new CPU to the memory controller's access control table for
    /// the PAL's pages").
    ///
    /// Joined cores are revoked at every suspend and exit; they must
    /// re-join after each resume.
    ///
    /// # Errors
    ///
    /// [`SeaError::WrongLifecycle`] outside `Execute`; [`SeaError::Hw`]
    /// if the controller refuses the join.
    pub fn join(&mut self, id: PalId, new_cpu: CpuId) -> Result<(), SeaError> {
        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        if run.secb.lifecycle() != PalLifecycle::Execute {
            return Err(SeaError::WrongLifecycle {
                actual: run.secb.lifecycle(),
                operation: "join",
            });
        }
        let primary = run
            .current_cpu
            .ok_or(SeaError::EngineFault("Execute state without a CPU"))?;
        let range = run.secb.pages();
        let machine = self.platform.machine_mut();
        machine.controller_mut().join_cpu(range, primary, new_cpu)?;
        machine.cpu_mut(new_cpu)?.enter_secure(range.base_addr());
        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        run.helper_cpus.push(new_cpu);
        Ok(())
    }

    /// Recycles a terminated PAL's sePCR *without* generating a quote —
    /// `TPM_SEPCR_Free` is "executable from untrusted code" (§5.4.3) and
    /// an OS that does not need an attestation calls it directly.
    ///
    /// # Errors
    ///
    /// [`SeaError::WrongLifecycle`] unless the PAL exited normally.
    pub fn release_sepcr(&mut self, id: PalId) -> Result<(), SeaError> {
        let run = self.pals.get(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        if run.secb.lifecycle() != PalLifecycle::Done {
            return Err(SeaError::WrongLifecycle {
                actual: run.secb.lifecycle(),
                operation: "release_sepcr",
            });
        }
        let handle = run
            .secb
            .sepcr()
            .ok_or(SeaError::EngineFault("Done state without a sePCR"))?;
        let (_, tpm) = self.platform.parts_mut();
        tpm.ok_or(SeaError::NoTpm)?.sepcr_free(handle)?;
        Ok(())
    }

    /// Convenience driver: steps and resumes (on `cpu`) until the PAL
    /// exits, then returns its output and accumulated report.
    ///
    /// # Errors
    ///
    /// As for [`EnhancedSea::step`] and [`EnhancedSea::resume`].
    pub fn run_to_exit(
        &mut self,
        pal: &mut dyn PalLogic,
        id: PalId,
        cpu: CpuId,
    ) -> Result<PalDone, SeaError> {
        loop {
            match self.step(pal, id)? {
                PalStep::Exited { output } => {
                    return Ok(PalDone {
                        output,
                        report: self.report(id)?,
                    });
                }
                PalStep::Yielded => self.resume(id, cpu)?,
            }
        }
    }

    // ------------------------------------------------------------------
    // Deterministic fault injection and recovery primitives.
    //
    // The `*_keyed` variants consult the installed [`FaultPlan`] before
    // delegating to the plain operations. Every injection decision is a
    // pure function of (plan, session key, per-session roll counter) —
    // never of wall-clock time or cross-session interleaving — so serial
    // and parallel drivers replaying the same keys see identical faults.
    // ------------------------------------------------------------------

    /// Rolls the next TPM-transport fault decision for session `key`.
    fn roll_tpm(&mut self, key: u64) -> Option<FaultKind> {
        let plan = self.fault_plan.as_ref()?;
        let cursor = self.fault_cursors.entry(key).or_default();
        let seq = cursor.seq;
        cursor.seq += 1;
        plan.roll_tpm_transport(key, seq)
    }

    /// Rolls the next spurious memory-controller denial for `key`.
    fn roll_mem(&mut self, key: u64) -> bool {
        let Some(plan) = self.fault_plan.as_ref() else {
            return false;
        };
        let cursor = self.fault_cursors.entry(key).or_default();
        let seq = cursor.seq;
        cursor.seq += 1;
        plan.roll_mem_denial(key, seq)
    }

    /// Rolls the next spurious preemption-timer expiry for `key`,
    /// honoring the plan's per-session timer budget so a session cannot
    /// be preempted forever.
    fn roll_timer(&mut self, key: u64) -> bool {
        let Some(plan) = self.fault_plan.as_ref() else {
            return false;
        };
        let cursor = self.fault_cursors.entry(key).or_default();
        if cursor.timer_count >= plan.timer_budget() {
            return false;
        }
        let seq = cursor.seq;
        cursor.seq += 1;
        if plan.roll_timer_expiry(key, seq) {
            cursor.timer_count += 1;
            true
        } else {
            false
        }
    }

    /// Arms a rolled TPM fault, runs `op`, then settles the books: if
    /// the injection landed, charge the transport-fault cost and record
    /// [`TraceEvent::FaultInjected`]; if `op` failed for an unrelated
    /// reason (or never reached the transport), disarm the fault so it
    /// cannot leak into a later, unrolled command.
    fn with_tpm_fault<T>(
        &mut self,
        rolled: Option<FaultKind>,
        key: u64,
        op: impl FnOnce(&mut Self) -> Result<T, SeaError>,
    ) -> Result<T, SeaError> {
        if let Some(FaultKind::TpmTransport { retryable }) = rolled {
            if let Some(tpm) = self.platform.tpm_mut() {
                tpm.arm_transport_fault(retryable);
            }
        }
        let result = op(self);
        if let Some(kind) = rolled {
            match &result {
                Err(SeaError::Tpm(TpmError::TransportFault { .. })) => {
                    let machine = self.platform.machine_mut();
                    machine.charge(Layer::Tpm, "tpm.transport_fault", TRANSPORT_FAULT_COST);
                    let now = machine.now();
                    machine
                        .trace_mut()
                        .record(now, TraceEvent::FaultInjected { kind, session: key });
                }
                _ => {
                    if let Some(tpm) = self.platform.tpm_mut() {
                        tpm.disarm_transport_fault();
                    }
                }
            }
        }
        result
    }

    /// [`EnhancedSea::slaunch`] under the fault plan: the launch-time
    /// sePCR measurement may suffer an injected transport fault, in
    /// which case the pages are already back in `ALL` (Figure 7's
    /// failure path) and the launch can simply be retried.
    ///
    /// # Errors
    ///
    /// As for [`EnhancedSea::slaunch`], plus [`SeaError::Tpm`] with
    /// [`TpmError::TransportFault`] for injected faults.
    pub fn slaunch_keyed(
        &mut self,
        pal: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        preemption_timer: Option<SimDuration>,
        key: u64,
    ) -> Result<PalId, SeaError> {
        let obs = self.obs();
        obs.set_track(key);
        obs.open(Layer::Core, "session.slaunch");
        let rolled = self.roll_tpm(key);
        let result = self.with_tpm_fault(rolled, key, |sea| {
            sea.slaunch(pal, input, cpu, preemption_timer)
        });
        obs.close();
        result
    }

    /// [`EnhancedSea::step`] under the fault plan: a spurious
    /// preemption-timer expiry suspends the PAL *before* its logic runs
    /// this quantum, so the injected preemption changes scheduling (and
    /// costs one extra suspend/resume pair) without perturbing the
    /// PAL's input/state byte stream.
    ///
    /// # Errors
    ///
    /// As for [`EnhancedSea::step`].
    pub fn step_keyed(
        &mut self,
        pal: &mut dyn PalLogic,
        id: PalId,
        key: u64,
    ) -> Result<PalStep, SeaError> {
        let obs = self.obs();
        obs.set_track(key);
        obs.open(Layer::Core, "session.step");
        let result = self.step_keyed_impl(pal, id, key);
        obs.close();
        result
    }

    fn step_keyed_impl(
        &mut self,
        pal: &mut dyn PalLogic,
        id: PalId,
        key: u64,
    ) -> Result<PalStep, SeaError> {
        if self.roll_timer(key) {
            let machine = self.platform.machine_mut();
            let now = machine.now();
            machine.trace_mut().record(
                now,
                TraceEvent::FaultInjected {
                    kind: FaultKind::TimerExpiry,
                    session: key,
                },
            );
            self.preempt(id)?;
            let machine = self.platform.machine_mut();
            let now = machine.now();
            machine
                .trace_mut()
                .record(now, TraceEvent::SessionPreempted { session: key });
            return Ok(PalStep::Yielded);
        }
        self.step(pal, id)
    }

    /// [`EnhancedSea::resume`] under the fault plan: the memory
    /// controller may spuriously deny the page-table resume. The SECB
    /// stays in `Suspend` and nothing is modified, so the resume is
    /// retryable as-is.
    ///
    /// # Errors
    ///
    /// As for [`EnhancedSea::resume`], plus [`SeaError::Hw`] with
    /// [`sea_hw::HwError::AccessDenied`] for injected denials.
    pub fn resume_keyed(&mut self, id: PalId, cpu: CpuId, key: u64) -> Result<(), SeaError> {
        let obs = self.obs();
        obs.set_track(key);
        obs.open(Layer::Core, "session.resume");
        let result = self.resume_keyed_impl(id, cpu, key);
        obs.close();
        result
    }

    fn resume_keyed_impl(&mut self, id: PalId, cpu: CpuId, key: u64) -> Result<(), SeaError> {
        let denial = self.roll_mem(key);
        if denial {
            self.platform
                .machine_mut()
                .controller_mut()
                .arm_spurious_denial();
        }
        let result = self.resume(id, cpu);
        if denial {
            match &result {
                Err(SeaError::Hw(sea_hw::HwError::AccessDenied { .. })) => {
                    let machine = self.platform.machine_mut();
                    let now = machine.now();
                    machine.trace_mut().record(
                        now,
                        TraceEvent::FaultInjected {
                            kind: FaultKind::MemDenial,
                            session: key,
                        },
                    );
                }
                _ => self
                    .platform
                    .machine_mut()
                    .controller_mut()
                    .disarm_spurious_denial(),
            }
        }
        result
    }

    /// [`EnhancedSea::quote_and_free`] under the fault plan: an injected
    /// transport fault leaves the sePCR in the Quote state, so the quote
    /// can be retried (or the slot reclaimed via
    /// [`EnhancedSea::kill_session`]).
    ///
    /// # Errors
    ///
    /// As for [`EnhancedSea::quote_and_free`], plus [`SeaError::Tpm`]
    /// with [`TpmError::TransportFault`] for injected faults.
    pub fn quote_and_free_keyed(
        &mut self,
        id: PalId,
        nonce: &[u8],
        key: u64,
    ) -> Result<Timed<Quote>, SeaError> {
        let obs = self.obs();
        obs.set_track(key);
        obs.open(Layer::Core, "session.quote");
        let rolled = self.roll_tpm(key);
        let result = self.with_tpm_fault(rolled, key, |sea| sea.quote_and_free(id, nonce));
        obs.close();
        result
    }

    /// Forcibly suspends an `Execute`-state PAL without running its
    /// logic — the hardware preemption-timer expiry path. Pages go to
    /// `NONE`, helper cores are revoked, and one VM exit is charged,
    /// exactly as a voluntary `SYIELD`.
    ///
    /// # Errors
    ///
    /// [`SeaError::WrongLifecycle`] outside `Execute`.
    pub fn preempt(&mut self, id: PalId) -> Result<(), SeaError> {
        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        if run.secb.lifecycle() != PalLifecycle::Execute {
            return Err(SeaError::WrongLifecycle {
                actual: run.secb.lifecycle(),
                operation: "preempt",
            });
        }
        let cpu = run
            .current_cpu
            .ok_or(SeaError::EngineFault("Execute state without a CPU"))?;
        let range = run.secb.pages();
        assert!(run.secb.transition(PalLifecycle::Suspend));
        run.current_cpu = None;
        let helpers = std::mem::take(&mut run.helper_cpus);

        let machine = self.platform.machine_mut();
        let vm_exit = machine.platform().virt.vm_exit;
        machine.controller_mut().suspend_pages(range, cpu)?;
        machine.cpu_mut(cpu)?.leave_secure();
        for h in helpers {
            machine.cpu_mut(h)?.leave_secure();
        }
        machine.charge(Layer::Hw, "hw.vm_exit", vm_exit);

        let run = self.pals.get_mut(&id.0).ok_or(SeaError::NoSuchPal(id.0))?;
        run.report.context_switch += vm_exit;
        Ok(())
    }

    /// Tears down a session whose recovery budget is exhausted: an
    /// executing PAL is preempted then `SKILL`ed, a suspended one
    /// `SKILL`ed directly, and a terminated one has its sePCR freed
    /// without a quote. In every case the pages return to `ALL` and the
    /// sePCR slot to Free. Records [`TraceEvent::SessionKilled`].
    ///
    /// # Errors
    ///
    /// [`SeaError::NoSuchPal`] for unknown identifiers and
    /// [`SeaError::WrongLifecycle`] for PALs still mid-launch.
    pub fn kill_session(&mut self, id: PalId, key: u64) -> Result<(), SeaError> {
        let obs = self.obs();
        obs.set_track(key);
        obs.open(Layer::Core, "session.kill");
        let result = self.kill_session_impl(id, key);
        obs.close();
        result
    }

    fn kill_session_impl(&mut self, id: PalId, key: u64) -> Result<(), SeaError> {
        let lifecycle = self
            .pals
            .get(&id.0)
            .ok_or(SeaError::NoSuchPal(id.0))?
            .secb
            .lifecycle();
        match lifecycle {
            PalLifecycle::Execute => {
                self.preempt(id)?;
                self.skill(id)?;
            }
            PalLifecycle::Suspend => self.skill(id)?,
            PalLifecycle::Done => {
                // The sePCR may already have been recycled by a
                // successful quote; tolerate that.
                match self.release_sepcr(id) {
                    Ok(()) => {}
                    Err(SeaError::Tpm(TpmError::SePcrWrongState(_) | TpmError::NoSuchSePcr(_))) => {
                    }
                    Err(e) => return Err(e),
                }
            }
            other => {
                return Err(SeaError::WrongLifecycle {
                    actual: other,
                    operation: "kill_session",
                })
            }
        }
        let machine = self.platform.machine_mut();
        let now = machine.now();
        machine
            .trace_mut()
            .record(now, TraceEvent::SessionKilled { session: key });
        Ok(())
    }

    /// Degraded path for sePCR-bank saturation: "if no sePCR is
    /// available, SLAUNCH must return a failure code" (§5.4.1), and the
    /// OS falls back to running the PAL the way today's hardware does —
    /// one monolithic late launch with seals bound to the dynamic
    /// measurement PCRs, paying the full SKINIT-class launch cost
    /// instead of the sePCR fast path. The PAL runs to completion inside
    /// the single launch (yields spin in place, carrying state along).
    ///
    /// # Errors
    ///
    /// Propagates hardware, TPM, and PAL-logic failures; the launch CPU
    /// is restored to normal operation even when the PAL logic fails.
    pub fn run_legacy_fallback(
        &mut self,
        pal: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
    ) -> Result<PalDone, SeaError> {
        let image = pal.image();
        let pages = (image.len().max(1) as u32).div_ceil(PAGE_SIZE as u32);
        let range = PageRange::new(PageIndex(self.next_page), pages);
        let installed = self.platform.machine().memory().num_pages();
        if range.start.0 + range.count > installed {
            return Err(SeaError::RegionTooSmall {
                needed: image.len(),
                available: 0,
            });
        }
        self.next_page = range.start.0 + range.count;

        self.platform
            .machine_mut()
            .memory_mut()
            .write_raw(range.base_addr(), &image)?;
        let launch = self.platform.late_launch(cpu, range, image.len())?;
        let selection = match self.platform.machine().platform().vendor {
            sea_hw::CpuVendor::Amd => vec![sea_tpm::PcrIndex(17)],
            sea_hw::CpuVendor::Intel => vec![sea_tpm::PcrIndex(17), sea_tpm::PcrIndex(18)],
        };

        let (machine, tpm) = self.platform.parts_mut();
        let tpm = tpm.ok_or(SeaError::NoTpm)?;
        let mut state = Vec::new();
        let mut report = SessionReport {
            late_launch: launch.total(),
            ..SessionReport::default()
        };
        let result = loop {
            let mut ctx = PalCtx::new(
                Some(&mut *tpm),
                Some(SealBinding::Pcrs(selection.clone())),
                input,
                state,
            );
            let outcome = pal.run(&mut ctx);
            report.seal += ctx.seal_cost;
            report.unseal += ctx.unseal_cost;
            report.tpm_other += ctx.tpm_other_cost;
            report.pal_work += ctx.work_done;
            machine.charge(Layer::Tpm, "tpm.seal", ctx.seal_cost);
            machine.charge(Layer::Tpm, "tpm.unseal", ctx.unseal_cost);
            machine.charge(Layer::Tpm, "tpm.other", ctx.tpm_other_cost);
            machine.charge(Layer::Core, "core.pal_work", ctx.work_done);
            state = ctx.into_state();
            match outcome {
                Ok(PalOutcome::Exit(bytes)) => break Ok(bytes),
                Ok(PalOutcome::Yield) => continue,
                Err(e) => break Err(e),
            }
        };

        self.platform.late_launch_exit(cpu, range)?;
        let output = result?;
        Ok(PalDone { output, report })
    }
}

/// Reads the PAL's persistent state (8-byte length prefix + payload) from
/// its protected region, as the PAL itself would on its owning CPU.
fn read_state(
    machine: &sea_hw::Machine,
    range: PageRange,
    state_off: u64,
    capacity: usize,
    cpu: CpuId,
) -> Result<Vec<u8>, SeaError> {
    let base = range.base_addr().offset(state_off);
    let header = machine.read(sea_hw::Requester::Cpu(cpu), base, 8)?;
    let header: [u8; 8] = header
        .try_into()
        .map_err(|_| SeaError::EngineFault("short state header read"))?;
    let len = u64::from_le_bytes(header) as usize;
    if len == 0 {
        return Ok(Vec::new());
    }
    let len = len.min(capacity);
    Ok(machine.read(sea_hw::Requester::Cpu(cpu), base.offset(8), len)?)
}

/// Writes the PAL's persistent state back into its protected region.
fn write_state(
    machine: &mut sea_hw::Machine,
    range: PageRange,
    state_off: u64,
    capacity: usize,
    cpu: CpuId,
    state: &[u8],
) -> Result<(), SeaError> {
    if state.len() > capacity {
        return Err(SeaError::RegionTooSmall {
            needed: state.len(),
            available: capacity,
        });
    }
    let base = range.base_addr().offset(state_off);
    machine.write(
        sea_hw::Requester::Cpu(cpu),
        base,
        &(state.len() as u64).to_le_bytes(),
    )?;
    machine.write(sea_hw::Requester::Cpu(cpu), base.offset(8), state)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pal::FnPal;
    use sea_hw::{HwError, Platform, Requester};
    use sea_tpm::{KeyStrength, SePcrState, TpmError};

    fn sea(n_cpus: u16) -> EnhancedSea {
        EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(n_cpus),
            KeyStrength::Demo512,
            b"enhanced test",
        ))
        .unwrap()
    }

    #[test]
    fn requires_proposed_hardware() {
        let baseline = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"x");
        assert!(matches!(
            EnhancedSea::new(baseline),
            Err(SeaError::SlaunchUnsupported)
        ));
    }

    #[test]
    fn launch_step_exit_quote_lifecycle() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("simple", |ctx| {
            ctx.work(SimDuration::from_us(100));
            Ok(PalOutcome::Exit(b"result".to_vec()))
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        assert_eq!(sea.secb(id).unwrap().lifecycle(), PalLifecycle::Execute);
        assert!(sea.secb(id).unwrap().measured());

        let step = sea.step(&mut pal, id).unwrap();
        assert_eq!(
            step,
            PalStep::Exited {
                output: b"result".to_vec()
            }
        );
        assert_eq!(sea.secb(id).unwrap().lifecycle(), PalLifecycle::Done);

        let quote = sea.quote_and_free(id, b"nonce").unwrap();
        let aik = sea.platform().tpm().unwrap().aik_public().clone();
        assert!(quote.value.verify_signature(&aik));
        // The sePCR is recycled.
        assert_eq!(
            sea.platform().tpm().unwrap().sepcrs().free_count(),
            sea.platform().machine().platform().sepcr_count
        );
    }

    #[test]
    fn measurement_happens_once_not_per_switch() {
        let mut sea = sea(2);
        let mut remaining = 3u32;
        let mut pal = FnPal::new("yielder", move |ctx| {
            ctx.work(SimDuration::from_us(10));
            remaining -= 1;
            if remaining == 0 {
                Ok(PalOutcome::Exit(vec![]))
            } else {
                Ok(PalOutcome::Yield)
            }
        })
        .with_image_size(64 * 1024);
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(1)).unwrap();
        // Late launch charged exactly once (≈ 8.8 ms at bus speed).
        assert!((done.report.late_launch.as_ms_f64() - 8.82).abs() < 0.1);
        // Two suspend/resume pairs at ~1 µs each — not 1100 ms each.
        assert!(done.report.context_switch < SimDuration::from_us(5));
        assert!(done.report.context_switch >= SimDuration::from_us(2));
    }

    #[test]
    fn state_persists_across_suspend_resume_without_tpm_seal() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("counter", |ctx| {
            let count = ctx.state().first().copied().unwrap_or(0);
            ctx.set_state(vec![count + 1]);
            if count + 1 == 3 {
                Ok(PalOutcome::Exit(vec![count + 1]))
            } else {
                Ok(PalOutcome::Yield)
            }
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        assert_eq!(done.output, vec![3]);
        // No TPM sealing was needed to persist state across switches.
        assert_eq!(done.report.seal, SimDuration::ZERO);
        assert_eq!(done.report.unseal, SimDuration::ZERO);
    }

    #[test]
    fn suspended_pal_pages_unreadable_by_anyone() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("secretive", |ctx| {
            ctx.set_state(b"top secret".to_vec());
            Ok(PalOutcome::Yield)
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.step(&mut pal, id).unwrap();
        assert_eq!(sea.secb(id).unwrap().lifecycle(), PalLifecycle::Suspend);
        let base = sea.secb(id).unwrap().pages().base_addr();
        for c in [CpuId(0), CpuId(1)] {
            assert!(matches!(
                sea.platform().machine().read(Requester::Cpu(c), base, 16),
                Err(HwError::AccessDenied { .. })
            ));
        }
    }

    #[test]
    fn running_pal_pages_unreadable_by_other_cpu() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("private", |_| Ok(PalOutcome::Yield));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let base = sea.secb(id).unwrap().pages().base_addr();
        // While in Execute on CPU 0, CPU 1 is denied.
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(1)), base, 4)
            .is_err());
        // The owner may read.
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(0)), base, 4)
            .is_ok());
    }

    #[test]
    fn resume_can_move_cpus_and_double_resume_fails() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("mover", |ctx| {
            if ctx.state().is_empty() {
                ctx.set_state(vec![1]);
                Ok(PalOutcome::Yield)
            } else {
                Ok(PalOutcome::Exit(b"moved".to_vec()))
            }
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.step(&mut pal, id).unwrap();
        // Resume on the *other* CPU.
        sea.resume(id, CpuId(1)).unwrap();
        // A second resume must fail (pages are CpuOnly(1), not NONE).
        assert!(sea.resume(id, CpuId(0)).is_err());
        let step = sea.step(&mut pal, id).unwrap();
        assert_eq!(
            step,
            PalStep::Exited {
                output: b"moved".to_vec()
            }
        );
    }

    #[test]
    fn sfree_releases_pages_and_erases_state() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("cleaner", |ctx| {
            ctx.set_state(b"ephemeral secret".to_vec());
            Ok(PalOutcome::Exit(vec![]))
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.step(&mut pal, id).unwrap();
        let range = sea.secb(id).unwrap().pages();
        // Pages are ALL again: the OS can allocate them...
        let data = sea
            .platform()
            .machine()
            .read(
                Requester::Cpu(CpuId(1)),
                range.base_addr(),
                range.byte_len(),
            )
            .unwrap();
        // ...and the state area contains no trace of the secret.
        let needle = b"ephemeral secret";
        assert!(
            !data.windows(needle.len()).any(|w| w == needle),
            "secret must be erased at SFREE"
        );
    }

    #[test]
    fn skill_erases_brands_and_frees() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("runaway", |ctx| {
            ctx.set_state(b"malware state".to_vec());
            Ok(PalOutcome::Yield)
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let handle = sea.secb(id).unwrap().sepcr().unwrap();
        sea.step(&mut pal, id).unwrap();
        // SKILL only valid from Suspend; it was suspended by the yield.
        sea.skill(id).unwrap();
        assert_eq!(sea.secb(id).unwrap().lifecycle(), PalLifecycle::Done);
        // Pages wiped and public again.
        let range = sea.secb(id).unwrap().pages();
        let data = sea
            .platform()
            .machine()
            .read(
                Requester::Cpu(CpuId(0)),
                range.base_addr(),
                range.byte_len(),
            )
            .unwrap();
        assert!(data.iter().all(|&b| b == 0));
        // sePCR slot freed (branded value was pushed through the chain).
        assert_eq!(
            sea.platform()
                .tpm()
                .unwrap()
                .sepcrs()
                .state(handle)
                .unwrap(),
            SePcrState::Free
        );
        // No quote is available for a killed PAL.
        assert!(sea.quote_and_free(id, b"n").is_err());
    }

    #[test]
    fn skill_requires_suspend() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("x", |_| Ok(PalOutcome::Yield));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        // Still Execute: SKILL refused.
        assert!(matches!(
            sea.skill(id),
            Err(SeaError::WrongLifecycle { .. })
        ));
    }

    #[test]
    fn concurrent_pals_have_disjoint_pages_and_sepcrs() {
        let mut sea = sea(4);
        let mut a = FnPal::new("a", |_| Ok(PalOutcome::Yield));
        let mut b = FnPal::new("b", |_| Ok(PalOutcome::Yield));
        let ia = sea.slaunch(&mut a, b"", CpuId(0), None).unwrap();
        let ib = sea.slaunch(&mut b, b"", CpuId(1), None).unwrap();
        let ra = sea.secb(ia).unwrap().pages();
        let rb = sea.secb(ib).unwrap().pages();
        assert!(!ra.overlaps(&rb));
        assert_ne!(sea.secb(ia).unwrap().sepcr(), sea.secb(ib).unwrap().sepcr());
        // PAL A's pages are closed to PAL B's CPU and vice versa.
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(1)), ra.base_addr(), 4)
            .is_err());
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(0)), rb.base_addr(), 4)
            .is_err());
    }

    #[test]
    fn sepcr_exhaustion_fails_launch_and_releases_pages() {
        let mut sea = EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(2).with_sepcr_count(1),
            KeyStrength::Demo512,
            b"exhaust",
        ))
        .unwrap();
        let mut a = FnPal::new("a", |_| Ok(PalOutcome::Yield));
        let mut b = FnPal::new("b", |_| Ok(PalOutcome::Yield));
        sea.slaunch(&mut a, b"", CpuId(0), None).unwrap();
        let err = sea.slaunch(&mut b, b"", CpuId(1), None).unwrap_err();
        assert_eq!(err, SeaError::Tpm(TpmError::NoFreeSePcr));
        // Figure 7 failure path: B's pages were returned to ALL.
        let (all, cpu_only, none) = sea.platform().machine().controller().state_census();
        assert_eq!(none, 0);
        assert!(cpu_only > 0, "A's pages stay protected");
        assert!(all > 0);
        let _ = all;
    }

    #[test]
    fn preemption_timer_charges_context_switches() {
        let mut sea = sea(2);
        // 10 ms of work under a 1 ms timer → 9 involuntary switches.
        let mut pal = FnPal::new("longrunner", |ctx| {
            ctx.work(SimDuration::from_ms(10));
            Ok(PalOutcome::Exit(vec![]))
        });
        let id = sea
            .slaunch(&mut pal, b"", CpuId(0), Some(SimDuration::from_ms(1)))
            .unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        let expected = sea.context_switch_cost() * 9;
        assert_eq!(done.report.context_switch, expected);
    }

    #[test]
    fn inputs_flow_through_protected_pages() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("echo", |ctx| Ok(PalOutcome::Exit(ctx.input().to_vec())));
        let id = sea.slaunch(&mut pal, b"hello pal", CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        assert_eq!(done.output, b"hello pal");
    }

    #[test]
    fn step_in_wrong_state_rejected() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("once", |_| Ok(PalOutcome::Exit(vec![])));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.step(&mut pal, id).unwrap();
        assert!(matches!(
            sea.step(&mut pal, id),
            Err(SeaError::WrongLifecycle { .. })
        ));
        assert!(matches!(
            sea.resume(id, CpuId(0)),
            Err(SeaError::WrongLifecycle { .. })
        ));
    }

    #[test]
    fn unknown_pal_id_errors() {
        let mut sea = sea(2);
        assert!(matches!(
            sea.resume(PalId(99), CpuId(0)),
            Err(SeaError::NoSuchPal(99))
        ));
        assert!(sea.secb(PalId(99)).is_err());
        assert!(sea.report(PalId(99)).is_err());
        assert!(sea.quote_and_free(PalId(99), b"n").is_err());
    }

    #[test]
    fn multicore_join_grants_and_revokes_access() {
        let mut sea = sea(4);
        let mut pal = FnPal::new("parallel", |ctx| {
            if ctx.state().is_empty() {
                ctx.set_state(vec![1]);
                Ok(PalOutcome::Yield)
            } else {
                Ok(PalOutcome::Exit(vec![]))
            }
        });
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let base = sea.secb(id).unwrap().pages().base_addr();

        // Before join: CPU 2 is locked out.
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(2)), base, 4)
            .is_err());
        sea.join(id, CpuId(2)).unwrap();
        // After join: CPU 2 shares the PAL's pages; CPU 3 still out.
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(2)), base, 4)
            .is_ok());
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(3)), base, 4)
            .is_err());
        assert!(sea
            .platform()
            .machine()
            .cpu(CpuId(2))
            .unwrap()
            .in_secure_exec());

        // Suspend revokes the helper; it must re-join after resume.
        sea.step(&mut pal, id).unwrap();
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(2)), base, 4)
            .is_err());
        assert!(!sea
            .platform()
            .machine()
            .cpu(CpuId(2))
            .unwrap()
            .in_secure_exec());

        sea.resume(id, CpuId(1)).unwrap();
        // Join is primary-initiated: the new primary is CPU 1.
        sea.join(id, CpuId(3)).unwrap();
        assert!(sea
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(3)), base, 4)
            .is_ok());
        // Exit clears everything.
        sea.step(&mut pal, id).unwrap();
        assert!(!sea
            .platform()
            .machine()
            .cpu(CpuId(3))
            .unwrap()
            .in_secure_exec());
    }

    #[test]
    fn join_requires_execute_state() {
        let mut sea = sea(2);
        let mut pal = FnPal::new("j", |_| Ok(PalOutcome::Yield));
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.step(&mut pal, id).unwrap(); // suspended
        assert!(matches!(
            sea.join(id, CpuId(1)),
            Err(SeaError::WrongLifecycle { .. })
        ));
        assert!(sea.join(PalId(99), CpuId(1)).is_err());
    }

    #[test]
    fn interrupt_forwarding_costs_per_schedule() {
        use crate::secb::InterruptPolicy;
        let run_with = |policy: InterruptPolicy| {
            let mut sea = sea(2);
            let mut yields = 2u8;
            let mut pal = FnPal::new("idt", move |_| {
                if yields == 0 {
                    Ok(PalOutcome::Exit(vec![]))
                } else {
                    yields -= 1;
                    Ok(PalOutcome::Yield)
                }
            });
            let id = sea
                .slaunch_with_interrupts(&mut pal, b"", CpuId(0), None, policy)
                .unwrap();
            sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap().report
        };
        let off = run_with(InterruptPolicy::Disabled);
        let on = run_with(InterruptPolicy::Forward(vec![0x21, 0x2E]));
        // Launch + 2 resumes → 3 reprogrammings of 2 µs each.
        let delta = on.context_switch - off.context_switch;
        assert_eq!(delta, INTERRUPT_ROUTING_COST * 3);
    }

    #[test]
    fn power_cycle_evaporates_pals_and_frees_all_resources() {
        let mut sea = sea(2);
        let mut running = FnPal::new("running", |_| Ok(PalOutcome::Yield));
        let mut suspended = FnPal::new("suspended", |_| Ok(PalOutcome::Yield));
        let ra = sea.slaunch(&mut running, b"", CpuId(0), None).unwrap();
        let rb = sea.slaunch(&mut suspended, b"", CpuId(1), None).unwrap();
        sea.step(&mut suspended, rb).unwrap();

        let cost = sea.power_cycle();
        assert_eq!(cost, sea_hw::RESET_REBOOT_COST);
        // Both PALs are gone...
        assert!(matches!(sea.secb(ra), Err(SeaError::NoSuchPal(_))));
        assert!(matches!(sea.secb(rb), Err(SeaError::NoSuchPal(_))));
        // ...their pages are public again...
        let (_, cpu_only, none) = sea.platform().machine().controller().state_census();
        assert_eq!((cpu_only, none), (0, 0));
        // ...and every sePCR slot is Free.
        let tpm = sea.platform().tpm().unwrap();
        assert_eq!(
            tpm.sepcrs().free_count(),
            sea.platform().machine().platform().sepcr_count
        );
        // The allocator rewound: a fresh launch reuses the low pages.
        let mut again = FnPal::new("again", |_| Ok(PalOutcome::Exit(vec![])));
        let id = sea.slaunch(&mut again, b"", CpuId(0), None).unwrap();
        assert_eq!(sea.secb(id).unwrap().pages().start.0, FIRST_PAL_PAGE);
    }

    #[test]
    fn sealed_state_survives_whole_pal_lifetimes() {
        // Cross-lifetime persistence still uses the TPM (§5.4.4), but
        // within a lifetime no sealing is needed.
        let mut sea = sea(2);
        let mut holder = None;
        {
            let h = &mut holder;
            let mut first = FnPal::new("persistent", move |ctx| {
                *h = Some(ctx.seal(b"across lifetimes")?);
                Ok(PalOutcome::Exit(vec![]))
            });
            let id = sea.slaunch(&mut first, b"", CpuId(0), None).unwrap();
            sea.run_to_exit(&mut first, id, CpuId(0)).unwrap();
            sea.quote_and_free(id, b"n").unwrap();
        }
        let blob = holder.unwrap();
        let mut second = FnPal::new("persistent", move |ctx| {
            Ok(PalOutcome::Exit(ctx.unseal(&blob)?))
        });
        let id = sea.slaunch(&mut second, b"", CpuId(1), None).unwrap();
        let done = sea.run_to_exit(&mut second, id, CpuId(1)).unwrap();
        assert_eq!(done.output, b"across lifetimes");
    }
}
