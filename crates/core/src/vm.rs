//! A minimal measured bytecode VM for PALs.
//!
//! The paper's central promise is that an attestation names *the code
//! that actually ran*. The cost-model PALs in `sea-pals` kept the
//! measured image a name-derived byte string and charged their runtime
//! as a constant — fine for the timing reproduction, but the identity
//! story was a stand-in. This module closes that gap: a PAL is a
//! register-based bytecode *program*, [`PalLogic::image`] is the
//! canonical serialized form of that program, and the sePCR chain (and
//! thus every quote) commits to the hash of the bytes the interpreter
//! executes. Flip one bit of the program and the measured identity
//! moves.
//!
//! # The ISA
//!
//! Sixteen 64-bit registers, a bounded [`MEM_SIZE`]-byte scratch
//! memory, and fixed 8-byte instructions `[op, a, b, c, imm:u32 LE]`.
//! The opcode space (see [`op`]) splits into three groups:
//!
//! * **Arithmetic / logic / data movement** — `MOVI`, `MOV`, `ADD`,
//!   `SUB`, `MUL`, `DIVU`, `REMU`, `AND`, `OR`, `XOR`, `SHL`, `SHR`,
//!   `ADDI`, `LD8`/`LD64`, `ST8`/`ST64` (wrapping arithmetic; division
//!   by zero traps; loads/stores are bounds-checked against
//!   [`MEM_SIZE`]).
//! * **Control flow** — `JMP`, `JZ`, `JNZ`, `JLT` (absolute instruction
//!   index targets) and `TRAP`.
//! * **Hypercalls** — each maps 1:1 onto a [`PalCtx`] operation:
//!   `RANDOM`, `SEAL`, `UNSEAL`, `MEASURE`, `YIELD`, `EXIT`, plus the
//!   in-TCB compute primitives `HASH`, `RSAGEN`, `RSAPUB`, `RSASIGN`
//!   that the paper's CA and SSH PALs need.
//!
//! # Decode → block cache → dispatch, with direct chaining
//!
//! The interpreter never re-decodes hot code. Execution proceeds in
//! *translation blocks*: straight-line runs of instructions ending at a
//! terminator (branch, `TRAP`, `YIELD`, `EXIT`, or the end of the code
//! segment). The first visit to a pc decodes and validates the block
//! (costed at [`DECODE_GAS_PER_INSN`] per instruction) and installs it
//! in a per-invocation cache; later visits pay only a cache lookup
//! ([`LOOKUP_DISPATCH_GAS`]). With chaining enabled (the default), a
//! block's terminal branch additionally *patches* each successor edge
//! with the successor's block id the first time it is taken, so the hot
//! loop skips even the lookup and pays [`CHAIN_DISPATCH_GAS`] — the
//! classic direct-chaining discipline of binary translators.
//!
//! The cache and every chain link are discarded at the start of each
//! invocation. Cross-invocation warmth would make a resumed (or
//! crash-recovered and re-executed) session cheaper than the original
//! run, and the crash-consistency machinery demands that a session's
//! cost be a pure function of its inputs — not of how many times the
//! host happened to re-enter it.
//!
//! # Gas → `SimDuration`
//!
//! Every retired instruction charges *gas* (1 gas = 1 virtual
//! nanosecond); dispatch, decode, and hypercall marshalling charge on
//! top. Accrued gas is flushed into [`PalCtx::work`] at every block
//! boundary, so virtual-time attribution, DES scheduling, and
//! crash-point sweeps see VM execution exactly as they saw modelled
//! work. The schedule of charges is deterministic: same program, same
//! input, same state, same slots, same chaining mode — same gas, charge
//! for charge.

use sea_crypto::{BigUint, Drbg, RsaPrivateKey, Sha1};
use sea_hw::SimDuration;
use sea_tpm::SealedBlob;

use crate::error::SeaError;
use crate::pal::{PalCtx, PalLogic, PalOutcome};

/// Bytes of scratch memory a program may address (data segment, input,
/// state, and heap all live inside this window).
pub const MEM_SIZE: usize = 65_536;

/// General-purpose 64-bit registers.
pub const NUM_REGS: usize = 16;

/// Sealed-blob slots a program may address with `SEAL`/`UNSEAL`. The
/// untrusted host custodies the blobs between sessions (exactly as the
/// cost-model PALs held an `Option<SealedBlob>` field); the slot
/// occupancy bitmask is visible to the program in `r4` at entry.
pub const NUM_SLOTS: usize = 8;

/// Retired-instruction budget per invocation; exceeding it traps. A
/// backstop against runaway programs, far above any real PAL here.
pub const INSN_BUDGET: u64 = 5_000_000;

/// Gas charged to dispatch through the block cache (a lookup that hits,
/// or the lookup preceding a decode miss).
pub const LOOKUP_DISPATCH_GAS: u64 = 12;

/// Gas charged to dispatch through a patched chain edge — the
/// direct-chained fast path.
pub const CHAIN_DISPATCH_GAS: u64 = 2;

/// Gas charged per instruction to decode and validate a block on its
/// first visit.
pub const DECODE_GAS_PER_INSN: u64 = 6;

/// The serialized-program magic ("SEA VM v1").
pub const PROGRAM_MAGIC: [u8; 4] = *b"SVM1";

/// Opcode values. Grouped: `0x01..=0x16` arithmetic/memory/control,
/// `0x20..=0x25` hypercalls onto [`PalCtx`], `0x30..=0x33` in-TCB
/// compute primitives.
pub mod op {
    /// `rd = imm` (zero-extended).
    pub const MOVI: u8 = 0x01;
    /// `rd = ra`.
    pub const MOV: u8 = 0x02;
    /// `rd = ra + rb` (wrapping).
    pub const ADD: u8 = 0x03;
    /// `rd = ra - rb` (wrapping).
    pub const SUB: u8 = 0x04;
    /// `rd = ra * rb` (wrapping).
    pub const MUL: u8 = 0x05;
    /// `rd = ra / rb` (unsigned; traps on zero divisor).
    pub const DIVU: u8 = 0x06;
    /// `rd = ra % rb` (unsigned; traps on zero divisor).
    pub const REMU: u8 = 0x07;
    /// `rd = ra & rb`.
    pub const AND: u8 = 0x08;
    /// `rd = ra | rb`.
    pub const OR: u8 = 0x09;
    /// `rd = ra ^ rb`.
    pub const XOR: u8 = 0x0A;
    /// `rd = ra << (rb & 63)`.
    pub const SHL: u8 = 0x0B;
    /// `rd = ra >> (rb & 63)` (logical).
    pub const SHR: u8 = 0x0C;
    /// `rd = ra + imm` (wrapping; imm zero-extended).
    pub const ADDI: u8 = 0x0D;
    /// `rd = mem[ra + imm]` (one byte, zero-extended).
    pub const LD8: u8 = 0x0E;
    /// `rd = mem[ra + imm .. +8]` (u64 little-endian).
    pub const LD64: u8 = 0x0F;
    /// `mem[ra + imm] = rb as u8`.
    pub const ST8: u8 = 0x10;
    /// `mem[ra + imm .. +8] = rb` (u64 little-endian).
    pub const ST64: u8 = 0x11;
    /// Unconditional jump to instruction index `imm`.
    pub const JMP: u8 = 0x12;
    /// Jump to `imm` if `ra == 0`.
    pub const JZ: u8 = 0x13;
    /// Jump to `imm` if `ra != 0`.
    pub const JNZ: u8 = 0x14;
    /// Jump to `imm` if `ra < rb` (unsigned).
    pub const JLT: u8 = 0x15;
    /// Abort with application trap code `imm`.
    pub const TRAP: u8 = 0x16;
    /// Hypercall: draw `rb` random bytes from the TPM and store them at
    /// `mem[ra..]` ([`crate::PalCtx::random`]).
    pub const RANDOM: u8 = 0x20;
    /// Hypercall: seal the length-prefixed buffer at `mem[ra]` to this
    /// PAL's identity, storing the blob in slot `imm`
    /// ([`crate::PalCtx::seal`]).
    pub const SEAL: u8 = 0x21;
    /// Hypercall: unseal slot `imm` and write the plaintext as a
    /// length-prefixed buffer at `mem[ra]` (traps if the slot is empty;
    /// [`crate::PalCtx::unseal`]).
    pub const UNSEAL: u8 = 0x22;
    /// Hypercall: extend the 20-byte digest at `mem[ra]` into the PAL's
    /// measurement chain ([`crate::PalCtx::measure_input`]).
    pub const MEASURE: u8 = 0x23;
    /// Hypercall: persist the length-prefixed buffer at `mem[ra]` as
    /// in-region state and yield the CPU (`SYIELD`).
    pub const YIELD: u8 = 0x24;
    /// Hypercall: exit with the length-prefixed buffer at `mem[ra]` as
    /// output. In-region state is relinquished (cleared).
    pub const EXIT: u8 = 0x25;
    /// SHA-1 of the length-prefixed buffer at `mem[rb]`, 20 raw bytes
    /// written at `mem[ra]`.
    pub const HASH: u8 = 0x30;
    /// RSA key generation: `imm`-bit key from the 32-byte DRBG seed at
    /// `mem[rb]`, private key serialized length-prefixed at `mem[ra]`.
    pub const RSAGEN: u8 = 0x31;
    /// Encode the public half of the length-prefixed private key at
    /// `mem[rb]` (length-prefixed result at `mem[ra]`).
    pub const RSAPUB: u8 = 0x32;
    /// PKCS#1 v1.5 signature: private key length-prefixed at `mem[rb]`,
    /// 20-byte digest at `mem[rc]`, signature length-prefixed at
    /// `mem[ra]`.
    pub const RSASIGN: u8 = 0x33;
}

/// One fixed-width instruction: `[op, a, b, c, imm:u32 LE]` on the
/// wire. Field roles depend on the opcode (see [`op`]); register fields
/// must be `< `[`NUM_REGS`] or the block decoder traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Insn {
    /// Opcode (one of the [`op`] constants).
    pub op: u8,
    /// First register field (usually the destination).
    pub a: u8,
    /// Second register field.
    pub b: u8,
    /// Third register field.
    pub c: u8,
    /// Immediate: literal value, memory offset, jump target (absolute
    /// instruction index), seal-slot index, or trap code.
    pub imm: u32,
}

impl Insn {
    /// Serialized instruction width in bytes.
    pub const SIZE: usize = 8;

    /// Serializes to the 8-byte wire form.
    pub fn encode(&self) -> [u8; 8] {
        let i = self.imm.to_le_bytes();
        [self.op, self.a, self.b, self.c, i[0], i[1], i[2], i[3]]
    }

    /// Decodes the 8-byte wire form.
    pub fn decode(bytes: &[u8; 8]) -> Insn {
        Insn {
            op: bytes[0],
            a: bytes[1],
            b: bytes[2],
            c: bytes[3],
            imm: u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        }
    }
}

/// A VM program: code plus a read-only data segment loaded at address 0
/// of scratch memory. The serialized form *is* the measured image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insns: Vec<Insn>,
    data: Vec<u8>,
}

impl Program {
    /// Builds a program from instructions and a data segment.
    pub fn new(insns: Vec<Insn>, data: Vec<u8>) -> Self {
        Program { insns, data }
    }

    /// The code segment.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// The data segment (loaded at scratch address 0).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The canonical serialized form — the bytes that are measured:
    /// [`PROGRAM_MAGIC`], instruction count (u32 LE), data length
    /// (u32 LE), the instructions, the data.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.insns.len() * Insn::SIZE + self.data.len());
        out.extend_from_slice(&PROGRAM_MAGIC);
        out.extend_from_slice(&(self.insns.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        for insn in &self.insns {
            out.extend_from_slice(&insn.encode());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a serialized program.
    ///
    /// # Errors
    ///
    /// [`SeaError::PalFailed`] for a bad magic, a truncated body, or
    /// trailing bytes. Opcode validity is *not* checked here — invalid
    /// instructions trap when (and only when) execution reaches them,
    /// so a parsed image round-trips byte-for-byte.
    pub fn parse(bytes: &[u8]) -> Result<Self, SeaError> {
        let bad = |msg: &str| SeaError::PalFailed(format!("vm image: {msg}"));
        if bytes.len() < 12 || bytes[..4] != PROGRAM_MAGIC {
            return Err(bad("missing SVM1 magic"));
        }
        let n_insns = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        let data_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let code_end = 12
            + n_insns
                .checked_mul(Insn::SIZE)
                .ok_or_else(|| bad("oversized"))?;
        let total = code_end
            .checked_add(data_len)
            .ok_or_else(|| bad("oversized"))?;
        if bytes.len() != total {
            return Err(bad("truncated or trailing bytes"));
        }
        let insns = bytes[12..code_end]
            .chunks_exact(Insn::SIZE)
            .map(|c| Insn::decode(c.try_into().expect("exact chunk")))
            .collect();
        Ok(Program {
            insns,
            data: bytes[code_end..].to_vec(),
        })
    }
}

/// Execution counters for one [`VmPal`], accumulated across
/// invocations until [`VmPal::reset_stats`]. Everything is an integer,
/// derived from the deterministic instruction stream — byte-identical
/// run to run, so the bench suite can chart them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Instructions retired.
    pub retired: u64,
    /// Translation blocks executed (dispatches).
    pub blocks_executed: u64,
    /// Blocks decoded (cache misses).
    pub blocks_decoded: u64,
    /// Dispatches served through a patched chain edge.
    pub chain_hits: u64,
    /// Dispatches served through a block-cache lookup.
    pub cache_lookups: u64,
    /// Gas spent on dispatch and decode alone.
    pub dispatch_gas: u64,
    /// Total gas charged (dispatch + decode + execution + marshalling).
    pub total_gas: u64,
}

/// A decoded translation block: `[start, end)` instruction indices,
/// with the terminator (if any) at `end - 1` and direct-chain edges
/// patched in as successors get resolved.
#[derive(Debug, Clone, Copy)]
struct Block {
    start: u32,
    end: u32,
    has_term: bool,
    /// `edges[0]` = taken / unconditional successor, `edges[1]` =
    /// fallthrough successor; patched with block ids under chaining.
    edges: [Option<u32>; 2],
}

/// How a block handed control back to the dispatch loop.
enum Flow {
    /// Continue at instruction index `.0`, leaving via edge `.1`.
    Continue(u32, usize),
    /// `YIELD` hypercall: state already persisted.
    Yield,
    /// `EXIT` hypercall with the program's output.
    Exit(Vec<u8>),
}

/// A PAL whose behaviour *is* a bytecode program: the measured image is
/// the serialized program, so the sePCR chain and every quote commit to
/// the code the interpreter executes.
///
/// Register file at entry: `r0` = address of the length-prefixed input
/// buffer, `r1` = input length, `r2` = heap base, `r3` = address of the
/// length-prefixed in-region state buffer (0 when state is empty),
/// `r4` = seal-slot occupancy bitmask, `r5..r15` = 0. A
/// "length-prefixed buffer" is a u64 LE length at the address followed
/// by that many payload bytes.
#[derive(Debug, Clone)]
pub struct VmPal {
    name: String,
    program: Program,
    slots: Vec<Option<SealedBlob>>,
    chain: bool,
    stats: VmStats,
}

impl VmPal {
    /// Wraps a program as a PAL. Chaining starts enabled.
    pub fn new(name: &str, program: Program) -> Self {
        VmPal {
            name: name.to_owned(),
            program,
            slots: vec![None; NUM_SLOTS],
            chain: true,
            stats: VmStats::default(),
        }
    }

    /// Enables or disables direct block chaining (builder-style). With
    /// chaining off every dispatch pays the cache-lookup cost — the
    /// ablation the bench suite charts.
    pub fn with_chaining(mut self, on: bool) -> Self {
        self.chain = on;
        self
    }

    /// Enables or disables direct block chaining.
    pub fn set_chaining(&mut self, on: bool) {
        self.chain = on;
    }

    /// Whether direct block chaining is enabled.
    pub fn chaining(&self) -> bool {
        self.chain
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Execution counters accumulated so far.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Zeroes the execution counters.
    pub fn reset_stats(&mut self) {
        self.stats = VmStats::default();
    }

    /// The sealed blob custodied in `slot`, if any. The host is the
    /// untrusted custodian: it cannot read the plaintext, only hand the
    /// blob back to the same measured program.
    pub fn slot(&self, slot: usize) -> Option<&SealedBlob> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Installs (or clears) the sealed blob custodied in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= `[`NUM_SLOTS`].
    pub fn set_slot(&mut self, slot: usize, blob: Option<SealedBlob>) {
        self.slots[slot] = blob;
    }

    /// Removes and returns the sealed blob custodied in `slot`.
    pub fn take_slot(&mut self, slot: usize) -> Option<SealedBlob> {
        self.slots.get_mut(slot).and_then(Option::take)
    }
}

fn trap(pc: u32, msg: &str) -> SeaError {
    SeaError::PalFailed(format!("vm trap: {msg} at pc {pc}"))
}

/// Rounds `n` up to the next multiple of 8 (buffer alignment in scratch
/// memory).
fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Decodes and validates the straight-line block starting at `pc`:
/// known opcodes, register fields in range. Returns the block extent.
fn decode_block(insns: &[Insn], pc: u32) -> Result<Block, SeaError> {
    let mut idx = pc as usize;
    loop {
        let Some(insn) = insns.get(idx) else {
            // Fell off the end of the code segment without a
            // terminator: still a valid block, but executing past its
            // last instruction traps.
            return Ok(Block {
                start: pc,
                end: idx as u32,
                has_term: false,
                edges: [None, None],
            });
        };
        let known = matches!(insn.op, 0x01..=0x16 | 0x20..=0x25 | 0x30..=0x33);
        if !known {
            return Err(trap(
                idx as u32,
                &format!("invalid opcode {:#04x}", insn.op),
            ));
        }
        if insn.a as usize >= NUM_REGS || insn.b as usize >= NUM_REGS || insn.c as usize >= NUM_REGS
        {
            return Err(trap(idx as u32, "register field out of range"));
        }
        idx += 1;
        let terminator = matches!(
            insn.op,
            op::JMP | op::JZ | op::JNZ | op::JLT | op::TRAP | op::YIELD | op::EXIT
        );
        if terminator {
            return Ok(Block {
                start: pc,
                end: idx as u32,
                has_term: true,
                edges: [None, None],
            });
        }
    }
}

/// Base gas of one retired instruction (hypercalls add marshalling gas
/// on top, at the call site).
fn base_gas(opcode: u8) -> u64 {
    match opcode {
        op::MUL => 3,
        op::DIVU | op::REMU => 20,
        op::LD8 | op::LD64 | op::ST8 | op::ST64 => 2,
        _ => 1,
    }
}

/// Gas charged for RSA key generation (mirrors the cost-model PALs'
/// 150 ms keygen figure).
const RSAGEN_GAS: u64 = 150_000_000;
/// Gas charged for a PKCS#1 v1.5 signature (mirrors the 5 ms figure).
const RSASIGN_GAS: u64 = 5_000_000;
/// Gas charged to derive and encode a public key.
const RSAPUB_GAS: u64 = 1_000;
/// Fixed marshalling gas per hypercall, before the per-byte part.
const HYPERCALL_GAS: u64 = 20;

struct Machine<'m> {
    mem: &'m mut [u8],
    regs: [u64; NUM_REGS],
}

impl Machine<'_> {
    fn load(&self, pc: u32, addr: u64, n: usize) -> Result<&[u8], SeaError> {
        let a = usize::try_from(addr).unwrap_or(usize::MAX);
        if a.checked_add(n).is_none_or(|end| end > self.mem.len()) {
            return Err(trap(
                pc,
                &format!("load of {n} bytes at {addr} out of bounds"),
            ));
        }
        Ok(&self.mem[a..a + n])
    }

    fn store(&mut self, pc: u32, addr: u64, bytes: &[u8]) -> Result<(), SeaError> {
        let a = usize::try_from(addr).unwrap_or(usize::MAX);
        let n = bytes.len();
        if a.checked_add(n).is_none_or(|end| end > self.mem.len()) {
            return Err(trap(
                pc,
                &format!("store of {n} bytes at {addr} out of bounds"),
            ));
        }
        self.mem[a..a + n].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads the length-prefixed buffer at `addr` (u64 LE length, then
    /// payload), copying the payload out so destinations may overlap.
    fn load_buf(&self, pc: u32, addr: u64, what: &str) -> Result<Vec<u8>, SeaError> {
        let len_bytes = self.load(pc, addr, 8)?;
        let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes"));
        if len > MEM_SIZE as u64 {
            return Err(trap(
                pc,
                &format!("{what} buffer length {len} exceeds memory"),
            ));
        }
        Ok(self.load(pc, addr.wrapping_add(8), len as usize)?.to_vec())
    }

    /// Writes a length-prefixed buffer at `addr`.
    fn store_buf(&mut self, pc: u32, addr: u64, payload: &[u8]) -> Result<(), SeaError> {
        self.store(pc, addr, &(payload.len() as u64).to_le_bytes())?;
        self.store(pc, addr.wrapping_add(8), payload)
    }
}

impl PalLogic for VmPal {
    fn name(&self) -> &str {
        &self.name
    }

    fn image(&self) -> Vec<u8> {
        self.program.serialize()
    }

    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError> {
        let insns = self.program.insns.as_slice();

        // --- memory image: data segment, input, state, heap ---------
        let mut mem = vec![0u8; MEM_SIZE];
        let data_len = self.program.data.len();
        let in_base = align8(data_len);
        let input = ctx.input().to_vec();
        let state = ctx.state().to_vec();
        let after_input = in_base + 8 + input.len();
        let st_base = if state.is_empty() {
            0
        } else {
            align8(after_input)
        };
        let after_state = if state.is_empty() {
            after_input
        } else {
            st_base + 8 + state.len()
        };
        let heap = align8(after_state);
        if data_len > MEM_SIZE || heap > MEM_SIZE {
            return Err(trap(0, "data + input + state exceed scratch memory"));
        }
        mem[..data_len].copy_from_slice(&self.program.data);
        let mut m = Machine {
            mem: &mut mem,
            regs: [0; NUM_REGS],
        };
        m.store_buf(0, in_base as u64, &input)?;
        if !state.is_empty() {
            m.store_buf(0, st_base as u64, &state)?;
        }
        m.regs[0] = in_base as u64;
        m.regs[1] = input.len() as u64;
        m.regs[2] = heap as u64;
        m.regs[3] = st_base as u64;
        m.regs[4] = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .fold(0u64, |mask, (i, _)| mask | (1 << i));

        // --- translation-block cache: fresh every invocation --------
        // Cross-invocation warmth would make a recovered re-execution
        // cheaper than the original run and break the determinism the
        // crash sweeps pin.
        let mut blocks: Vec<Block> = Vec::new();
        let mut index: Vec<Option<u32>> = vec![None; insns.len()];

        let stats = &mut self.stats;
        let slots = &mut self.slots;
        let chain_on = self.chain;
        let mut gas: u64 = 0;
        let mut retired: u64 = 0;
        let mut retired_total: u64 = 0;
        let mut pc: u32 = 0;
        let mut chained: Option<u32> = None;
        let mut pending_patch: Option<(u32, usize)> = None;

        loop {
            // --- dispatch ------------------------------------------
            let bid = match chained.take() {
                Some(bid) => {
                    gas += CHAIN_DISPATCH_GAS;
                    stats.dispatch_gas += CHAIN_DISPATCH_GAS;
                    stats.chain_hits += 1;
                    bid
                }
                None => {
                    gas += LOOKUP_DISPATCH_GAS;
                    stats.dispatch_gas += LOOKUP_DISPATCH_GAS;
                    stats.cache_lookups += 1;
                    if pc as usize > insns.len() {
                        stats.total_gas += gas;
                        ctx.work(SimDuration::from_ns(gas));
                        return Err(trap(pc, "jump target out of range"));
                    }
                    let bid = match index.get(pc as usize).copied().flatten() {
                        Some(bid) => bid,
                        None => {
                            let blk = match decode_block(insns, pc) {
                                Ok(blk) => blk,
                                Err(e) => {
                                    stats.total_gas += gas;
                                    ctx.work(SimDuration::from_ns(gas));
                                    return Err(e);
                                }
                            };
                            let decode_gas = DECODE_GAS_PER_INSN * u64::from(blk.end - blk.start);
                            gas += decode_gas;
                            stats.dispatch_gas += decode_gas;
                            stats.blocks_decoded += 1;
                            let bid = blocks.len() as u32;
                            blocks.push(blk);
                            if let Some(slot) = index.get_mut(pc as usize) {
                                *slot = Some(bid);
                            }
                            bid
                        }
                    };
                    if let Some((pbid, edge)) = pending_patch.take() {
                        blocks[pbid as usize].edges[edge] = Some(bid);
                    }
                    bid
                }
            };
            stats.blocks_executed += 1;
            let blk = blocks[bid as usize];

            // --- execute the block's instructions ------------------
            let mut flow: Option<Result<Flow, SeaError>> = None;
            for idx in blk.start..blk.end {
                let i = insns[idx as usize];
                retired += 1;
                retired_total += 1;
                gas += base_gas(i.op);
                if retired_total > INSN_BUDGET {
                    flow = Some(Err(trap(idx, "instruction budget exhausted")));
                    break;
                }
                let (ra, rb, rc) = (i.a as usize, i.b as usize, i.c as usize);
                let step: Result<Option<Flow>, SeaError> = (|| {
                    match i.op {
                        op::MOVI => m.regs[ra] = u64::from(i.imm),
                        op::MOV => m.regs[ra] = m.regs[rb],
                        op::ADD => m.regs[ra] = m.regs[rb].wrapping_add(m.regs[rc]),
                        op::SUB => m.regs[ra] = m.regs[rb].wrapping_sub(m.regs[rc]),
                        op::MUL => m.regs[ra] = m.regs[rb].wrapping_mul(m.regs[rc]),
                        op::DIVU | op::REMU => {
                            let d = m.regs[rc];
                            if d == 0 {
                                return Err(trap(idx, "division by zero"));
                            }
                            m.regs[ra] = if i.op == op::DIVU {
                                m.regs[rb] / d
                            } else {
                                m.regs[rb] % d
                            };
                        }
                        op::AND => m.regs[ra] = m.regs[rb] & m.regs[rc],
                        op::OR => m.regs[ra] = m.regs[rb] | m.regs[rc],
                        op::XOR => m.regs[ra] = m.regs[rb] ^ m.regs[rc],
                        op::SHL => m.regs[ra] = m.regs[rb] << (m.regs[rc] & 63),
                        op::SHR => m.regs[ra] = m.regs[rb] >> (m.regs[rc] & 63),
                        op::ADDI => m.regs[ra] = m.regs[rb].wrapping_add(u64::from(i.imm)),
                        op::LD8 => {
                            let addr = m.regs[rb].wrapping_add(u64::from(i.imm));
                            m.regs[ra] = u64::from(m.load(idx, addr, 1)?[0]);
                        }
                        op::LD64 => {
                            let addr = m.regs[rb].wrapping_add(u64::from(i.imm));
                            let bytes = m.load(idx, addr, 8)?;
                            m.regs[ra] = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
                        }
                        op::ST8 => {
                            let addr = m.regs[ra].wrapping_add(u64::from(i.imm));
                            m.store(idx, addr, &[m.regs[rb] as u8])?;
                        }
                        op::ST64 => {
                            let addr = m.regs[ra].wrapping_add(u64::from(i.imm));
                            m.store(idx, addr, &m.regs[rb].to_le_bytes())?;
                        }
                        op::JMP => return Ok(Some(Flow::Continue(i.imm, 0))),
                        op::JZ | op::JNZ => {
                            let z = m.regs[ra] == 0;
                            let taken = if i.op == op::JZ { z } else { !z };
                            return Ok(Some(if taken {
                                Flow::Continue(i.imm, 0)
                            } else {
                                Flow::Continue(blk.end, 1)
                            }));
                        }
                        op::JLT => {
                            return Ok(Some(if m.regs[ra] < m.regs[rb] {
                                Flow::Continue(i.imm, 0)
                            } else {
                                Flow::Continue(blk.end, 1)
                            }));
                        }
                        op::TRAP => {
                            return Err(trap(idx, &format!("application trap code {}", i.imm)));
                        }
                        op::RANDOM => {
                            let n = m.regs[rb];
                            if n > MEM_SIZE as u64 {
                                return Err(trap(idx, "random draw exceeds memory"));
                            }
                            let bytes = ctx.random(n as usize)?;
                            m.store(idx, m.regs[ra], &bytes)?;
                            gas += HYPERCALL_GAS + n;
                        }
                        op::SEAL => {
                            let slot = i.imm as usize;
                            if slot >= NUM_SLOTS {
                                return Err(trap(idx, "seal slot out of range"));
                            }
                            let payload = m.load_buf(idx, m.regs[ra], "seal")?;
                            gas += HYPERCALL_GAS + payload.len() as u64;
                            slots[slot] = Some(ctx.seal(&payload)?);
                        }
                        op::UNSEAL => {
                            let slot = i.imm as usize;
                            let blob = slots
                                .get(slot)
                                .and_then(Option::as_ref)
                                .ok_or_else(|| trap(idx, "unseal of empty slot"))?;
                            let payload = ctx.unseal(blob)?;
                            gas += HYPERCALL_GAS + payload.len() as u64;
                            m.store_buf(idx, m.regs[ra], &payload)?;
                        }
                        op::MEASURE => {
                            let digest: [u8; 20] =
                                m.load(idx, m.regs[ra], 20)?.try_into().expect("20 bytes");
                            ctx.measure_input(&digest)?;
                            gas += HYPERCALL_GAS + 20;
                        }
                        op::YIELD => {
                            let state = m.load_buf(idx, m.regs[ra], "yield state")?;
                            gas += HYPERCALL_GAS + state.len() as u64;
                            ctx.set_state(state);
                            return Ok(Some(Flow::Yield));
                        }
                        op::EXIT => {
                            let out = m.load_buf(idx, m.regs[ra], "exit output")?;
                            gas += HYPERCALL_GAS + out.len() as u64;
                            ctx.set_state(Vec::new());
                            return Ok(Some(Flow::Exit(out)));
                        }
                        op::HASH => {
                            let src = m.load_buf(idx, m.regs[rb], "hash")?;
                            gas += 60 + 2 * src.len() as u64;
                            m.store(idx, m.regs[ra], &Sha1::digest(&src))?;
                        }
                        op::RSAGEN => {
                            let seed = m.load(idx, m.regs[rb], 32)?.to_vec();
                            let mut rng = Drbg::new(&seed);
                            let key = RsaPrivateKey::generate(i.imm as usize, &mut rng)
                                .map_err(|_| trap(idx, "rsa keygen failed"))?;
                            gas += RSAGEN_GAS;
                            m.store_buf(idx, m.regs[ra], &key.to_bytes())?;
                        }
                        op::RSAPUB => {
                            let key_bytes = m.load_buf(idx, m.regs[rb], "rsa key")?;
                            let key = RsaPrivateKey::from_bytes(&key_bytes)
                                .map_err(|_| trap(idx, "corrupt rsa key"))?;
                            gas += RSAPUB_GAS;
                            let n = key.public_key().modulus().to_bytes_be();
                            let e = BigUint::from_u64(65_537).to_bytes_be();
                            let mut enc = Vec::with_capacity(8 + n.len() + e.len());
                            enc.extend_from_slice(&(n.len() as u32).to_be_bytes());
                            enc.extend_from_slice(&n);
                            enc.extend_from_slice(&(e.len() as u32).to_be_bytes());
                            enc.extend_from_slice(&e);
                            m.store_buf(idx, m.regs[ra], &enc)?;
                        }
                        op::RSASIGN => {
                            let key_bytes = m.load_buf(idx, m.regs[rb], "rsa key")?;
                            let key = RsaPrivateKey::from_bytes(&key_bytes)
                                .map_err(|_| trap(idx, "corrupt rsa key"))?;
                            let digest: [u8; 20] =
                                m.load(idx, m.regs[rc], 20)?.try_into().expect("20 bytes");
                            gas += RSASIGN_GAS;
                            let sig = key
                                .sign_pkcs1v15(&digest)
                                .map_err(|_| trap(idx, "rsa signing failed"))?;
                            m.store_buf(idx, m.regs[ra], &sig.0)?;
                        }
                        // decode_block validated the opcode.
                        _ => unreachable!("decoded block contains only known opcodes"),
                    }
                    Ok(None)
                })();
                match step {
                    Ok(None) => {}
                    Ok(Some(f)) => {
                        flow = Some(Ok(f));
                        break;
                    }
                    Err(e) => {
                        flow = Some(Err(e));
                        break;
                    }
                }
            }

            // --- block boundary: flush accrued gas into virtual time
            stats.retired = stats.retired.wrapping_add(retired);
            retired = 0;
            stats.total_gas += gas;
            ctx.work(SimDuration::from_ns(gas));
            gas = 0;

            match flow {
                Some(Ok(Flow::Continue(target, edge))) => {
                    if chain_on {
                        match blk.edges[edge] {
                            Some(nbid) => chained = Some(nbid),
                            None => pending_patch = Some((bid, edge)),
                        }
                    }
                    pc = target;
                }
                Some(Ok(Flow::Yield)) => return Ok(PalOutcome::Yield),
                Some(Ok(Flow::Exit(out))) => return Ok(PalOutcome::Exit(out)),
                Some(Err(e)) => return Err(e),
                // Ran through the whole block without a terminator:
                // only possible when the block ends at the code end.
                None if !blk.has_term => {
                    return Err(trap(blk.end, "execution fell off the code end"));
                }
                None => unreachable!("terminated block always yields a flow"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_hw::{CpuId, TpmKind};
    use sea_tpm::{KeyStrength, Tpm};

    fn i(op: u8, a: u8, b: u8, c: u8, imm: u32) -> Insn {
        Insn { op, a, b, c, imm }
    }

    /// out[0] = 7: movi r5,7; build exit buf at heap (r2).
    fn exit7() -> Program {
        Program::new(
            vec![
                i(op::MOVI, 5, 0, 0, 7),
                i(op::MOVI, 6, 0, 0, 1),
                i(op::ST64, 2, 6, 0, 0),
                i(op::ST8, 2, 5, 0, 8),
                i(op::EXIT, 2, 0, 0, 0),
            ],
            Vec::new(),
        )
    }

    /// Sums 1..=n (n from imm) with a loop, exits the 8-byte LE sum.
    fn sum_loop(n: u32) -> Program {
        Program::new(
            vec![
                i(op::MOVI, 5, 0, 0, 0), // 0: acc
                i(op::MOVI, 6, 0, 0, 1), // 1: k = 1
                i(op::MOVI, 7, 0, 0, n), // 2: n
                i(op::MOVI, 8, 0, 0, 1), // 3: const 1
                i(op::JLT, 7, 6, 0, 8),  // 4: while !(n < k)
                i(op::ADD, 5, 5, 6, 0),  // 5: acc += k
                i(op::ADD, 6, 6, 8, 0),  // 6: k += 1
                i(op::JMP, 0, 0, 0, 4),  // 7: loop
                i(op::MOVI, 9, 0, 0, 8), // 8: exit: len 8
                i(op::ST64, 2, 9, 0, 0),
                i(op::ST64, 2, 5, 0, 8),
                i(op::EXIT, 2, 0, 0, 0),
            ],
            Vec::new(),
        )
    }

    fn run(pal: &mut VmPal, input: &[u8], state: Vec<u8>) -> Result<PalOutcome, SeaError> {
        let mut ctx = PalCtx::new(None, None, input, state);
        pal.run(&mut ctx)
    }

    #[test]
    fn image_is_serialized_program_and_round_trips() {
        let p = sum_loop(10);
        let pal = VmPal::new("sum", p.clone());
        let image = pal.image();
        assert_eq!(&image[..4], b"SVM1");
        assert_eq!(Program::parse(&image).unwrap(), p);
        assert!(Program::parse(&image[..image.len() - 1]).is_err());
        assert!(Program::parse(b"XXXX").is_err());
    }

    #[test]
    fn straight_line_program_exits() {
        let mut pal = VmPal::new("seven", exit7());
        assert_eq!(
            run(&mut pal, b"", Vec::new()).unwrap(),
            PalOutcome::Exit(vec![7])
        );
    }

    #[test]
    fn loop_computes_and_chains() {
        let mut pal = VmPal::new("sum", sum_loop(100));
        let out = run(&mut pal, b"", Vec::new()).unwrap();
        assert_eq!(out, PalOutcome::Exit(5050u64.to_le_bytes().to_vec()));
        let s = pal.stats();
        assert!(s.chain_hits > 90, "hot loop should chain: {s:?}");
        assert!(s.blocks_decoded <= 4, "{s:?}");
        assert_eq!(s.blocks_executed, s.chain_hits + s.cache_lookups);
    }

    #[test]
    fn chain_disabled_same_result_more_dispatch_gas() {
        let mut a = VmPal::new("sum", sum_loop(64));
        let mut b = VmPal::new("sum", sum_loop(64)).with_chaining(false);
        let ra = run(&mut a, b"", Vec::new()).unwrap();
        let rb = run(&mut b, b"", Vec::new()).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(b.stats().chain_hits, 0);
        assert_eq!(a.stats().retired, b.stats().retired);
        assert!(
            b.stats().dispatch_gas > a.stats().dispatch_gas,
            "chaining must reduce dispatch gas: {:?} vs {:?}",
            a.stats(),
            b.stats()
        );
    }

    #[test]
    fn gas_is_deterministic_across_invocations() {
        let mut a = VmPal::new("sum", sum_loop(50));
        let mut ctx1 = PalCtx::new(None, None, b"", Vec::new());
        a.run(&mut ctx1).unwrap();
        let first = (a.stats(), ctx1.work_done);
        a.reset_stats();
        let mut ctx2 = PalCtx::new(None, None, b"", Vec::new());
        a.run(&mut ctx2).unwrap();
        // The block cache is rebuilt every invocation, so a re-run is
        // charge-for-charge identical — no cross-invocation warmth.
        assert_eq!((a.stats(), ctx2.work_done), first);
        assert_eq!(
            SimDuration::from_ns(a.stats().total_gas),
            ctx2.work_done,
            "all gas flushes into ctx.work"
        );
    }

    #[test]
    fn traps_are_pal_failures() {
        let div0 = Program::new(
            vec![i(op::MOVI, 5, 0, 0, 1), i(op::DIVU, 5, 5, 6, 0)],
            Vec::new(),
        );
        let err = run(&mut VmPal::new("div0", div0), b"", Vec::new()).unwrap_err();
        assert!(matches!(&err, SeaError::PalFailed(m) if m.contains("division by zero")));

        let bad_store = Program::new(
            vec![i(op::MOVI, 5, 0, 0, 9), i(op::ST64, 5, 5, 0, 0xFFFF)],
            Vec::new(),
        );
        let err = run(&mut VmPal::new("oob", bad_store), b"", Vec::new()).unwrap_err();
        assert!(matches!(&err, SeaError::PalFailed(m) if m.contains("out of bounds")));

        let explicit = Program::new(vec![i(op::TRAP, 0, 0, 0, 42)], Vec::new());
        let err = run(&mut VmPal::new("trap", explicit), b"", Vec::new()).unwrap_err();
        assert!(matches!(&err, SeaError::PalFailed(m) if m.contains("trap code 42")));

        let off_end = Program::new(vec![i(op::MOVI, 5, 0, 0, 1)], Vec::new());
        let err = run(&mut VmPal::new("end", off_end), b"", Vec::new()).unwrap_err();
        assert!(matches!(&err, SeaError::PalFailed(m) if m.contains("fell off")));

        let bad_reg = Program::new(vec![i(op::MOV, 16, 0, 0, 0)], Vec::new());
        let err = run(&mut VmPal::new("reg", bad_reg), b"", Vec::new()).unwrap_err();
        assert!(matches!(&err, SeaError::PalFailed(m) if m.contains("register field")));
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let spin = Program::new(vec![i(op::JMP, 0, 0, 0, 0)], Vec::new());
        let err = run(&mut VmPal::new("spin", spin), b"", Vec::new()).unwrap_err();
        assert!(matches!(&err, SeaError::PalFailed(m) if m.contains("budget")));
    }

    #[test]
    fn yield_persists_state_and_resume_sees_it() {
        // First call: state empty (r3 = 0) → yield byte 5. Resume:
        // state present → exit the state payload.
        let p = Program::new(
            vec![
                i(op::JNZ, 3, 0, 0, 6),   // 0: state present → 6
                i(op::MOVI, 5, 0, 0, 1),  // 1
                i(op::ST64, 2, 5, 0, 0),  // 2
                i(op::MOVI, 6, 0, 0, 5),  // 3
                i(op::ST8, 2, 6, 0, 8),   // 4
                i(op::YIELD, 2, 0, 0, 0), // 5
                i(op::EXIT, 3, 0, 0, 0),  // 6: exit the state buffer
            ],
            Vec::new(),
        );
        let mut pal = VmPal::new("yielder", p);
        let mut ctx = PalCtx::new(None, None, b"", Vec::new());
        assert_eq!(pal.run(&mut ctx).unwrap(), PalOutcome::Yield);
        let state = ctx.into_state();
        assert_eq!(state, vec![5]);
        let mut ctx2 = PalCtx::new(None, None, b"", state);
        assert_eq!(pal.run(&mut ctx2).unwrap(), PalOutcome::Exit(vec![5]));
        // EXIT relinquishes in-region state.
        assert!(ctx2.into_state().is_empty());
    }

    #[test]
    fn seal_unseal_round_trip_through_slots() {
        // Seal the input; on the next invocation (slot occupied, bit 0
        // of r4 set) unseal it and exit the plaintext.
        let p = Program::new(
            vec![
                i(op::MOVI, 5, 0, 0, 1),
                i(op::AND, 5, 4, 5, 0),  // r5 = slot-0 bit
                i(op::JNZ, 5, 0, 0, 8),  // occupied → unseal path
                i(op::SEAL, 0, 0, 0, 0), // seal the input buffer
                i(op::MOVI, 6, 0, 0, 0), // exit empty
                i(op::ST64, 2, 6, 0, 0),
                i(op::EXIT, 2, 0, 0, 0),
                i(op::TRAP, 0, 0, 0, 9),   // 7: unreachable
                i(op::UNSEAL, 2, 0, 0, 0), // 8
                i(op::EXIT, 2, 0, 0, 0),
            ],
            Vec::new(),
        );
        let mut tpm = Tpm::new(TpmKind::Broadcom, KeyStrength::Demo512, b"vm test").with_sepcrs(2);
        let mut pal = VmPal::new("sealer", p);
        let image = pal.image();
        let handle = tpm.slaunch_measure(&image, CpuId(0)).unwrap().value;
        let binding = crate::pal::SealBinding::SePcr {
            handle,
            cpu: CpuId(0),
        };
        let mut ctx = PalCtx::new(Some(&mut tpm), Some(binding.clone()), b"secret", Vec::new());
        assert_eq!(pal.run(&mut ctx).unwrap(), PalOutcome::Exit(Vec::new()));
        drop(ctx);
        assert!(pal.slot(0).is_some());
        let mut ctx2 = PalCtx::new(Some(&mut tpm), Some(binding), b"", Vec::new());
        assert_eq!(
            pal.run(&mut ctx2).unwrap(),
            PalOutcome::Exit(b"secret".to_vec())
        );
    }

    #[test]
    fn tpm_ops_without_tpm_propagate_no_tpm() {
        let p = Program::new(
            vec![
                i(op::MOVI, 5, 0, 0, 4),
                i(op::RANDOM, 2, 5, 0, 0),
                i(op::TRAP, 0, 0, 0, 0),
            ],
            Vec::new(),
        );
        let err = run(&mut VmPal::new("rng", p), b"", Vec::new()).unwrap_err();
        assert_eq!(err, SeaError::NoTpm);
    }

    #[test]
    fn hash_matches_sha1() {
        // Hash the input buffer (already length-prefixed at r0), write
        // the digest, exit it as a 20-byte output.
        let p = Program::new(
            vec![
                i(op::MOVI, 5, 0, 0, 20),
                i(op::ST64, 2, 5, 0, 0), // out len = 20
                i(op::ADDI, 6, 2, 0, 8), // digest dst = heap + 8
                i(op::HASH, 6, 0, 0, 0),
                i(op::EXIT, 2, 0, 0, 0),
            ],
            Vec::new(),
        );
        let out = run(&mut VmPal::new("hash", p), b"abc", Vec::new()).unwrap();
        assert_eq!(out, PalOutcome::Exit(Sha1::digest(b"abc").to_vec()));
    }

    #[test]
    fn data_segment_loads_at_address_zero() {
        let p = Program::new(
            vec![
                i(op::MOVI, 5, 0, 0, 0),
                i(op::LD64, 6, 5, 0, 0), // r6 = data[0..8]
                i(op::MOVI, 7, 0, 0, 8),
                i(op::ST64, 2, 7, 0, 0),
                i(op::ST64, 2, 6, 0, 8),
                i(op::EXIT, 2, 0, 0, 0),
            ],
            0xDEAD_BEEF_u64.to_le_bytes().to_vec(),
        );
        let out = run(&mut VmPal::new("data", p), b"", Vec::new()).unwrap();
        assert_eq!(
            out,
            PalOutcome::Exit(0xDEAD_BEEF_u64.to_le_bytes().to_vec())
        );
    }
}
