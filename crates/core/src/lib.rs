//! # sea-core
//!
//! The Secure Execution Architecture (SEA) of McCune et al., *"How Low
//! Can You Go? Recommendations for Hardware-Supported Minimal TCB Code
//! Execution"* (ASPLOS 2008) — the paper's primary contribution,
//! implemented over the `sea-hw` and `sea-tpm` substrates.
//!
//! SEA executes a *Piece of Application Logic* (PAL) while trusting only
//! the CPU, memory, memory controller, and TPM. This crate provides both
//! generations of the architecture the paper analyzes:
//!
//! * [`LegacySea`] — SEA on **today's** (2007) hardware: suspend the
//!   untrusted OS, `SKINIT`/`SENTER` the PAL, protect cross-invocation
//!   state with `TPM_Seal`/`TPM_Unseal`, resume the OS. This is the
//!   system whose overheads Figure 2 and Table 1 measure: ~200 ms for a
//!   state-generating PAL and >1 s for a state-using PAL, with every
//!   other CPU forcibly idled.
//! * [`EnhancedSea`] — SEA on the paper's **recommended** hardware (§5):
//!   `SLAUNCH` launches a PAL described by a [`Secb`], the memory
//!   controller's access-control table isolates its pages, `SYIELD` and
//!   the preemption timer context-switch it at VM-entry cost (~0.6 µs,
//!   §5.7 — six orders of magnitude cheaper), sePCRs give every
//!   concurrent PAL its own measurement chain, and `SFREE`/`SKILL`
//!   retire it.
//! * [`Verifier`] — the external relying party: checks AIK signatures,
//!   replays expected measurement chains, and distinguishes genuine late
//!   launches from reboots, `SKILL`ed PALs, and impostors.
//!
//! # Example
//!
//! ```
//! use sea_core::{EnhancedSea, FnPal, PalLogic, PalOutcome, SecurePlatform, Verifier};
//! use sea_hw::{CpuId, Platform, SimDuration};
//! use sea_tpm::KeyStrength;
//!
//! # fn main() -> Result<(), sea_core::SeaError> {
//! let platform = SecurePlatform::new(Platform::recommended(2), KeyStrength::Demo512, b"demo");
//! let mut sea = EnhancedSea::new(platform)?;
//!
//! let mut pal = FnPal::new("hello-pal", |ctx| {
//!     ctx.work(SimDuration::from_us(50));
//!     Ok(PalOutcome::Exit(b"hello from the TCB".to_vec()))
//! });
//!
//! let id = sea.slaunch(&mut pal, b"", CpuId(0), None)?;
//! let done = sea.run_to_exit(&mut pal, id, CpuId(0))?;
//! assert_eq!(done.output, b"hello from the TCB");
//!
//! // Untrusted code produces the attestation; an external verifier
//! // accepts it.
//! let quote = sea.quote_and_free(id, b"nonce")?;
//! let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
//! assert!(verifier
//!     .verify_sepcr_quote(&quote.value, b"nonce", &pal.image(), &[])
//!     .is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod attest;
mod concurrent;
mod des;
mod driver;
pub mod engine;
mod enhanced;
mod error;
mod journal;
mod legacy;
pub mod locks;
mod pal;
mod pioneer;
mod platform;
mod protocol;
mod recovery;
mod report;
mod secb;
mod threadpool;
pub mod vm;

pub use attest::{TrustPolicy, Verifier, VerifyError};
pub use concurrent::{
    ConcurrentJob, ConcurrentOutcome, ConcurrentSea, DurableOutcome, JobResult, RecoveredOutcome,
    SessionResult,
};
pub use engine::{
    Architecture, BatchOutcome, BatchPolicy, Executor, Session, SessionEngine, SessionTally,
    Skinit, Slaunch, Stepped, JOURNAL_NV_INDEX,
};
pub use enhanced::{EnhancedSea, PalDone, PalId, PalStep};
pub use error::SeaError;
pub use journal::{JournalEntry, SessionJournal};
pub use legacy::{LegacySea, LegacySessionResult};
pub use locks::{Held, LockRank, OrderedLock};
pub use pal::{FnPal, PalCtx, PalLogic, PalOutcome};
pub use pioneer::{
    checksum as pioneer_checksum, forged_duration, honest_duration, PioneerChallenge,
    PioneerResponse, PioneerVerdict, PioneerVerifier, ATTACKER_SLOWDOWN,
};
pub use platform::{LateLaunch, SecurePlatform};
pub use protocol::{AttestationService, Challenge, ProtocolError};
pub use recovery::RetryPolicy;
pub use report::SessionReport;
pub use secb::{InterruptPolicy, PalLifecycle, Secb};
pub use vm::{Insn, Program, VmPal, VmStats};
