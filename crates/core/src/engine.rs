//! The unified session engine: one generic lifecycle over pluggable
//! architectures, with batch behavior composed from policy objects.
//!
//! The paper's central claim (§5) is that legacy `SKINIT`/`SENTER`
//! sessions and the recommended `SLAUNCH`/sePCR sessions are the *same
//! lifecycle* realised on different hardware primitives. This module
//! encodes that claim in the type system:
//!
//! * [`Architecture`] is the pluggable hardware binding — [`Skinit`]
//!   (today's hardware: full teardown + `TPM_Seal`/`Unseal` per
//!   invocation, one session at a time) and [`Slaunch`] (the proposed
//!   hardware: `SYIELD`/resume, sePCR-bound quotes, `SKILL`).
//! * [`Session`] is a typestate handle walking `Launched → Stepping →
//!   Sealed`; the terminal outcomes (`Quoted`/`Killed`/`Degraded`) are
//!   the [`SessionResult`] variants. Illegal transitions (resuming an
//!   exited PAL, quoting a live one) do not compile.
//! * [`SessionEngine`] is the one batch executor. Its behavior is
//!   composed from a [`BatchPolicy`]: add a [`RetryPolicy`] for
//!   bounded fault recovery, add a [`ResetPlan`] for crash-consistent
//!   durability (write-ahead [`SessionJournal`] sealed into TPM
//!   NVRAM), pick a worker count for concurrency. Every combination
//!   returns the same [`BatchOutcome`].
//!
//! # Determinism
//!
//! The executor inherits the concurrent engine's contract: job *i*
//! runs on worker/CPU `i % workers`, per-job costs are intrinsic,
//! per-CPU busy time folds into the shared timeline via an atomic max,
//! and results return in job-index order — so outcomes are
//! byte-identical across worker counts and host interleavings.
//!
//! # Lock scope
//!
//! The shared runtime is locked **per operation**, never per job, and
//! the hot path keeps obs emission for retries *outside* the engine
//! lock: a retry's `recovery.backoff` leaf lands on the session's own
//! track (owned by exactly one worker, ordered by a per-track
//! sequence) and counters are order-insensitive, so neither needs the
//! lock. Only shared-state mutations — trace records, journal commit
//! gates, `PLATFORM_TRACK` spans — still serialize on it.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sea_hw::{
    CpuClockDomain, CpuId, FaultPlan, Layer, Obs, ResetPlan, SharedClock, SimDuration, SimTime,
    TraceEvent, PLATFORM_TRACK, TRANSPORT_FAULT_COST,
};
use sea_tpm::{Quote, SealedBlob, Timed, TpmError};

use crate::concurrent::{ConcurrentJob, JobResult, SessionResult};
use crate::enhanced::{EnhancedSea, PalId, PalStep};
use crate::error::SeaError;
use crate::journal::SessionJournal;
use crate::legacy::LegacySea;
use crate::pal::PalLogic;
use crate::platform::SecurePlatform;
use crate::recovery::RetryPolicy;
use crate::report::SessionReport;

/// TPM NVRAM index where the durable engine parks the sealed session
/// journal ("SJNL" in ASCII). One checkpoint blob lives here at a time;
/// each terminal commit overwrites it.
pub const JOURNAL_NV_INDEX: u32 = 0x534a_4e4c;

/// Locks a mutex, riding through poison (a panicked worker must not
/// wedge the batch driver).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Completions per virtual second of wall time — the one rate formula
/// every outcome struct and bench table shares (`sea_bench::stats`
/// re-exports it), so engine outcomes and bench JSON cannot disagree.
pub fn rate_per_sec(completed: usize, wall: SimDuration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        completed as f64 / secs
    }
}

/// Parallel speedup: aggregate (serial) virtual cost over batch wall
/// time. `1.0` for an empty batch. Shared with `sea_bench::stats` for
/// the same reason as [`rate_per_sec`].
pub fn speedup(aggregate: SimDuration, wall: SimDuration) -> f64 {
    let wall = wall.as_secs_f64();
    if wall == 0.0 {
        1.0
    } else {
        aggregate.as_secs_f64() / wall
    }
}

/// Terminal-variant counts for a slice of session results: the one
/// shared tally every outcome struct derives its `quoted()` /
/// `degraded()` / `killed()` counters from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionTally {
    /// Sessions that completed with an attestation.
    pub quoted: usize,
    /// Sessions that completed on the degraded legacy slow path.
    pub degraded: usize,
    /// Sessions torn down after exhausting their retry budget.
    pub killed: usize,
}

impl SessionTally {
    /// Tallies the terminal variants in `sessions`.
    pub fn of(sessions: &[SessionResult]) -> Self {
        let mut tally = SessionTally::default();
        for s in sessions {
            match s {
                SessionResult::Quoted { .. } => tally.quoted += 1,
                SessionResult::Degraded { .. } => tally.degraded += 1,
                SessionResult::Killed { .. } => tally.killed += 1,
            }
        }
        tally
    }

    /// Sessions that produced an output (quoted or degraded).
    pub fn completed(&self) -> usize {
        self.quoted + self.degraded
    }
}

/// A hardware binding for the unified session lifecycle.
///
/// The engine drives every architecture through the same sequence —
/// launch, step/resume to exit, report, quote — and the architecture
/// maps each step onto its primitives. Operations take the runtime
/// behind a [`Mutex`] and lock it **per operation**, so concurrent
/// sessions genuinely interleave on a shared runtime.
///
/// `key` is `Some` when the recovery layer drives the session (keyed
/// operations roll injected faults and pin obs tracks) and `None` on
/// the plain fast path.
pub trait Architecture: Send + Sync + 'static {
    /// The shared engine state (one per platform).
    type Runtime: Send;
    /// Handle to one live session.
    type Live: Send;

    /// Architecture name, for diagnostics and policy errors.
    const NAME: &'static str;
    /// Whether multiple sessions may be live at once (drives the
    /// worker-count cap: non-concurrent architectures serialize).
    const CONCURRENT: bool;
    /// Whether sessions can persist across a platform reset (required
    /// for durable batches).
    const DURABLE: bool;

    /// Boots the runtime on `platform`.
    fn boot(platform: SecurePlatform) -> Result<Self::Runtime, SeaError>;

    /// Installs (or clears) a deterministic fault plan. A no-op on
    /// architectures without fault hooks.
    fn set_fault_plan(rt: &mut Self::Runtime, plan: Option<FaultPlan>);

    /// The underlying platform.
    fn platform(rt: &Self::Runtime) -> &SecurePlatform;

    /// The underlying platform, mutably.
    fn platform_mut(rt: &mut Self::Runtime) -> &mut SecurePlatform;

    /// Reboots the platform after a power loss, returning the virtual
    /// reboot cost. Only reachable when [`Architecture::DURABLE`].
    fn power_cycle(rt: &mut Self::Runtime) -> SimDuration;

    /// Launches a session for `logic` on `cpu`.
    fn launch(
        rt: &Mutex<Self::Runtime>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<Self::Live, SeaError>;

    /// Runs the session until it yields or exits.
    fn step(
        rt: &Mutex<Self::Runtime>,
        live: &mut Self::Live,
        logic: &mut dyn PalLogic,
        key: Option<u64>,
    ) -> Result<PalStep, SeaError>;

    /// Resumes a yielded session on `cpu`.
    fn resume(
        rt: &Mutex<Self::Runtime>,
        live: &mut Self::Live,
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<(), SeaError>;

    /// The exited session's cost breakdown.
    fn report(rt: &Mutex<Self::Runtime>, live: &Self::Live) -> Result<SessionReport, SeaError>;

    /// Attests the exited session over `nonce` and retires it.
    fn quote(
        rt: &Mutex<Self::Runtime>,
        live: &mut Self::Live,
        nonce: &[u8],
        key: Option<u64>,
    ) -> Result<Timed<Quote>, SeaError>;

    /// Tears a session down mid-flight, reclaiming its resources.
    fn kill(rt: &Mutex<Self::Runtime>, live: &mut Self::Live, key: u64) -> Result<(), SeaError>;

    /// Runs `logic` to completion on the architecture's degraded slow
    /// path (no per-session attestation). Only reachable where session
    /// slots can saturate.
    fn degrade(
        rt: &Mutex<Self::Runtime>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: u64,
    ) -> Result<(Vec<u8>, SessionReport), SeaError>;
}

/// The paper's recommended hardware (§5): `SLAUNCH` over an
/// [`EnhancedSea`] runtime — suspendable sessions, sePCR-bound quotes,
/// `SKILL` teardown, graceful degradation to the legacy slow path on
/// sePCR saturation. Concurrent and durable.
#[derive(Debug, Clone, Copy, Default)]
pub struct Slaunch;

impl Architecture for Slaunch {
    type Runtime = EnhancedSea;
    type Live = PalId;

    const NAME: &'static str = "slaunch";
    const CONCURRENT: bool = true;
    const DURABLE: bool = true;

    fn boot(platform: SecurePlatform) -> Result<EnhancedSea, SeaError> {
        EnhancedSea::new(platform)
    }

    fn set_fault_plan(rt: &mut EnhancedSea, plan: Option<FaultPlan>) {
        rt.set_fault_plan(plan);
    }

    fn platform(rt: &EnhancedSea) -> &SecurePlatform {
        rt.platform()
    }

    fn platform_mut(rt: &mut EnhancedSea) -> &mut SecurePlatform {
        rt.platform_mut()
    }

    fn power_cycle(rt: &mut EnhancedSea) -> SimDuration {
        rt.power_cycle()
    }

    fn launch(
        rt: &Mutex<EnhancedSea>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<PalId, SeaError> {
        match key {
            None => lock(rt).slaunch(logic, input, cpu, None),
            Some(key) => lock(rt).slaunch_keyed(logic, input, cpu, None, key),
        }
    }

    fn step(
        rt: &Mutex<EnhancedSea>,
        live: &mut PalId,
        logic: &mut dyn PalLogic,
        key: Option<u64>,
    ) -> Result<PalStep, SeaError> {
        match key {
            None => lock(rt).step(logic, *live),
            Some(key) => lock(rt).step_keyed(logic, *live, key),
        }
    }

    fn resume(
        rt: &Mutex<EnhancedSea>,
        live: &mut PalId,
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<(), SeaError> {
        match key {
            None => lock(rt).resume(*live, cpu),
            Some(key) => lock(rt).resume_keyed(*live, cpu, key),
        }
    }

    fn report(rt: &Mutex<EnhancedSea>, live: &PalId) -> Result<SessionReport, SeaError> {
        lock(rt).report(*live)
    }

    fn quote(
        rt: &Mutex<EnhancedSea>,
        live: &mut PalId,
        nonce: &[u8],
        key: Option<u64>,
    ) -> Result<Timed<Quote>, SeaError> {
        match key {
            None => lock(rt).quote_and_free(*live, nonce),
            Some(key) => lock(rt).quote_and_free_keyed(*live, nonce, key),
        }
    }

    fn kill(rt: &Mutex<EnhancedSea>, live: &mut PalId, key: u64) -> Result<(), SeaError> {
        lock(rt).kill_session(*live, key)
    }

    fn degrade(
        rt: &Mutex<EnhancedSea>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: u64,
    ) -> Result<(Vec<u8>, SessionReport), SeaError> {
        // The fallback is not a keyed engine op, so pin the track and
        // lifecycle frame here, under the same engine lock.
        let mut guard = lock(rt);
        let obs = guard.platform().machine().obs().clone();
        obs.set_track(key);
        obs.open(Layer::Core, "session.fallback");
        let done = guard.run_legacy_fallback(logic, input, cpu);
        obs.close();
        obs.add("core.degraded", 1);
        let done = done?;
        Ok((done.output, done.report))
    }
}

/// Today's (2007) hardware: `SKINIT`/`SENTER` over a [`LegacySea`]
/// runtime. A launch suspends the whole platform and runs the PAL to
/// completion — full teardown plus `TPM_Seal`/`Unseal` per invocation
/// — so the architecture is neither concurrent nor durable, and
/// "stepping" a session observes the already-finished run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Skinit;

/// A completed legacy invocation held by the lifecycle: `SKINIT` runs
/// the PAL to completion at launch, so the live handle carries the
/// finished output and report for the later stages to observe.
#[derive(Debug)]
pub struct SkinitLive {
    output: Vec<u8>,
    report: SessionReport,
}

impl Architecture for Skinit {
    type Runtime = LegacySea;
    type Live = SkinitLive;

    const NAME: &'static str = "skinit";
    const CONCURRENT: bool = false;
    const DURABLE: bool = false;

    fn boot(platform: SecurePlatform) -> Result<LegacySea, SeaError> {
        LegacySea::new(platform)
    }

    fn set_fault_plan(_rt: &mut LegacySea, _plan: Option<FaultPlan>) {
        // The legacy engine has no fault hooks; injection plans only
        // apply to the keyed SLAUNCH operations.
    }

    fn platform(rt: &LegacySea) -> &SecurePlatform {
        rt.platform()
    }

    fn platform_mut(rt: &mut LegacySea) -> &mut SecurePlatform {
        rt.platform_mut()
    }

    fn power_cycle(_rt: &mut LegacySea) -> SimDuration {
        // Unreachable: `DURABLE = false`, so the executor rejects
        // durable policies before any reset can fire.
        SimDuration::ZERO
    }

    fn launch(
        rt: &Mutex<LegacySea>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        _key: Option<u64>,
    ) -> Result<SkinitLive, SeaError> {
        // SKINIT is atomic from the OS's point of view: suspend,
        // launch, run to completion, unseal/seal state, resume. The
        // target CPU is moot — every other CPU is forcibly idled.
        let _ = cpu;
        let done = lock(rt).run_session(logic, input)?;
        Ok(SkinitLive {
            output: done.output.unwrap_or_default(),
            report: done.report,
        })
    }

    fn step(
        _rt: &Mutex<LegacySea>,
        live: &mut SkinitLive,
        _logic: &mut dyn PalLogic,
        _key: Option<u64>,
    ) -> Result<PalStep, SeaError> {
        Ok(PalStep::Exited {
            output: std::mem::take(&mut live.output),
        })
    }

    fn resume(
        _rt: &Mutex<LegacySea>,
        _live: &mut SkinitLive,
        _cpu: CpuId,
        _key: Option<u64>,
    ) -> Result<(), SeaError> {
        // Legacy sessions never yield: launch ran them to completion.
        Ok(())
    }

    fn report(_rt: &Mutex<LegacySea>, live: &SkinitLive) -> Result<SessionReport, SeaError> {
        Ok(live.report)
    }

    fn quote(
        rt: &Mutex<LegacySea>,
        _live: &mut SkinitLive,
        nonce: &[u8],
        _key: Option<u64>,
    ) -> Result<Timed<Quote>, SeaError> {
        // Legacy attestation covers the platform's static PCRs — there
        // is no per-session sePCR to free.
        lock(rt).quote(nonce)
    }

    fn kill(_rt: &Mutex<LegacySea>, _live: &mut SkinitLive, _key: u64) -> Result<(), SeaError> {
        // Teardown already happened inside the atomic launch.
        Ok(())
    }

    fn degrade(
        _rt: &Mutex<LegacySea>,
        _logic: &mut dyn PalLogic,
        _input: &[u8],
        _cpu: CpuId,
        _key: u64,
    ) -> Result<(Vec<u8>, SessionReport), SeaError> {
        // Unreachable: only sePCR saturation degrades, and the legacy
        // engine has no sePCRs to saturate.
        Err(SeaError::EngineFault("skinit has no degraded slow path"))
    }
}

mod sealed {
    /// Closes the [`super::Stage`] set: the lifecycle has exactly the
    /// states Figure 6 has.
    pub trait Sealed {}
    impl Sealed for super::Launched {}
    impl Sealed for super::Stepping {}
    impl Sealed for super::Sealed {}
}

/// A typestate marker for the session lifecycle (`Launched → Stepping
/// → Sealed`). The set is closed — the lifecycle has exactly the
/// states the paper's Figure 6 has.
pub trait Stage: sealed::Sealed {}

/// The session is live and has not yet been stepped to a boundary.
#[derive(Debug, Clone, Copy)]
pub struct Launched;

/// The session yielded (`SYIELD`) and awaits a resume.
#[derive(Debug, Clone, Copy)]
pub struct Stepping;

/// The PAL exited: its output is sealed in the handle and the session
/// awaits its attestation.
#[derive(Debug, Clone, Copy)]
pub struct Sealed;

impl Stage for Launched {}
impl Stage for Stepping {}
impl Stage for Sealed {}

/// A live session walking the typestate lifecycle over architecture
/// `A`. Obtain one from [`SessionEngine::launch`]; consume it through
/// [`Session::step`] / [`Session::resume`] / [`Session::quote_and_free`].
/// Transitions Figure 6 lacks do not compile.
pub struct Session<'e, A: Architecture, S: Stage> {
    rt: &'e Mutex<A::Runtime>,
    logic: &'e mut dyn PalLogic,
    live: A::Live,
    cpu: CpuId,
    index: usize,
    key: Option<u64>,
    output: Vec<u8>,
    _stage: PhantomData<S>,
}

/// Result of stepping a launched session: it either yielded (resume
/// it) or exited (quote it).
pub enum Stepped<'e, A: Architecture> {
    /// The PAL yielded the CPU; the session awaits a resume.
    Yielded(Session<'e, A, Stepping>),
    /// The PAL exited; the session awaits its attestation.
    Exited(Session<'e, A, Sealed>),
}

impl<'e, A: Architecture, S: Stage> Session<'e, A, S> {
    /// The job's index in its batch (also the default session key and
    /// quote-nonce seed).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The CPU the session runs on.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Moves the handle to another stage. Private: the public
    /// transition methods are the only legal edges.
    fn into_stage<T: Stage>(self) -> Session<'e, A, T> {
        Session {
            rt: self.rt,
            logic: self.logic,
            live: self.live,
            cpu: self.cpu,
            index: self.index,
            key: self.key,
            output: self.output,
            _stage: PhantomData,
        }
    }

    /// Tears the session down mid-flight via the architecture's kill
    /// primitive (`SKILL` on [`Slaunch`]), reclaiming its resources.
    fn kill_inner(mut self) -> Result<(), SeaError> {
        let key = self.key.unwrap_or(self.index as u64);
        A::kill(self.rt, &mut self.live, key)
    }
}

impl<'e, A: Architecture> Session<'e, A, Launched> {
    /// Launches a session: the entry edge of the lifecycle.
    fn start(
        rt: &'e Mutex<A::Runtime>,
        logic: &'e mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        index: usize,
        key: Option<u64>,
    ) -> Result<Self, SeaError> {
        let live = A::launch(rt, logic, input, cpu, key)?;
        Ok(Session {
            rt,
            logic,
            live,
            cpu,
            index,
            key,
            output: Vec::new(),
            _stage: PhantomData,
        })
    }

    /// Runs the PAL until it yields or exits.
    pub fn step(mut self) -> Result<Stepped<'e, A>, SeaError> {
        match A::step(self.rt, &mut self.live, self.logic, self.key)? {
            PalStep::Yielded => Ok(Stepped::Yielded(self.into_stage())),
            PalStep::Exited { output } => {
                self.output = output;
                Ok(Stepped::Exited(self.into_stage()))
            }
        }
    }

    /// Tears the live session down without an attestation.
    pub fn kill(self) -> Result<(), SeaError> {
        self.kill_inner()
    }
}

impl<'e, A: Architecture> Session<'e, A, Stepping> {
    /// Resumes the yielded PAL on its CPU.
    pub fn resume(mut self) -> Result<Session<'e, A, Launched>, SeaError> {
        A::resume(self.rt, &mut self.live, self.cpu, self.key)?;
        Ok(self.into_stage())
    }

    /// Tears the suspended session down without an attestation.
    pub fn kill(self) -> Result<(), SeaError> {
        self.kill_inner()
    }
}

impl<A: Architecture> Session<'_, A, Sealed> {
    /// Attests the exited session over `nonce` and retires it,
    /// returning the job's result and the quote.
    pub fn quote_and_free(mut self, nonce: &[u8]) -> Result<(JobResult, Quote), SeaError> {
        let report = A::report(self.rt, &self.live)?;
        let quote = A::quote(self.rt, &mut self.live, nonce, self.key)?;
        Ok((
            JobResult {
                output: self.output,
                report,
                quote_cost: quote.elapsed,
                cpu: self.cpu,
            },
            quote.value,
        ))
    }
}

/// Drives one job through the typestate lifecycle on the fast path
/// (no fault plan exposure, no keyed operations): launch → step/resume
/// to exit → quote. Mirrors the retired `run_one` byte for byte.
fn drive_plain<A: Architecture>(
    rt: &Mutex<A::Runtime>,
    cpu: CpuId,
    index: usize,
    job: &mut ConcurrentJob,
) -> Result<SessionResult, SeaError> {
    let mut session =
        Session::<A, Launched>::start(rt, &mut *job.logic, &job.input, cpu, index, None)?;
    let sealed = loop {
        match session.step()? {
            Stepped::Exited(s) => break s,
            Stepped::Yielded(s) => session = s.resume()?,
        }
    };
    // Deterministic per-job nonce: ties the quote to the batch index.
    let nonce = (index as u64).to_le_bytes();
    let (result, quote) = sealed.quote_and_free(&nonce)?;
    Ok(SessionResult::Quoted {
        result,
        quote,
        retries: 0,
        recovery_cost: SimDuration::ZERO,
    })
}

/// Deterministic virtual cost of handling one injected fault of the
/// given error class, as charged to the faulted session's CPU. (The
/// fault substrate also advances the shared machine clock; this local
/// accounting is what flows into per-CPU busy time and wall time, and
/// is a pure function of the error — never of the machine clock.)
fn fault_handling_cost(error: &SeaError) -> SimDuration {
    match error {
        SeaError::Tpm(TpmError::TransportFault { .. }) => TRANSPORT_FAULT_COST,
        _ => SimDuration::ZERO,
    }
}

/// Builds the in-band record of a session death.
fn killed(index: usize, retries: u32, error: SeaError, wasted: SimDuration) -> SessionResult {
    SessionResult::Killed {
        job: index,
        attempts: retries + 1,
        error,
        wasted,
    }
}

/// Records a retry: the backoff leaf and counter are emitted *before*
/// taking the engine lock — the leaf lands on the session's own track
/// (owned by exactly one worker, ordered by its per-track sequence)
/// and counters are order-insensitive, so neither needs the lock. Only
/// the [`TraceEvent::SessionRetried`] record mutates shared state and
/// still serializes on it. (Backoff burns CPU-local time, never the
/// shared machine clock, so it is not a `Machine::charge`.)
fn record_retry<A: Architecture>(
    rt: &Mutex<A::Runtime>,
    obs: &Obs,
    key: u64,
    attempt: u32,
    backoff: SimDuration,
) {
    obs.leaf_on(key, Layer::Core, "recovery.backoff", backoff);
    obs.add("core.retries", 1);
    let mut guard = lock(rt);
    let machine = A::platform_mut(&mut guard).machine_mut();
    let now = machine.now();
    machine.trace_mut().record(
        now,
        TraceEvent::SessionRetried {
            session: key,
            attempt,
        },
    );
}

/// Applies the retry policy to one failed attempt. On a retryable error
/// with budget left: consumes a retry, charges the fault-handling cost
/// plus backoff, records the retry, and returns `true` (caller loops).
/// Otherwise charges the handling cost and returns `false` (caller
/// kills the session).
fn try_absorb<A: Architecture>(
    rt: &Mutex<A::Runtime>,
    obs: &Obs,
    policy: &RetryPolicy,
    key: u64,
    error: &SeaError,
    retries: &mut u32,
    recovery_cost: &mut SimDuration,
) -> bool {
    if policy.is_retryable(error) && *retries < policy.max_retries() {
        *retries += 1;
        let backoff = policy.backoff_for(*retries);
        *recovery_cost += fault_handling_cost(error) + backoff;
        record_retry::<A>(rt, obs, key, *retries, backoff);
        true
    } else {
        *recovery_cost += fault_handling_cost(error);
        false
    }
}

/// Drives one job under the fault plan with bounded recovery: launch →
/// step/resume loop → quote, retrying transient faults per `policy`,
/// degrading to the architecture's slow path on saturation, and
/// killing the session when the budget runs out.
///
/// Deliberately *not* written over the typestate handle: recovery
/// re-enters the same stage after a failed transition (a faulted
/// resume retries in place, a faulted quote retries the quote), which
/// a move-based typestate cannot express without giving the handle
/// back on error — so this driver works the raw [`Architecture`] ops.
///
/// The job is borrowed, not consumed, so the durable driver can
/// relaunch it after a platform reset. When `journal` is given, the
/// launch is recorded in it (the write-ahead `launched` record).
fn drive_recovered<A: Architecture>(
    rt: &Mutex<A::Runtime>,
    obs: &Obs,
    cpu: CpuId,
    index: usize,
    job: &mut ConcurrentJob,
    policy: RetryPolicy,
    journal: Option<&Mutex<SessionJournal>>,
) -> Result<SessionResult, SeaError> {
    let key = index as u64;
    let mut retries: u32 = 0;
    let mut recovery_cost = SimDuration::ZERO;

    // Phase 1: launch. A faulted launch has already rolled its pages
    // back to `ALL` (Figure 7's failure path), so retrying is a plain
    // re-launch and exhaustion needs no kill.
    let mut live: A::Live = loop {
        let error = match A::launch(rt, &mut *job.logic, &job.input, cpu, Some(key)) {
            Ok(live) => break live,
            Err(e) => e,
        };
        if RetryPolicy::is_saturation(&error) {
            // Graceful degradation: the session bank is full, not
            // faulty.
            let (output, report) = A::degrade(rt, &mut *job.logic, &job.input, cpu, key)?;
            return Ok(SessionResult::Degraded {
                job: index,
                output,
                report,
            });
        }
        if try_absorb::<A>(
            rt,
            obs,
            &policy,
            key,
            &error,
            &mut retries,
            &mut recovery_cost,
        ) {
            continue;
        }
        // No kill to issue — the faulted launch rolled its pages back —
        // but the death is still a recovery decision, so the trace pairs
        // the injected fault with a kill like every other path.
        {
            let mut guard = lock(rt);
            let machine = A::platform_mut(&mut guard).machine_mut();
            let now = machine.now();
            machine
                .trace_mut()
                .record(now, TraceEvent::SessionKilled { session: key });
        }
        return Ok(killed(index, retries, error, recovery_cost));
    };
    if let Some(journal) = journal {
        lock(journal).record_launched(key);
    }

    // Phase 2: step/resume loop. Injected timer expiries surface as
    // extra `Yielded` steps; injected resume denials retry in place
    // (the SECB stays `Suspend`). Each engine call is bound to a local
    // first so its lock guard drops before recovery takes the lock
    // again.
    let output = loop {
        let step = A::step(rt, &mut live, &mut *job.logic, Some(key));
        match step {
            Ok(PalStep::Exited { output }) => break output,
            Ok(PalStep::Yielded) => loop {
                let resumed = A::resume(rt, &mut live, cpu, Some(key));
                match resumed {
                    Ok(()) => break,
                    Err(error) => {
                        if try_absorb::<A>(
                            rt,
                            obs,
                            &policy,
                            key,
                            &error,
                            &mut retries,
                            &mut recovery_cost,
                        ) {
                            continue;
                        }
                        A::kill(rt, &mut live, key)?;
                        return Ok(killed(index, retries, error, recovery_cost));
                    }
                }
            },
            Err(error) => {
                if try_absorb::<A>(
                    rt,
                    obs,
                    &policy,
                    key,
                    &error,
                    &mut retries,
                    &mut recovery_cost,
                ) {
                    continue;
                }
                A::kill(rt, &mut live, key)?;
                return Ok(killed(index, retries, error, recovery_cost));
            }
        }
    };

    let report = A::report(rt, &live)?;
    let nonce = (index as u64).to_le_bytes();
    // Phase 3: quote. A faulted quote leaves the sePCR in the Quote
    // state, so it can be retried; on exhaustion the kill path frees
    // the slot without an attestation.
    let quote = loop {
        let attempt = A::quote(rt, &mut live, &nonce, Some(key));
        match attempt {
            Ok(q) => break q,
            Err(error) => {
                if try_absorb::<A>(
                    rt,
                    obs,
                    &policy,
                    key,
                    &error,
                    &mut retries,
                    &mut recovery_cost,
                ) {
                    continue;
                }
                A::kill(rt, &mut live, key)?;
                return Ok(killed(index, retries, error, recovery_cost));
            }
        }
    };
    Ok(SessionResult::Quoted {
        result: JobResult {
            output,
            report,
            quote_cost: quote.elapsed,
            cpu,
        },
        quote: quote.value,
        retries,
        recovery_cost,
    })
}

/// Composable batch behavior for [`SessionEngine::run`]: start from
/// [`BatchPolicy::plain`] and layer on the policy objects the batch
/// needs. Concurrency is not a policy — it is the engine's worker
/// count.
///
/// | composition                    | retired entry point      |
/// |--------------------------------|--------------------------|
/// | `plain()`                      | `run_batch`              |
/// | `.with_retry(...)`             | `run_batch_recovered`    |
/// | `.with_retry(...).with_durability(...)` | `run_batch_durable` |
#[derive(Debug, Clone, Default)]
pub struct BatchPolicy {
    retry: Option<RetryPolicy>,
    durability: Option<ResetPlan>,
}

impl BatchPolicy {
    /// The fast path: no fault exposure, no journaling.
    pub fn plain() -> Self {
        BatchPolicy::default()
    }

    /// Adds bounded fault recovery: sessions run keyed (exposed to the
    /// installed fault plan), transient faults retry with virtual-time
    /// backoff, saturation degrades, exhaustion kills in-band.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Adds crash-consistent durability: terminal results are committed
    /// to a write-ahead journal sealed into TPM NVRAM, and `plan`'s
    /// power losses reboot the platform and relaunch whatever had not
    /// committed. Implies keyed (recovered) driving — with no explicit
    /// retry policy, [`RetryPolicy::default`] applies.
    pub fn with_durability(mut self, plan: ResetPlan) -> Self {
        self.durability = Some(plan);
        self
    }

    /// The retry policy, if fault recovery was requested.
    pub fn retry(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// The reset plan, if durability was requested.
    pub fn durability(&self) -> Option<&ResetPlan> {
        self.durability.as_ref()
    }
}

/// Aggregate outcome of one [`SessionEngine::run`], subsuming the
/// retired `ConcurrentOutcome` / `RecoveredOutcome` / `DurableOutcome`
/// triple: the crash-history fields are zero / empty for batches whose
/// policy carried no [`ResetPlan`].
///
/// The per-session results are byte-identical across worker counts,
/// and — for durable batches — byte-identical to the crash-free run of
/// the same batch: committed sessions are restored verbatim from the
/// journal, and relaunched sessions re-derive the identical result
/// because fault rolls are a pure function of `(plan, session key,
/// operation order)` and fault cursors rewind at reset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Per-job outcomes, in job-index order.
    pub sessions: Vec<SessionResult>,
    /// Virtual busy time accumulated by each worker/CPU, including work
    /// torn by crashes and redone after recovery.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch: the busiest CPU's total plus the
    /// serial recovery and journal-checkpoint overheads (both zero
    /// without a durability policy).
    pub wall: SimDuration,
    /// Platform resets the batch survived (0 without durability).
    pub resets: u32,
    /// Session keys restored from the journal at the *last* recovery
    /// (empty when no reset fired).
    pub committed: Vec<u64>,
    /// Session keys relaunched at the *last* recovery (empty when no
    /// reset fired). With `resets > 0`,
    /// `committed.len() + relaunched.len()` equals the batch size.
    pub relaunched: Vec<u64>,
    /// Virtual time spent on reboots and journal unsealing across all
    /// recoveries.
    pub recovery_latency: SimDuration,
    /// Virtual time spent sealing journal checkpoints into NVRAM.
    pub journal_overhead: SimDuration,
}

impl BatchOutcome {
    /// Tally of terminal variants across the batch.
    pub fn tally(&self) -> SessionTally {
        SessionTally::of(&self.sessions)
    }

    /// Number of sessions that completed with a quote.
    pub fn quoted(&self) -> usize {
        self.tally().quoted
    }

    /// Number of sessions that completed on the degraded slow path.
    pub fn degraded(&self) -> usize {
        self.tally().degraded
    }

    /// Number of sessions killed after exhausting their retry budget.
    pub fn killed(&self) -> usize {
        self.tally().killed
    }

    /// Sum of all sessions' virtual costs (the serial-execution wall
    /// time).
    pub fn aggregate(&self) -> SimDuration {
        self.sessions.iter().map(SessionResult::cost).sum()
    }

    /// Sessions completed per virtual second of batch wall time.
    pub fn throughput_per_sec(&self) -> f64 {
        rate_per_sec(self.sessions.len(), self.wall)
    }

    /// Completed (quoted or degraded) sessions per virtual second of
    /// batch wall time — the fault/crash sweeps' goodput axis.
    pub fn goodput_per_sec(&self) -> f64 {
        rate_per_sec(self.tally().completed(), self.wall)
    }

    /// Parallel speedup over running the same batch on one CPU.
    pub fn speedup(&self) -> f64 {
        speedup(self.aggregate(), self.wall)
    }
}

/// What one worker produced for one job in one epoch.
enum Attempt {
    /// Non-durable modes: the job's result (or the infrastructure
    /// error), final as soon as the epoch ends.
    Done(Result<SessionResult, SeaError>),
    /// Terminal result checkpointed to NVRAM — survives any later
    /// crash.
    Committed(SessionResult),
    /// A kill, deliberately not checkpointed (see
    /// [`SessionJournal::commit`]): final only if the epoch ends
    /// cleanly, relaunched — and deterministically re-killed —
    /// otherwise.
    Volatile(SessionResult, ConcurrentJob),
    /// The crash beat the commit: the session must relaunch.
    Torn(ConcurrentJob),
}

/// Driver-side reset state for one durable batch: the plan plus
/// once-only bookkeeping for the event cut and the reset budget.
struct ResetTriggers {
    plan: ResetPlan,
    cut_fired: bool,
    fired: u32,
}

impl ResetTriggers {
    fn new(plan: ResetPlan) -> Self {
        ResetTriggers {
            plan,
            cut_fired: false,
            fired: 0,
        }
    }

    /// Decides, at one commit boundary, whether the power fails there.
    /// `epoch` counts resets already survived, `key` is the committing
    /// session, `recorded` the trace's cumulative event count, `now`
    /// the machine clock. The budget cap guarantees the recovery loop
    /// terminates even under a 100% reset rate.
    fn check(&mut self, epoch: u64, key: u64, recorded: u64, now: SimTime) -> bool {
        if self.fired >= self.plan.max_resets() {
            return false;
        }
        let cut = !self.cut_fired && self.plan.cut_due(recorded);
        if cut {
            self.cut_fired = true;
        }
        let fire = cut || self.plan.take_due(now) > 0 || self.plan.roll_power_loss(epoch, key);
        if fire {
            self.fired += 1;
        }
        fire
    }
}

/// How one epoch's workers drive their jobs, resolved once from the
/// [`BatchPolicy`].
#[derive(Clone, Copy)]
enum WorkerMode<'a> {
    /// Fast path: unkeyed lifecycle, errors surface per job.
    Plain,
    /// Keyed lifecycle with bounded fault recovery.
    Recovered {
        /// The retry budget and backoff schedule.
        retry: RetryPolicy,
    },
    /// Recovered driving plus write-ahead journaling and a power-loss
    /// gate at each session commit.
    Durable {
        retry: RetryPolicy,
        reset_epoch: u64,
        journal: &'a Mutex<SessionJournal>,
        triggers: &'a Mutex<ResetTriggers>,
        journal_overhead: &'a Mutex<SimDuration>,
        crashed: &'a AtomicBool,
    },
}

/// Drives one worker's statically-assigned jobs on CPU `k` under the
/// epoch's mode. Returns per-job attempts plus the CPU's accumulated
/// virtual busy time.
#[allow(clippy::type_complexity)]
fn batch_worker<A: Architecture>(
    k: usize,
    assigned: Vec<(usize, ConcurrentJob)>,
    rt: &Mutex<A::Runtime>,
    obs: &Obs,
    clock: &Arc<SharedClock>,
    epoch: SimTime,
    mode: WorkerMode<'_>,
) -> Result<(Vec<(usize, Attempt)>, SimDuration), SeaError> {
    let cpu = CpuId(k as u16);
    let mut domain = CpuClockDomain::at(Arc::clone(clock), epoch);
    let mut results = Vec::with_capacity(assigned.len());
    for (i, mut job) in assigned {
        match mode {
            WorkerMode::Plain => {
                let result = drive_plain::<A>(rt, cpu, i, &mut job);
                if let Ok(r) = &result {
                    domain.advance(r.cost());
                }
                domain.publish();
                results.push((i, Attempt::Done(result)));
            }
            WorkerMode::Recovered { retry } => {
                let result = drive_recovered::<A>(rt, obs, cpu, i, &mut job, retry, None);
                if let Ok(r) = &result {
                    domain.advance(r.cost());
                }
                domain.publish();
                results.push((i, Attempt::Done(result)));
            }
            WorkerMode::Durable {
                retry,
                reset_epoch,
                journal,
                triggers,
                journal_overhead,
                crashed,
            } => {
                let key = i as u64;
                if crashed.load(Ordering::SeqCst) {
                    // The platform is already dark; this job never
                    // started.
                    results.push((i, Attempt::Torn(job)));
                    continue;
                }
                lock(journal).record_intent(key);
                let session =
                    drive_recovered::<A>(rt, obs, cpu, i, &mut job, retry, Some(journal))?;

                // Commit gate. Holding the engine lock makes the read
                // of the trace counter, the reset decision, and the
                // NVRAM checkpoint one atomic boundary — no other
                // worker can slip a commit in between. (This is the
                // one place obs emission stays under the lock: the
                // journal spans land on the shared PLATFORM_TRACK, so
                // their ordering must serialize with the commits.)
                let attempt = {
                    let mut guard = lock(rt);
                    if crashed.load(Ordering::SeqCst) {
                        Attempt::Torn(job)
                    } else {
                        let (recorded, now) = {
                            let machine = A::platform(&guard).machine();
                            (machine.trace().recorded(), machine.now())
                        };
                        let fire = lock(triggers).check(reset_epoch, key, recorded, now);
                        if fire {
                            // The cord is yanked before this record
                            // reaches NVRAM: the committing session is
                            // torn too.
                            crashed.store(true, Ordering::SeqCst);
                            Attempt::Torn(job)
                        } else {
                            let mut wal = lock(journal);
                            wal.commit(key, &session);
                            if session.is_killed() {
                                drop(wal);
                                Attempt::Volatile(session, job)
                            } else {
                                let bytes = wal.to_bytes();
                                drop(wal);
                                // Seal to the empty PCR selection: the
                                // blob must unseal on the rebooted
                                // platform, whose PCRs have all reset.
                                let tpm = A::platform_mut(&mut guard)
                                    .tpm_mut()
                                    .ok_or(SeaError::NoTpm)?;
                                let sealed = tpm.seal(&bytes, &[])?;
                                tpm.nvram_mut()
                                    .store_blob(JOURNAL_NV_INDEX, &sealed.value.to_bytes());
                                // Checkpoint time serializes against
                                // the whole batch, not one session:
                                // platform track.
                                obs.leaf_on(
                                    PLATFORM_TRACK,
                                    Layer::Tpm,
                                    "journal.seal",
                                    sealed.elapsed,
                                );
                                obs.add("journal.commits", 1);
                                *lock(journal_overhead) += sealed.elapsed;
                                Attempt::Committed(session)
                            }
                        }
                    }
                };
                if let Attempt::Committed(s) | Attempt::Volatile(s, _) = &attempt {
                    domain.advance(s.cost());
                }
                domain.publish();
                results.push((i, attempt));
            }
        }
    }
    Ok((results, domain.busy()))
}

/// The unified batch engine: a worker pool (worker *k* plays CPU *k*)
/// driving sessions of architecture `A` against **one shared** runtime,
/// with batch behavior composed from a [`BatchPolicy`].
///
/// # Example
///
/// ```
/// use sea_core::engine::{BatchPolicy, SessionEngine, Slaunch};
/// use sea_core::{ConcurrentJob, FnPal, PalOutcome, SecurePlatform};
/// use sea_hw::Platform;
/// use sea_tpm::KeyStrength;
///
/// let platform =
///     SecurePlatform::new(Platform::recommended(4), KeyStrength::Demo512, b"pool");
/// let mut engine = SessionEngine::<Slaunch>::new(platform, 4).unwrap();
/// let jobs = (0..8u8)
///     .map(|i| {
///         ConcurrentJob::new(
///             Box::new(FnPal::new("job", move |_| Ok(PalOutcome::Exit(vec![i])))),
///             [],
///         )
///     })
///     .collect();
/// let outcome = engine.run(jobs, &BatchPolicy::plain()).unwrap();
/// assert_eq!(outcome.quoted(), 8);
/// assert!(outcome.speedup() > 1.0);
/// ```
pub struct SessionEngine<A: Architecture = Slaunch> {
    rt: Arc<Mutex<A::Runtime>>,
    clock: Arc<SharedClock>,
    workers: usize,
}

impl<A: Architecture> SessionEngine<A> {
    /// Boots an engine of `workers` worker threads (worker *k* drives
    /// CPU *k*) over a fresh `A::Runtime` on `platform`.
    ///
    /// # Errors
    ///
    /// Whatever [`Architecture::boot`] raises (e.g.
    /// [`SeaError::SlaunchUnsupported`] / [`SeaError::NoTpm`]), plus
    /// [`SeaError::NotEnoughCpus`] when `workers` is zero or exceeds
    /// the platform's CPU count — capped at **one** worker on
    /// non-[`Architecture::CONCURRENT`] architectures, whose launches
    /// monopolize the whole platform.
    pub fn new(mut platform: SecurePlatform, workers: usize) -> Result<Self, SeaError> {
        let n_cpus = platform.machine().cpus().len();
        let cap = if A::CONCURRENT { n_cpus } else { 1 };
        if workers == 0 || workers > cap {
            return Err(SeaError::NotEnoughCpus {
                requested: workers,
                available: cap,
            });
        }
        // Pin TPM latencies to their nominal means: with jitter, a
        // command's sampled cost depends on its position in the shared
        // noise stream — i.e. on thread interleaving — which would break
        // the byte-identical serial/parallel contract. (A PAL that emits
        // TPM RNG output verbatim is likewise outside the contract; the
        // RNG stream is shared for the same reason.)
        if let Some(tpm) = platform.tpm_mut() {
            tpm.set_nominal_timing(true);
        }
        let rt = A::boot(platform)?;
        Ok(SessionEngine {
            rt: Arc::new(Mutex::new(rt)),
            clock: Arc::new(SharedClock::new()),
            workers,
        })
    }

    /// Number of worker threads (= CPUs driven).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Installs the observability handle into the shared runtime's
    /// machine: every keyed session operation then emits lifecycle
    /// spans and attributed charges on the session's own track.
    pub fn install_obs(&self, obs: Obs) {
        A::platform_mut(&mut lock(&self.rt)).install_obs(obs);
    }

    /// The shared runtime's observability handle (null unless
    /// [`SessionEngine::install_obs`] was called).
    pub fn obs(&self) -> Obs {
        A::platform(&lock(&self.rt)).machine().obs().clone()
    }

    /// The shared virtual clock the batch timeline folds into.
    pub fn clock(&self) -> &Arc<SharedClock> {
        &self.clock
    }

    /// Installs (or clears) a deterministic fault plan on the shared
    /// runtime. Only keyed (retry-policy) sessions are exposed to it;
    /// each job rolls faults against its own batch index, so serial
    /// and parallel runs of the same batch see identical injections.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        A::set_fault_plan(&mut lock(&self.rt), plan);
    }

    /// Launches one session by hand, returning the typestate handle
    /// for step-by-step driving (outside any batch).
    ///
    /// # Errors
    ///
    /// Whatever the architecture's launch primitive raises.
    pub fn launch<'e>(
        &'e self,
        logic: &'e mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        index: usize,
    ) -> Result<Session<'e, A, Launched>, SeaError> {
        Session::start(&self.rt, logic, input, cpu, index, None)
    }

    /// Runs a batch of jobs to completion across the worker pool under
    /// `policy` and collects results in job-index order.
    ///
    /// Job *i* is statically assigned to worker `i % workers` (across
    /// relaunch epochs too, so a relaunched session lands on the same
    /// CPU as crash-free); the shared runtime is locked per
    /// *operation*, so sessions genuinely overlap.
    ///
    /// # Errors
    ///
    /// [`SeaError::PolicyUnsupported`] when the policy requests
    /// durability on a non-[`Architecture::DURABLE`] architecture.
    /// Otherwise only infrastructure failures surface as `Err` — on the
    /// plain path the first per-job error (by job index), under a retry
    /// policy per-session fault deaths are in-band
    /// [`SessionResult::Killed`] values, and an unreadable journal is
    /// [`SeaError::JournalCorrupt`].
    pub fn run(
        &mut self,
        jobs: Vec<ConcurrentJob>,
        policy: &BatchPolicy,
    ) -> Result<BatchOutcome, SeaError> {
        if policy.durability().is_some() && !A::DURABLE {
            return Err(SeaError::PolicyUnsupported {
                architecture: A::NAME,
                capability: "durable batches",
            });
        }
        let n_jobs = jobs.len();
        let workers = self.workers;
        let retry = policy.retry();

        let journal = Mutex::new(SessionJournal::new());
        let triggers = policy
            .durability()
            .map(|plan| Mutex::new(ResetTriggers::new(plan.clone())));
        let journal_overhead = Mutex::new(SimDuration::ZERO);
        let mut cpu_busy = vec![SimDuration::ZERO; workers];
        let mut final_slots: Vec<Option<Result<SessionResult, SeaError>>> =
            (0..n_jobs).map(|_| None).collect();
        let mut pending: Vec<(usize, ConcurrentJob)> = jobs.into_iter().enumerate().collect();
        let mut resets = 0u32;
        let mut committed: Vec<u64> = Vec::new();
        let mut relaunched: Vec<u64> = Vec::new();
        let mut recovery_latency = SimDuration::ZERO;

        loop {
            let crashed = AtomicBool::new(false);
            // Every domain anchors at the epoch's start: reading the
            // clock inside each worker would skew late-spawned domains
            // by however far an early sibling had already published.
            let epoch = self.clock.now();
            let reset_epoch = resets as u64;
            // One obs handle for the whole epoch, cloned before the
            // workers spawn so the hot path never locks the runtime
            // just to reach the sink.
            let obs = self.obs();
            let mode = match (retry, &triggers) {
                (r, Some(triggers)) => WorkerMode::Durable {
                    retry: r.unwrap_or_default(),
                    reset_epoch,
                    journal: &journal,
                    triggers,
                    journal_overhead: &journal_overhead,
                    crashed: &crashed,
                },
                (Some(retry), None) => WorkerMode::Recovered { retry },
                (None, None) => WorkerMode::Plain,
            };

            // Jobs keep their static assignment (job i → worker/CPU
            // i % workers) in every epoch.
            let mut per_worker: Vec<Vec<(usize, ConcurrentJob)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in pending.drain(..) {
                per_worker[i % workers].push((i, job));
            }

            let mut attempts: Vec<Option<Attempt>> = (0..n_jobs).map(|_| None).collect();
            std::thread::scope(|scope| -> Result<(), SeaError> {
                let handles: Vec<_> = per_worker
                    .into_iter()
                    .enumerate()
                    .map(|(k, assigned)| {
                        let rt = Arc::clone(&self.rt);
                        let clock = Arc::clone(&self.clock);
                        let obs = &obs;
                        scope.spawn(move || {
                            batch_worker::<A>(k, assigned, &rt, obs, &clock, epoch, mode)
                        })
                    })
                    .collect();
                for (k, handle) in handles.into_iter().enumerate() {
                    let (results, busy) = handle
                        .join()
                        .map_err(|_| SeaError::EngineFault("worker thread panicked"))??;
                    cpu_busy[k] += busy;
                    for (i, attempt) in results {
                        attempts[i] = Some(attempt);
                    }
                }
                Ok(())
            })?;

            if !crashed.load(Ordering::SeqCst) {
                // Clean epoch: every surviving attempt is final.
                for (i, attempt) in attempts.into_iter().enumerate() {
                    match attempt {
                        Some(Attempt::Done(result)) => final_slots[i] = Some(result),
                        Some(Attempt::Committed(s) | Attempt::Volatile(s, _)) => {
                            final_slots[i] = Some(Ok(s))
                        }
                        Some(Attempt::Torn(_)) => {
                            return Err(SeaError::EngineFault("torn session in a clean epoch"))
                        }
                        None => {}
                    }
                }
                break;
            }

            // Power loss (durable mode only). Reboot the platform, then
            // rebuild the world from the sealed journal alone — every
            // in-memory result past the last checkpoint is discarded,
            // exactly as a real crash would lose it.
            resets += 1;
            let mut guard = lock(&self.rt);
            obs.add("journal.resets", 1);
            recovery_latency += A::power_cycle(&mut guard);
            let recovered = {
                let tpm = A::platform_mut(&mut guard)
                    .tpm_mut()
                    .ok_or(SeaError::NoTpm)?;
                match tpm.nvram().read_blob(JOURNAL_NV_INDEX).map(<[u8]>::to_vec) {
                    Some(bytes) => {
                        let blob = SealedBlob::from_bytes(&bytes)?;
                        let opened = tpm.unseal(&blob)?;
                        recovery_latency += opened.elapsed;
                        obs.leaf_on(PLATFORM_TRACK, Layer::Tpm, "journal.unseal", opened.elapsed);
                        SessionJournal::from_bytes(&opened.value)?
                    }
                    None => SessionJournal::new(),
                }
            };
            let restored = recovered.restore()?;
            committed = restored.iter().map(|(key, _)| *key).collect();
            final_slots.fill(None);
            for (key, session) in restored {
                let slot = final_slots
                    .get_mut(key as usize)
                    .ok_or(SeaError::JournalCorrupt("session key out of range"))?;
                *slot = Some(Ok(session));
            }
            *lock(&journal) = recovered;

            // Everything without a checkpointed terminal relaunches.
            relaunched.clear();
            for (i, attempt) in attempts.into_iter().enumerate() {
                let job = match attempt {
                    Some(Attempt::Torn(job) | Attempt::Volatile(_, job)) => job,
                    Some(Attempt::Committed(_) | Attempt::Done(_)) | None => continue,
                };
                if final_slots[i].is_none() {
                    relaunched.push(i as u64);
                    pending.push((i, job));
                }
            }
            obs.add("journal.relaunches", pending.len() as u64);
            let machine = A::platform_mut(&mut guard).machine_mut();
            for (i, _) in &pending {
                let now = machine.now();
                machine
                    .trace_mut()
                    .record(now, TraceEvent::SessionRelaunched { session: *i as u64 });
            }
        }

        let journal_overhead = journal_overhead
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        let mut sessions = Vec::with_capacity(n_jobs);
        for slot in final_slots {
            let result = slot.ok_or(SeaError::EngineFault("job result slot left unfilled"))?;
            sessions.push(result?);
        }
        // Reboots and checkpoint seals serialize against everything, so
        // they extend the batch beyond the busiest CPU's overlap.
        let wall = cpu_busy.iter().copied().max().unwrap_or(SimDuration::ZERO)
            + recovery_latency
            + journal_overhead;
        Ok(BatchOutcome {
            sessions,
            cpu_busy,
            wall,
            resets,
            committed,
            relaunched,
            recovery_latency,
            journal_overhead,
        })
    }

    /// Tears the engine down, returning the shared runtime (e.g. to
    /// inspect the platform's final state in tests).
    ///
    /// # Panics
    ///
    /// Panics if worker threads still hold the runtime (they cannot:
    /// [`SessionEngine::run`] joins them before returning).
    pub fn into_inner(self) -> A::Runtime {
        Arc::try_unwrap(self.rt)
            .map_err(|_| ())
            .expect("no workers are live outside run")
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}
