//! The unified session engine: one generic lifecycle over pluggable
//! architectures, with batch behavior composed from policy objects.
//!
//! The paper's central claim (§5) is that legacy `SKINIT`/`SENTER`
//! sessions and the recommended `SLAUNCH`/sePCR sessions are the *same
//! lifecycle* realised on different hardware primitives. This module
//! encodes that claim in the type system:
//!
//! * [`Architecture`] is the pluggable hardware binding — [`Skinit`]
//!   (today's hardware: full teardown + `TPM_Seal`/`Unseal` per
//!   invocation, one session at a time) and [`Slaunch`] (the proposed
//!   hardware: `SYIELD`/resume, sePCR-bound quotes, `SKILL`).
//! * [`Session`] is a typestate handle walking `Launched → Stepping →
//!   Sealed`; the terminal outcomes (`Quoted`/`Killed`/`Degraded`) are
//!   the [`SessionResult`] variants. Illegal transitions (resuming an
//!   exited PAL, quoting a live one) do not compile.
//! * [`SessionEngine`] is the one batch executor. Its behavior is
//!   composed from a [`BatchPolicy`]: add a [`RetryPolicy`] for
//!   bounded fault recovery, add a [`ResetPlan`] for crash-consistent
//!   durability (write-ahead [`SessionJournal`] sealed into TPM
//!   NVRAM), pick a worker count for concurrency. Every combination
//!   returns the same [`BatchOutcome`].
//!
//! # Executors
//!
//! The engine runs each batch epoch on one of two interchangeable
//! backends, selected by [`Executor`] (engine-wide via
//! [`SessionEngine::with_executor`] or the `SEA_EXECUTOR` environment
//! variable, per batch via [`BatchPolicy::with_executor`]):
//!
//! * [`Executor::ThreadPool`] — one OS thread per simulated CPU (the
//!   original backend; see `crate::threadpool`).
//! * [`Executor::DiscreteEvent`] — virtual CPUs stepped by a
//!   deterministic `(time, session id)` event queue on one OS thread,
//!   so a batch can model far more CPUs than the host has cores (see
//!   `crate::des`).
//!
//! # Determinism
//!
//! Both executors inherit the concurrent engine's contract: job *i*
//! runs on worker/CPU `i % workers`, per-job costs are intrinsic,
//! per-CPU busy time folds into the shared timeline via an atomic max,
//! and results return in job-index order — so outcomes are
//! byte-identical across worker counts, host interleavings, *and
//! executors*. The differential suites (`tests/golden_differential.rs`,
//! `tests/executor_differential.rs`) pin the two backends against each
//! other.
//!
//! # Lock scope
//!
//! The shared runtime is locked **per operation**, never per job, and
//! the hot path keeps obs emission for retries *outside* the engine
//! lock: a retry's `recovery.backoff` leaf lands on the session's own
//! track (owned by exactly one worker, ordered by a per-track
//! sequence) and counters are order-insensitive, so neither needs the
//! lock. Only shared-state mutations — trace records, journal commit
//! gates, `PLATFORM_TRACK` spans — still serialize on it.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use sea_hw::{
    CpuId, FaultPlan, Layer, Obs, ResetPlan, SharedClock, SimDuration, SimTime, TraceEvent,
    PLATFORM_TRACK,
};
use sea_tpm::{Quote, SealedBlob, Timed};

use crate::concurrent::{ConcurrentJob, JobResult, SessionResult};
use crate::enhanced::{EnhancedSea, PalId, PalStep};
use crate::error::SeaError;
use crate::journal::SessionJournal;
use crate::legacy::LegacySea;
use crate::locks::{lock, LockRank, OrderedLock};
use crate::pal::PalLogic;
use crate::platform::SecurePlatform;
use crate::recovery::RetryPolicy;
use crate::report::SessionReport;
use crate::{des, threadpool};

/// TPM NVRAM index where the durable engine parks the sealed session
/// journal ("SJNL" in ASCII). One checkpoint blob lives here at a time;
/// each terminal commit overwrites it.
pub const JOURNAL_NV_INDEX: u32 = 0x534a_4e4c;

/// Which backend executes a batch epoch.
///
/// Both backends satisfy the engine's determinism contract and produce
/// byte-identical session results, quotes, per-CPU busy times, and
/// wall times for the same batch; they differ in *how* concurrency is
/// realised — OS threads racing on locks versus virtual CPUs stepped
/// by a deterministic event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// One OS thread per simulated CPU (the default). Limited to the
    /// host's appetite for threads; interleaving is host-dependent,
    /// determinism is enforced by folding.
    #[default]
    ThreadPool,
    /// Virtual CPUs on one OS thread, stepped in `(event time, session
    /// id)` order by a discrete-event queue. Scales to platforms far
    /// wider than the host (1024 virtual CPUs in one process) and makes
    /// the whole schedule — including the machine trace — a pure
    /// function of the batch.
    DiscreteEvent,
}

impl Executor {
    /// Resolves the executor from the `SEA_EXECUTOR` environment
    /// variable: `des` / `discrete-event` / `event` select
    /// [`Executor::DiscreteEvent`], `threads` / `thread-pool` /
    /// `threadpool` select [`Executor::ThreadPool`], anything else
    /// (including unset) falls back to the default thread pool.
    pub fn from_env() -> Self {
        match std::env::var("SEA_EXECUTOR").as_deref() {
            Ok("des") | Ok("discrete-event") | Ok("event") => Executor::DiscreteEvent,
            _ => Executor::ThreadPool,
        }
    }
}

/// Completions per virtual second of wall time — the one rate formula
/// every outcome struct and bench table shares (`sea_bench::stats`
/// re-exports it), so engine outcomes and bench JSON cannot disagree.
pub fn rate_per_sec(completed: usize, wall: SimDuration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        completed as f64 / secs
    }
}

/// Parallel speedup: aggregate (serial) virtual cost over batch wall
/// time. `1.0` for an empty batch. Shared with `sea_bench::stats` for
/// the same reason as [`rate_per_sec`].
pub fn speedup(aggregate: SimDuration, wall: SimDuration) -> f64 {
    let wall = wall.as_secs_f64();
    if wall == 0.0 {
        1.0
    } else {
        aggregate.as_secs_f64() / wall
    }
}

/// Terminal-variant counts for a slice of session results: the one
/// shared tally every outcome struct derives its `quoted()` /
/// `degraded()` / `killed()` counters from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionTally {
    /// Sessions that completed with an attestation.
    pub quoted: usize,
    /// Sessions that completed on the degraded legacy slow path.
    pub degraded: usize,
    /// Sessions torn down after exhausting their retry budget.
    pub killed: usize,
}

impl SessionTally {
    /// Tallies the terminal variants in `sessions`.
    pub fn of(sessions: &[SessionResult]) -> Self {
        let mut tally = SessionTally::default();
        for s in sessions {
            match s {
                SessionResult::Quoted { .. } => tally.quoted += 1,
                SessionResult::Degraded { .. } => tally.degraded += 1,
                SessionResult::Killed { .. } => tally.killed += 1,
            }
        }
        tally
    }

    /// Sessions that produced an output (quoted or degraded).
    pub fn completed(&self) -> usize {
        self.quoted + self.degraded
    }
}

/// A hardware binding for the unified session lifecycle.
///
/// The engine drives every architecture through the same sequence —
/// launch, step/resume to exit, report, quote — and the architecture
/// maps each step onto its primitives. Operations take the runtime
/// behind an [`OrderedLock`] and lock it **per operation**, so concurrent
/// sessions genuinely interleave on a shared runtime.
///
/// `key` is `Some` when the recovery layer drives the session (keyed
/// operations roll injected faults and pin obs tracks) and `None` on
/// the plain fast path.
pub trait Architecture: Send + Sync + 'static {
    /// The shared engine state (one per platform).
    type Runtime: Send;
    /// Handle to one live session.
    type Live: Send;

    /// Architecture name, for diagnostics and policy errors.
    const NAME: &'static str;
    /// Whether multiple sessions may be live at once (drives the
    /// worker-count cap: non-concurrent architectures serialize).
    const CONCURRENT: bool;
    /// Whether sessions can persist across a platform reset (required
    /// for durable batches).
    const DURABLE: bool;

    /// Boots the runtime on `platform`.
    fn boot(platform: SecurePlatform) -> Result<Self::Runtime, SeaError>;

    /// Installs (or clears) a deterministic fault plan. A no-op on
    /// architectures without fault hooks.
    fn set_fault_plan(rt: &mut Self::Runtime, plan: Option<FaultPlan>);

    /// The underlying platform.
    fn platform(rt: &Self::Runtime) -> &SecurePlatform;

    /// The underlying platform, mutably.
    fn platform_mut(rt: &mut Self::Runtime) -> &mut SecurePlatform;

    /// Reboots the platform after a power loss, returning the virtual
    /// reboot cost. Only reachable when [`Architecture::DURABLE`].
    fn power_cycle(rt: &mut Self::Runtime) -> SimDuration;

    /// Launches a session for `logic` on `cpu`.
    fn launch(
        rt: &OrderedLock<Self::Runtime>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<Self::Live, SeaError>;

    /// Runs the session until it yields or exits.
    fn step(
        rt: &OrderedLock<Self::Runtime>,
        live: &mut Self::Live,
        logic: &mut dyn PalLogic,
        key: Option<u64>,
    ) -> Result<PalStep, SeaError>;

    /// Resumes a yielded session on `cpu`.
    fn resume(
        rt: &OrderedLock<Self::Runtime>,
        live: &mut Self::Live,
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<(), SeaError>;

    /// The exited session's cost breakdown.
    fn report(
        rt: &OrderedLock<Self::Runtime>,
        live: &Self::Live,
    ) -> Result<SessionReport, SeaError>;

    /// Attests the exited session over `nonce` and retires it.
    fn quote(
        rt: &OrderedLock<Self::Runtime>,
        live: &mut Self::Live,
        nonce: &[u8],
        key: Option<u64>,
    ) -> Result<Timed<Quote>, SeaError>;

    /// Hint that every session in `cohort` sits at the quote edge and
    /// will issue [`Architecture::quote`] with the paired nonce as the
    /// TPM gate drains. Architectures that can batch-amortize quote
    /// signing (shared CRT context across same-key signatures) override
    /// this; the work must be semantically invisible — same attestation
    /// bytes, same virtual-time costs — whether or not the hint fires.
    /// The default does nothing.
    fn prepare_quotes(_rt: &mut Self::Runtime, _cohort: &[(&Self::Live, [u8; 8])]) {}

    /// Tears a session down mid-flight, reclaiming its resources.
    fn kill(
        rt: &OrderedLock<Self::Runtime>,
        live: &mut Self::Live,
        key: u64,
    ) -> Result<(), SeaError>;

    /// Runs `logic` to completion on the architecture's degraded slow
    /// path (no per-session attestation). Only reachable where session
    /// slots can saturate.
    fn degrade(
        rt: &OrderedLock<Self::Runtime>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: u64,
    ) -> Result<(Vec<u8>, SessionReport), SeaError>;
}

/// The paper's recommended hardware (§5): `SLAUNCH` over an
/// [`EnhancedSea`] runtime — suspendable sessions, sePCR-bound quotes,
/// `SKILL` teardown, graceful degradation to the legacy slow path on
/// sePCR saturation. Concurrent and durable.
#[derive(Debug, Clone, Copy, Default)]
pub struct Slaunch;

impl Architecture for Slaunch {
    type Runtime = EnhancedSea;
    type Live = PalId;

    const NAME: &'static str = "slaunch";
    const CONCURRENT: bool = true;
    const DURABLE: bool = true;

    fn boot(platform: SecurePlatform) -> Result<EnhancedSea, SeaError> {
        EnhancedSea::new(platform)
    }

    fn set_fault_plan(rt: &mut EnhancedSea, plan: Option<FaultPlan>) {
        rt.set_fault_plan(plan);
    }

    fn platform(rt: &EnhancedSea) -> &SecurePlatform {
        rt.platform()
    }

    fn platform_mut(rt: &mut EnhancedSea) -> &mut SecurePlatform {
        rt.platform_mut()
    }

    fn power_cycle(rt: &mut EnhancedSea) -> SimDuration {
        rt.power_cycle()
    }

    fn launch(
        rt: &OrderedLock<EnhancedSea>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<PalId, SeaError> {
        match key {
            None => lock(rt).slaunch(logic, input, cpu, None),
            Some(key) => lock(rt).slaunch_keyed(logic, input, cpu, None, key),
        }
    }

    fn step(
        rt: &OrderedLock<EnhancedSea>,
        live: &mut PalId,
        logic: &mut dyn PalLogic,
        key: Option<u64>,
    ) -> Result<PalStep, SeaError> {
        match key {
            None => lock(rt).step(logic, *live),
            Some(key) => lock(rt).step_keyed(logic, *live, key),
        }
    }

    fn resume(
        rt: &OrderedLock<EnhancedSea>,
        live: &mut PalId,
        cpu: CpuId,
        key: Option<u64>,
    ) -> Result<(), SeaError> {
        match key {
            None => lock(rt).resume(*live, cpu),
            Some(key) => lock(rt).resume_keyed(*live, cpu, key),
        }
    }

    fn report(rt: &OrderedLock<EnhancedSea>, live: &PalId) -> Result<SessionReport, SeaError> {
        lock(rt).report(*live)
    }

    fn quote(
        rt: &OrderedLock<EnhancedSea>,
        live: &mut PalId,
        nonce: &[u8],
        key: Option<u64>,
    ) -> Result<Timed<Quote>, SeaError> {
        match key {
            None => lock(rt).quote_and_free(*live, nonce),
            Some(key) => lock(rt).quote_and_free_keyed(*live, nonce, key),
        }
    }

    fn prepare_quotes(rt: &mut EnhancedSea, cohort: &[(&PalId, [u8; 8])]) {
        rt.prepare_quotes(cohort);
    }

    fn kill(rt: &OrderedLock<EnhancedSea>, live: &mut PalId, key: u64) -> Result<(), SeaError> {
        lock(rt).kill_session(*live, key)
    }

    fn degrade(
        rt: &OrderedLock<EnhancedSea>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        key: u64,
    ) -> Result<(Vec<u8>, SessionReport), SeaError> {
        // The fallback is not a keyed engine op, so pin the track and
        // lifecycle frame here, under the same engine lock.
        let mut guard = lock(rt);
        let obs = guard.platform().machine().obs().clone();
        obs.set_track(key);
        obs.open(Layer::Core, "session.fallback");
        let done = guard.run_legacy_fallback(logic, input, cpu);
        obs.close();
        obs.add("core.degraded", 1);
        let done = done?;
        Ok((done.output, done.report))
    }
}

/// Today's (2007) hardware: `SKINIT`/`SENTER` over a [`LegacySea`]
/// runtime. A launch suspends the whole platform and runs the PAL to
/// completion — full teardown plus `TPM_Seal`/`Unseal` per invocation
/// — so the architecture is neither concurrent nor durable, and
/// "stepping" a session observes the already-finished run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Skinit;

/// A completed legacy invocation held by the lifecycle: `SKINIT` runs
/// the PAL to completion at launch, so the live handle carries the
/// finished output and report for the later stages to observe.
#[derive(Debug)]
pub struct SkinitLive {
    output: Vec<u8>,
    report: SessionReport,
}

impl Architecture for Skinit {
    type Runtime = LegacySea;
    type Live = SkinitLive;

    const NAME: &'static str = "skinit";
    const CONCURRENT: bool = false;
    const DURABLE: bool = false;

    fn boot(platform: SecurePlatform) -> Result<LegacySea, SeaError> {
        LegacySea::new(platform)
    }

    fn set_fault_plan(_rt: &mut LegacySea, _plan: Option<FaultPlan>) {
        // The legacy engine has no fault hooks; injection plans only
        // apply to the keyed SLAUNCH operations.
    }

    fn platform(rt: &LegacySea) -> &SecurePlatform {
        rt.platform()
    }

    fn platform_mut(rt: &mut LegacySea) -> &mut SecurePlatform {
        rt.platform_mut()
    }

    fn power_cycle(_rt: &mut LegacySea) -> SimDuration {
        // Unreachable: `DURABLE = false`, so the executor rejects
        // durable policies before any reset can fire.
        SimDuration::ZERO
    }

    fn launch(
        rt: &OrderedLock<LegacySea>,
        logic: &mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        _key: Option<u64>,
    ) -> Result<SkinitLive, SeaError> {
        // SKINIT is atomic from the OS's point of view: suspend,
        // launch, run to completion, unseal/seal state, resume. The
        // target CPU is moot — every other CPU is forcibly idled.
        let _ = cpu;
        let done = lock(rt).run_session(logic, input)?;
        Ok(SkinitLive {
            output: done.output.unwrap_or_default(),
            report: done.report,
        })
    }

    fn step(
        _rt: &OrderedLock<LegacySea>,
        live: &mut SkinitLive,
        _logic: &mut dyn PalLogic,
        _key: Option<u64>,
    ) -> Result<PalStep, SeaError> {
        Ok(PalStep::Exited {
            output: std::mem::take(&mut live.output),
        })
    }

    fn resume(
        _rt: &OrderedLock<LegacySea>,
        _live: &mut SkinitLive,
        _cpu: CpuId,
        _key: Option<u64>,
    ) -> Result<(), SeaError> {
        // Legacy sessions never yield: launch ran them to completion.
        Ok(())
    }

    fn report(_rt: &OrderedLock<LegacySea>, live: &SkinitLive) -> Result<SessionReport, SeaError> {
        Ok(live.report)
    }

    fn quote(
        rt: &OrderedLock<LegacySea>,
        _live: &mut SkinitLive,
        nonce: &[u8],
        _key: Option<u64>,
    ) -> Result<Timed<Quote>, SeaError> {
        // Legacy attestation covers the platform's static PCRs — there
        // is no per-session sePCR to free.
        lock(rt).quote(nonce)
    }

    fn kill(
        _rt: &OrderedLock<LegacySea>,
        _live: &mut SkinitLive,
        _key: u64,
    ) -> Result<(), SeaError> {
        // Teardown already happened inside the atomic launch.
        Ok(())
    }

    fn degrade(
        _rt: &OrderedLock<LegacySea>,
        _logic: &mut dyn PalLogic,
        _input: &[u8],
        _cpu: CpuId,
        _key: u64,
    ) -> Result<(Vec<u8>, SessionReport), SeaError> {
        // Unreachable: only sePCR saturation degrades, and the legacy
        // engine has no sePCRs to saturate.
        Err(SeaError::EngineFault("skinit has no degraded slow path"))
    }
}

mod sealed {
    /// Closes the [`super::Stage`] set: the lifecycle has exactly the
    /// states Figure 6 has.
    pub trait Sealed {}
    impl Sealed for super::Launched {}
    impl Sealed for super::Stepping {}
    impl Sealed for super::Sealed {}
}

/// A typestate marker for the session lifecycle (`Launched → Stepping
/// → Sealed`). The set is closed — the lifecycle has exactly the
/// states the paper's Figure 6 has.
pub trait Stage: sealed::Sealed {}

/// The session is live and has not yet been stepped to a boundary.
#[derive(Debug, Clone, Copy)]
pub struct Launched;

/// The session yielded (`SYIELD`) and awaits a resume.
#[derive(Debug, Clone, Copy)]
pub struct Stepping;

/// The PAL exited: its output is sealed in the handle and the session
/// awaits its attestation.
#[derive(Debug, Clone, Copy)]
pub struct Sealed;

impl Stage for Launched {}
impl Stage for Stepping {}
impl Stage for Sealed {}

/// A live session walking the typestate lifecycle over architecture
/// `A`. Obtain one from [`SessionEngine::launch`]; consume it through
/// [`Session::step`] / [`Session::resume`] / [`Session::quote_and_free`].
/// Transitions Figure 6 lacks do not compile.
pub struct Session<'e, A: Architecture, S: Stage> {
    rt: &'e OrderedLock<A::Runtime>,
    logic: &'e mut dyn PalLogic,
    live: A::Live,
    cpu: CpuId,
    index: usize,
    key: Option<u64>,
    output: Vec<u8>,
    _stage: PhantomData<S>,
}

/// Result of stepping a launched session: it either yielded (resume
/// it) or exited (quote it).
pub enum Stepped<'e, A: Architecture> {
    /// The PAL yielded the CPU; the session awaits a resume.
    Yielded(Session<'e, A, Stepping>),
    /// The PAL exited; the session awaits its attestation.
    Exited(Session<'e, A, Sealed>),
}

impl<'e, A: Architecture, S: Stage> Session<'e, A, S> {
    /// The job's index in its batch (also the default session key and
    /// quote-nonce seed).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The CPU the session runs on.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Moves the handle to another stage. Private: the public
    /// transition methods are the only legal edges.
    fn into_stage<T: Stage>(self) -> Session<'e, A, T> {
        Session {
            rt: self.rt,
            logic: self.logic,
            live: self.live,
            cpu: self.cpu,
            index: self.index,
            key: self.key,
            output: self.output,
            _stage: PhantomData,
        }
    }

    /// Tears the session down mid-flight via the architecture's kill
    /// primitive (`SKILL` on [`Slaunch`]), reclaiming its resources.
    fn kill_inner(mut self) -> Result<(), SeaError> {
        let key = self.key.unwrap_or(self.index as u64);
        A::kill(self.rt, &mut self.live, key)
    }
}

impl<'e, A: Architecture> Session<'e, A, Launched> {
    /// Launches a session: the entry edge of the lifecycle.
    fn start(
        rt: &'e OrderedLock<A::Runtime>,
        logic: &'e mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        index: usize,
        key: Option<u64>,
    ) -> Result<Self, SeaError> {
        let live = A::launch(rt, logic, input, cpu, key)?;
        Ok(Session {
            rt,
            logic,
            live,
            cpu,
            index,
            key,
            output: Vec::new(),
            _stage: PhantomData,
        })
    }

    /// Runs the PAL until it yields or exits.
    pub fn step(mut self) -> Result<Stepped<'e, A>, SeaError> {
        match A::step(self.rt, &mut self.live, self.logic, self.key)? {
            PalStep::Yielded => Ok(Stepped::Yielded(self.into_stage())),
            PalStep::Exited { output } => {
                self.output = output;
                Ok(Stepped::Exited(self.into_stage()))
            }
        }
    }

    /// Tears the live session down without an attestation.
    pub fn kill(self) -> Result<(), SeaError> {
        self.kill_inner()
    }
}

impl<'e, A: Architecture> Session<'e, A, Stepping> {
    /// Resumes the yielded PAL on its CPU.
    pub fn resume(mut self) -> Result<Session<'e, A, Launched>, SeaError> {
        A::resume(self.rt, &mut self.live, self.cpu, self.key)?;
        Ok(self.into_stage())
    }

    /// Tears the suspended session down without an attestation.
    pub fn kill(self) -> Result<(), SeaError> {
        self.kill_inner()
    }
}

impl<A: Architecture> Session<'_, A, Sealed> {
    /// Attests the exited session over `nonce` and retires it,
    /// returning the job's result and the quote.
    pub fn quote_and_free(mut self, nonce: &[u8]) -> Result<(JobResult, Quote), SeaError> {
        let report = A::report(self.rt, &self.live)?;
        let quote = A::quote(self.rt, &mut self.live, nonce, self.key)?;
        Ok((
            JobResult {
                output: self.output,
                report,
                quote_cost: quote.elapsed,
                cpu: self.cpu,
            },
            quote.value,
        ))
    }
}

/// Composable batch behavior for [`SessionEngine::run`]: start from
/// [`BatchPolicy::plain`] and layer on the policy objects the batch
/// needs. Concurrency is not a policy — it is the engine's worker
/// count.
///
/// | composition                    | retired entry point      |
/// |--------------------------------|--------------------------|
/// | `plain()`                      | `run_batch`              |
/// | `.with_retry(...)`             | `run_batch_recovered`    |
/// | `.with_retry(...).with_durability(...)` | `run_batch_durable` |
#[derive(Debug, Clone, Default)]
pub struct BatchPolicy {
    retry: Option<RetryPolicy>,
    durability: Option<ResetPlan>,
    executor: Option<Executor>,
    group_commit: usize,
}

impl BatchPolicy {
    /// The fast path: no fault exposure, no journaling.
    pub fn plain() -> Self {
        BatchPolicy::default()
    }

    /// Adds bounded fault recovery: sessions run keyed (exposed to the
    /// installed fault plan), transient faults retry with virtual-time
    /// backoff, saturation degrades, exhaustion kills in-band.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Adds crash-consistent durability: terminal results are committed
    /// to a write-ahead journal sealed into TPM NVRAM, and `plan`'s
    /// power losses reboot the platform and relaunch whatever had not
    /// committed. Implies keyed (recovered) driving — with no explicit
    /// retry policy, [`RetryPolicy::default`] applies.
    pub fn with_durability(mut self, plan: ResetPlan) -> Self {
        self.durability = Some(plan);
        self
    }

    /// Overrides the engine's executor for batches run under this
    /// policy (the engine's own choice — [`SessionEngine::with_executor`]
    /// or `SEA_EXECUTOR` — applies otherwise).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Batches up to `sessions` terminal commits into one NVRAM seal
    /// (group commit). Each terminal still enters the write-ahead
    /// journal immediately — only the expensive `TPM_Seal` checkpoint
    /// is deferred until the group fills. Buffered commits are durable
    /// *only once sealed*: until then they are volatile attempts —
    /// final if the epoch ends cleanly, relaunched (and
    /// deterministically re-derived) if the power fails first. `0` and
    /// `1` both mean "seal every commit", the pre-group behavior.
    pub fn with_group_commit(mut self, sessions: usize) -> Self {
        self.group_commit = sessions;
        self
    }

    /// The retry policy, if fault recovery was requested.
    pub fn retry(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// Commits batched per NVRAM seal (at least 1).
    pub fn group_commit(&self) -> usize {
        self.group_commit.max(1)
    }

    /// The reset plan, if durability was requested.
    pub fn durability(&self) -> Option<&ResetPlan> {
        self.durability.as_ref()
    }

    /// The executor override, if one was requested.
    pub fn executor(&self) -> Option<Executor> {
        self.executor
    }
}

/// Aggregate outcome of one [`SessionEngine::run`], subsuming the
/// retired `ConcurrentOutcome` / `RecoveredOutcome` / `DurableOutcome`
/// triple: the crash-history fields are zero / empty for batches whose
/// policy carried no [`ResetPlan`].
///
/// The per-session results are byte-identical across worker counts,
/// and — for durable batches — byte-identical to the crash-free run of
/// the same batch: committed sessions are restored verbatim from the
/// journal, and relaunched sessions re-derive the identical result
/// because fault rolls are a pure function of `(plan, session key,
/// operation order)` and fault cursors rewind at reset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Per-job outcomes, in job-index order.
    pub sessions: Vec<SessionResult>,
    /// Virtual busy time accumulated by each worker/CPU, including work
    /// torn by crashes and redone after recovery.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch: the busiest CPU's total plus the
    /// serial recovery and journal-checkpoint overheads (both zero
    /// without a durability policy).
    pub wall: SimDuration,
    /// Platform resets the batch survived (0 without durability).
    pub resets: u32,
    /// Session keys restored from the journal at the *last* recovery
    /// (empty when no reset fired).
    pub committed: Vec<u64>,
    /// Session keys relaunched at the *last* recovery (empty when no
    /// reset fired). With `resets > 0`,
    /// `committed.len() + relaunched.len()` equals the batch size.
    pub relaunched: Vec<u64>,
    /// Virtual time spent on reboots and journal unsealing across all
    /// recoveries.
    pub recovery_latency: SimDuration,
    /// Virtual time spent sealing journal checkpoints into NVRAM.
    pub journal_overhead: SimDuration,
}

impl BatchOutcome {
    /// Tally of terminal variants across the batch.
    pub fn tally(&self) -> SessionTally {
        SessionTally::of(&self.sessions)
    }

    /// Number of sessions that completed with a quote.
    pub fn quoted(&self) -> usize {
        self.tally().quoted
    }

    /// Number of sessions that completed on the degraded slow path.
    pub fn degraded(&self) -> usize {
        self.tally().degraded
    }

    /// Number of sessions killed after exhausting their retry budget.
    pub fn killed(&self) -> usize {
        self.tally().killed
    }

    /// Sum of all sessions' virtual costs (the serial-execution wall
    /// time).
    pub fn aggregate(&self) -> SimDuration {
        self.sessions.iter().map(SessionResult::cost).sum()
    }

    /// Sessions completed per virtual second of batch wall time.
    pub fn throughput_per_sec(&self) -> f64 {
        rate_per_sec(self.sessions.len(), self.wall)
    }

    /// Completed (quoted or degraded) sessions per virtual second of
    /// batch wall time — the fault/crash sweeps' goodput axis.
    pub fn goodput_per_sec(&self) -> f64 {
        rate_per_sec(self.tally().completed(), self.wall)
    }

    /// Parallel speedup over running the same batch on one CPU.
    pub fn speedup(&self) -> f64 {
        speedup(self.aggregate(), self.wall)
    }
}

/// What one worker produced for one job in one epoch.
pub(crate) enum Attempt {
    /// Non-durable modes: the job's result (or the infrastructure
    /// error), final as soon as the epoch ends.
    Done(Result<SessionResult, SeaError>),
    /// Terminal result checkpointed to NVRAM — survives any later
    /// crash.
    Committed(SessionResult),
    /// A kill, deliberately not checkpointed (see
    /// [`SessionJournal::commit`]): final only if the epoch ends
    /// cleanly, relaunched — and deterministically re-killed —
    /// otherwise.
    Volatile(SessionResult, ConcurrentJob),
    /// The crash beat the commit: the session must relaunch.
    Torn(ConcurrentJob),
}

/// Driver-side reset state for one durable batch: the plan plus
/// once-only bookkeeping for the event cut and the reset budget.
pub(crate) struct ResetTriggers {
    plan: ResetPlan,
    cut_fired: bool,
    fired: u32,
}

impl ResetTriggers {
    fn new(plan: ResetPlan) -> Self {
        ResetTriggers {
            plan,
            cut_fired: false,
            fired: 0,
        }
    }

    /// Decides, at one commit boundary, whether the power fails there.
    /// `epoch` counts resets already survived, `key` is the committing
    /// session, `recorded` the trace's cumulative event count, `now`
    /// the machine clock. The budget cap guarantees the recovery loop
    /// terminates even under a 100% reset rate.
    fn check(&mut self, epoch: u64, key: u64, recorded: u64, now: SimTime) -> bool {
        if self.fired >= self.plan.max_resets() {
            return false;
        }
        let cut = !self.cut_fired && self.plan.cut_due(recorded);
        if cut {
            self.cut_fired = true;
        }
        let fire = cut || self.plan.take_due(now) > 0 || self.plan.roll_power_loss(epoch, key);
        if fire {
            self.fired += 1;
        }
        fire
    }
}

/// Shared context for one durable epoch: the journal, the reset
/// triggers, and the crash flag every worker/virtual CPU consults.
#[derive(Clone, Copy)]
pub(crate) struct DurableCtx<'a> {
    /// The retry budget and backoff schedule.
    pub(crate) retry: RetryPolicy,
    /// Resets already survived (the power-loss roll's epoch key).
    pub(crate) reset_epoch: u64,
    /// The write-ahead journal.
    pub(crate) journal: &'a OrderedLock<SessionJournal>,
    /// Power-loss decision state.
    pub(crate) triggers: &'a OrderedLock<ResetTriggers>,
    /// Accumulated checkpoint-seal time.
    pub(crate) journal_overhead: &'a OrderedLock<SimDuration>,
    /// Set when the cord is yanked; later commits observe it and tear.
    pub(crate) crashed: &'a AtomicBool,
    /// Terminal commits batched per NVRAM seal (group commit; ≥ 1).
    pub(crate) group: usize,
    /// Commits journaled since the last seal; sealing resets it. Lives
    /// beside `crashed` in the epoch loop, so a crash discards the
    /// buffer exactly as it discards unsealed journal state.
    pub(crate) pending_seals: &'a AtomicUsize,
}

impl DurableCtx<'_> {
    /// The commit gate for one terminal session. Holding the engine
    /// lock makes the read of the trace counter, the reset decision,
    /// and the NVRAM checkpoint one atomic boundary — no other
    /// worker can slip a commit in between. (This is the one place obs
    /// emission stays under the lock: the journal spans land on the
    /// shared PLATFORM_TRACK, so their ordering must serialize with
    /// the commits.)
    ///
    /// Identical for both executors: on the thread pool the gate runs
    /// on the worker's thread right after the drive; on the
    /// discrete-event backend it runs at the session's terminal event,
    /// in event order.
    pub(crate) fn commit_gate<A: Architecture>(
        &self,
        rt: &OrderedLock<A::Runtime>,
        obs: &Obs,
        key: u64,
        session: SessionResult,
        job: ConcurrentJob,
    ) -> Result<Attempt, SeaError> {
        let mut guard = lock(rt);
        if self.crashed.load(Ordering::SeqCst) {
            return Ok(Attempt::Torn(job));
        }
        let (recorded, now) = {
            let machine = A::platform(&guard).machine();
            (machine.trace().recorded(), machine.now())
        };
        let fire = lock(self.triggers).check(self.reset_epoch, key, recorded, now);
        if fire {
            // The cord is yanked before this record reaches NVRAM: the
            // committing session is torn too.
            self.crashed.store(true, Ordering::SeqCst);
            return Ok(Attempt::Torn(job));
        }
        let mut wal = lock(self.journal);
        wal.commit(key, &session);
        if session.is_killed() {
            drop(wal);
            return Ok(Attempt::Volatile(session, job));
        }
        // Group commit: buffer journaled terminals until the group
        // fills, then seal them all in one NVRAM checkpoint. A buffered
        // commit exists only in volatile memory, so it reports
        // `Volatile` — final if the epoch ends cleanly, relaunched (and
        // deterministically re-derived) if the power fails first. At
        // `group == 1` this branch is unreachable and every commit
        // seals, byte-identical to the pre-group engine.
        let buffered = self.pending_seals.fetch_add(1, Ordering::SeqCst) + 1;
        if buffered < self.group {
            drop(wal);
            obs.add("journal.buffered", 1);
            return Ok(Attempt::Volatile(session, job));
        }
        self.pending_seals.store(0, Ordering::SeqCst);
        let bytes = wal.to_bytes();
        drop(wal);
        // Seal to the empty PCR selection: the blob must unseal on the
        // rebooted platform, whose PCRs have all reset.
        let tpm = A::platform_mut(&mut guard)
            .tpm_mut()
            .ok_or(SeaError::NoTpm)?;
        let sealed = tpm.seal(&bytes, &[])?;
        tpm.nvram_mut()
            .store_blob(JOURNAL_NV_INDEX, &sealed.value.to_bytes());
        // Checkpoint time serializes against the whole batch, not one
        // session: platform track.
        obs.leaf_on(PLATFORM_TRACK, Layer::Tpm, "journal.seal", sealed.elapsed);
        obs.add("journal.commits", 1);
        // Contention attribution: the seal is the long pole of the
        // commit gate's engine-lock hold. Emitted on both executors
        // (pure sums, so it cannot perturb snapshot parity).
        obs.lock_event(
            "journal.seal",
            Layer::Tpm,
            SimDuration::ZERO,
            sealed.elapsed,
        );
        *lock(self.journal_overhead) += sealed.elapsed;
        Ok(Attempt::Committed(session))
    }
}

/// How one epoch's workers drive their jobs, resolved once from the
/// [`BatchPolicy`].
#[derive(Clone, Copy)]
pub(crate) enum WorkerMode<'a> {
    /// Fast path: unkeyed lifecycle, errors surface per job.
    Plain,
    /// Keyed lifecycle with bounded fault recovery.
    Recovered {
        /// The retry budget and backoff schedule.
        retry: RetryPolicy,
    },
    /// Recovered driving plus write-ahead journaling and a power-loss
    /// gate at each session commit.
    Durable(DurableCtx<'a>),
}

/// The unified batch engine: a worker pool (worker *k* plays CPU *k*)
/// driving sessions of architecture `A` against **one shared** runtime,
/// with batch behavior composed from a [`BatchPolicy`].
///
/// # Example
///
/// ```
/// use sea_core::engine::{BatchPolicy, SessionEngine, Slaunch};
/// use sea_core::{ConcurrentJob, FnPal, PalOutcome, SecurePlatform};
/// use sea_hw::Platform;
/// use sea_tpm::KeyStrength;
///
/// let platform =
///     SecurePlatform::new(Platform::recommended(4), KeyStrength::Demo512, b"pool");
/// let mut engine = SessionEngine::<Slaunch>::new(platform, 4).unwrap();
/// let jobs = (0..8u8)
///     .map(|i| {
///         ConcurrentJob::new(
///             Box::new(FnPal::new("job", move |_| Ok(PalOutcome::Exit(vec![i])))),
///             [],
///         )
///     })
///     .collect();
/// let outcome = engine.run(jobs, &BatchPolicy::plain()).unwrap();
/// assert_eq!(outcome.quoted(), 8);
/// assert!(outcome.speedup() > 1.0);
/// ```
pub struct SessionEngine<A: Architecture = Slaunch> {
    rt: Arc<OrderedLock<A::Runtime>>,
    clock: Arc<SharedClock>,
    workers: usize,
    executor: Executor,
}

impl<A: Architecture> SessionEngine<A> {
    /// Boots an engine of `workers` worker threads (worker *k* drives
    /// CPU *k*) over a fresh `A::Runtime` on `platform`.
    ///
    /// # Errors
    ///
    /// Whatever [`Architecture::boot`] raises (e.g.
    /// [`SeaError::SlaunchUnsupported`] / [`SeaError::NoTpm`]), plus
    /// [`SeaError::NotEnoughCpus`] when `workers` is zero or exceeds
    /// the platform's CPU count — capped at **one** worker on
    /// non-[`Architecture::CONCURRENT`] architectures, whose launches
    /// monopolize the whole platform.
    ///
    /// The executor backend defaults to [`Executor::from_env`]
    /// (`SEA_EXECUTOR`); override with [`SessionEngine::with_executor`].
    /// On the discrete-event backend "worker threads" are virtual CPUs
    /// on one OS thread, so `workers` may far exceed the host's cores —
    /// the cap is still the *platform's* CPU count.
    pub fn new(mut platform: SecurePlatform, workers: usize) -> Result<Self, SeaError> {
        let n_cpus = platform.machine().cpus().len();
        let cap = if A::CONCURRENT { n_cpus } else { 1 };
        if workers == 0 || workers > cap {
            return Err(SeaError::NotEnoughCpus {
                requested: workers,
                available: cap,
            });
        }
        // Pin TPM latencies to their nominal means: with jitter, a
        // command's sampled cost depends on its position in the shared
        // noise stream — i.e. on thread interleaving — which would break
        // the byte-identical serial/parallel contract. (A PAL that emits
        // TPM RNG output verbatim is likewise outside the contract; the
        // RNG stream is shared for the same reason.)
        if let Some(tpm) = platform.tpm_mut() {
            tpm.set_nominal_timing(true);
        }
        let rt = A::boot(platform)?;
        Ok(SessionEngine {
            rt: Arc::new(OrderedLock::new(LockRank::Runtime, rt)),
            clock: Arc::new(SharedClock::new()),
            workers,
            executor: Executor::from_env(),
        })
    }

    /// Number of worker threads (= CPUs driven).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Selects the executor backend (builder form).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Selects the executor backend in place.
    pub fn set_executor(&mut self, executor: Executor) {
        self.executor = executor;
    }

    /// The engine's executor backend (a [`BatchPolicy::with_executor`]
    /// override still takes precedence per batch).
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Installs the observability handle into the shared runtime's
    /// machine: every keyed session operation then emits lifecycle
    /// spans and attributed charges on the session's own track.
    pub fn install_obs(&self, obs: Obs) {
        A::platform_mut(&mut lock(&self.rt)).install_obs(obs);
    }

    /// The shared runtime's observability handle (null unless
    /// [`SessionEngine::install_obs`] was called).
    pub fn obs(&self) -> Obs {
        A::platform(&lock(&self.rt)).machine().obs().clone()
    }

    /// The shared virtual clock the batch timeline folds into.
    pub fn clock(&self) -> &Arc<SharedClock> {
        &self.clock
    }

    /// Installs (or clears) a deterministic fault plan on the shared
    /// runtime. Only keyed (retry-policy) sessions are exposed to it;
    /// each job rolls faults against its own batch index, so serial
    /// and parallel runs of the same batch see identical injections.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        A::set_fault_plan(&mut lock(&self.rt), plan);
    }

    /// Launches one session by hand, returning the typestate handle
    /// for step-by-step driving (outside any batch).
    ///
    /// # Errors
    ///
    /// Whatever the architecture's launch primitive raises.
    pub fn launch<'e>(
        &'e self,
        logic: &'e mut dyn PalLogic,
        input: &[u8],
        cpu: CpuId,
        index: usize,
    ) -> Result<Session<'e, A, Launched>, SeaError> {
        Session::start(&self.rt, logic, input, cpu, index, None)
    }

    /// Runs a batch of jobs to completion across the worker pool under
    /// `policy` and collects results in job-index order.
    ///
    /// Job *i* is statically assigned to worker `i % workers` (across
    /// relaunch epochs too, so a relaunched session lands on the same
    /// CPU as crash-free); the shared runtime is locked per
    /// *operation*, so sessions genuinely overlap.
    ///
    /// # Errors
    ///
    /// [`SeaError::PolicyUnsupported`] when the policy requests
    /// durability on a non-[`Architecture::DURABLE`] architecture.
    /// Otherwise only infrastructure failures surface as `Err` — on the
    /// plain path the first per-job error (by job index), under a retry
    /// policy per-session fault deaths are in-band
    /// [`SessionResult::Killed`] values, and an unreadable journal is
    /// [`SeaError::JournalCorrupt`].
    pub fn run(
        &mut self,
        jobs: Vec<ConcurrentJob>,
        policy: &BatchPolicy,
    ) -> Result<BatchOutcome, SeaError> {
        self.run_indexed(jobs.into_iter().enumerate().collect(), policy)
    }

    /// Runs a batch whose jobs carry explicit indices, in any
    /// submission order.
    ///
    /// The indices must form a permutation of `0..jobs.len()`; job *i*
    /// keeps its static CPU assignment (`i % workers`) and its slot in
    /// [`BatchOutcome::sessions`] regardless of the order jobs appear
    /// in the vector. The engine sorts pending work by index before
    /// each epoch, so the outcome is *structurally* invariant to
    /// submission order — the permutation property test in
    /// `tests/proptest_invariants.rs` pins this.
    ///
    /// # Errors
    ///
    /// Everything [`SessionEngine::run`] raises, plus
    /// [`SeaError::EngineFault`] when the indices are not a permutation
    /// of `0..jobs.len()`.
    pub fn run_indexed(
        &mut self,
        jobs: Vec<(usize, ConcurrentJob)>,
        policy: &BatchPolicy,
    ) -> Result<BatchOutcome, SeaError> {
        if policy.durability().is_some() && !A::DURABLE {
            return Err(SeaError::PolicyUnsupported {
                architecture: A::NAME,
                capability: "durable batches",
            });
        }
        let n_jobs = jobs.len();
        let mut seen = vec![false; n_jobs];
        for (i, _) in &jobs {
            if *i >= n_jobs || std::mem::replace(&mut seen[*i], true) {
                return Err(SeaError::EngineFault(
                    "job indices must form a permutation of 0..jobs.len()",
                ));
            }
        }
        let workers = self.workers;
        let retry = policy.retry();
        let exec = policy.executor().unwrap_or(self.executor);

        let journal = OrderedLock::new(LockRank::Journal, SessionJournal::new());
        let triggers = policy
            .durability()
            .map(|plan| OrderedLock::new(LockRank::Triggers, ResetTriggers::new(plan.clone())));
        let journal_overhead = OrderedLock::new(LockRank::Accounting, SimDuration::ZERO);
        let mut cpu_busy = vec![SimDuration::ZERO; workers];
        let mut final_slots: Vec<Option<Result<SessionResult, SeaError>>> =
            (0..n_jobs).map(|_| None).collect();
        let mut pending: Vec<(usize, ConcurrentJob)> = jobs;
        let mut resets = 0u32;
        let mut committed: Vec<u64> = Vec::new();
        let mut relaunched: Vec<u64> = Vec::new();
        let mut recovery_latency = SimDuration::ZERO;

        loop {
            let crashed = AtomicBool::new(false);
            // Per-epoch like `crashed`: a crash discards the unsealed
            // group-commit buffer along with the rest of volatile state.
            let pending_seals = AtomicUsize::new(0);
            // Every domain anchors at the epoch's start: reading the
            // clock inside each worker would skew late-spawned domains
            // by however far an early sibling had already published.
            let epoch = self.clock.now();
            let reset_epoch = resets as u64;
            // One obs handle for the whole epoch, cloned before the
            // workers spawn so the hot path never locks the runtime
            // just to reach the sink.
            let obs = self.obs();
            let mode = match (retry, &triggers) {
                (r, Some(triggers)) => WorkerMode::Durable(DurableCtx {
                    retry: r.unwrap_or_default(),
                    reset_epoch,
                    journal: &journal,
                    triggers,
                    journal_overhead: &journal_overhead,
                    crashed: &crashed,
                    group: policy.group_commit(),
                    pending_seals: &pending_seals,
                }),
                (Some(retry), None) => WorkerMode::Recovered { retry },
                (None, None) => WorkerMode::Plain,
            };

            // Sorting pending work by index makes the epoch's schedule
            // a pure function of *which* jobs are pending, never the
            // order they were submitted or re-queued in.
            pending.sort_unstable_by_key(|(i, _)| *i);
            let pending_epoch = std::mem::take(&mut pending);
            let (attempts, busy) = match exec {
                Executor::ThreadPool => threadpool::run_epoch::<A>(
                    workers,
                    n_jobs,
                    pending_epoch,
                    &self.rt,
                    &obs,
                    &self.clock,
                    epoch,
                    mode,
                )?,
                Executor::DiscreteEvent => des::run_epoch::<A>(
                    workers,
                    n_jobs,
                    pending_epoch,
                    &self.rt,
                    &obs,
                    &self.clock,
                    epoch,
                    mode,
                )?,
            };
            for (k, b) in busy.into_iter().enumerate() {
                cpu_busy[k] += b;
            }

            if !crashed.load(Ordering::SeqCst) {
                // Clean epoch: every surviving attempt is final.
                for (i, attempt) in attempts.into_iter().enumerate() {
                    match attempt {
                        Some(Attempt::Done(result)) => final_slots[i] = Some(result),
                        Some(Attempt::Committed(s) | Attempt::Volatile(s, _)) => {
                            final_slots[i] = Some(Ok(s))
                        }
                        Some(Attempt::Torn(_)) => {
                            return Err(SeaError::EngineFault("torn session in a clean epoch"))
                        }
                        None => {}
                    }
                }
                break;
            }

            // Power loss (durable mode only). Reboot the platform, then
            // rebuild the world from the sealed journal alone — every
            // in-memory result past the last checkpoint is discarded,
            // exactly as a real crash would lose it.
            resets += 1;
            let mut guard = lock(&self.rt);
            obs.add("journal.resets", 1);
            recovery_latency += A::power_cycle(&mut guard);
            let recovered = {
                let tpm = A::platform_mut(&mut guard)
                    .tpm_mut()
                    .ok_or(SeaError::NoTpm)?;
                match tpm.nvram().read_blob(JOURNAL_NV_INDEX).map(<[u8]>::to_vec) {
                    Some(bytes) => {
                        let blob = SealedBlob::from_bytes(&bytes)?;
                        let opened = tpm.unseal(&blob)?;
                        recovery_latency += opened.elapsed;
                        obs.leaf_on(PLATFORM_TRACK, Layer::Tpm, "journal.unseal", opened.elapsed);
                        SessionJournal::from_bytes(&opened.value)?
                    }
                    None => SessionJournal::new(),
                }
            };
            let restored = recovered.restore()?;
            committed = restored.iter().map(|(key, _)| *key).collect();
            final_slots.fill(None);
            for (key, session) in restored {
                let slot = final_slots
                    .get_mut(key as usize)
                    .ok_or(SeaError::JournalCorrupt("session key out of range"))?;
                *slot = Some(Ok(session));
            }
            *lock(&journal) = recovered;

            // Everything without a checkpointed terminal relaunches.
            relaunched.clear();
            for (i, attempt) in attempts.into_iter().enumerate() {
                let job = match attempt {
                    Some(Attempt::Torn(job) | Attempt::Volatile(_, job)) => job,
                    Some(Attempt::Committed(_) | Attempt::Done(_)) | None => continue,
                };
                if final_slots[i].is_none() {
                    relaunched.push(i as u64);
                    pending.push((i, job));
                }
            }
            obs.add("journal.relaunches", pending.len() as u64);
            let machine = A::platform_mut(&mut guard).machine_mut();
            for (i, _) in &pending {
                let now = machine.now();
                machine
                    .trace_mut()
                    .record(now, TraceEvent::SessionRelaunched { session: *i as u64 });
            }
        }

        let journal_overhead = journal_overhead.into_inner();
        let mut sessions = Vec::with_capacity(n_jobs);
        for slot in final_slots {
            let result = slot.ok_or(SeaError::EngineFault("job result slot left unfilled"))?;
            sessions.push(result?);
        }
        // Reboots and checkpoint seals serialize against everything, so
        // they extend the batch beyond the busiest CPU's overlap.
        let wall = cpu_busy.iter().copied().max().unwrap_or(SimDuration::ZERO)
            + recovery_latency
            + journal_overhead;
        Ok(BatchOutcome {
            sessions,
            cpu_busy,
            wall,
            resets,
            committed,
            relaunched,
            recovery_latency,
            journal_overhead,
        })
    }

    /// Tears the engine down, returning the shared runtime (e.g. to
    /// inspect the platform's final state in tests).
    ///
    /// # Panics
    ///
    /// Panics if worker threads still hold the runtime (they cannot:
    /// [`SessionEngine::run`] joins them before returning).
    pub fn into_inner(self) -> A::Runtime {
        Arc::try_unwrap(self.rt)
            .map_err(|_| ())
            .expect("no workers are live outside run")
            .into_inner()
    }
}
