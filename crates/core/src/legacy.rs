//! SEA on today's (2007) hardware — the system Figure 2 measures.
//!
//! §3.3 / §4.1: a kernel module suspends the untrusted OS, `SKINIT`s the
//! PAL, and the PAL protects its cross-session state with `TPM_Seal` /
//! `TPM_Unseal`. Three properties of this baseline drive the paper's
//! performance findings:
//!
//! 1. **Every invocation pays a late launch** — "resume is achieved by
//!    executing late launch again" (§5.7), ~177 ms for a 64 KB PAL.
//! 2. **State crosses sessions only through the TPM** — Seal (~20–500 ms)
//!    on the way out, Unseal (~390–905 ms) on the way back in.
//! 3. **The whole platform stalls** — "the late launch operation requires
//!    all but one of the processors to be in a special idle state"
//!    (§4.2), so even unrelated cores lose >1 s per PAL-Use session.

use sea_hw::{CpuId, Layer, PageIndex, PageRange, SimDuration, PAGE_SIZE};
use sea_tpm::{PcrIndex, Quote, Timed};

use crate::error::SeaError;
use crate::pal::{PalCtx, PalLogic, PalOutcome, SealBinding};
use crate::platform::{LateLaunch, SecurePlatform};
use crate::report::SessionReport;

/// Number of pages in the staging region for PAL execution: 64 KB is the
/// AMD SLB maximum (§2.2.1); we reserve double for headroom.
const SLB_PAGES: u32 = 32;

/// First page of the staging region (leaving low pages to the "OS").
const SLB_START: u32 = 16;

/// Result of one baseline PAL session.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacySessionResult {
    /// The PAL's output, or `None` if it yielded (on baseline hardware a
    /// yield *is* termination — state survives only if the PAL sealed it).
    pub output: Option<Vec<u8>>,
    /// Cost breakdown (the Figure 2 stack).
    pub report: SessionReport,
    /// The late-launch record, including the measurement now in PCR 17.
    pub launch: LateLaunch,
}

/// The baseline Secure Execution Architecture.
///
/// # Example
///
/// ```
/// use sea_core::{FnPal, LegacySea, PalOutcome, SecurePlatform};
/// use sea_hw::Platform;
/// use sea_tpm::KeyStrength;
///
/// # fn main() -> Result<(), sea_core::SeaError> {
/// let platform = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"ex");
/// let mut sea = LegacySea::new(platform)?;
///
/// // A "PAL Gen" (§4.1): generate a secret and seal it for later.
/// let mut gen = FnPal::new("gen", |ctx| {
///     let secret = ctx.random(16)?;
///     let blob = ctx.seal(&secret)?;
///     // On this baseline, the sealed blob is the PAL's output: the
///     // untrusted OS stores it for the next session.
///     Ok(PalOutcome::Exit(blob.byte_len().to_le_bytes().to_vec()))
/// })
/// .with_image_size(64 * 1024); // the paper's 64 KB SLB maximum
/// let result = sea.run_session(&mut gen, b"")?;
/// // Figure 2: PAL Gen ≈ SKINIT (177.5 ms) + Seal (20 ms) ≈ 200 ms
/// // (plus ~25 ms for the TPM_GetRandom this example adds).
/// assert!(result.report.overhead().as_ms_f64() > 190.0);
/// assert!(result.report.overhead().as_ms_f64() < 240.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LegacySea {
    platform: SecurePlatform,
    slb: PageRange,
    launch_cpu: CpuId,
}

impl LegacySea {
    /// Creates the baseline runtime, reserving a staging region for PAL
    /// images.
    ///
    /// # Errors
    ///
    /// [`SeaError::RegionTooSmall`] if the platform has too little memory
    /// for the staging region.
    pub fn new(platform: SecurePlatform) -> Result<Self, SeaError> {
        let slb = PageRange::new(PageIndex(SLB_START), SLB_PAGES);
        let installed = platform.machine().memory().num_pages();
        if SLB_START + SLB_PAGES > installed {
            return Err(SeaError::RegionTooSmall {
                needed: ((SLB_START + SLB_PAGES) as usize) * PAGE_SIZE,
                available: installed as usize * PAGE_SIZE,
            });
        }
        Ok(LegacySea {
            platform,
            slb,
            launch_cpu: CpuId(0),
        })
    }

    /// The underlying platform.
    pub fn platform(&self) -> &SecurePlatform {
        &self.platform
    }

    /// Mutable access to the underlying platform.
    pub fn platform_mut(&mut self) -> &mut SecurePlatform {
        &mut self.platform
    }

    /// The PCRs that identify a launched PAL on this platform's vendor.
    pub fn measurement_pcrs(&self) -> Vec<PcrIndex> {
        match self.platform.machine().platform().vendor {
            sea_hw::CpuVendor::Amd => vec![PcrIndex(17)],
            sea_hw::CpuVendor::Intel => vec![PcrIndex(17), PcrIndex(18)],
        }
    }

    /// Runs one complete PAL session: suspend OS → late launch → PAL →
    /// resume OS. Advances the machine clock by the session's total time.
    ///
    /// # Errors
    ///
    /// Propagates hardware, TPM, and PAL-logic failures; the platform is
    /// restored to normal operation on the error paths that occur after
    /// launch.
    pub fn run_session(
        &mut self,
        pal: &mut dyn PalLogic,
        input: &[u8],
    ) -> Result<LegacySessionResult, SeaError> {
        let obs = self.platform.machine().obs().clone();
        obs.open(Layer::Core, "session.legacy");
        let result = self.run_session_impl(pal, input);
        obs.close();
        result
    }

    fn run_session_impl(
        &mut self,
        pal: &mut dyn PalLogic,
        input: &[u8],
    ) -> Result<LegacySessionResult, SeaError> {
        let image = pal.image();
        if image.len() > self.slb.byte_len() {
            return Err(SeaError::RegionTooSmall {
                needed: image.len(),
                available: self.slb.byte_len(),
            });
        }

        // 1. Suspend the untrusted system: every other core enters the
        //    special idle state (§4.2). The suspend itself is cheap —
        //    "all necessary system state can simply remain in-place in
        //    memory" (§3.3).
        let cpu_ids: Vec<CpuId> = self
            .platform
            .machine()
            .platform()
            .cpu_ids()
            .filter(|&c| c != self.launch_cpu)
            .collect();
        for c in &cpu_ids {
            self.platform.machine_mut().cpu_mut(*c)?.force_idle();
        }

        // 2. The OS stages the PAL image in the SLB region.
        self.platform
            .machine_mut()
            .memory_mut()
            .write_raw(self.slb.base_addr(), &image)?;

        // 3. Late launch (advances the clock by its cost).
        let launch = self
            .platform
            .late_launch(self.launch_cpu, self.slb, image.len())?;

        // 4. The PAL executes with seals bound to its measurement PCRs.
        let selection = self.measurement_pcrs();
        let (machine, tpm) = self.platform.parts_mut();
        let binding = tpm.as_ref().map(|_| SealBinding::Pcrs(selection));
        let mut ctx = PalCtx::new(tpm.map(|t| &mut *t), binding, input, Vec::new());
        let outcome = pal.run(&mut ctx);

        let report = SessionReport {
            late_launch: launch.total(),
            seal: ctx.seal_cost,
            unseal: ctx.unseal_cost,
            quote: SimDuration::ZERO,
            tpm_other: ctx.tpm_other_cost,
            context_switch: SimDuration::ZERO,
            pal_work: ctx.work_done,
        };
        // The launch cost is already on the clock; charge the rest as
        // attributed leaf spans. Quote and context-switch are zero on
        // this path, so these four sum to exactly
        // `report.total() - launch.total()`.
        machine.charge(Layer::Tpm, "tpm.seal", report.seal);
        machine.charge(Layer::Tpm, "tpm.unseal", report.unseal);
        machine.charge(Layer::Tpm, "tpm.other", report.tpm_other);
        machine.charge(Layer::Core, "core.pal_work", report.pal_work);

        // 5. Resume the untrusted system regardless of PAL outcome.
        self.platform.late_launch_exit(self.launch_cpu, self.slb)?;
        for c in &cpu_ids {
            self.platform.machine_mut().cpu_mut(*c)?.wake();
        }

        let outcome = outcome?;
        Ok(LegacySessionResult {
            output: match outcome {
                PalOutcome::Exit(bytes) => Some(bytes),
                PalOutcome::Yield => None,
            },
            report,
            launch,
        })
    }

    /// Generates a post-session attestation over the measurement PCRs —
    /// "this operation is needed to create an attestation that will
    /// convince an external party that a PAL was executed successfully"
    /// (§4.2). Advances the clock by the quote cost.
    ///
    /// # Errors
    ///
    /// [`SeaError::NoTpm`] on TPM-less platforms.
    pub fn quote(&mut self, nonce: &[u8]) -> Result<Timed<Quote>, SeaError> {
        let selection = self.measurement_pcrs();
        let tpm = self.platform.require_tpm()?;
        let wire = tpm.quote(nonce, &selection)?;
        self.platform
            .machine_mut()
            .charge(Layer::Tpm, "tpm.quote", wire.elapsed);
        // The TPM emits the canonical wire encoding; parse it back into
        // the in-memory form for platform-side callers. A decode failure
        // here would mean the platform codec disagrees with itself.
        let quote = Quote::from_wire(&wire.value)?;
        Ok(wire.map(|_| quote))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pal::FnPal;
    use crate::platform::SecurePlatform;
    use sea_hw::{CpuExecState, Platform, Requester};
    use sea_tpm::KeyStrength;

    fn sea(p: Platform) -> LegacySea {
        LegacySea::new(SecurePlatform::new(p, KeyStrength::Demo512, b"legacy test")).unwrap()
    }

    #[test]
    fn pal_gen_overhead_matches_figure2() {
        // PAL Gen on the dc5750/Broadcom: SKINIT(64 KB) + Seal ≈ 197 ms.
        let mut s = sea(Platform::hp_dc5750());
        let mut pal = FnPal::new("gen", |ctx| {
            let blob = ctx.seal(b"generated state")?;
            assert!(blob.byte_len() > 0);
            Ok(PalOutcome::Exit(vec![1]))
        })
        .with_image_size(64 * 1024);
        let r = s.run_session(&mut pal, b"").unwrap();
        let overhead = r.report.overhead().as_ms_f64();
        assert!((overhead - 197.5).abs() < 8.0, "got {overhead} ms");
        assert!(r.report.unseal == SimDuration::ZERO);
        assert_eq!(r.output, Some(vec![1]));
    }

    #[test]
    fn pal_use_overhead_exceeds_one_second() {
        // PAL Use: SKINIT + Unseal + Seal > 1 s (§4.2).
        let mut s = sea(Platform::hp_dc5750());
        let mut blob_holder = None;
        let mut gen = FnPal::new("genuse", |ctx| {
            Ok(PalOutcome::Exit(
                ctx.seal(b"state-v1")?.byte_len().to_le_bytes().to_vec(),
            ))
        })
        .with_image_size(64 * 1024);
        // First session seals...
        let _ = s.run_session(&mut gen, b"").unwrap();
        // ...but we need the blob itself: seal inside and stash via capture.
        let holder = &mut blob_holder;
        let mut gen2 = FnPal::new("genuse", |ctx| {
            *holder = Some(ctx.seal(b"state-v1")?);
            Ok(PalOutcome::Exit(vec![]))
        })
        .with_image_size(64 * 1024);
        let _ = s.run_session(&mut gen2, b"").unwrap();
        let blob = blob_holder.unwrap();

        let mut usepal = FnPal::new("genuse", move |ctx| {
            let state = ctx.unseal(&blob)?;
            assert_eq!(state, b"state-v1");
            let _ = ctx.seal(&state)?; // reseal modified state
            Ok(PalOutcome::Exit(vec![]))
        })
        .with_image_size(64 * 1024);
        let r = s.run_session(&mut usepal, b"").unwrap();
        let overhead = r.report.overhead().as_ms_f64();
        assert!(
            overhead > 1000.0,
            "PAL Use should exceed 1 s: {overhead} ms"
        );
        assert!(r.report.unseal.as_ms_f64() > 800.0);
    }

    #[test]
    fn seal_only_works_for_same_pal_image() {
        // A different PAL (different image ⇒ different PCR-17 chain)
        // cannot unseal.
        let mut s = sea(Platform::hp_dc5750());
        let mut holder = None;
        {
            let h = &mut holder;
            let mut gen = FnPal::new("alice", move |ctx| {
                *h = Some(ctx.seal(b"alice secret")?);
                Ok(PalOutcome::Exit(vec![]))
            });
            s.run_session(&mut gen, b"").unwrap();
        }
        let blob = holder.unwrap();
        let blob2 = blob.clone();
        // Same image unseals fine.
        let mut alice_again = FnPal::new("alice", move |ctx| {
            assert_eq!(ctx.unseal(&blob)?, b"alice secret");
            Ok(PalOutcome::Exit(vec![]))
        });
        s.run_session(&mut alice_again, b"").unwrap();
        // Different image cannot.
        let mut mallory = FnPal::new("mallory", move |ctx| match ctx.unseal(&blob2) {
            Err(SeaError::Tpm(sea_tpm::TpmError::WrongPcrState)) => {
                Ok(PalOutcome::Exit(b"denied".to_vec()))
            }
            other => panic!("expected WrongPcrState, got {other:?}"),
        });
        let r = s.run_session(&mut mallory, b"").unwrap();
        assert_eq!(r.output, Some(b"denied".to_vec()));
    }

    #[test]
    fn whole_platform_stalls_during_session() {
        let mut s = sea(Platform::hp_dc5750());
        let mut pal = FnPal::new("watcher", |ctx| {
            ctx.work(SimDuration::from_ms(1));
            Ok(PalOutcome::Exit(vec![]))
        });
        // Observe the other core's state from inside the PAL via a probe:
        // instead, run the session and verify the core was idled by
        // checking it is Normal before and after, and relying on the
        // runtime's force_idle path (covered by the assertion inside).
        assert_eq!(
            s.platform().machine().cpu(CpuId(1)).unwrap().state(),
            CpuExecState::Normal
        );
        s.run_session(&mut pal, b"").unwrap();
        // Restored after the session.
        assert_eq!(
            s.platform().machine().cpu(CpuId(1)).unwrap().state(),
            CpuExecState::Normal
        );
    }

    #[test]
    fn quote_costs_match_figure2_and_verifies() {
        let mut s = sea(Platform::hp_dc5750());
        let mut pal = FnPal::new("q", |_| Ok(PalOutcome::Exit(vec![])));
        s.run_session(&mut pal, b"").unwrap();
        let q = s.quote(b"nonce").unwrap();
        assert!((q.elapsed.as_ms_f64() - 880.0).abs() < 100.0);
        let aik = s.platform().tpm().unwrap().aik_public().clone();
        assert!(q.value.verify_signature(&aik));
    }

    #[test]
    fn intel_platform_uses_pcr17_and_18() {
        let mut s = sea(Platform::intel_tep());
        assert_eq!(s.measurement_pcrs(), vec![PcrIndex(17), PcrIndex(18)]);
        let mut pal = FnPal::new("intel", |ctx| {
            let blob = ctx.seal(b"x")?;
            assert_eq!(ctx.unseal(&blob)?, b"x");
            Ok(PalOutcome::Exit(vec![]))
        });
        let r = s.run_session(&mut pal, b"").unwrap();
        assert_eq!(r.launch.measured_pcrs.len(), 2);
    }

    #[test]
    fn tpmless_platform_runs_but_cannot_seal_or_quote() {
        let mut s = sea(Platform::tyan_n3600r());
        let mut pal = FnPal::new("bare", |ctx| match ctx.seal(b"x") {
            Err(SeaError::NoTpm) => Ok(PalOutcome::Exit(b"no tpm".to_vec())),
            other => panic!("expected NoTpm, got {other:?}"),
        });
        let r = s.run_session(&mut pal, b"").unwrap();
        assert_eq!(r.output, Some(b"no tpm".to_vec()));
        assert_eq!(s.quote(b"n").unwrap_err(), SeaError::NoTpm);
    }

    #[test]
    fn yield_on_baseline_terminates_without_output() {
        let mut s = sea(Platform::hp_dc5750());
        let mut pal = FnPal::new("yielder", |_| Ok(PalOutcome::Yield));
        let r = s.run_session(&mut pal, b"").unwrap();
        assert_eq!(r.output, None);
    }

    #[test]
    fn oversized_pal_rejected() {
        let mut s = sea(Platform::hp_dc5750());
        let mut pal =
            FnPal::new("huge", |_| Ok(PalOutcome::Exit(vec![]))).with_image_size(256 * 1024);
        assert!(matches!(
            s.run_session(&mut pal, b""),
            Err(SeaError::RegionTooSmall { .. })
        ));
    }

    #[test]
    fn session_clock_advances_by_total_time() {
        let mut s = sea(Platform::hp_dc5750());
        let before = s.platform().machine().now();
        let mut pal = FnPal::new("timer", |ctx| {
            ctx.work(SimDuration::from_ms(10));
            Ok(PalOutcome::Exit(vec![]))
        })
        .with_image_size(4096);
        let r = s.run_session(&mut pal, b"").unwrap();
        let elapsed = s.platform().machine().now().duration_since(before);
        assert_eq!(elapsed, r.report.total());
        assert_eq!(r.report.pal_work, SimDuration::from_ms(10));
    }

    #[test]
    fn pal_inputs_are_visible() {
        let mut s = sea(Platform::hp_dc5750());
        let mut pal = FnPal::new("echo", |ctx| Ok(PalOutcome::Exit(ctx.input().to_vec())));
        let r = s.run_session(&mut pal, b"ping").unwrap();
        assert_eq!(r.output, Some(b"ping".to_vec()));
    }

    #[test]
    fn dma_blocked_during_session() {
        // A DMA device cannot read the SLB while a session is active.
        // (The machine needs a device; rebuild with one.)
        let platform = Platform::hp_dc5750();
        let mut sp = SecurePlatform::new(platform, KeyStrength::Demo512, b"dma");
        // Swap in a machine with a NIC.
        *sp.machine_mut() = sea_hw::Machine::builder(Platform::hp_dc5750())
            .device("evil NIC")
            .build();
        let mut s = LegacySea::new(sp).unwrap();
        let slb_base = PageRange::new(PageIndex(SLB_START), SLB_PAGES).base_addr();
        // Before: DMA is fine.
        assert!(s
            .platform()
            .machine()
            .dma_read(sea_hw::DeviceId(0), slb_base, 1)
            .is_ok());
        let mut pal = FnPal::new("dma-probe", |_| Ok(PalOutcome::Exit(vec![])));
        s.run_session(&mut pal, b"").unwrap();
        // After: protection lifted again.
        assert!(s
            .platform()
            .machine()
            .dma_read(sea_hw::DeviceId(0), slb_base, 1)
            .is_ok());
    }

    #[test]
    fn cpu_reads_slb_fine_during_normal_operation() {
        let s = sea(Platform::hp_dc5750());
        let addr = s.slb.base_addr();
        assert!(s
            .platform()
            .machine()
            .read(Requester::Cpu(CpuId(1)), addr, 16)
            .is_ok());
    }
}
