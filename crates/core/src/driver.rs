//! The per-session drive state machine shared by both executors.
//!
//! The retired `drive_plain`/`drive_recovered` functions walked a job
//! through its lifecycle with nested loops, which only a dedicated OS
//! thread could execute: the control state between two architecture
//! operations lived on that thread's stack. [`SessionDriver`] reifies
//! that control state as an explicit machine over the same typestate
//! lifecycle (`Launched → Stepping → Sealed`, Figure 6), advanced **one
//! architecture operation per call** — which is exactly the granularity
//! a discrete-event executor needs to interleave many sessions on one
//! OS thread, and which the thread-pool executor simply drives in a
//! tight loop.
//!
//! The operation order is the contract: launch (retrying in place, or
//! degrading on saturation) → step/resume to exit (a faulted resume
//! retries the resume, a faulted step retries the step) → report →
//! quote (retrying in place), with exhaustion killing the session in
//! the same advance as the failed operation. The golden differential
//! suite pins this order byte-for-byte against the pre-refactor
//! recordings.

use sea_hw::{CpuId, Layer, Obs, SimDuration, TraceEvent, TRANSPORT_FAULT_COST};
use sea_tpm::TpmError;

use crate::concurrent::{ConcurrentJob, JobResult, SessionResult};
use crate::engine::Architecture;
use crate::enhanced::PalStep;
use crate::error::SeaError;
use crate::journal::SessionJournal;
use crate::locks::{lock, OrderedLock};
use crate::recovery::RetryPolicy;
use crate::report::SessionReport;

/// Deterministic virtual cost of handling one injected fault of the
/// given error class, as charged to the faulted session's CPU. (The
/// fault substrate also advances the shared machine clock; this local
/// accounting is what flows into per-CPU busy time and wall time, and
/// is a pure function of the error — never of the machine clock.)
fn fault_handling_cost(error: &SeaError) -> SimDuration {
    match error {
        SeaError::Tpm(TpmError::TransportFault { .. }) => TRANSPORT_FAULT_COST,
        _ => SimDuration::ZERO,
    }
}

/// Builds the in-band record of a session death.
fn killed(index: usize, retries: u32, error: SeaError, wasted: SimDuration) -> SessionResult {
    SessionResult::Killed {
        job: index,
        attempts: retries + 1,
        error,
        wasted,
    }
}

/// Records a retry: the backoff leaf and counter are emitted *before*
/// taking the engine lock — the leaf lands on the session's own track
/// (owned by exactly one worker, ordered by its per-track sequence)
/// and counters are order-insensitive, so neither needs the lock. Only
/// the [`TraceEvent::SessionRetried`] record mutates shared state and
/// still serializes on it. (Backoff burns CPU-local time, never the
/// shared machine clock, so it is not a `Machine::charge`.)
fn record_retry<A: Architecture>(
    rt: &OrderedLock<A::Runtime>,
    obs: &Obs,
    key: u64,
    attempt: u32,
    backoff: SimDuration,
) {
    obs.leaf_on(key, Layer::Core, "recovery.backoff", backoff);
    obs.add("core.retries", 1);
    let mut guard = lock(rt);
    let machine = A::platform_mut(&mut guard).machine_mut();
    let now = machine.now();
    machine.trace_mut().record(
        now,
        TraceEvent::SessionRetried {
            session: key,
            attempt,
        },
    );
}

/// What one [`SessionDriver::advance`] call did.
pub(crate) enum DriveStep {
    /// One architecture operation executed; the session continues.
    /// `local_cost` is the CPU-local virtual time the operation charged
    /// outside the shared machine clock (fault handling + retry
    /// backoff; zero on clean operations) — the discrete-event executor
    /// adds it to the session's next event time.
    Running {
        /// CPU-local charge of the operation (backoff + fault cost).
        local_cost: SimDuration,
    },
    /// The session reached a terminal: a typed [`SessionResult`], or an
    /// infrastructure error the batch must surface.
    Terminal(Result<SessionResult, SeaError>),
}

/// Lifecycle position between two operations. Mirrors the typestate
/// stages ([`crate::engine::Launched`] / [`crate::engine::Stepping`] /
/// [`crate::engine::Sealed`]) as runtime data, because a recovery
/// driver must be able to *re-enter* the same stage after a faulted
/// transition — which a move-based typestate cannot express without
/// giving the handle back on error.
enum Phase<A: Architecture> {
    /// Awaiting (or retrying) the launch.
    Launch,
    /// Launched: awaiting a step.
    Step(A::Live),
    /// Yielded: awaiting (or retrying) the resume.
    Resume(A::Live),
    /// Exited: awaiting the cost report.
    Report(A::Live),
    /// Reported: awaiting (or retrying) the attestation.
    Quote(A::Live),
    /// Terminal already returned.
    Done,
}

/// One job's drive through the session lifecycle, advanced one
/// architecture operation at a time.
pub(crate) struct SessionDriver<A: Architecture> {
    index: usize,
    cpu: CpuId,
    job: ConcurrentJob,
    /// `Some` ⇒ keyed (recovered) driving with this retry policy;
    /// `None` ⇒ the plain fast path (unkeyed, errors surface).
    policy: Option<RetryPolicy>,
    /// Record the write-ahead `launched` entry on launch success.
    journaled: bool,
    phase: Phase<A>,
    retries: u32,
    recovery_cost: SimDuration,
    output: Vec<u8>,
    report: Option<SessionReport>,
}

impl<A: Architecture> SessionDriver<A> {
    /// A driver at the launch edge for batch job `index` on `cpu`.
    pub(crate) fn new(
        index: usize,
        cpu: CpuId,
        job: ConcurrentJob,
        policy: Option<RetryPolicy>,
        journaled: bool,
    ) -> Self {
        SessionDriver {
            index,
            cpu,
            job,
            policy,
            journaled,
            phase: Phase::Launch,
            retries: 0,
            recovery_cost: SimDuration::ZERO,
            output: Vec::new(),
            report: None,
        }
    }

    /// The job's batch index (also its session key and CPU-assignment
    /// seed).
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// Whether the *next* operation drives the TPM (the quote). The
    /// discrete-event executor arbitrates these through the
    /// event-ordered TPM lock instead of running them back to back.
    pub(crate) fn needs_tpm(&self) -> bool {
        matches!(self.phase, Phase::Quote(_))
    }

    /// The quote this session will issue next, if it sits at the quote
    /// edge: the live handle plus the deterministic per-job nonce the
    /// quote phase derives from the batch index. The discrete-event
    /// executor collects these across virtual CPUs into a cohort for
    /// [`Architecture::prepare_quotes`].
    pub(crate) fn quote_request(&self) -> Option<(&A::Live, [u8; 8])> {
        match &self.phase {
            Phase::Quote(live) => Some((live, (self.index as u64).to_le_bytes())),
            _ => None,
        }
    }

    /// Reclaims the job (for relaunch after a torn epoch). Only
    /// meaningful once the driver is terminal or before it started.
    pub(crate) fn into_job(self) -> ConcurrentJob {
        self.job
    }

    fn key(&self) -> Option<u64> {
        self.policy.map(|_| self.index as u64)
    }

    /// Applies the retry policy to one failed attempt. On a retryable
    /// error with budget left: consumes a retry, charges the
    /// fault-handling cost plus backoff, records the retry, and returns
    /// `Some(local_cost)` (caller stays in the same phase). Otherwise
    /// charges the handling cost and returns `None` (caller kills the
    /// session).
    fn try_absorb(
        &mut self,
        rt: &OrderedLock<A::Runtime>,
        obs: &Obs,
        error: &SeaError,
    ) -> Option<SimDuration> {
        let policy = self.policy.expect("absorb only runs on keyed drives");
        let key = self.index as u64;
        if policy.is_retryable(error) && self.retries < policy.max_retries() {
            self.retries += 1;
            let backoff = policy.backoff_for(self.retries);
            let local = fault_handling_cost(error) + backoff;
            self.recovery_cost += local;
            record_retry::<A>(rt, obs, key, self.retries, backoff);
            Some(local)
        } else {
            self.recovery_cost += fault_handling_cost(error);
            None
        }
    }

    /// Kills the live session and returns the in-band death record (or
    /// the kill's own infrastructure error).
    fn kill_and_finish(
        &mut self,
        rt: &OrderedLock<A::Runtime>,
        mut live: A::Live,
        error: SeaError,
    ) -> DriveStep {
        let key = self.index as u64;
        if let Err(e) = A::kill(rt, &mut live, key) {
            return DriveStep::Terminal(Err(e));
        }
        DriveStep::Terminal(Ok(killed(
            self.index,
            self.retries,
            error,
            self.recovery_cost,
        )))
    }

    /// Executes exactly one architecture operation and moves the
    /// machine to its next phase.
    ///
    /// `journal` must be `Some` whenever the driver was built
    /// `journaled` (the durable mode); it receives the write-ahead
    /// `launched` record in the same advance as the successful launch.
    pub(crate) fn advance(
        &mut self,
        rt: &OrderedLock<A::Runtime>,
        obs: &Obs,
        journal: Option<&OrderedLock<SessionJournal>>,
    ) -> DriveStep {
        let key = self.key();
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::Launch => {
                let error =
                    match A::launch(rt, &mut *self.job.logic, &self.job.input, self.cpu, key) {
                        Ok(live) => {
                            if self.journaled {
                                if let Some(journal) = journal {
                                    lock(journal).record_launched(self.index as u64);
                                }
                            }
                            self.phase = Phase::Step(live);
                            return DriveStep::Running {
                                local_cost: SimDuration::ZERO,
                            };
                        }
                        Err(e) => e,
                    };
                if key.is_none() {
                    // Plain fast path: errors surface to the batch.
                    return DriveStep::Terminal(Err(error));
                }
                if RetryPolicy::is_saturation(&error) {
                    // Graceful degradation: the session bank is full,
                    // not faulty.
                    let degraded = A::degrade(
                        rt,
                        &mut *self.job.logic,
                        &self.job.input,
                        self.cpu,
                        self.index as u64,
                    );
                    return DriveStep::Terminal(degraded.map(|(output, report)| {
                        SessionResult::Degraded {
                            job: self.index,
                            output,
                            report,
                        }
                    }));
                }
                if let Some(local_cost) = self.try_absorb(rt, obs, &error) {
                    self.phase = Phase::Launch;
                    return DriveStep::Running { local_cost };
                }
                // No kill to issue — the faulted launch rolled its
                // pages back — but the death is still a recovery
                // decision, so the trace pairs the injected fault with
                // a kill like every other path.
                {
                    let mut guard = lock(rt);
                    let machine = A::platform_mut(&mut guard).machine_mut();
                    let now = machine.now();
                    machine.trace_mut().record(
                        now,
                        TraceEvent::SessionKilled {
                            session: self.index as u64,
                        },
                    );
                }
                DriveStep::Terminal(Ok(killed(
                    self.index,
                    self.retries,
                    error,
                    self.recovery_cost,
                )))
            }

            Phase::Step(mut live) => match A::step(rt, &mut live, &mut *self.job.logic, key) {
                Ok(PalStep::Exited { output }) => {
                    self.output = output;
                    self.phase = Phase::Report(live);
                    DriveStep::Running {
                        local_cost: SimDuration::ZERO,
                    }
                }
                Ok(PalStep::Yielded) => {
                    self.phase = Phase::Resume(live);
                    DriveStep::Running {
                        local_cost: SimDuration::ZERO,
                    }
                }
                Err(error) if key.is_none() => DriveStep::Terminal(Err(error)),
                Err(error) => {
                    if let Some(local_cost) = self.try_absorb(rt, obs, &error) {
                        self.phase = Phase::Step(live);
                        return DriveStep::Running { local_cost };
                    }
                    self.kill_and_finish(rt, live, error)
                }
            },

            Phase::Resume(mut live) => match A::resume(rt, &mut live, self.cpu, key) {
                Ok(()) => {
                    self.phase = Phase::Step(live);
                    DriveStep::Running {
                        local_cost: SimDuration::ZERO,
                    }
                }
                Err(error) if key.is_none() => DriveStep::Terminal(Err(error)),
                Err(error) => {
                    // A faulted resume retries in place: the SECB stays
                    // `Suspend`.
                    if let Some(local_cost) = self.try_absorb(rt, obs, &error) {
                        self.phase = Phase::Resume(live);
                        return DriveStep::Running { local_cost };
                    }
                    self.kill_and_finish(rt, live, error)
                }
            },

            Phase::Report(live) => match A::report(rt, &live) {
                Ok(report) => {
                    self.report = Some(report);
                    self.phase = Phase::Quote(live);
                    DriveStep::Running {
                        local_cost: SimDuration::ZERO,
                    }
                }
                // Both modes surface report failures: the session
                // exited, so this is infrastructure, not a fault roll.
                Err(error) => DriveStep::Terminal(Err(error)),
            },

            Phase::Quote(mut live) => {
                // Deterministic per-job nonce: ties the quote to the
                // batch index.
                let nonce = (self.index as u64).to_le_bytes();
                match A::quote(rt, &mut live, &nonce, key) {
                    Ok(quote) => DriveStep::Terminal(Ok(SessionResult::Quoted {
                        result: JobResult {
                            output: std::mem::take(&mut self.output),
                            report: self.report.take().expect("report precedes quote"),
                            quote_cost: quote.elapsed,
                            cpu: self.cpu,
                        },
                        quote: quote.value,
                        retries: self.retries,
                        recovery_cost: self.recovery_cost,
                    })),
                    Err(error) if key.is_none() => DriveStep::Terminal(Err(error)),
                    Err(error) => {
                        // A faulted quote leaves the sePCR in the Quote
                        // state, so it can be retried; on exhaustion
                        // the kill path frees the slot without an
                        // attestation.
                        if let Some(local_cost) = self.try_absorb(rt, obs, &error) {
                            self.phase = Phase::Quote(live);
                            return DriveStep::Running { local_cost };
                        }
                        self.kill_and_finish(rt, live, error)
                    }
                }
            }

            Phase::Done => DriveStep::Terminal(Err(SeaError::EngineFault(
                "advance called on a terminal session driver",
            ))),
        }
    }

    /// Drives the session to its terminal in one call (the thread-pool
    /// executor's whole-job loop).
    pub(crate) fn run_to_terminal(
        &mut self,
        rt: &OrderedLock<A::Runtime>,
        obs: &Obs,
        journal: Option<&OrderedLock<SessionJournal>>,
    ) -> Result<SessionResult, SeaError> {
        loop {
            if let DriveStep::Terminal(result) = self.advance(rt, obs, journal) {
                return result;
            }
        }
    }
}
