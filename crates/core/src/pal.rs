//! The PAL abstraction: Pieces of Application Logic.
//!
//! §3.1: "We focus on an execution model designed to execute small blocks
//! of code with the smallest possible TCB. We term each block of code a
//! Piece of Application Logic (PAL)."
//!
//! A PAL here is a [`PalLogic`] implementation: a canonical *image* (the
//! bytes that are measured — standing in for the compiled SLB the real
//! system loads) plus the simulated behaviour that runs inside the
//! protected session. The behaviour interacts with the trusted world
//! exclusively through [`PalCtx`]: sealing, unsealing, randomness,
//! measuring inputs, modelling compute time, and persisting state.

use sea_crypto::Sha1Digest;
use sea_hw::{CpuId, SimDuration};
use sea_tpm::{PcrIndex, SePcrHandle, SealedBlob, Tpm};

use crate::error::SeaError;

/// How a PAL invocation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PalOutcome {
    /// The PAL finished its task; the bytes are its output, handed to
    /// untrusted code after the protected session is torn down.
    Exit(Vec<u8>),
    /// The PAL voluntarily yields the CPU (`SYIELD`, proposed hardware
    /// only, §5.3.1) — e.g. to wait for data from disk or network. Its
    /// state stays protected; the OS resumes it later.
    Yield,
}

/// A Piece of Application Logic.
pub trait PalLogic {
    /// Human-readable PAL name.
    fn name(&self) -> &str;

    /// The canonical measured image. Two PALs are "the same code" to the
    /// attestation machinery exactly when their images are equal.
    fn image(&self) -> Vec<u8>;

    /// Runs (or resumes) the PAL inside a protected session.
    ///
    /// # Errors
    ///
    /// Implementations propagate [`SeaError`] from [`PalCtx`] operations
    /// or return [`SeaError::PalFailed`] for application-level failures.
    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError>;
}

/// A [`PalLogic`] built from a closure — the quickest way to define PALs
/// in examples and tests.
///
/// # Example
///
/// ```
/// use sea_core::{FnPal, PalLogic, PalOutcome};
/// use sea_hw::SimDuration;
///
/// let pal = FnPal::new("worker", |ctx| {
///     ctx.work(SimDuration::from_ms(1));
///     Ok(PalOutcome::Exit(vec![42]))
/// })
/// .with_image_size(64 * 1024); // pad the measured image to 64 KB
/// assert_eq!(pal.image().len(), 64 * 1024);
/// ```
pub struct FnPal<F> {
    name: String,
    image: Vec<u8>,
    f: F,
}

impl<F> FnPal<F>
where
    F: FnMut(&mut PalCtx<'_>) -> Result<PalOutcome, SeaError>,
{
    /// Creates a PAL with an image derived canonically from its name.
    pub fn new(name: &str, f: F) -> Self {
        let mut image = b"PAL-IMAGE:".to_vec();
        image.extend_from_slice(name.as_bytes());
        FnPal {
            name: name.to_owned(),
            image,
            f,
        }
    }

    /// Replaces the measured image entirely.
    pub fn with_image(mut self, image: Vec<u8>) -> Self {
        self.image = image;
        self
    }

    /// Pads (or truncates) the measured image to exactly `len` bytes —
    /// used by the Table 1 benches that sweep PAL size.
    pub fn with_image_size(mut self, len: usize) -> Self {
        self.image.resize(len, 0x90); // x86 NOP sled, in spirit
        self
    }
}

impl<F> std::fmt::Debug for FnPal<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnPal")
            .field("name", &self.name)
            .field("image_len", &self.image.len())
            .finish_non_exhaustive()
    }
}

impl<F> PalLogic for FnPal<F>
where
    F: FnMut(&mut PalCtx<'_>) -> Result<PalOutcome, SeaError>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn image(&self) -> Vec<u8> {
        self.image.clone()
    }

    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError> {
        (self.f)(ctx)
    }
}

/// How seal/unseal requests from the PAL are bound to its identity.
#[derive(Debug, Clone)]
pub(crate) enum SealBinding {
    /// Baseline: bound to the dynamic PCR(s) holding the PAL measurement
    /// (PCR 17 on AMD; 17 + 18 on Intel).
    Pcrs(Vec<PcrIndex>),
    /// Proposed: bound to the PAL's sePCR, addressed through the handle
    /// held by the CPU executing it.
    SePcr { handle: SePcrHandle, cpu: CpuId },
}

/// The PAL's window into the trusted world during one invocation.
///
/// Every operation's virtual-time cost is accumulated and folded into the
/// session's [`crate::SessionReport`].
pub struct PalCtx<'a> {
    tpm: Option<&'a mut Tpm>,
    binding: Option<SealBinding>,
    input: &'a [u8],
    state: Vec<u8>,
    pub(crate) seal_cost: SimDuration,
    pub(crate) unseal_cost: SimDuration,
    pub(crate) tpm_other_cost: SimDuration,
    pub(crate) work_done: SimDuration,
}

impl std::fmt::Debug for PalCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PalCtx")
            .field("input_len", &self.input.len())
            .field("state_len", &self.state.len())
            .field("work_done", &self.work_done)
            .finish_non_exhaustive()
    }
}

impl<'a> PalCtx<'a> {
    pub(crate) fn new(
        tpm: Option<&'a mut Tpm>,
        binding: Option<SealBinding>,
        input: &'a [u8],
        state: Vec<u8>,
    ) -> Self {
        PalCtx {
            tpm,
            binding,
            input,
            state,
            seal_cost: SimDuration::ZERO,
            unseal_cost: SimDuration::ZERO,
            tpm_other_cost: SimDuration::ZERO,
            work_done: SimDuration::ZERO,
        }
    }

    pub(crate) fn into_state(self) -> Vec<u8> {
        self.state
    }

    /// The input bytes untrusted code passed into this invocation.
    pub fn input(&self) -> &[u8] {
        self.input
    }

    /// The PAL's in-region persistent state (survives suspend/resume on
    /// proposed hardware; empty on every fresh baseline launch — baseline
    /// PALs persist state via [`PalCtx::seal`], which is exactly the
    /// overhead the paper measures).
    pub fn state(&self) -> &[u8] {
        &self.state
    }

    /// Replaces the persistent state.
    pub fn set_state(&mut self, state: Vec<u8>) {
        self.state = state;
    }

    /// Models `d` of application-specific compute.
    pub fn work(&mut self, d: SimDuration) {
        self.work_done += d;
    }

    fn require_tpm(&mut self) -> Result<(&mut Tpm, &SealBinding), SeaError> {
        match (&mut self.tpm, &self.binding) {
            (Some(tpm), Some(binding)) => Ok((tpm, binding)),
            _ => Err(SeaError::NoTpm),
        }
    }

    /// Seals `data` to this PAL's identity: only the same PAL (same
    /// measured image), launched through a genuine late launch, can
    /// unseal it — in this or any future session.
    ///
    /// # Errors
    ///
    /// [`SeaError::NoTpm`] on TPM-less platforms; [`SeaError::Tpm`] on
    /// TPM failure.
    pub fn seal(&mut self, data: &[u8]) -> Result<SealedBlob, SeaError> {
        let (tpm, binding) = self.require_tpm()?;
        let timed = match binding {
            SealBinding::Pcrs(selection) => tpm.seal(data, selection)?,
            SealBinding::SePcr { handle, cpu } => tpm.sepcr_seal(*handle, *cpu, data)?,
        };
        self.seal_cost += timed.elapsed;
        Ok(timed.value)
    }

    /// Unseals a blob previously sealed by this PAL.
    ///
    /// # Errors
    ///
    /// [`SeaError::Tpm`] with [`sea_tpm::TpmError::WrongPcrState`] if the
    /// blob belongs to different code, plus the variants of
    /// [`PalCtx::seal`].
    pub fn unseal(&mut self, blob: &SealedBlob) -> Result<Vec<u8>, SeaError> {
        let (tpm, binding) = self.require_tpm()?;
        let timed = match binding {
            SealBinding::Pcrs(_) => tpm.unseal(blob)?,
            SealBinding::SePcr { handle, cpu } => tpm.sepcr_unseal(*handle, *cpu, blob)?,
        };
        self.unseal_cost += timed.elapsed;
        Ok(timed.value)
    }

    /// Extends a measurement of this invocation's inputs into the PAL's
    /// measurement chain, making the inputs part of what attestations
    /// report.
    ///
    /// # Errors
    ///
    /// As for [`PalCtx::seal`].
    pub fn measure_input(&mut self, digest: &Sha1Digest) -> Result<(), SeaError> {
        let (tpm, binding) = self.require_tpm()?;
        let elapsed = match binding {
            SealBinding::Pcrs(selection) => {
                let target = *selection.last().expect("nonempty selection");
                tpm.extend(target, digest)?.elapsed
            }
            SealBinding::SePcr { handle, cpu } => tpm.sepcr_extend(*handle, *cpu, digest)?.elapsed,
        };
        self.tpm_other_cost += elapsed;
        Ok(())
    }

    /// Draws `n` random bytes from the TPM (`TPM_GetRandom`).
    ///
    /// # Errors
    ///
    /// [`SeaError::NoTpm`] on TPM-less platforms.
    pub fn random(&mut self, n: usize) -> Result<Vec<u8>, SeaError> {
        let tpm = self.tpm.as_deref_mut().ok_or(SeaError::NoTpm)?;
        let timed = tpm.get_random(n);
        self.tpm_other_cost += timed.elapsed;
        Ok(timed.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_hw::TpmKind;
    use sea_tpm::KeyStrength;

    fn tpm() -> Tpm {
        Tpm::new(TpmKind::Broadcom, KeyStrength::Demo512, b"palctx tpm").with_sepcrs(2)
    }

    #[test]
    fn fnpal_image_is_canonical_and_sizable() {
        let a = FnPal::new("x", |_| Ok(PalOutcome::Yield));
        let b = FnPal::new("x", |_| Ok(PalOutcome::Yield));
        assert_eq!(a.image(), b.image());
        assert_ne!(
            a.image(),
            FnPal::new("y", |_| Ok(PalOutcome::Yield)).image()
        );
        let sized = a.with_image_size(1000);
        assert_eq!(sized.image().len(), 1000);
        assert_eq!(sized.name(), "x");
        let custom = FnPal::new("z", |_| Ok(PalOutcome::Yield)).with_image(vec![1, 2, 3]);
        assert_eq!(custom.image(), vec![1, 2, 3]);
    }

    #[test]
    fn ctx_work_and_state_accumulate() {
        let mut ctx = PalCtx::new(None, None, b"in", vec![9]);
        assert_eq!(ctx.input(), b"in");
        assert_eq!(ctx.state(), &[9]);
        ctx.work(SimDuration::from_ms(2));
        ctx.work(SimDuration::from_ms(3));
        assert_eq!(ctx.work_done, SimDuration::from_ms(5));
        ctx.set_state(vec![1, 2]);
        assert_eq!(ctx.into_state(), vec![1, 2]);
    }

    #[test]
    fn ctx_without_tpm_rejects_tpm_ops() {
        let mut ctx = PalCtx::new(None, None, b"", Vec::new());
        assert_eq!(ctx.seal(b"x").unwrap_err(), SeaError::NoTpm);
        assert_eq!(ctx.random(4).unwrap_err(), SeaError::NoTpm);
        assert_eq!(ctx.measure_input(&[0u8; 20]).unwrap_err(), SeaError::NoTpm);
    }

    #[test]
    fn legacy_binding_seals_to_pcrs() {
        let mut t = tpm();
        t.hash_start(sea_tpm::Locality::Cpu).unwrap();
        t.hash_data(b"the pal").unwrap();
        t.hash_end().unwrap();

        let blob;
        {
            let mut ctx = PalCtx::new(
                Some(&mut t),
                Some(SealBinding::Pcrs(vec![PcrIndex(17)])),
                b"",
                Vec::new(),
            );
            blob = ctx.seal(b"secret").unwrap();
            assert_eq!(ctx.unseal(&blob).unwrap(), b"secret");
            assert!(ctx.seal_cost > SimDuration::ZERO);
            assert!(ctx.unseal_cost > SimDuration::ZERO);
        }
        // After different code runs (PCR 17 re-extended), unseal fails.
        t.extend(PcrIndex(17), &sea_crypto::Sha1::digest(b"other"))
            .unwrap();
        let mut ctx2 = PalCtx::new(
            Some(&mut t),
            Some(SealBinding::Pcrs(vec![PcrIndex(17)])),
            b"",
            Vec::new(),
        );
        assert!(matches!(
            ctx2.unseal(&blob),
            Err(SeaError::Tpm(sea_tpm::TpmError::WrongPcrState))
        ));
    }

    #[test]
    fn sepcr_binding_seals_to_handle() {
        let mut t = tpm();
        let h = t.slaunch_measure(b"pal image", CpuId(0)).unwrap().value;
        let mut ctx = PalCtx::new(
            Some(&mut t),
            Some(SealBinding::SePcr {
                handle: h,
                cpu: CpuId(0),
            }),
            b"",
            Vec::new(),
        );
        let blob = ctx.seal(b"state").unwrap();
        assert!(blob.is_sepcr_bound());
        assert_eq!(ctx.unseal(&blob).unwrap(), b"state");
    }

    #[test]
    fn measure_input_changes_chain() {
        let mut t = tpm();
        let h = t.slaunch_measure(b"pal image", CpuId(0)).unwrap().value;
        let before = t.sepcrs().read_exclusive(h, CpuId(0)).unwrap();
        let mut ctx = PalCtx::new(
            Some(&mut t),
            Some(SealBinding::SePcr {
                handle: h,
                cpu: CpuId(0),
            }),
            b"",
            Vec::new(),
        );
        ctx.measure_input(&sea_crypto::Sha1::digest(b"input file"))
            .unwrap();
        assert!(ctx.tpm_other_cost > SimDuration::ZERO);
        drop(ctx);
        assert_ne!(t.sepcrs().read_exclusive(h, CpuId(0)).unwrap(), before);
    }

    #[test]
    fn random_draws_are_timed() {
        let mut t = tpm();
        let mut ctx = PalCtx::new(Some(&mut t), None, b"", Vec::new());
        let r = ctx.random(16).unwrap();
        assert_eq!(r.len(), 16);
        assert!(ctx.tpm_other_cost > SimDuration::ZERO);
    }
}
