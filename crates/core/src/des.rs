//! The discrete-event executor: simulated CPUs on one OS thread.
//!
//! Where [`crate::threadpool`] assigns each simulated CPU a real OS
//! thread — capping how much hardware one process can model at the
//! host's core count — this backend replaces threads with *virtual
//! CPUs* stepped by a deterministic event queue
//! ([`sea_hw::EventQueue`]). Each event advances one session by exactly
//! one architecture operation ([`SessionDriver::advance`]); the
//! operation's machine-clock charge (plus any CPU-local retry backoff)
//! becomes the virtual-time gap to the session's next event. Ordering
//! is structural, not lock-enforced:
//!
//! * events fire in `(time, session id)` order, FIFO at exact ties —
//!   the tie-break contract pinned by `tests/proptest_invariants.rs`;
//! * the TPM command gate is the per-CPU-lane arbiter
//!   ([`ShardedTpmArbiter`], grant-order-identical to the retired
//!   `EventOrderedTpmLock` by `sea-tpm`'s differential test): a quote
//!   occupies the TPM for its virtual duration, contending quotes are
//!   granted by `(request time, CPU)` instead of by whichever OS
//!   thread wins a compare-and-swap, and each grant carries its
//!   request stamp so the queueing delay is charged to `tpm.gate`
//!   lock-wait;
//! * journal commit gates run at the committing session's terminal
//!   event, in event order.
//!
//! With one virtual CPU the event timeline degenerates to the serial
//! schedule, so the executor is byte-identical to the one-worker thread
//! pool *including the machine trace* — the golden differential suite
//! pins this. At higher CPU counts every session-level output (results,
//! quotes, per-CPU busy time, wall time) remains byte-identical to the
//! thread pool because those quantities are interleaving-invariant by
//! the engine's determinism contract.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use sea_hw::{CpuClockDomain, CpuId, EventQueue, Layer, Obs, SharedClock, SimDuration, SimTime};
use sea_tpm::ShardedTpmArbiter;

use crate::concurrent::ConcurrentJob;
use crate::driver::{DriveStep, SessionDriver};
use crate::engine::{Architecture, Attempt, WorkerMode};
use crate::error::SeaError;
use crate::locks::{lock, OrderedLock};

/// One scheduled cause on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Begin the named virtual CPU's next queued job.
    Start { cpu: usize },
    /// Advance the session currently on the virtual CPU by one
    /// operation.
    Op { cpu: usize },
    /// The TPM command holding the arbiter completes: release and
    /// re-arbitrate.
    Release { cpu: usize },
}

/// Per-virtual-CPU state: the jobs still queued and the session in
/// flight.
struct VirtualCpu<A: Architecture> {
    queue: VecDeque<(usize, ConcurrentJob)>,
    current: Option<SessionDriver<A>>,
    domain: CpuClockDomain,
}

/// Runs one epoch of the batch on `workers` virtual CPUs driven by the
/// event queue. Same contract as the thread-pool
/// [`crate::threadpool::run_epoch`]: per-job attempts indexed by job,
/// plus each virtual CPU's busy time.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_epoch<A: Architecture>(
    workers: usize,
    n_jobs: usize,
    pending: Vec<(usize, ConcurrentJob)>,
    rt: &Arc<OrderedLock<A::Runtime>>,
    obs: &Obs,
    clock: &Arc<SharedClock>,
    epoch: SimTime,
    mode: WorkerMode<'_>,
) -> Result<(Vec<Option<Attempt>>, Vec<SimDuration>), SeaError> {
    let mut cpus: Vec<VirtualCpu<A>> = (0..workers)
        .map(|_| VirtualCpu {
            queue: VecDeque::new(),
            current: None,
            domain: CpuClockDomain::at(Arc::clone(clock), epoch),
        })
        .collect();
    // Jobs keep their static assignment (job i → virtual CPU
    // i % workers) in every epoch, matching the thread pool.
    for (i, job) in pending {
        cpus[i % workers].queue.push_back((i, job));
    }

    let mut attempts: Vec<Option<Attempt>> = (0..n_jobs).map(|_| None).collect();
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut tpm_gate = ShardedTpmArbiter::new();

    // The virtual timeline starts at zero each epoch; only its ordering
    // matters (busy/wall accounting uses intrinsic costs, exactly as
    // the thread pool does).
    for (k, vcpu) in cpus.iter_mut().enumerate() {
        if let Some(&(i, _)) = vcpu.queue.front() {
            events.schedule(SimTime::ZERO, i as u64, Ev::Start { cpu: k });
        }
    }

    /// Machine-clock reading for op-duration measurement.
    fn machine_now<A: Architecture>(rt: &OrderedLock<A::Runtime>) -> SimTime {
        A::platform(&lock(rt)).machine().now()
    }

    while let Some(event) = events.pop() {
        let t = event.at;
        match event.payload {
            Ev::Start { cpu } => {
                let Some((i, job)) = cpus[cpu].queue.pop_front() else {
                    continue;
                };
                if let WorkerMode::Durable(ctx) = &mode {
                    if ctx.crashed.load(Ordering::SeqCst) {
                        // The platform is already dark; this job never
                        // started (and charges no busy time).
                        attempts[i] = Some(Attempt::Torn(job));
                        if let Some(&(next, _)) = cpus[cpu].queue.front() {
                            events.schedule(t, next as u64, Ev::Start { cpu });
                        }
                        continue;
                    }
                    lock(ctx.journal).record_intent(i as u64);
                }
                let (policy, journaled) = match &mode {
                    WorkerMode::Plain => (None, false),
                    WorkerMode::Recovered { retry } => (Some(*retry), false),
                    WorkerMode::Durable(ctx) => (Some(ctx.retry), true),
                };
                cpus[cpu].current = Some(SessionDriver::<A>::new(
                    i,
                    CpuId(cpu as u16),
                    job,
                    policy,
                    journaled,
                ));
                events.schedule(t, i as u64, Ev::Op { cpu });
            }

            Ev::Op { cpu } => {
                let cpu_id = CpuId(cpu as u16);
                let index = match &cpus[cpu].current {
                    Some(driver) => driver.index(),
                    None => continue,
                };
                let gated = cpus[cpu].current.as_ref().is_some_and(|d| d.needs_tpm());
                if gated && tpm_gate.holder() != Some(cpu_id) {
                    // Arbitrate: file the request at this event's time;
                    // if the TPM is free the best-stamped waiter wins.
                    tpm_gate.request(t, cpu_id);
                    match tpm_gate.grant() {
                        Some(winner) if winner.cpu == cpu_id => {} // proceed below
                        Some(winner) => {
                            // Another CPU's earlier request wins; run
                            // its pending command now. Ours stays
                            // queued for a later grant.
                            let w = winner.cpu.0 as usize;
                            if let Some(d) = &cpus[w].current {
                                events.schedule(t, d.index() as u64, Ev::Op { cpu: w });
                            }
                            continue;
                        }
                        None => continue, // held: wait for the release
                    }
                }

                if gated {
                    // This CPU holds the TPM gate and is about to
                    // quote; every other session parked at the quote
                    // edge will follow as the gate drains. Hand the
                    // whole cohort to the architecture so it can batch
                    // the signing work (semantically invisible — same
                    // bytes, same costs — per the trait contract).
                    let cohort: Vec<(&A::Live, [u8; 8])> = cpus
                        .iter()
                        .filter_map(|c| c.current.as_ref().and_then(|d| d.quote_request()))
                        .collect();
                    if cohort.len() > 1 {
                        A::prepare_quotes(&mut lock(rt), &cohort);
                    }
                }

                let journal = match &mode {
                    WorkerMode::Durable(ctx) => Some(ctx.journal),
                    _ => None,
                };
                let before = machine_now::<A>(rt);
                let step = cpus[cpu]
                    .current
                    .as_mut()
                    .expect("op event only fires with a session in flight")
                    .advance(rt, obs, journal);
                let elapsed = machine_now::<A>(rt).duration_since(before);
                let local = match &step {
                    DriveStep::Running { local_cost } => *local_cost,
                    DriveStep::Terminal(_) => SimDuration::ZERO,
                };
                let done_at = t + elapsed + local;
                // Contention attribution, in virtual time: every op
                // holds the runtime lock for its machine-clock charge.
                // (Lock stats live outside the snapshot — see
                // `sea_hw::RecordingSink::lock_stats` — so this cannot
                // perturb snapshot parity with the thread pool, whose
                // host-clock waits are unmeterable in virtual time.)
                obs.lock_event("core.runtime", Layer::Core, SimDuration::ZERO, elapsed);
                if gated {
                    // The grant kept its request stamp: the gap from
                    // request to this grant is pure arbiter queueing,
                    // charged as `tpm.gate` lock-wait; the command then
                    // holds the TPM until `done_at`.
                    let requested = tpm_gate.granted().map(|g| g.requested).unwrap_or(t);
                    obs.lock_event(
                        "tpm.gate",
                        Layer::Tpm,
                        t.duration_since(requested),
                        elapsed + local,
                    );
                    // The command occupied the TPM for its virtual
                    // duration; free it when that interval ends.
                    events.schedule(done_at, index as u64, Ev::Release { cpu });
                }

                match step {
                    DriveStep::Running { .. } => {
                        events.schedule(done_at, index as u64, Ev::Op { cpu });
                    }
                    DriveStep::Terminal(result) => {
                        let driver = cpus[cpu].current.take().expect("terminal session exists");
                        let i = driver.index();
                        let attempt = match &mode {
                            WorkerMode::Plain | WorkerMode::Recovered { .. } => {
                                if let Ok(r) = &result {
                                    cpus[cpu].domain.advance(r.cost());
                                }
                                Attempt::Done(result)
                            }
                            WorkerMode::Durable(ctx) => {
                                let session = result?;
                                let attempt = ctx.commit_gate::<A>(
                                    rt,
                                    obs,
                                    i as u64,
                                    session,
                                    driver.into_job(),
                                )?;
                                if let Attempt::Committed(s) | Attempt::Volatile(s, _) = &attempt {
                                    cpus[cpu].domain.advance(s.cost());
                                }
                                attempt
                            }
                        };
                        cpus[cpu].domain.publish();
                        attempts[i] = Some(attempt);
                        if let Some(&(next, _)) = cpus[cpu].queue.front() {
                            events.schedule(done_at, next as u64, Ev::Start { cpu });
                        }
                    }
                }
            }

            Ev::Release { cpu } => {
                let _ = tpm_gate.release(CpuId(cpu as u16));
                if let Some(winner) = tpm_gate.grant() {
                    let w = winner.cpu.0 as usize;
                    if let Some(d) = &cpus[w].current {
                        events.schedule(t, d.index() as u64, Ev::Op { cpu: w });
                    } else {
                        // The winner's session ended between request
                        // and grant (killed at another op); hand the
                        // grant back.
                        let _ = tpm_gate.release(winner.cpu);
                    }
                }
            }
        }
    }

    let busy = cpus.iter().map(|c| c.domain.busy()).collect();
    Ok((attempts, busy))
}
